//! The Enrichment module walkthrough (Figure 2 / Figure 4 of the paper):
//! redefinition, candidate discovery for the citizenship dimension, user
//! choices, and triple generation.
//!
//! Run with: `cargo run --release --example enrich_eurostat`

use enrichment::EnrichmentSession;
use qb2olap::demo::demo_enrichment_config;
use qb2olap::Endpoint;
use rdf::vocab::{eurostat_property, rdfs};

fn main() {
    let (endpoint, data) = datagen::load_demo_endpoint(&datagen::EurostatConfig::small(5_000));
    println!(
        "QB dataset <{}> loaded: {} observations, {} triples\n",
        data.dataset.as_str(),
        data.observation_count,
        endpoint.triple_count()
    );

    let mut session = EnrichmentSession::start(&endpoint, &data.dataset, demo_enrichment_config())
        .expect("the dataset is a well-formed QB dataset");

    // Redefinition phase.
    let schema = session.redefine().expect("redefinition succeeds").clone();
    println!(
        "Redefinition phase: {} dimensions redefined as levels, {} measure(s) with aggregate functions\n",
        schema.level_components.len(),
        schema.measures.len()
    );

    // Enrichment phase: candidates for the citizenship level.
    let candidates = session
        .discover_candidates(&eurostat_property::citizen())
        .expect("candidate discovery succeeds");
    println!("{}", candidates.to_report());

    // The user picks the continent roll-up and a name attribute.
    let continent_candidate = candidates
        .level_candidate(&datagen::eurostat::continent_property())
        .expect("the continent candidate is discovered")
        .clone();
    let continent = session
        .add_level(&eurostat_property::citizen(), &continent_candidate, "continent")
        .expect("level is added");
    session
        .add_attribute(&continent, &rdfs::label(), "continentName")
        .expect("attribute is added");
    println!("Added level <{}> with attribute continentName\n", continent.as_str());

    // A second round on the new level discovers the all-citizenships level.
    let next_round = session
        .discover_candidates(&continent)
        .expect("second discovery round succeeds");
    println!("Candidates for the new continent level:\n{}", next_round.to_report());

    // Triple Generation phase.
    let stats = session.load_into_endpoint().expect("triples load");
    println!(
        "Triple Generation phase: {} schema triples and {} instance triples loaded into the endpoint",
        stats.schema_triples, stats.instance_triples
    );
    println!(
        "Schema now has {} dimensions, {} levels, {} attributes",
        stats.dimensions, stats.levels, stats.attributes
    );
    println!(
        "Validation: {}",
        if session.validate().expect("schema exists").is_valid() {
            "schema is well formed"
        } else {
            "schema has issues"
        }
    );
}
