//! Mary's query from Section IV of the paper: the number of asylum
//! applications per year submitted by citizens of African countries whose
//! destination is France — written in QL, simplified, translated to SPARQL
//! (both variants) and executed.
//!
//! Run with: `cargo run --release --example mary_query`

use qb2olap::{demo, Qb2Olap, SparqlVariant};

fn main() {
    let cube = demo::setup_demo_cube(&datagen::EurostatConfig::small(10_000))
        .expect("demo setup succeeds");
    let tool = Qb2Olap::new(cube.endpoint.clone());
    let querying = tool.querying(&cube.dataset).expect("cube is enriched");

    let ql_text = datagen::workload::mary_query();
    println!("QL program:\n{ql_text}");

    let prepared = querying.prepare(&ql_text).expect("query prepares");
    println!(
        "Simplification: {} operation(s) in, {} out ({} fused, {} slices moved)\n",
        prepared.report.original_operations,
        prepared.report.simplified_operations,
        prepared.report.fused_operations,
        prepared.report.slices_moved
    );

    let direct = prepared.sparql(SparqlVariant::Direct);
    let alternative = prepared.sparql(SparqlVariant::Alternative);
    println!(
        "Direct SPARQL translation ({} lines — the paper reports more than 30):\n{direct}",
        direct.lines().count()
    );
    println!(
        "Alternative SPARQL translation ({} lines):\n{alternative}",
        alternative.lines().count()
    );

    let direct_cube = querying
        .execute(&prepared, SparqlVariant::Direct)
        .expect("direct variant executes");
    let alternative_cube = querying
        .execute(&prepared, SparqlVariant::Alternative)
        .expect("alternative variant executes");
    assert_eq!(
        direct_cube, alternative_cube,
        "both variants must return the same cube"
    );

    println!("Result cube ({} cells):", direct_cube.len());
    println!("{}", direct_cube.to_table_string());
}
