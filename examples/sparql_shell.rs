//! Manual SPARQL over the demo endpoint — the Querying module "also gives
//! the possibility to manually formulate SPARQL queries".
//!
//! Run with: `cargo run --release --example sparql_shell [-- "SELECT ..."]`
//! Without an argument, a default query listing the cube's levels and their
//! member counts is executed.

use qb2olap::{demo, Endpoint};

const DEFAULT_QUERY: &str = "\
PREFIX qb4o: <http://purl.org/qb4olap/cubes#>
SELECT ?level (COUNT(?member) AS ?members) WHERE {
  ?member qb4o:memberOf ?level .
} GROUP BY ?level ORDER BY DESC(?members)";

fn main() {
    let cube = demo::setup_demo_cube(&datagen::EurostatConfig::small(2_000))
        .expect("demo setup succeeds");

    let query = std::env::args()
        .nth(1)
        .unwrap_or_else(|| DEFAULT_QUERY.to_string());
    println!("Executing SPARQL against the demo endpoint:\n{query}\n");

    match cube.endpoint.select(&query) {
        Ok(solutions) => println!("{}", solutions.to_table_string()),
        Err(e) => {
            eprintln!("query failed: {e}");
            std::process::exit(1);
        }
    }
}
