//! The Exploration module walkthrough (Figure 5 of the paper): choose a cube,
//! cluster the dimension instances by level, list roll-up edges, and emit the
//! instance graph in DOT format.
//!
//! Run with: `cargo run --release --example explore_cube`

use qb2olap::{demo, Qb2Olap};
use rdf::vocab::{demo_schema, eurostat_property};

fn main() {
    let cube = demo::setup_demo_cube(&datagen::EurostatConfig::small(3_000))
        .expect("demo setup succeeds");
    let tool = Qb2Olap::new(cube.endpoint.clone());

    // Choose a cube among the collection stored in the endpoint.
    println!("Cubes available on the endpoint:");
    for summary in tool.list_cubes().expect("listing succeeds") {
        println!(
            "  <{}> — {} observations{}{}",
            summary.dataset.as_str(),
            summary.observations,
            summary
                .label
                .as_deref()
                .map(|l| format!(" — {l}"))
                .unwrap_or_default(),
            if summary.enriched { " [QB4OLAP]" } else { "" }
        );
    }
    println!();

    let explorer = tool.explorer(&cube.dataset).expect("cube is enriched");

    // Cluster the citizenship dimension's instances by level (Figure 5).
    let clusters = explorer
        .cluster_by_level(&demo_schema::citizenship_dim())
        .expect("clustering succeeds");
    println!("Citizenship dimension members clustered by level:");
    for (level, members) in &clusters {
        let labels: Vec<&str> = members.iter().take(8).map(|m| m.label.as_str()).collect();
        println!(
            "  {} ({} members): {}{}",
            level.local_name(),
            members.len(),
            labels.join(", "),
            if members.len() > 8 { ", ..." } else { "" }
        );
    }
    println!();

    // Roll-up edges between countries and continents (nodes and edges of Figure 5).
    let edges = explorer
        .rollup_edges(&eurostat_property::citizen(), &demo_schema::continent())
        .expect("edges load");
    println!("Sample roll-up edges (country -> continent):");
    for (child, parent) in edges.iter().take(10) {
        println!("  {} -> {}", child.label, parent.label);
    }
    println!("  ... {} edges in total\n", edges.len());

    // The same graph in DOT format, for rendering with Graphviz.
    println!(
        "{}",
        explorer
            .instance_graph_dot(&demo_schema::citizenship_dim())
            .expect("dot renders")
    );
}
