//! Quickstart: the full QB2OLAP pipeline on a small synthetic Eurostat cube.
//!
//! Run with: `cargo run --release --example quickstart`

use qb2olap::{demo, Endpoint, Qb2Olap, SparqlVariant};

fn main() {
    // 1. Generate a small `migr_asyappctzm` QB dataset and load it, together
    //    with the DBpedia-like external graph, into a local endpoint; then
    //    run the Enrichment module with the demo choices.
    let cube = demo::setup_demo_cube(&datagen::EurostatConfig::small(2_000))
        .expect("demo setup succeeds");
    println!(
        "Loaded {} observations ({} triples) and enriched the cube: {} schema triples, {} instance triples\n",
        cube.generated.observation_count,
        cube.endpoint.triple_count(),
        cube.enrichment.schema_triples,
        cube.enrichment.instance_triples
    );

    let tool = Qb2Olap::new(cube.endpoint.clone());

    // 2. Exploration module: the cube structure tree (Figure 4).
    let explorer = tool.explorer(&cube.dataset).expect("cube is enriched");
    println!("{}", explorer.schema_tree().expect("schema tree renders"));

    // 3. Querying module: aggregate the origin nationality of immigrants per
    //    continent (the OLAP need that motivates Mary in the introduction).
    let querying = tool.querying(&cube.dataset).expect("cube is enriched");
    let (prepared, result, timings) = querying
        .run(&datagen::workload::rollup_citizenship_to_continent())
        .expect("query runs");
    println!(
        "QL was simplified from {} to {} operation(s) and translated to {} lines of SPARQL",
        prepared.report.original_operations,
        prepared.report.simplified_operations,
        prepared.sparql(SparqlVariant::Direct).lines().count()
    );
    println!(
        "Preparation took {:?}, execution took {:?}\n",
        timings.preparation, timings.execution
    );
    println!("{}", result.to_table_string());
}
