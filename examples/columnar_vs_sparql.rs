//! Runs the same QL workload on both execution backends — the QL → SPARQL
//! translation evaluated on the endpoint, and the columnar cube engine —
//! printing per-query timings and a cell-for-cell parity check.
//!
//! ```sh
//! cargo run --release --example columnar_vs_sparql
//! ```

use std::time::Instant;

use qb2olap::{demo, ExecutionBackend, Qb2Olap, SparqlVariant};

fn main() {
    let observations = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(10_000usize);

    println!("Building the demo cube ({observations} observations)...");
    let cube = demo::setup_demo_cube(&datagen::EurostatConfig::small(observations))
        .expect("demo setup succeeds");
    let tool = Qb2Olap::new(cube.endpoint.clone());
    let querying = tool.querying(&cube.dataset).expect("cube is enriched");

    // The columnar backend pays a one-time materialization; everything
    // after runs without touching the endpoint.
    let started = Instant::now();
    let materialized = querying.materialize().expect("materialization succeeds");
    let build = started.elapsed();
    let stats = materialized.stats();
    println!(
        "Materialized {} fact rows, {} level indexes, {} roll-up maps in {build:.2?}\n",
        stats.rows, stats.levels, stats.rollup_maps
    );

    println!(
        "{:<28} {:>14} {:>14} {:>9} {:>8}  parity",
        "query", "sparql", "columnar", "speedup", "cells"
    );
    let mut total_sparql = std::time::Duration::ZERO;
    let mut total_columnar = std::time::Duration::ZERO;
    for (name, text) in datagen::workload::bench_queries() {
        let prepared = querying.prepare(&text).expect("workload queries prepare");

        let started = Instant::now();
        let sparql_cube = querying
            .execute(&prepared, SparqlVariant::Direct)
            .expect("SPARQL backend");
        let sparql_time = started.elapsed();

        let started = Instant::now();
        let columnar_cube = querying
            .execute(&prepared, ExecutionBackend::Columnar)
            .expect("columnar backend");
        let columnar_time = started.elapsed();

        total_sparql += sparql_time;
        total_columnar += columnar_time;
        let speedup = sparql_time.as_secs_f64() / columnar_time.as_secs_f64().max(1e-9);
        println!(
            "{name:<28} {sparql_time:>14.2?} {columnar_time:>14.2?} {speedup:>8.1}x {:>8}  {}",
            sparql_cube.len(),
            if sparql_cube == columnar_cube {
                "identical"
            } else {
                "MISMATCH!"
            }
        );
        assert_eq!(
            sparql_cube, columnar_cube,
            "the two backends must return identical cubes for '{name}'"
        );
    }
    let speedup = total_sparql.as_secs_f64() / total_columnar.as_secs_f64().max(1e-9);
    println!(
        "\nWorkload total: SPARQL {total_sparql:.2?}, columnar {total_columnar:.2?} \
         ({speedup:.1}x; one-time materialization {build:.2?})"
    );
}
