#!/usr/bin/env sh
# The merge gate: tier-1 verify (build + tests) plus docs and lints.
# Run from the repo root. Fails fast; every step must be warning-free.
set -eux

# Tier-1 (ROADMAP.md): the workspace builds and the full test suite passes.
# --workspace so the gate covers every member even if the default-members
# list in Cargo.toml drifts out of sync.
cargo build --release --workspace
cargo test -q --workspace

# The backend-parity gate, run explicitly so a SPARQL-vs-columnar
# regression can never slip through a test quarantine: every bench and
# seeded generated workload query must return identical cubes from both
# execution backends.
cargo test --release -q -p qb2olap-suite --test integration_backends

# Release-mode repro smoke: the experiment harness must run end to end
# (E11 also re-checks backend parity at this scale).
cargo run --release -p qb2olap_bench --bin repro -- e11 --observations 4000 > /dev/null

# Documentation builds for all crates with zero warnings.
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps

# Lints, on every target (libs, bins, tests, examples, benches).
cargo clippy --workspace --all-targets -- -D warnings

echo "ci.sh: all checks passed"
