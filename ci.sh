#!/usr/bin/env sh
# The merge gate: tier-1 verify (build + tests) plus docs and lints.
# Run from the repo root. Fails fast; every step must be warning-free.
set -eux

# Tier-1 (ROADMAP.md): the workspace builds and the full test suite passes.
# --workspace so the gate covers every member even if the default-members
# list in Cargo.toml drifts out of sync.
cargo build --release --workspace
cargo test -q --workspace

# Documentation builds for all crates with zero warnings.
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps

# Lints, on every target (libs, bins, tests, examples, benches).
cargo clippy --workspace --all-targets -- -D warnings

echo "ci.sh: all checks passed"
