#!/usr/bin/env sh
# The merge gate: tier-1 verify (build + tests) plus docs and lints.
# Run from the repo root. Fails fast; every step must be warning-free.
set -eux

# Tier-1 (ROADMAP.md): the workspace builds and the full test suite passes.
# --workspace so the gate covers every member even if the default-members
# list in Cargo.toml drifts out of sync.
cargo build --release --workspace
cargo test -q --workspace

# The backend-parity gate, run explicitly so a SPARQL-vs-columnar
# regression can never slip through a test quarantine: every bench and
# seeded generated workload query must return identical cubes from both
# execution backends.
cargo test --release -q -p qb2olap-suite --test integration_backends

# The mutation-parity gate, pinned by name: interleaved store mutations
# (delta refreshes and rebuild fallbacks) must keep the catalog-served
# columnar results cell-identical to fresh SPARQL evaluation, and the
# catalog-served explorer navigation identical to its SPARQL oracle.
cargo test --release -q -p qb2olap-suite --test integration_backends -- \
    interleaved_mutations_keep_catalog_and_sparql_in_lockstep

# The mutation-sequence differential fuzzer, pinned by name and seed: 200
# seeded steps of interleaved integer/float appends, new members, and
# whole/partial removals against one store (two datasets) must refresh
# exclusively via the delta path (no rebuild, no compaction) while the
# catalog-served columnar results stay bit-identical to fresh SPARQL
# evaluation after every step (float SUM/AVG included, thread counts
# 1/2/8 swept periodically).
QB2OLAP_FUZZ_STEPS=200 cargo test --release -q -p qb2olap-suite --test integration_backends -- \
    mutation_sequence_fuzzer_keeps_catalog_and_sparql_in_lockstep

# The qlsmith gate, pinned by name and seed: 500 grammar-covering QL
# programs (every pipeline-step variant, every aggregate function, dice
# trees over strings/numbers/IRIs) run through all three execution
# backends, and 500 grammar-covering SPARQL SELECTs run through the parsed
# and the pretty-printed evaluation path — bit-identical results required,
# with store mutations interleaved every ten queries so the campaign also
# covers delta-refreshed, tombstoned and rebuild-fallback catalog states.
# The coverage recorders fail the run if any grammar production was never
# generated, and the harness self-test proves a seeded mismatch is caught,
# shrunk to a one-statement corpus file and replayed.
QB2OLAP_FUZZ_SEED=0xE155EED QB2OLAP_FUZZ_PROGRAMS=500 QB2OLAP_FUZZ_QUERIES=500 \
    cargo test --release -q -p qb2olap-suite --test integration_qlsmith

# The observability gates, pinned by name: the explain-smoke test (an
# EXPLAIN ANALYZE profile must name every pipeline step with timings and
# row counts on both backends), the metrics-invariant test (a
# delta-only mutation run must report `catalog.refresh.delta > 0` and
# `catalog.refresh.rebuild == 0` through the metrics snapshot alone),
# and the pruning-visibility test (a selective dice's query profile must
# report `segments_pruned > 0` and a SEGMENTS plan line, a full
# roll-up's exactly zero).
cargo test --release -q -p qb2olap-suite --test integration_obs

# The zone-map pruning differential gate: a query battery covering every
# branch of the segment-pruning decision (full scans, clustered leaf /
# mid-level / unclustered dices, slices, roll-ups, HAVING) must return
# bit-identical cubes with pruning on and off, at one worker and at
# several, with monotone segment counters — and the process-wide
# QB2OLAP_NO_PRUNE kill switch must be invisible in QL results.
cargo test --release -q -p qb2olap-suite --test integration_pruning

# The same qlsmith campaign with the pruning kill switch thrown: 500
# grammar-covering QL programs through all three backends must stay
# bit-identical when every columnar scan runs unpruned, so the pruner
# cannot hide a divergence anywhere in the grammar.
QB2OLAP_NO_PRUNE=1 QB2OLAP_FUZZ_SEED=0xE155EED QB2OLAP_FUZZ_PROGRAMS=500 QB2OLAP_FUZZ_QUERIES=500 \
    cargo test --release -q -p qb2olap-suite --test integration_qlsmith

# The overlay consistency gates: the concurrency stress test (N readers
# racing a mutating writer and the background fold threads, every pinned
# snapshot checked bit-identical against a scratch materialization at
# exactly its epoch), the slow-fold regression test (a structural rebuild
# taking hundreds of milliseconds must never push concurrent snapshot
# serving past pin cost), and the QB2OLAP_NO_OVERLAY kill switch
# (snapshot serving degrades to the blocking path, bit-identically).
cargo test --release -q -p qb2olap-suite --test integration_overlay

# The same qlsmith campaign with the overlay kill switch thrown: the
# columnar-overlay oracle leg then runs through the blocking serve, so all
# four backends must still agree on every generated program.
QB2OLAP_NO_OVERLAY=1 QB2OLAP_FUZZ_SEED=0xE155EED QB2OLAP_FUZZ_PROGRAMS=500 QB2OLAP_FUZZ_QUERIES=500 \
    cargo test --release -q -p qb2olap-suite --test integration_qlsmith

# The regression corpus replays green, pinned by name so a corpus file
# that stops parsing or starts diverging fails the gate even if the
# campaign above is ever quarantined.
cargo test --release -q -p qb2olap-suite --test integration_qlsmith -- \
    committed_corpus_replays_green

# Release-mode repro smoke: the experiment harness must run end to end
# (E11 re-checks backend parity at this scale; E12 re-checks incremental
# maintenance — the delta path must be taken for pure appends, parity must
# hold after every refresh, and the rebuild fallback must report a reason;
# E13 re-checks O(delta) maintenance — copy-on-write refreshes must share
# dictionaries, whole-observation removals must tombstone instead of
# rebuilding, and accumulated tombstones must trigger a reported
# compaction, with parity held across every boundary).
cargo run --release -p qb2olap_bench --bin repro -- e11 --observations 4000 > /dev/null
cargo run --release -p qb2olap_bench --bin repro -- e12 --observations 4000 > /dev/null
cargo run --release -p qb2olap_bench --bin repro -- e13 --observations 4000 > /dev/null
# E14 additionally asserts: float appends and partial removals refresh via
# the delta path (never a rebuild) on a decimal-measure cube, with
# columnar results bit-identical to SPARQL and the chunked float scan
# bit-identical across worker counts.
cargo run --release -p qb2olap_bench --bin repro -- e14 --observations 4000 > /dev/null
# E16 additionally asserts: instrumented execution (collecting subscriber,
# traced profile) returns cells bit-identical to the uninstrumented scan,
# and the facade's EXPLAIN renders every pipeline step on both backends.
cargo run --release -p qb2olap_bench --bin repro -- e16 --observations 4000 > /dev/null
# E17 additionally asserts: pruned scans return cells bit-identical to
# unpruned ones at 1 and auto worker counts for every query shape.
# 12000 observations = 3 sealed segments, so the smoke run actually
# prunes (4000 rows would fit one segment and prune nothing).
cargo run --release -p qb2olap_bench --bin repro -- e17 --observations 12000 > /dev/null
# E18 additionally asserts: a forced structural rebuild folds on a
# background thread while snapshot reads keep flowing — read p99 during
# the fold within 10x the idle p99, every in-flight read stale-but-
# consistent, and the settled pin landing the new epoch.
cargo run --release -p qb2olap_bench --bin repro -- e18 --observations 12000 > /dev/null

# The HTTP serving gates. First the server test suite, pinned by name so
# the protocol-hardening and wire-fidelity coverage (400/404/405/408/413/
# 429, keep-alive, graceful shutdown, wire bodies bit-identical to library
# results over the E7 workload) cannot be quarantined away.
cargo test --release -q -p qb2olap-suite --test integration_server
# Then E19: loadgen drives 32 keep-alive connections of /ql traffic twice
# — idle and under forced background rebuilds — checking every response
# body against the library-computed canonical JSON, and --gate fails the
# run if the mid-rebuild p99 exceeds 10x the idle p99 or any body
# diverges (the wire-level restatement of E18's non-blocking guarantee).
cargo run --release -p qb2olap_bench --bin loadgen -- \
    --observations 4000 --connections 32 --requests 8 --gate

# Documentation cross-references resolve: every local *.md file mentioned
# in the top-level docs exists, and the architecture map is linked from
# the README (so it cannot silently rot).
for doc in README.md ARCHITECTURE.md EXPERIMENTS.md; do
    for ref in $(grep -o '[A-Za-z0-9_./-]*\.md' "$doc" | sort -u); do
        test -f "$ref" || { echo "ci.sh: $doc references missing file $ref"; exit 1; }
    done
done
grep -q 'ARCHITECTURE.md' README.md
grep -q 'E13' EXPERIMENTS.md
grep -q 'E14' EXPERIMENTS.md
grep -q 'E15' EXPERIMENTS.md
grep -q 'E16' EXPERIMENTS.md
grep -q 'E17' EXPERIMENTS.md
grep -q 'E18' EXPERIMENTS.md
grep -q 'E19' EXPERIMENTS.md

# Documentation builds for all crates with zero warnings.
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps

# Lints, on every target (libs, bins, tests, examples, benches).
cargo clippy --workspace --all-targets -- -D warnings

echo "ci.sh: all checks passed"
