//! Offline stand-in for [`serde`](https://docs.rs/serde).
//!
//! The build container has no crates.io access, so the workspace vendors a
//! minimal serialization facade: a [`Serialize`] trait that lowers values to
//! a JSON-like [`Value`] tree, and a `#[derive(Serialize)]` macro
//! (re-exported from `serde_derive`) for structs with named fields. The
//! sibling `serde_json` stand-in renders [`Value`] trees to JSON text.
//!
//! This is intentionally *not* serde's visitor-based data model — the
//! workspace only serialises small measurement records, where an owned value
//! tree is simpler and plenty fast.

use std::collections::BTreeMap;

// The derive macro emits `serde::`-qualified paths; alias self so the
// expansion also resolves inside this crate's own tests.
extern crate self as serde;

pub use serde_derive::Serialize;

/// A serialised value: the JSON data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (JSON does not distinguish integer from float).
    Number(f64),
    /// A string.
    String(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// Key–value pairs, in insertion order.
    Object(Vec<(String, Value)>),
}

/// Types that can lower themselves to a [`Value`] tree.
pub trait Serialize {
    /// Returns the value tree for `self`.
    fn to_value(&self) -> Value;
}

macro_rules! impl_serialize_number {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
    )*};
}

impl_serialize_number!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_lower_to_expected_values() {
        assert_eq!(42u32.to_value(), Value::Number(42.0));
        assert_eq!(true.to_value(), Value::Bool(true));
        assert_eq!("x".to_value(), Value::String("x".into()));
        assert_eq!(None::<u8>.to_value(), Value::Null);
        assert_eq!(
            vec![1u8, 2].to_value(),
            Value::Array(vec![Value::Number(1.0), Value::Number(2.0)])
        );
    }

    #[test]
    fn derive_produces_field_order_objects() {
        #[derive(Serialize)]
        struct Row {
            name: String,
            count: u32,
        }
        let v = Row {
            name: "a".into(),
            count: 3,
        }
        .to_value();
        assert_eq!(
            v,
            Value::Object(vec![
                ("name".into(), Value::String("a".into())),
                ("count".into(), Value::Number(3.0)),
            ])
        );
    }
}
