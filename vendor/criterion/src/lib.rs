//! Offline stand-in for [`criterion`](https://docs.rs/criterion).
//!
//! The build container has no crates.io access, so the workspace vendors the
//! slice of the criterion API its benches use: [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`] / [`BenchmarkGroup::bench_with_input`],
//! [`BenchmarkId`], [`Bencher::iter`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Methodology is deliberately simple but honest: each benchmark does one
//! untimed warm-up pass, then `sample_size` timed passes, and reports
//! min/median/mean/max wall-clock per iteration plus the median absolute
//! deviation (MAD) to stdout — median ± MAD are the numbers to quote, as
//! they are robust to the stray slow sample an offline container produces.
//! There is no outlier pruning or HTML report. The [`Stats`] summary is
//! public so harnesses (e.g. the `repro` binary) can reuse the same
//! statistics for their own timed loops.

use std::fmt;
use std::time::{Duration, Instant};

/// Prevents the optimiser from deleting a value computed in a bench loop.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Top-level benchmark driver; one per process, created by
/// [`criterion_group!`].
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 20,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.to_string(), 20, f);
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    _criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark in the group collects.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&format!("{}/{id}", self.name), self.sample_size, f);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(&format!("{}/{id}", self.name), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (printing nothing extra; kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// Identifies a benchmark as `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id with both a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.parameter {
            Some(p) if self.function.is_empty() => write!(f, "{p}"),
            Some(p) => write!(f, "{}/{p}", self.function),
            None => write!(f, "{}", self.function),
        }
    }
}

/// Passed to the benchmark closure; [`Bencher::iter`] times the payload.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times one execution of `routine` and records it as a sample.
    pub fn iter<T>(&mut self, mut routine: impl FnMut() -> T) {
        let started = Instant::now();
        black_box(routine());
        self.samples.push(started.elapsed());
    }
}

/// A robust summary of one benchmark's timed samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stats {
    /// Fastest sample.
    pub min: Duration,
    /// Median sample (midpoint average for even sample counts).
    pub median: Duration,
    /// Arithmetic mean.
    pub mean: Duration,
    /// Slowest sample.
    pub max: Duration,
    /// Median absolute deviation from the median.
    pub mad: Duration,
    /// Number of samples summarised.
    pub samples: usize,
}

impl Stats {
    /// Summarises a non-empty slice of samples. Returns `None` when empty.
    pub fn from_durations(samples: &[Duration]) -> Option<Self> {
        if samples.is_empty() {
            return None;
        }
        let median = median_of(&mut samples.to_vec());
        let mut deviations: Vec<Duration> = samples
            .iter()
            .map(|&s| s.abs_diff(median))
            .collect();
        let total: Duration = samples.iter().sum();
        Some(Stats {
            min: *samples.iter().min().expect("non-empty"),
            median,
            mean: total / samples.len() as u32,
            max: *samples.iter().max().expect("non-empty"),
            mad: median_of(&mut deviations),
            samples: samples.len(),
        })
    }
}

/// The median of a scratch buffer (sorted in place; midpoint average for
/// even lengths).
fn median_of(samples: &mut [Duration]) -> Duration {
    samples.sort_unstable();
    let mid = samples.len() / 2;
    if samples.len() % 2 == 1 {
        samples[mid]
    } else {
        (samples[mid - 1] + samples[mid]) / 2
    }
}

fn run_benchmark<F>(label: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Warm-up pass: populate caches/allocator state, discard the timing.
    let mut warmup = Bencher::default();
    f(&mut warmup);

    let mut bencher = Bencher::default();
    while bencher.samples.len() < sample_size {
        let before = bencher.samples.len();
        f(&mut bencher);
        if bencher.samples.len() == before {
            // The closure never called `iter`; avoid looping forever.
            break;
        }
    }
    let Some(stats) = Stats::from_durations(&bencher.samples) else {
        println!("bench {label:<50} (no samples)");
        return;
    };
    println!(
        "bench {label:<50} min {:>12?}  median {:>12?}  mean {:>12?}  max {:>12?}  mad {:>10?}  ({} samples)",
        stats.min, stats.median, stats.mean, stats.max, stats.mad, stats.samples
    );
}

/// Declares a function that runs the listed benchmark functions in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` to run the listed [`criterion_group!`] groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_collects_requested_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(5);
        let mut runs = 0usize;
        group.bench_with_input(BenchmarkId::new("f", 1), &3u32, |b, &x| {
            b.iter(|| {
                runs += 1;
                x * 2
            });
        });
        group.finish();
        // 1 warm-up pass + 5 timed samples.
        assert_eq!(runs, 6);
    }

    #[test]
    fn id_formats_like_criterion() {
        assert_eq!(BenchmarkId::new("f", 10).to_string(), "f/10");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }

    #[test]
    fn stats_median_and_mad() {
        let ms = Duration::from_millis;
        // Odd count: median is the middle sample, deviations {2,1,0,2,6}ms
        // → MAD 2ms.
        let stats =
            Stats::from_durations(&[ms(1), ms(2), ms(3), ms(5), ms(9)]).expect("non-empty");
        assert_eq!(stats.min, ms(1));
        assert_eq!(stats.median, ms(3));
        assert_eq!(stats.max, ms(9));
        assert_eq!(stats.mean, ms(4));
        assert_eq!(stats.mad, ms(2));
        assert_eq!(stats.samples, 5);

        // Even count: midpoint average.
        let stats = Stats::from_durations(&[ms(1), ms(3)]).expect("non-empty");
        assert_eq!(stats.median, ms(2));
        assert_eq!(stats.mad, ms(1));

        // A single sample has zero spread; empty input has no stats.
        let stats = Stats::from_durations(&[ms(7)]).expect("non-empty");
        assert_eq!(stats.median, ms(7));
        assert_eq!(stats.mad, Duration::ZERO);
        assert!(Stats::from_durations(&[]).is_none());
    }
}
