//! Offline stand-in for [`serde_json`](https://docs.rs/serde_json).
//!
//! Renders the vendored [`serde::Value`] tree to JSON text. Only the
//! serialisation direction is implemented — the workspace never parses
//! JSON. Output matches serde_json's formatting conventions: compact form
//! has no whitespace, pretty form indents by two spaces and puts one space
//! after `:`.

use std::fmt;

pub use serde::Value;

/// Serialisation error.
///
/// The value-tree design cannot actually fail, but the public API mirrors
/// serde_json's fallible signatures so call sites keep their `?`/`expect`.
#[derive(Debug)]
pub struct Error(());

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("JSON serialisation failed")
    }
}

impl std::error::Error for Error {}

/// Serialises `value` as compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Serialises `value` as two-space-indented JSON.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

fn write_value(value: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(*n, out),
        Value::String(s) => write_string(s, out),
        Value::Array(items) => write_sequence(items.iter(), '[', ']', indent, depth, out, |item, out| {
            write_value(item, indent, depth + 1, out)
        }),
        Value::Object(entries) => {
            write_sequence(entries.iter(), '{', '}', indent, depth, out, |(key, val), out| {
                write_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, indent, depth + 1, out);
            })
        }
    }
}

fn write_sequence<I: ExactSizeIterator>(
    items: I,
    open: char,
    close: char,
    indent: Option<usize>,
    depth: usize,
    out: &mut String,
    mut write_item: impl FnMut(I::Item, &mut String),
) {
    out.push(open);
    let is_empty = items.len() == 0;
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        newline_and_indent(indent, depth + 1, out);
        write_item(item, out);
    }
    if !is_empty {
        newline_and_indent(indent, depth, out);
    }
    out.push(close);
}

fn newline_and_indent(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
}

fn write_number(n: f64, out: &mut String) {
    if n.is_finite() {
        // Integral values print without a trailing `.0`, like serde_json.
        if n == n.trunc() && n.abs() < 1e15 {
            out.push_str(&format!("{}", n as i64));
        } else {
            out.push_str(&format!("{n}"));
        }
    } else {
        // serde_json refuses non-finite numbers; `null` is the lossy
        // stand-in since this API has no error path for values.
        out.push_str("null");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty_objects() {
        let v = Value::Object(vec![
            ("a".into(), Value::Number(1.0)),
            ("b".into(), Value::String("x\"y".into())),
        ]);
        assert_eq!(to_string(&v).unwrap(), r#"{"a":1,"b":"x\"y"}"#);
        assert_eq!(
            to_string_pretty(&v).unwrap(),
            "{\n  \"a\": 1,\n  \"b\": \"x\\\"y\"\n}"
        );
    }

    #[test]
    fn arrays_and_numbers() {
        let v = Value::Array(vec![Value::Number(2.5), Value::Null, Value::Bool(false)]);
        assert_eq!(to_string(&v).unwrap(), "[2.5,null,false]");
        assert_eq!(to_string(&Value::Array(vec![])).unwrap(), "[]");
    }
}
