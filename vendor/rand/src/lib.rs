//! Offline stand-in for [`rand`](https://docs.rs/rand).
//!
//! The build container has no crates.io access, so the workspace vendors the
//! slice of the rand API that `datagen` uses: [`rngs::StdRng`] constructed
//! via [`SeedableRng::seed_from_u64`], and [`Rng::gen_range`] over integer
//! ranges. The generator is SplitMix64 — statistically solid for synthetic
//! data generation and fully deterministic per seed, which is all the
//! workspace needs (it is *not* cryptographically secure, and neither is the
//! real `StdRng` meant to be used where that matters).

/// Random number generators.
pub mod rngs {
    /// A deterministic, seedable generator (SplitMix64 core).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) state: u64,
    }
}

use rngs::StdRng;

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Creates an RNG deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        StdRng { state: seed }
    }
}

impl StdRng {
    fn next_u64(&mut self) -> u64 {
        // SplitMix64 (Steele, Lea & Flood 2014): one add, two xor-shifts,
        // two multiplies; passes BigCrush when used as a stream.
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A range that uniform samples can be drawn from.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    ///
    /// Panics if the range is empty, matching rand's behaviour.
    fn sample(self, rng: &mut StdRng) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut StdRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// User-facing random-value methods, mirroring `rand::Rng`.
pub trait Rng {
    /// Returns a uniform sample from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T;

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool;
}

impl Rng for StdRng {
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        // 53 random bits → uniform f64 in [0, 1).
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000usize), b.gen_range(0..1000usize));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(0..=500i64);
            assert!((0..=500).contains(&v));
            let w = rng.gen_range(3..7usize);
            assert!((3..7).contains(&w));
            let n = rng.gen_range(-5..=5i32);
            assert!((-5..=5).contains(&n));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
