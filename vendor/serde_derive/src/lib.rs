//! Offline stand-in for [`serde_derive`](https://docs.rs/serde_derive).
//!
//! Implements `#[derive(Serialize)]` for structs with named fields by
//! emitting an impl of the vendored `serde::Serialize` trait (which lowers
//! to a `serde::Value` tree). Written against the bare `proc_macro` API —
//! the build container has no crates.io access, so `syn`/`quote` are not
//! available.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the vendored `serde::Serialize` for a struct with named fields.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match expand(input) {
        Ok(out) => out,
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

fn expand(input: TokenStream) -> Result<TokenStream, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();

    // Find `struct <Name> { ... }`, skipping attributes and visibility.
    let struct_kw = tokens
        .iter()
        .position(|t| matches!(t, TokenTree::Ident(i) if i.to_string() == "struct"))
        .ok_or_else(|| "#[derive(Serialize)] only supports structs".to_string())?;
    let name = match tokens.get(struct_kw + 1) {
        Some(TokenTree::Ident(i)) => i.to_string(),
        _ => return Err("expected a struct name after `struct`".to_string()),
    };
    let body = tokens
        .iter()
        .skip(struct_kw + 2)
        .find_map(|t| match t {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => Some(g.stream()),
            _ => None,
        })
        .ok_or_else(|| {
            "#[derive(Serialize)] only supports structs with named fields".to_string()
        })?;

    let fields = named_fields(body)?;
    if fields.is_empty() {
        return Err("#[derive(Serialize)] requires at least one field".to_string());
    }

    let entries: String = fields
        .iter()
        .map(|f| format!("({f:?}.to_string(), serde::Serialize::to_value(&self.{f})),"))
        .collect();
    let output = format!(
        "impl serde::Serialize for {name} {{\n\
             fn to_value(&self) -> serde::Value {{\n\
                 serde::Value::Object(vec![{entries}])\n\
             }}\n\
         }}"
    );
    output
        .parse()
        .map_err(|e| format!("derive expansion failed to parse: {e:?}"))
}

/// Extracts field names from the token stream of a named-field struct body.
///
/// Walks top-level tokens, taking the last ident seen before each `:` that
/// sits outside any angle-bracket nesting (so `Vec<Foo: Bar>`-style bounds
/// inside a type cannot be mistaken for a new field), then skips to the next
/// top-level comma.
fn named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut angle_depth = 0i32;
    let mut last_ident: Option<String> = None;
    let mut in_type = false;
    for tree in body {
        match &tree {
            TokenTree::Punct(p) => match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ':' if angle_depth == 0 && !in_type => {
                    let field = last_ident
                        .take()
                        .ok_or_else(|| "expected a field name before `:`".to_string())?;
                    fields.push(field);
                    in_type = true;
                }
                ',' if angle_depth == 0 => {
                    in_type = false;
                    last_ident = None;
                }
                _ => {}
            },
            TokenTree::Ident(i) if !in_type => {
                let text = i.to_string();
                // `pub` (and raw-ident escapes) never name a field.
                if text != "pub" {
                    last_ident = Some(text.strip_prefix("r#").unwrap_or(&text).to_string());
                }
            }
            // Attribute bodies `#[...]` and visibility scopes `pub(...)`
            // arrive as groups and are skipped wholesale.
            _ => {}
        }
    }
    Ok(fields)
}
