//! Offline stand-in for [`parking_lot`](https://docs.rs/parking_lot), backed
//! by `std::sync` primitives.
//!
//! The build container has no crates.io access, so the workspace vendors the
//! tiny slice of the parking_lot API it actually uses: [`Mutex`] and
//! [`RwLock`] whose lock methods return guards directly (no poison
//! `Result`). Lock poisoning is handled the way parking_lot handles it —
//! by ignoring it — so behaviour under panic matches the real crate closely
//! enough for this workspace.

use std::sync::{
    Mutex as StdMutex, MutexGuard, PoisonError, RwLock as StdRwLock, RwLockReadGuard,
    RwLockWriteGuard,
};

/// A mutual-exclusion lock with parking_lot's panic-free locking API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Returns a mutable reference to the protected value without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock with parking_lot's panic-free locking API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock(StdRwLock::new(value))
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Returns a mutable reference to the protected value without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }
}
