//! Query result representations.

use std::collections::BTreeMap;

use rdf::Term;

use crate::ast::Variable;

/// A table of solutions: a list of output variables plus one row per solution.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Solutions {
    /// Output variables, in projection order.
    pub variables: Vec<Variable>,
    /// One row per solution; entries align with `variables` and are `None`
    /// when the variable is unbound in that solution.
    pub rows: Vec<Vec<Option<Term>>>,
}

impl Solutions {
    /// Creates an empty solution table with the given variables.
    pub fn new(variables: Vec<Variable>) -> Self {
        Solutions {
            variables,
            rows: Vec::new(),
        }
    }

    /// Number of solutions.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if there are no solutions.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The index of a variable by name, if it is part of the output.
    pub fn column(&self, name: &str) -> Option<usize> {
        self.variables.iter().position(|v| v.name() == name)
    }

    /// The binding of `name` in row `row`, if bound.
    pub fn get(&self, row: usize, name: &str) -> Option<&Term> {
        let col = self.column(name)?;
        self.rows.get(row)?.get(col)?.as_ref()
    }

    /// Iterates rows as `variable name → term` maps (unbound vars omitted).
    pub fn iter_maps(&self) -> impl Iterator<Item = BTreeMap<&str, &Term>> + '_ {
        self.rows.iter().map(move |row| {
            self.variables
                .iter()
                .zip(row.iter())
                .filter_map(|(v, t)| t.as_ref().map(|t| (v.name(), t)))
                .collect()
        })
    }

    /// Renders the solutions as a fixed-width text table (used by the demo
    /// examples and the exploration module's text UI).
    pub fn to_table_string(&self) -> String {
        let headers: Vec<String> = self.variables.iter().map(|v| format!("?{}", v.name())).collect();
        let mut widths: Vec<usize> = headers.iter().map(String::len).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|row| {
                row.iter()
                    .enumerate()
                    .map(|(i, t)| {
                        let s = t.as_ref().map(render_term).unwrap_or_default();
                        if i < widths.len() {
                            widths[i] = widths[i].max(s.len());
                        }
                        s
                    })
                    .collect()
            })
            .collect();

        let mut out = String::new();
        let sep = |out: &mut String| {
            out.push('+');
            for w in &widths {
                out.push_str(&"-".repeat(w + 2));
                out.push('+');
            }
            out.push('\n');
        };
        sep(&mut out);
        out.push('|');
        for (h, w) in headers.iter().zip(&widths) {
            out.push_str(&format!(" {h:<w$} |"));
        }
        out.push('\n');
        sep(&mut out);
        for row in &rendered {
            out.push('|');
            for (i, w) in widths.iter().enumerate() {
                let cell = row.get(i).map(String::as_str).unwrap_or("");
                out.push_str(&format!(" {cell:<w$} |"));
            }
            out.push('\n');
        }
        sep(&mut out);
        out.push_str(&format!("{} solution(s)\n", self.rows.len()));
        out
    }
}

/// Renders a term compactly for table output (no angle brackets or quotes).
fn render_term(term: &Term) -> String {
    match term {
        Term::Iri(iri) => iri.as_str().to_string(),
        Term::Blank(b) => format!("_:{}", b.as_str()),
        Term::Literal(lit) => lit.lexical().to_string(),
    }
}

/// The result of executing a query: a solution table for SELECT, a boolean
/// for ASK.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryResults {
    /// SELECT results.
    Solutions(Solutions),
    /// ASK result.
    Boolean(bool),
}

impl QueryResults {
    /// Returns the solutions, if this is a SELECT result.
    pub fn solutions(&self) -> Option<&Solutions> {
        match self {
            QueryResults::Solutions(s) => Some(s),
            QueryResults::Boolean(_) => None,
        }
    }

    /// Consumes the result and returns the solutions, if this is a SELECT result.
    pub fn into_solutions(self) -> Option<Solutions> {
        match self {
            QueryResults::Solutions(s) => Some(s),
            QueryResults::Boolean(_) => None,
        }
    }

    /// Returns the boolean, if this is an ASK result.
    pub fn boolean(&self) -> Option<bool> {
        match self {
            QueryResults::Boolean(b) => Some(*b),
            QueryResults::Solutions(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Solutions {
        Solutions {
            variables: vec![Variable::new("country"), Variable::new("total")],
            rows: vec![
                vec![Some(Term::iri("http://ex/SY")), Some(Term::integer(120))],
                vec![Some(Term::iri("http://ex/NG")), None],
            ],
        }
    }

    #[test]
    fn accessors() {
        let s = sample();
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        assert_eq!(s.column("total"), Some(1));
        assert_eq!(s.column("missing"), None);
        assert_eq!(s.get(0, "total"), Some(&Term::integer(120)));
        assert_eq!(s.get(1, "total"), None);
        assert_eq!(s.get(5, "total"), None);
    }

    #[test]
    fn iter_maps_skips_unbound() {
        let s = sample();
        let maps: Vec<_> = s.iter_maps().collect();
        assert_eq!(maps[0].len(), 2);
        assert_eq!(maps[1].len(), 1);
    }

    #[test]
    fn table_rendering() {
        let s = sample();
        let table = s.to_table_string();
        assert!(table.contains("?country"));
        assert!(table.contains("http://ex/SY"));
        assert!(table.contains("2 solution(s)"));
    }

    #[test]
    fn query_results_accessors() {
        let r = QueryResults::Solutions(sample());
        assert!(r.solutions().is_some());
        assert!(r.boolean().is_none());
        assert!(r.into_solutions().is_some());
        let b = QueryResults::Boolean(true);
        assert_eq!(b.boolean(), Some(true));
        assert!(b.solutions().is_none());
    }
}
