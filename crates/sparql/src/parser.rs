//! Recursive-descent parser for the SPARQL subset.
//!
//! Supported query forms: `SELECT` (with `DISTINCT`, expression projections,
//! `GROUP BY`, `HAVING`, `ORDER BY`, `LIMIT`, `OFFSET`, sub-selects) and
//! `ASK`. Supported pattern elements: basic graph patterns with `;`/`,`
//! abbreviations, `FILTER`, `OPTIONAL`, `UNION`, `MINUS`, `BIND`, `VALUES`
//! and nested groups. This covers every query QB2OLAP generates (both the
//! direct and the alternative translation) plus the exploratory queries the
//! Enrichment and Exploration modules issue.

use rdf::{Iri, Literal, PrefixMap, Term};

use crate::ast::*;
use crate::error::SparqlError;
use crate::token::{tokenize, Punct, Spanned, Token};

/// Parses a SPARQL query string into a [`Query`].
pub fn parse_query(input: &str) -> Result<Query, SparqlError> {
    let tokens = tokenize(input)?;
    Parser::new(tokens).parse_query()
}

/// Parses a SPARQL SELECT query, rejecting other query forms.
pub fn parse_select(input: &str) -> Result<SelectQuery, SparqlError> {
    match parse_query(input)? {
        Query::Select(q) => Ok(q),
        Query::Ask(_) => Err(SparqlError::unsupported(
            "expected a SELECT query, found ASK",
        )),
    }
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
    prefixes: PrefixMap,
}

impl Parser {
    fn new(tokens: Vec<Spanned>) -> Self {
        Parser {
            tokens,
            pos: 0,
            prefixes: PrefixMap::new(),
        }
    }

    // ---- token helpers ------------------------------------------------

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|s| &s.token)
    }

    fn peek_at(&self, offset: usize) -> Option<&Token> {
        self.tokens.get(self.pos + offset).map(|s| &s.token)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|s| s.token.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn position(&self) -> (usize, usize) {
        self.tokens
            .get(self.pos.min(self.tokens.len().saturating_sub(1)))
            .map(|s| (s.line, s.column))
            .unwrap_or((0, 0))
    }

    fn error(&self, message: impl Into<String>) -> SparqlError {
        let (line, column) = self.position();
        SparqlError::parse(line, column, message)
    }

    fn at_keyword(&self, keyword: &str) -> bool {
        matches!(self.peek(), Some(Token::Word(w)) if w.eq_ignore_ascii_case(keyword))
    }

    fn eat_keyword(&mut self, keyword: &str) -> bool {
        if self.at_keyword(keyword) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, keyword: &str) -> Result<(), SparqlError> {
        if self.eat_keyword(keyword) {
            Ok(())
        } else {
            Err(self.error(format!("expected '{keyword}', found {:?}", self.peek())))
        }
    }

    fn at_punct(&self, p: Punct) -> bool {
        matches!(self.peek(), Some(Token::Punct(q)) if *q == p)
    }

    fn eat_punct(&mut self, p: Punct) -> bool {
        if self.at_punct(p) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: Punct) -> Result<(), SparqlError> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            Err(self.error(format!("expected {p:?}, found {:?}", self.peek())))
        }
    }

    // ---- query forms ---------------------------------------------------

    fn parse_query(mut self) -> Result<Query, SparqlError> {
        self.parse_prologue()?;
        if self.at_keyword("SELECT") {
            let q = self.parse_select_query()?;
            self.expect_end()?;
            Ok(Query::Select(q))
        } else if self.at_keyword("ASK") {
            self.bump();
            // Optional WHERE keyword.
            self.eat_keyword("WHERE");
            let pattern = self.parse_group_graph_pattern()?;
            self.expect_end()?;
            Ok(Query::Ask(AskQuery {
                prefixes: self.prefixes.clone(),
                pattern,
            }))
        } else {
            Err(self.error("expected SELECT or ASK"))
        }
    }

    fn expect_end(&mut self) -> Result<(), SparqlError> {
        if self.pos == self.tokens.len() {
            Ok(())
        } else {
            Err(self.error(format!("unexpected trailing token {:?}", self.peek())))
        }
    }

    fn parse_prologue(&mut self) -> Result<(), SparqlError> {
        loop {
            if self.at_keyword("PREFIX") {
                self.bump();
                let (prefix, local) = match self.bump() {
                    Some(Token::PrefixedName(p, l)) => (p, l),
                    other => return Err(self.error(format!("expected prefix name, found {other:?}"))),
                };
                if !local.is_empty() {
                    return Err(self.error("prefix declaration must end with ':'"));
                }
                let iri = match self.bump() {
                    Some(Token::IriRef(iri)) => iri,
                    other => return Err(self.error(format!("expected IRI, found {other:?}"))),
                };
                self.prefixes.insert(prefix, iri);
            } else if self.at_keyword("BASE") {
                self.bump();
                match self.bump() {
                    Some(Token::IriRef(_)) => {}
                    other => return Err(self.error(format!("expected IRI, found {other:?}"))),
                }
            } else {
                return Ok(());
            }
        }
    }

    fn parse_select_query(&mut self) -> Result<SelectQuery, SparqlError> {
        self.expect_keyword("SELECT")?;
        let mut query = SelectQuery::new();
        query.prefixes = self.prefixes.clone();
        if self.eat_keyword("DISTINCT") {
            query.distinct = true;
        } else {
            self.eat_keyword("REDUCED");
        }

        // Projection.
        if self.eat_punct(Punct::Star) {
            query.projection = Projection::Wildcard;
        } else {
            let mut items = Vec::new();
            loop {
                match self.peek() {
                    Some(Token::Var(_)) => {
                        if let Some(Token::Var(name)) = self.bump() {
                            items.push(SelectItem::Var(Variable::new(name)));
                        }
                    }
                    Some(Token::Punct(Punct::LParen)) => {
                        self.bump();
                        let expr = self.parse_expression()?;
                        self.expect_keyword("AS")?;
                        let alias = self.parse_variable()?;
                        self.expect_punct(Punct::RParen)?;
                        items.push(SelectItem::Expr { expr, alias });
                    }
                    _ => break,
                }
            }
            if items.is_empty() {
                return Err(self.error("SELECT requires '*' or at least one projection item"));
            }
            query.projection = Projection::Items(items);
        }

        // WHERE clause.
        self.eat_keyword("WHERE");
        query.pattern = self.parse_group_graph_pattern()?;

        // Solution modifiers.
        if self.eat_keyword("GROUP") {
            self.expect_keyword("BY")?;
            loop {
                match self.peek() {
                    Some(Token::Var(_)) => {
                        if let Some(Token::Var(name)) = self.bump() {
                            query.group_by.push(Expression::Var(Variable::new(name)));
                        }
                    }
                    Some(Token::Punct(Punct::LParen)) => {
                        self.bump();
                        let expr = self.parse_expression()?;
                        self.expect_punct(Punct::RParen)?;
                        query.group_by.push(expr);
                    }
                    _ => break,
                }
            }
            if query.group_by.is_empty() {
                return Err(self.error("GROUP BY requires at least one grouping expression"));
            }
        }
        if self.eat_keyword("HAVING") {
            loop {
                if self.at_punct(Punct::LParen) {
                    self.bump();
                    let expr = self.parse_expression()?;
                    self.expect_punct(Punct::RParen)?;
                    query.having.push(expr);
                } else {
                    break;
                }
            }
            if query.having.is_empty() {
                return Err(self.error("HAVING requires at least one constraint"));
            }
        }
        if self.eat_keyword("ORDER") {
            self.expect_keyword("BY")?;
            loop {
                if self.eat_keyword("ASC") {
                    self.expect_punct(Punct::LParen)?;
                    let expr = self.parse_expression()?;
                    self.expect_punct(Punct::RParen)?;
                    query.order_by.push(OrderCondition {
                        expr,
                        descending: false,
                    });
                } else if self.eat_keyword("DESC") {
                    self.expect_punct(Punct::LParen)?;
                    let expr = self.parse_expression()?;
                    self.expect_punct(Punct::RParen)?;
                    query.order_by.push(OrderCondition {
                        expr,
                        descending: true,
                    });
                } else if let Some(Token::Var(_)) = self.peek() {
                    if let Some(Token::Var(name)) = self.bump() {
                        query.order_by.push(OrderCondition {
                            expr: Expression::Var(Variable::new(name)),
                            descending: false,
                        });
                    }
                } else {
                    break;
                }
            }
            if query.order_by.is_empty() {
                return Err(self.error("ORDER BY requires at least one sort key"));
            }
        }
        loop {
            if self.eat_keyword("LIMIT") {
                query.limit = Some(self.parse_unsigned()?);
            } else if self.eat_keyword("OFFSET") {
                query.offset = Some(self.parse_unsigned()?);
            } else {
                break;
            }
        }
        Ok(query)
    }

    fn parse_unsigned(&mut self) -> Result<usize, SparqlError> {
        match self.bump() {
            Some(Token::Number(text, true)) => text
                .parse::<usize>()
                .map_err(|_| self.error("invalid integer")),
            other => Err(self.error(format!("expected integer, found {other:?}"))),
        }
    }

    fn parse_variable(&mut self) -> Result<Variable, SparqlError> {
        match self.bump() {
            Some(Token::Var(name)) => Ok(Variable::new(name)),
            other => Err(self.error(format!("expected variable, found {other:?}"))),
        }
    }

    // ---- graph patterns --------------------------------------------------

    fn parse_group_graph_pattern(&mut self) -> Result<GroupGraphPattern, SparqlError> {
        self.expect_punct(Punct::LBrace)?;
        let mut group = GroupGraphPattern::new();

        loop {
            if self.at_punct(Punct::RBrace) {
                self.bump();
                return Ok(group);
            }
            match self.peek() {
                None => return Err(self.error("unterminated group graph pattern")),
                Some(Token::Word(w)) if w.eq_ignore_ascii_case("FILTER") => {
                    self.bump();
                    let expr = self.parse_constraint()?;
                    group.elements.push(PatternElement::Filter(expr));
                    self.eat_punct(Punct::Dot);
                }
                Some(Token::Word(w)) if w.eq_ignore_ascii_case("OPTIONAL") => {
                    self.bump();
                    let inner = self.parse_group_graph_pattern()?;
                    group.elements.push(PatternElement::Optional(inner));
                    self.eat_punct(Punct::Dot);
                }
                Some(Token::Word(w)) if w.eq_ignore_ascii_case("MINUS") => {
                    self.bump();
                    let inner = self.parse_group_graph_pattern()?;
                    group.elements.push(PatternElement::Minus(inner));
                    self.eat_punct(Punct::Dot);
                }
                Some(Token::Word(w)) if w.eq_ignore_ascii_case("BIND") => {
                    self.bump();
                    self.expect_punct(Punct::LParen)?;
                    let expr = self.parse_expression()?;
                    self.expect_keyword("AS")?;
                    let var = self.parse_variable()?;
                    self.expect_punct(Punct::RParen)?;
                    group.elements.push(PatternElement::Bind { expr, var });
                    self.eat_punct(Punct::Dot);
                }
                Some(Token::Word(w)) if w.eq_ignore_ascii_case("VALUES") => {
                    self.bump();
                    let values = self.parse_values_block()?;
                    group.elements.push(values);
                    self.eat_punct(Punct::Dot);
                }
                Some(Token::Punct(Punct::LBrace)) => {
                    // Sub-select or nested group (possibly followed by UNION).
                    if matches!(self.peek_at(1), Some(Token::Word(w)) if w.eq_ignore_ascii_case("SELECT"))
                    {
                        self.bump();
                        let sub = self.parse_select_query()?;
                        self.expect_punct(Punct::RBrace)?;
                        group.elements.push(PatternElement::SubSelect(Box::new(sub)));
                        self.eat_punct(Punct::Dot);
                    } else {
                        let first = self.parse_group_graph_pattern()?;
                        if self.at_keyword("UNION") {
                            let mut arms = vec![first];
                            while self.eat_keyword("UNION") {
                                arms.push(self.parse_group_graph_pattern()?);
                            }
                            // Fold a chain of UNIONs left-associatively.
                            let mut iter = arms.into_iter();
                            let mut acc = iter.next().expect("at least one arm");
                            for arm in iter {
                                let mut wrapper = GroupGraphPattern::new();
                                wrapper.elements.push(PatternElement::Union(acc, arm));
                                acc = wrapper;
                            }
                            // Unwrap the final single-element wrapper if it is one.
                            if acc.elements.len() == 1 {
                                group.elements.push(acc.elements.pop().expect("one"));
                            } else {
                                group.elements.push(PatternElement::Group(acc));
                            }
                        } else {
                            group.elements.push(PatternElement::Group(first));
                        }
                        self.eat_punct(Punct::Dot);
                    }
                }
                _ => {
                    self.parse_triples_block(&mut group)?;
                }
            }
        }
    }

    fn parse_values_block(&mut self) -> Result<PatternElement, SparqlError> {
        let mut vars = Vec::new();
        let single_var = if let Some(Token::Var(_)) = self.peek() {
            if let Some(Token::Var(name)) = self.bump() {
                vars.push(Variable::new(name));
            }
            true
        } else {
            self.expect_punct(Punct::LParen)?;
            while let Some(Token::Var(_)) = self.peek() {
                if let Some(Token::Var(name)) = self.bump() {
                    vars.push(Variable::new(name));
                }
            }
            self.expect_punct(Punct::RParen)?;
            false
        };
        self.expect_punct(Punct::LBrace)?;
        let mut rows = Vec::new();
        loop {
            if self.eat_punct(Punct::RBrace) {
                break;
            }
            if single_var {
                if self.at_keyword("UNDEF") {
                    self.bump();
                    rows.push(vec![None]);
                } else {
                    let term = self.parse_term()?;
                    rows.push(vec![Some(term)]);
                }
            } else {
                self.expect_punct(Punct::LParen)?;
                let mut row = Vec::new();
                while !self.at_punct(Punct::RParen) {
                    if self.at_keyword("UNDEF") {
                        self.bump();
                        row.push(None);
                    } else {
                        row.push(Some(self.parse_term()?));
                    }
                }
                self.expect_punct(Punct::RParen)?;
                if row.len() != vars.len() {
                    return Err(self.error("VALUES row arity does not match variable list"));
                }
                rows.push(row);
            }
        }
        Ok(PatternElement::Values { vars, rows })
    }

    fn parse_triples_block(&mut self, group: &mut GroupGraphPattern) -> Result<(), SparqlError> {
        let subject = self.parse_var_or_term()?;
        loop {
            let predicate = self.parse_var_or_iri()?;
            loop {
                let object = self.parse_var_or_term()?;
                group.push_triple(TriplePattern {
                    subject: subject.clone(),
                    predicate: predicate.clone(),
                    object,
                });
                if self.eat_punct(Punct::Comma) {
                    continue;
                }
                break;
            }
            if self.eat_punct(Punct::Semicolon) {
                // Allow a dangling ';' before '.' or '}'.
                if self.at_punct(Punct::Dot) || self.at_punct(Punct::RBrace) {
                    break;
                }
                continue;
            }
            break;
        }
        self.eat_punct(Punct::Dot);
        Ok(())
    }

    fn parse_var_or_term(&mut self) -> Result<VarOrTerm, SparqlError> {
        match self.peek() {
            Some(Token::Var(_)) => {
                if let Some(Token::Var(name)) = self.bump() {
                    Ok(VarOrTerm::Var(Variable::new(name)))
                } else {
                    unreachable!("peeked variable")
                }
            }
            _ => Ok(VarOrTerm::Term(self.parse_term()?)),
        }
    }

    fn parse_var_or_iri(&mut self) -> Result<VarOrIri, SparqlError> {
        match self.peek() {
            Some(Token::Var(_)) => {
                if let Some(Token::Var(name)) = self.bump() {
                    Ok(VarOrIri::Var(Variable::new(name)))
                } else {
                    unreachable!("peeked variable")
                }
            }
            Some(Token::Word(w)) if w == "a" => {
                self.bump();
                Ok(VarOrIri::Iri(rdf::vocab::rdf::type_()))
            }
            _ => {
                let term = self.parse_term()?;
                match term {
                    Term::Iri(iri) => Ok(VarOrIri::Iri(iri)),
                    other => Err(self.error(format!("predicate must be an IRI, found {other}"))),
                }
            }
        }
    }

    fn expand_prefixed(&self, prefix: &str, local: &str) -> Result<Iri, SparqlError> {
        match self.prefixes.namespace(prefix) {
            Some(ns) => Ok(Iri::new(format!("{ns}{local}"))),
            None => Err(self.error(format!("undefined prefix '{prefix}:'"))),
        }
    }

    fn parse_term(&mut self) -> Result<Term, SparqlError> {
        match self.bump() {
            Some(Token::IriRef(iri)) => Ok(Term::Iri(Iri::new(iri))),
            Some(Token::PrefixedName(prefix, local)) => {
                Ok(Term::Iri(self.expand_prefixed(&prefix, &local)?))
            }
            Some(Token::BlankLabel(label)) => Ok(Term::blank(label)),
            Some(Token::StringLit(value)) => match self.peek() {
                Some(Token::LangTag(_)) => {
                    if let Some(Token::LangTag(lang)) = self.bump() {
                        Ok(Term::Literal(Literal::lang_string(value, lang)))
                    } else {
                        unreachable!("peeked lang tag")
                    }
                }
                Some(Token::DatatypeMarker) => {
                    self.bump();
                    let datatype = match self.bump() {
                        Some(Token::IriRef(iri)) => Iri::new(iri),
                        Some(Token::PrefixedName(prefix, local)) => {
                            self.expand_prefixed(&prefix, &local)?
                        }
                        other => {
                            return Err(self.error(format!("expected datatype IRI, found {other:?}")))
                        }
                    };
                    Ok(Term::Literal(Literal::typed(value, datatype)))
                }
                _ => Ok(Term::Literal(Literal::string(value))),
            },
            Some(Token::Number(text, integral)) => {
                let datatype = if integral {
                    rdf::vocab::xsd::integer()
                } else {
                    rdf::vocab::xsd::decimal()
                };
                Ok(Term::Literal(Literal::typed(text, datatype)))
            }
            Some(Token::Word(w)) if w.eq_ignore_ascii_case("true") => {
                Ok(Term::Literal(Literal::boolean(true)))
            }
            Some(Token::Word(w)) if w.eq_ignore_ascii_case("false") => {
                Ok(Term::Literal(Literal::boolean(false)))
            }
            other => Err(self.error(format!("expected RDF term, found {other:?}"))),
        }
    }

    // ---- expressions ------------------------------------------------------

    fn parse_constraint(&mut self) -> Result<Expression, SparqlError> {
        // FILTER takes either a bracketted expression or a builtin call.
        if self.at_punct(Punct::LParen) {
            self.bump();
            let e = self.parse_expression()?;
            self.expect_punct(Punct::RParen)?;
            Ok(e)
        } else {
            self.parse_primary_expression()
        }
    }

    fn parse_expression(&mut self) -> Result<Expression, SparqlError> {
        self.parse_or_expression()
    }

    fn parse_or_expression(&mut self) -> Result<Expression, SparqlError> {
        let mut left = self.parse_and_expression()?;
        while self.eat_punct(Punct::OrOr) {
            let right = self.parse_and_expression()?;
            left = Expression::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_and_expression(&mut self) -> Result<Expression, SparqlError> {
        let mut left = self.parse_relational_expression()?;
        while self.eat_punct(Punct::AndAnd) {
            let right = self.parse_relational_expression()?;
            left = Expression::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_relational_expression(&mut self) -> Result<Expression, SparqlError> {
        let left = self.parse_additive_expression()?;
        let op = match self.peek() {
            Some(Token::Punct(Punct::Eq)) => Some(CmpOp::Eq),
            Some(Token::Punct(Punct::Ne)) => Some(CmpOp::Ne),
            Some(Token::Punct(Punct::Lt)) => Some(CmpOp::Lt),
            Some(Token::Punct(Punct::Le)) => Some(CmpOp::Le),
            Some(Token::Punct(Punct::Gt)) => Some(CmpOp::Gt),
            Some(Token::Punct(Punct::Ge)) => Some(CmpOp::Ge),
            Some(Token::Word(w)) if w.eq_ignore_ascii_case("IN") => {
                self.bump();
                self.expect_punct(Punct::LParen)?;
                let mut list = Vec::new();
                if !self.at_punct(Punct::RParen) {
                    loop {
                        list.push(self.parse_expression()?);
                        if !self.eat_punct(Punct::Comma) {
                            break;
                        }
                    }
                }
                self.expect_punct(Punct::RParen)?;
                return Ok(Expression::In(Box::new(left), list));
            }
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let right = self.parse_additive_expression()?;
            Ok(Expression::Compare(Box::new(left), op, Box::new(right)))
        } else {
            Ok(left)
        }
    }

    fn parse_additive_expression(&mut self) -> Result<Expression, SparqlError> {
        let mut left = self.parse_multiplicative_expression()?;
        loop {
            if self.eat_punct(Punct::Plus) {
                let right = self.parse_multiplicative_expression()?;
                left = Expression::Arithmetic(Box::new(left), ArithOp::Add, Box::new(right));
            } else if self.eat_punct(Punct::Minus) {
                let right = self.parse_multiplicative_expression()?;
                left = Expression::Arithmetic(Box::new(left), ArithOp::Sub, Box::new(right));
            } else {
                return Ok(left);
            }
        }
    }

    fn parse_multiplicative_expression(&mut self) -> Result<Expression, SparqlError> {
        let mut left = self.parse_unary_expression()?;
        loop {
            if self.eat_punct(Punct::Star) {
                let right = self.parse_unary_expression()?;
                left = Expression::Arithmetic(Box::new(left), ArithOp::Mul, Box::new(right));
            } else if self.eat_punct(Punct::Slash) {
                let right = self.parse_unary_expression()?;
                left = Expression::Arithmetic(Box::new(left), ArithOp::Div, Box::new(right));
            } else {
                return Ok(left);
            }
        }
    }

    fn parse_unary_expression(&mut self) -> Result<Expression, SparqlError> {
        if self.eat_punct(Punct::Bang) {
            Ok(Expression::Not(Box::new(self.parse_unary_expression()?)))
        } else if self.eat_punct(Punct::Minus) {
            Ok(Expression::Neg(Box::new(self.parse_unary_expression()?)))
        } else if self.eat_punct(Punct::Plus) {
            self.parse_unary_expression()
        } else {
            self.parse_primary_expression()
        }
    }

    fn parse_primary_expression(&mut self) -> Result<Expression, SparqlError> {
        match self.peek() {
            Some(Token::Punct(Punct::LParen)) => {
                self.bump();
                let e = self.parse_expression()?;
                self.expect_punct(Punct::RParen)?;
                Ok(e)
            }
            Some(Token::Var(_)) => {
                if let Some(Token::Var(name)) = self.bump() {
                    Ok(Expression::Var(Variable::new(name)))
                } else {
                    unreachable!("peeked variable")
                }
            }
            Some(Token::Word(w)) => {
                let word = w.clone();
                if word.eq_ignore_ascii_case("EXISTS") {
                    self.bump();
                    let pattern = self.parse_group_graph_pattern()?;
                    return Ok(Expression::Exists(Box::new(pattern)));
                }
                if word.eq_ignore_ascii_case("NOT") {
                    self.bump();
                    self.expect_keyword("EXISTS")?;
                    let pattern = self.parse_group_graph_pattern()?;
                    return Ok(Expression::NotExists(Box::new(pattern)));
                }
                if word.eq_ignore_ascii_case("true") || word.eq_ignore_ascii_case("false") {
                    self.bump();
                    return Ok(Expression::Constant(Term::Literal(Literal::boolean(
                        word.eq_ignore_ascii_case("true"),
                    ))));
                }
                if let Some(agg) = AggregateFunction::from_name(&word) {
                    // Aggregates only when followed by '('.
                    if matches!(self.peek_at(1), Some(Token::Punct(Punct::LParen))) {
                        self.bump();
                        self.bump();
                        let distinct = self.eat_keyword("DISTINCT");
                        let expr = if self.eat_punct(Punct::Star) {
                            None
                        } else {
                            Some(Box::new(self.parse_expression()?))
                        };
                        self.expect_punct(Punct::RParen)?;
                        return Ok(Expression::Aggregate(AggregateExpr {
                            function: agg,
                            distinct,
                            expr,
                        }));
                    }
                }
                if let Some(function) = Function::from_name(&word) {
                    if matches!(self.peek_at(1), Some(Token::Punct(Punct::LParen))) {
                        self.bump();
                        self.bump();
                        let mut args = Vec::new();
                        if !self.at_punct(Punct::RParen) {
                            loop {
                                args.push(self.parse_expression()?);
                                if !self.eat_punct(Punct::Comma) {
                                    break;
                                }
                            }
                        }
                        self.expect_punct(Punct::RParen)?;
                        return Ok(Expression::Call(function, args));
                    }
                }
                // Fall back to parsing as a term (bare word is an error).
                Err(self.error(format!("unexpected word '{word}' in expression")))
            }
            _ => Ok(Expression::Constant(self.parse_term()?)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_minimal_select() {
        let q = parse_select("SELECT * WHERE { ?s ?p ?o }").unwrap();
        assert_eq!(q.projection, Projection::Wildcard);
        assert_eq!(q.pattern.triple_pattern_count(), 1);
    }

    #[test]
    fn parse_prefixes_and_abbreviations() {
        let q = parse_select(
            "PREFIX qb: <http://purl.org/linked-data/cube#>
             SELECT ?obs WHERE {
               ?obs a qb:Observation ;
                    qb:dataSet <http://example.org/ds> .
             }",
        )
        .unwrap();
        assert_eq!(q.pattern.triple_pattern_count(), 2);
        match &q.pattern.elements[0] {
            PatternElement::Triple(t) => {
                assert_eq!(t.predicate, VarOrIri::Iri(rdf::vocab::rdf::type_()));
            }
            other => panic!("expected triple, got {other:?}"),
        }
    }

    #[test]
    fn parse_aggregation_query() {
        let q = parse_select(
            "SELECT ?year (SUM(?m) AS ?total) WHERE { ?o ?p ?m } GROUP BY ?year HAVING (SUM(?m) > 10) ORDER BY DESC(?total) LIMIT 5 OFFSET 2",
        )
        .unwrap();
        assert!(q.is_aggregated());
        assert_eq!(q.group_by.len(), 1);
        assert_eq!(q.having.len(), 1);
        assert_eq!(q.order_by.len(), 1);
        assert!(q.order_by[0].descending);
        assert_eq!(q.limit, Some(5));
        assert_eq!(q.offset, Some(2));
    }

    #[test]
    fn parse_filters_and_functions() {
        let q = parse_select(
            r#"SELECT ?x WHERE {
                 ?x <http://p> ?v .
                 FILTER(?v >= 10 && ?v < 20)
                 FILTER(CONTAINS(STR(?x), "africa") || REGEX(STR(?x), "EU", "i"))
                 FILTER(?v != 13)
               }"#,
        )
        .unwrap();
        let filters: Vec<_> = q
            .pattern
            .elements
            .iter()
            .filter(|e| matches!(e, PatternElement::Filter(_)))
            .collect();
        assert_eq!(filters.len(), 3);
    }

    #[test]
    fn parse_optional_union_minus_bind_values() {
        let q = parse_select(
            r#"SELECT ?s ?label WHERE {
                 ?s a <http://example.org/Country> .
                 OPTIONAL { ?s <http://www.w3.org/2000/01/rdf-schema#label> ?label }
                 { ?s <http://p> ?x } UNION { ?s <http://q> ?x }
                 MINUS { ?s <http://hidden> ?h }
                 BIND(STR(?s) AS ?str)
                 VALUES ?x { <http://a> <http://b> }
               }"#,
        )
        .unwrap();
        let kinds: Vec<&'static str> = q
            .pattern
            .elements
            .iter()
            .map(|e| match e {
                PatternElement::Triple(_) => "triple",
                PatternElement::Filter(_) => "filter",
                PatternElement::Optional(_) => "optional",
                PatternElement::Union(_, _) => "union",
                PatternElement::Minus(_) => "minus",
                PatternElement::Bind { .. } => "bind",
                PatternElement::Values { .. } => "values",
                PatternElement::SubSelect(_) => "subselect",
                PatternElement::Group(_) => "group",
            })
            .collect();
        assert_eq!(
            kinds,
            vec!["triple", "optional", "union", "minus", "bind", "values"]
        );
    }

    #[test]
    fn parse_subselect() {
        let q = parse_select(
            "SELECT ?total WHERE {
               { SELECT (SUM(?v) AS ?total) WHERE { ?o <http://value> ?v } }
             }",
        )
        .unwrap();
        assert!(matches!(
            q.pattern.elements[0],
            PatternElement::SubSelect(_)
        ));
    }

    #[test]
    fn parse_values_multi_var() {
        let q = parse_select(
            "SELECT * WHERE { VALUES (?a ?b) { (<http://x> 1) (UNDEF 2) } }",
        )
        .unwrap();
        match &q.pattern.elements[0] {
            PatternElement::Values { vars, rows } => {
                assert_eq!(vars.len(), 2);
                assert_eq!(rows.len(), 2);
                assert!(rows[1][0].is_none());
            }
            other => panic!("expected values, got {other:?}"),
        }
    }

    #[test]
    fn parse_ask() {
        let q = parse_query("ASK { ?s ?p ?o }").unwrap();
        assert!(matches!(q, Query::Ask(_)));
    }

    #[test]
    fn parse_distinct_and_expression_ordering() {
        let q = parse_select(
            "SELECT DISTINCT ?x WHERE { ?x ?p ?y } ORDER BY ASC(?y) ?x",
        )
        .unwrap();
        assert!(q.distinct);
        assert_eq!(q.order_by.len(), 2);
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse_select("SELECT WHERE { ?s ?p ?o }").is_err());
        assert!(parse_select("SELECT * WHERE { ?s ?p }").is_err());
        assert!(parse_select("SELECT * WHERE { ?s qb:missing ?o }").is_err());
        assert!(parse_select("SELECT * { ?s ?p ?o } extra").is_err());
        assert!(parse_query("CONSTRUCT { ?s ?p ?o } WHERE { ?s ?p ?o }").is_err());
    }

    #[test]
    fn parse_literal_objects() {
        let q = parse_select(
            r#"PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>
               SELECT * WHERE {
                 ?s <http://p> "France" .
                 ?s <http://q> "5"^^xsd:integer .
                 ?s <http://r> 3.5 .
                 ?s <http://t> "Afrique"@fr .
                 ?s <http://u> true .
               }"#,
        )
        .unwrap();
        assert_eq!(q.pattern.triple_pattern_count(), 5);
    }

    #[test]
    fn arithmetic_precedence() {
        let q = parse_select("SELECT (1 + 2 * 3 AS ?x) WHERE { }").unwrap();
        match &q.projection {
            Projection::Items(items) => match &items[0] {
                SelectItem::Expr { expr, .. } => match expr {
                    Expression::Arithmetic(_, ArithOp::Add, right) => {
                        assert!(matches!(**right, Expression::Arithmetic(_, ArithOp::Mul, _)));
                    }
                    other => panic!("unexpected expr {other:?}"),
                },
                other => panic!("unexpected item {other:?}"),
            },
            other => panic!("unexpected projection {other:?}"),
        }
    }
}
