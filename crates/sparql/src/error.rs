//! Error type for the SPARQL engine.

use std::fmt;

/// Errors raised while parsing or evaluating SPARQL queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SparqlError {
    /// A syntax error, with position information.
    Parse {
        /// 1-based line number.
        line: usize,
        /// 1-based column number.
        column: usize,
        /// Description of the problem.
        message: String,
    },
    /// A query is syntactically valid but not supported by this engine.
    Unsupported(String),
    /// A runtime evaluation error (type errors inside aggregates, etc.).
    Eval(String),
    /// The endpoint could not execute the query.
    Endpoint(String),
}

impl SparqlError {
    /// Creates a parse error.
    pub fn parse(line: usize, column: usize, message: impl Into<String>) -> Self {
        SparqlError::Parse {
            line,
            column,
            message: message.into(),
        }
    }

    /// Creates an evaluation error.
    pub fn eval(message: impl Into<String>) -> Self {
        SparqlError::Eval(message.into())
    }

    /// Creates an "unsupported feature" error.
    pub fn unsupported(message: impl Into<String>) -> Self {
        SparqlError::Unsupported(message.into())
    }
}

impl fmt::Display for SparqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparqlError::Parse {
                line,
                column,
                message,
            } => write!(f, "SPARQL syntax error at {line}:{column}: {message}"),
            SparqlError::Unsupported(m) => write!(f, "unsupported SPARQL feature: {m}"),
            SparqlError::Eval(m) => write!(f, "SPARQL evaluation error: {m}"),
            SparqlError::Endpoint(m) => write!(f, "SPARQL endpoint error: {m}"),
        }
    }
}

impl std::error::Error for SparqlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert!(SparqlError::parse(1, 2, "x").to_string().contains("1:2"));
        assert!(SparqlError::unsupported("paths").to_string().contains("paths"));
        assert!(SparqlError::eval("bad").to_string().contains("bad"));
        assert!(SparqlError::Endpoint("down".into()).to_string().contains("down"));
    }
}
