//! Pretty-printer: turns a [`Query`] AST back into SPARQL text.
//!
//! The QL → SPARQL Query Translation phase builds ASTs and uses this module
//! to produce the query text shown to the user (and counted when the paper
//! says Mary's query "translates to more than 30 lines of SPARQL").
//! The printer's output is guaranteed to re-parse into an equivalent AST.

use rdf::{PrefixMap, Term};

use crate::ast::*;

/// Renders a query as SPARQL text, including PREFIX declarations for every
/// prefix of `query.prefixes` that is actually used.
pub fn query_to_string(query: &Query) -> String {
    match query {
        Query::Select(q) => select_to_string(q),
        Query::Ask(q) => {
            let mut printer = Printer::new(&q.prefixes);
            let mut body = String::from("ASK ");
            printer.write_group(&mut body, &q.pattern, 0);
            body.push('\n');
            printer.with_prefix_header(body)
        }
    }
}

/// Renders a SELECT query as SPARQL text.
pub fn select_to_string(query: &SelectQuery) -> String {
    let mut printer = Printer::new(&query.prefixes);
    let mut body = String::new();
    printer.write_select(&mut body, query, 0);
    body.push('\n');
    printer.with_prefix_header(body)
}

struct Printer<'a> {
    prefixes: &'a PrefixMap,
    used: std::collections::BTreeSet<String>,
}

impl<'a> Printer<'a> {
    fn new(prefixes: &'a PrefixMap) -> Self {
        Printer {
            prefixes,
            used: std::collections::BTreeSet::new(),
        }
    }

    fn with_prefix_header(self, body: String) -> String {
        let mut header = String::new();
        for (prefix, ns) in self.prefixes.iter() {
            if self.used.contains(prefix) {
                header.push_str(&format!("PREFIX {prefix}: <{ns}>\n"));
            }
        }
        header + &body
    }

    fn indent(out: &mut String, level: usize) {
        for _ in 0..level {
            out.push_str("  ");
        }
    }

    fn term(&mut self, term: &Term) -> String {
        match term {
            Term::Iri(iri) => {
                let compact = self.prefixes.compact(iri);
                if !compact.starts_with('<') {
                    if let Some((prefix, _)) = compact.split_once(':') {
                        self.used.insert(prefix.to_string());
                    }
                }
                compact
            }
            Term::Literal(lit) => {
                if lit.language().is_none() && lit.datatype() != &rdf::vocab::xsd::string() {
                    let dt = self.prefixes.compact(lit.datatype());
                    if !dt.starts_with('<') {
                        if let Some((prefix, _)) = dt.split_once(':') {
                            self.used.insert(prefix.to_string());
                        }
                        return format!("\"{}\"^^{dt}", rdf::term::escape_literal(lit.lexical()));
                    }
                }
                term.to_string()
            }
            Term::Blank(_) => term.to_string(),
        }
    }

    fn var_or_term(&mut self, vt: &VarOrTerm) -> String {
        match vt {
            VarOrTerm::Var(v) => v.to_string(),
            VarOrTerm::Term(t) => self.term(t),
        }
    }

    fn var_or_iri(&mut self, vi: &VarOrIri) -> String {
        match vi {
            VarOrIri::Var(v) => v.to_string(),
            VarOrIri::Iri(iri) => {
                if *iri == rdf::vocab::rdf::type_() {
                    "a".to_string()
                } else {
                    self.term(&Term::Iri(iri.clone()))
                }
            }
        }
    }

    fn write_select(&mut self, out: &mut String, query: &SelectQuery, level: usize) {
        Self::indent(out, level);
        out.push_str("SELECT ");
        if query.distinct {
            out.push_str("DISTINCT ");
        }
        match &query.projection {
            Projection::Wildcard => out.push('*'),
            Projection::Items(items) => {
                let rendered: Vec<String> = items
                    .iter()
                    .map(|item| match item {
                        SelectItem::Var(v) => v.to_string(),
                        SelectItem::Expr { expr, alias } => {
                            format!("({} AS {})", self.expr(expr), alias)
                        }
                    })
                    .collect();
                out.push_str(&rendered.join(" "));
            }
        }
        out.push('\n');
        Self::indent(out, level);
        out.push_str("WHERE ");
        self.write_group(out, &query.pattern, level);
        if !query.group_by.is_empty() {
            out.push('\n');
            Self::indent(out, level);
            let keys: Vec<String> = query.group_by.iter().map(|e| self.group_key(e)).collect();
            out.push_str(&format!("GROUP BY {}", keys.join(" ")));
        }
        if !query.having.is_empty() {
            out.push('\n');
            Self::indent(out, level);
            let constraints: Vec<String> = query
                .having
                .iter()
                .map(|e| format!("({})", self.expr(e)))
                .collect();
            out.push_str(&format!("HAVING {}", constraints.join(" ")));
        }
        if !query.order_by.is_empty() {
            out.push('\n');
            Self::indent(out, level);
            let keys: Vec<String> = query
                .order_by
                .iter()
                .map(|cond| {
                    if cond.descending {
                        format!("DESC({})", self.expr(&cond.expr))
                    } else {
                        format!("ASC({})", self.expr(&cond.expr))
                    }
                })
                .collect();
            out.push_str(&format!("ORDER BY {}", keys.join(" ")));
        }
        if let Some(limit) = query.limit {
            out.push('\n');
            Self::indent(out, level);
            out.push_str(&format!("LIMIT {limit}"));
        }
        if let Some(offset) = query.offset {
            out.push('\n');
            Self::indent(out, level);
            out.push_str(&format!("OFFSET {offset}"));
        }
    }

    fn group_key(&mut self, expr: &Expression) -> String {
        match expr {
            Expression::Var(v) => v.to_string(),
            other => format!("({})", self.expr(other)),
        }
    }

    fn write_group(&mut self, out: &mut String, group: &GroupGraphPattern, level: usize) {
        out.push_str("{\n");
        for element in &group.elements {
            match element {
                PatternElement::Triple(t) => {
                    Self::indent(out, level + 1);
                    out.push_str(&format!(
                        "{} {} {} .\n",
                        self.var_or_term(&t.subject),
                        self.var_or_iri(&t.predicate),
                        self.var_or_term(&t.object)
                    ));
                }
                PatternElement::Filter(expr) => {
                    Self::indent(out, level + 1);
                    out.push_str(&format!("FILTER({})\n", self.expr(expr)));
                }
                PatternElement::Optional(inner) => {
                    Self::indent(out, level + 1);
                    out.push_str("OPTIONAL ");
                    self.write_group(out, inner, level + 1);
                    out.push('\n');
                }
                PatternElement::Minus(inner) => {
                    Self::indent(out, level + 1);
                    out.push_str("MINUS ");
                    self.write_group(out, inner, level + 1);
                    out.push('\n');
                }
                PatternElement::Union(left, right) => {
                    Self::indent(out, level + 1);
                    self.write_group(out, left, level + 1);
                    out.push_str(" UNION ");
                    self.write_group(out, right, level + 1);
                    out.push('\n');
                }
                PatternElement::Bind { expr, var } => {
                    Self::indent(out, level + 1);
                    out.push_str(&format!("BIND({} AS {})\n", self.expr(expr), var));
                }
                PatternElement::Values { vars, rows } => {
                    Self::indent(out, level + 1);
                    let var_list: Vec<String> = vars.iter().map(|v| v.to_string()).collect();
                    out.push_str(&format!("VALUES ({}) {{\n", var_list.join(" ")));
                    for row in rows {
                        Self::indent(out, level + 2);
                        let cells: Vec<String> = row
                            .iter()
                            .map(|t| match t {
                                Some(t) => self.term(t),
                                None => "UNDEF".to_string(),
                            })
                            .collect();
                        out.push_str(&format!("({})\n", cells.join(" ")));
                    }
                    Self::indent(out, level + 1);
                    out.push_str("}\n");
                }
                PatternElement::SubSelect(sub) => {
                    Self::indent(out, level + 1);
                    out.push_str("{\n");
                    self.write_select(out, sub, level + 2);
                    out.push('\n');
                    Self::indent(out, level + 1);
                    out.push_str("}\n");
                }
                PatternElement::Group(inner) => {
                    Self::indent(out, level + 1);
                    self.write_group(out, inner, level + 1);
                    out.push('\n');
                }
            }
        }
        Self::indent(out, level);
        out.push('}');
    }

    fn expr(&mut self, expr: &Expression) -> String {
        match expr {
            Expression::Var(v) => v.to_string(),
            Expression::Constant(t) => self.term(t),
            Expression::Not(e) => format!("!({})", self.expr(e)),
            Expression::And(a, b) => format!("({} && {})", self.expr(a), self.expr(b)),
            Expression::Or(a, b) => format!("({} || {})", self.expr(a), self.expr(b)),
            Expression::Compare(a, op, b) => {
                format!("{} {} {}", self.expr(a), op.as_str(), self.expr(b))
            }
            Expression::Arithmetic(a, op, b) => {
                format!("({} {} {})", self.expr(a), op.as_str(), self.expr(b))
            }
            Expression::Neg(e) => format!("-({})", self.expr(e)),
            Expression::Call(f, args) => {
                let rendered: Vec<String> = args.iter().map(|a| self.expr(a)).collect();
                format!("{}({})", f.as_str(), rendered.join(", "))
            }
            Expression::Aggregate(agg) => {
                let inner = match &agg.expr {
                    None => "*".to_string(),
                    Some(e) => self.expr(e),
                };
                let distinct = if agg.distinct { "DISTINCT " } else { "" };
                format!("{}({distinct}{inner})", agg.function.as_str())
            }
            Expression::In(e, list) => {
                let rendered: Vec<String> = list.iter().map(|a| self.expr(a)).collect();
                format!("{} IN ({})", self.expr(e), rendered.join(", "))
            }
            Expression::Exists(pattern) => {
                let mut body = String::new();
                self.write_group(&mut body, pattern, 0);
                format!("EXISTS {body}")
            }
            Expression::NotExists(pattern) => {
                let mut body = String::new();
                self.write_group(&mut body, pattern, 0);
                format!("NOT EXISTS {body}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate_select;
    use crate::parser::parse_select;
    use rdf::parser::parse_turtle;

    fn roundtrip(query_text: &str) -> (SelectQuery, SelectQuery) {
        let original = parse_select(query_text).unwrap();
        let printed = select_to_string(&original);
        let reparsed = parse_select(&printed)
            .unwrap_or_else(|e| panic!("printed query must reparse: {e}\n{printed}"));
        (original, reparsed)
    }

    #[test]
    fn roundtrip_simple_query() {
        let (_a, b) = roundtrip(
            "PREFIX ex: <http://example.org/>
             SELECT ?s WHERE { ?s a ex:Country . FILTER(?s != ex:FR) }",
        );
        assert_eq!(b.pattern.triple_pattern_count(), 1);
    }

    #[test]
    fn roundtrip_preserves_semantics() {
        let data = parse_turtle(
            "@prefix ex: <http://example.org/> .
             ex:o1 ex:c ex:SY ; ex:v 10 . ex:o2 ex:c ex:NG ; ex:v 3 .
             ex:SY ex:cont ex:Asia . ex:NG ex:cont ex:Africa .",
        )
        .unwrap()
        .into_graph();
        let text = "PREFIX ex: <http://example.org/>
             SELECT ?cont (SUM(?v) AS ?total) WHERE {
               ?o ex:c ?c ; ex:v ?v . ?c ex:cont ?cont .
             } GROUP BY ?cont ORDER BY DESC(?total)";
        let original = parse_select(text).unwrap();
        let printed = select_to_string(&original);
        let reparsed = parse_select(&printed).unwrap();
        let r1 = evaluate_select(&data, &original).unwrap();
        let r2 = evaluate_select(&data, &reparsed).unwrap();
        assert_eq!(r1, r2);
    }

    #[test]
    fn prefix_header_only_lists_used_prefixes() {
        let mut q = SelectQuery::new();
        q.prefixes = PrefixMap::with_common_prefixes();
        q.pattern.push_triple(TriplePattern::new(
            VarOrTerm::var("obs"),
            rdf::vocab::qb::data_set(),
            VarOrTerm::iri("http://eurostat.linked-statistics.org/data/migr_asyappctzm"),
        ));
        let text = select_to_string(&Query::Select(q.clone()).as_select().unwrap().clone());
        assert!(text.contains("PREFIX qb:"));
        assert!(text.contains("PREFIX data:"));
        assert!(!text.contains("PREFIX dbo:"));
    }

    #[test]
    fn rdf_type_prints_as_a() {
        let mut q = SelectQuery::new();
        q.prefixes = PrefixMap::with_common_prefixes();
        q.pattern.push_triple(TriplePattern::new(
            VarOrTerm::var("x"),
            rdf::vocab::rdf::type_(),
            rdf::vocab::qb::observation(),
        ));
        let text = select_to_string(&q);
        assert!(text.contains("?x a qb:Observation ."), "{text}");
    }

    #[test]
    fn roundtrip_values_subselect_optional() {
        let (_a, b) = roundtrip(
            "PREFIX ex: <http://example.org/>
             SELECT ?x ?total WHERE {
               VALUES (?x) { (ex:SY) (ex:NG) }
               OPTIONAL { ?x ex:label ?l }
               { SELECT ?x (COUNT(*) AS ?total) WHERE { ?o ex:c ?x } GROUP BY ?x }
               FILTER(BOUND(?l) || ?total > 0)
             } LIMIT 10",
        );
        assert!(matches!(
            b.pattern.elements[0],
            PatternElement::Values { .. }
        ));
        assert_eq!(b.limit, Some(10));
    }

    #[test]
    fn line_count_reflects_structure() {
        let q = parse_select(
            "PREFIX ex: <http://example.org/>
             SELECT ?a ?b WHERE { ?a ex:p ?b . ?b ex:q ?c . FILTER(?c > 3) } GROUP BY ?a ?b",
        )
        .unwrap();
        let printed = select_to_string(&q);
        assert!(printed.lines().count() >= 7, "{printed}");
    }
}
