//! Abstract syntax tree for the SPARQL subset QB2OLAP uses.
//!
//! The QL → SPARQL translator builds these structures programmatically and
//! pretty-prints them (see [`crate::pretty`]); the parser produces the same
//! structures from query text, so translated queries can be re-parsed and
//! executed by the local engine exactly as a remote endpoint would.

use rdf::{Iri, PrefixMap, Term};

/// A SPARQL variable (without the leading `?`/`$`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Variable(pub String);

impl Variable {
    /// Creates a variable from a name without the sigil.
    pub fn new(name: impl Into<String>) -> Self {
        Variable(name.into())
    }

    /// The variable name without the sigil.
    pub fn name(&self) -> &str {
        &self.0
    }
}

impl std::fmt::Display for Variable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "?{}", self.0)
    }
}

/// A variable or a concrete RDF term, as allowed in subject/object positions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VarOrTerm {
    /// A variable.
    Var(Variable),
    /// A concrete term.
    Term(Term),
}

impl VarOrTerm {
    /// Convenience constructor for a variable.
    pub fn var(name: impl Into<String>) -> Self {
        VarOrTerm::Var(Variable::new(name))
    }

    /// Convenience constructor for an IRI term.
    pub fn iri(iri: impl AsRef<str>) -> Self {
        VarOrTerm::Term(Term::iri(iri))
    }

    /// Returns the variable if this is one.
    pub fn as_var(&self) -> Option<&Variable> {
        match self {
            VarOrTerm::Var(v) => Some(v),
            VarOrTerm::Term(_) => None,
        }
    }
}

impl From<Variable> for VarOrTerm {
    fn from(v: Variable) -> Self {
        VarOrTerm::Var(v)
    }
}

impl From<Term> for VarOrTerm {
    fn from(t: Term) -> Self {
        VarOrTerm::Term(t)
    }
}

impl From<Iri> for VarOrTerm {
    fn from(iri: Iri) -> Self {
        VarOrTerm::Term(Term::Iri(iri))
    }
}

/// A variable or an IRI, as allowed in predicate position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VarOrIri {
    /// A variable.
    Var(Variable),
    /// An IRI.
    Iri(Iri),
}

impl From<Variable> for VarOrIri {
    fn from(v: Variable) -> Self {
        VarOrIri::Var(v)
    }
}

impl From<Iri> for VarOrIri {
    fn from(iri: Iri) -> Self {
        VarOrIri::Iri(iri)
    }
}

/// A triple pattern inside a basic graph pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TriplePattern {
    /// Subject position.
    pub subject: VarOrTerm,
    /// Predicate position.
    pub predicate: VarOrIri,
    /// Object position.
    pub object: VarOrTerm,
}

impl TriplePattern {
    /// Creates a triple pattern.
    pub fn new(
        subject: impl Into<VarOrTerm>,
        predicate: impl Into<VarOrIri>,
        object: impl Into<VarOrTerm>,
    ) -> Self {
        TriplePattern {
            subject: subject.into(),
            predicate: predicate.into(),
            object: object.into(),
        }
    }

    /// All variables mentioned by the pattern.
    pub fn variables(&self) -> Vec<&Variable> {
        let mut vars = Vec::new();
        if let VarOrTerm::Var(v) = &self.subject {
            vars.push(v);
        }
        if let VarOrIri::Var(v) = &self.predicate {
            vars.push(v);
        }
        if let VarOrTerm::Var(v) = &self.object {
            vars.push(v);
        }
        vars
    }
}

/// Binary comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// The SPARQL surface syntax of the operator.
    pub fn as_str(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

/// Binary arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

impl ArithOp {
    /// The SPARQL surface syntax of the operator.
    pub fn as_str(self) -> &'static str {
        match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "/",
        }
    }
}

/// Built-in scalar functions supported by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Function {
    /// `STR(x)` — lexical form / IRI string.
    Str,
    /// `LANG(x)` — language tag.
    Lang,
    /// `DATATYPE(x)` — datatype IRI.
    Datatype,
    /// `BOUND(?x)`.
    Bound,
    /// `ISIRI(x)`.
    IsIri,
    /// `ISLITERAL(x)`.
    IsLiteral,
    /// `ISBLANK(x)`.
    IsBlank,
    /// `REGEX(text, pattern [, flags])` (substring semantics; `i` flag only).
    Regex,
    /// `CONTAINS(haystack, needle)`.
    Contains,
    /// `STRSTARTS(s, prefix)`.
    StrStarts,
    /// `STRENDS(s, suffix)`.
    StrEnds,
    /// `UCASE(s)`.
    UCase,
    /// `LCASE(s)`.
    LCase,
    /// `STRLEN(s)`.
    StrLen,
    /// `CONCAT(a, b, ...)`.
    Concat,
    /// `ABS(n)`.
    Abs,
    /// `YEAR(date)` — year component of a date-like literal.
    Year,
    /// `MONTH(date)` — month component of a date-like literal.
    Month,
    /// `IF(cond, a, b)`.
    If,
    /// `COALESCE(a, b, ...)`.
    Coalesce,
    /// `IRI(s)` / `URI(s)`.
    Iri,
    /// `SAMETERM(a, b)`.
    SameTerm,
}

impl Function {
    /// The SPARQL surface syntax of the function name.
    pub fn as_str(self) -> &'static str {
        match self {
            Function::Str => "STR",
            Function::Lang => "LANG",
            Function::Datatype => "DATATYPE",
            Function::Bound => "BOUND",
            Function::IsIri => "isIRI",
            Function::IsLiteral => "isLITERAL",
            Function::IsBlank => "isBLANK",
            Function::Regex => "REGEX",
            Function::Contains => "CONTAINS",
            Function::StrStarts => "STRSTARTS",
            Function::StrEnds => "STRENDS",
            Function::UCase => "UCASE",
            Function::LCase => "LCASE",
            Function::StrLen => "STRLEN",
            Function::Concat => "CONCAT",
            Function::Abs => "ABS",
            Function::Year => "YEAR",
            Function::Month => "MONTH",
            Function::If => "IF",
            Function::Coalesce => "COALESCE",
            Function::Iri => "IRI",
            Function::SameTerm => "sameTerm",
        }
    }

    /// Parses a (case-insensitive) function name.
    pub fn from_name(name: &str) -> Option<Self> {
        Some(match name.to_ascii_uppercase().as_str() {
            "STR" => Function::Str,
            "LANG" => Function::Lang,
            "DATATYPE" => Function::Datatype,
            "BOUND" => Function::Bound,
            "ISIRI" | "ISURI" => Function::IsIri,
            "ISLITERAL" => Function::IsLiteral,
            "ISBLANK" => Function::IsBlank,
            "REGEX" => Function::Regex,
            "CONTAINS" => Function::Contains,
            "STRSTARTS" => Function::StrStarts,
            "STRENDS" => Function::StrEnds,
            "UCASE" => Function::UCase,
            "LCASE" => Function::LCase,
            "STRLEN" => Function::StrLen,
            "CONCAT" => Function::Concat,
            "ABS" => Function::Abs,
            "YEAR" => Function::Year,
            "MONTH" => Function::Month,
            "IF" => Function::If,
            "COALESCE" => Function::Coalesce,
            "IRI" | "URI" => Function::Iri,
            "SAMETERM" => Function::SameTerm,
            _ => return None,
        })
    }
}

/// SPARQL aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggregateFunction {
    /// `COUNT`.
    Count,
    /// `SUM`.
    Sum,
    /// `AVG`.
    Avg,
    /// `MIN`.
    Min,
    /// `MAX`.
    Max,
    /// `SAMPLE`.
    Sample,
    /// `GROUP_CONCAT`.
    GroupConcat,
}

impl AggregateFunction {
    /// The SPARQL surface syntax of the aggregate name.
    pub fn as_str(self) -> &'static str {
        match self {
            AggregateFunction::Count => "COUNT",
            AggregateFunction::Sum => "SUM",
            AggregateFunction::Avg => "AVG",
            AggregateFunction::Min => "MIN",
            AggregateFunction::Max => "MAX",
            AggregateFunction::Sample => "SAMPLE",
            AggregateFunction::GroupConcat => "GROUP_CONCAT",
        }
    }

    /// Parses a (case-insensitive) aggregate name.
    pub fn from_name(name: &str) -> Option<Self> {
        Some(match name.to_ascii_uppercase().as_str() {
            "COUNT" => AggregateFunction::Count,
            "SUM" => AggregateFunction::Sum,
            "AVG" => AggregateFunction::Avg,
            "MIN" => AggregateFunction::Min,
            "MAX" => AggregateFunction::Max,
            "SAMPLE" => AggregateFunction::Sample,
            "GROUP_CONCAT" => AggregateFunction::GroupConcat,
            _ => return None,
        })
    }
}

/// An aggregate expression such as `SUM(?m)` or `COUNT(DISTINCT ?x)`.
#[derive(Debug, Clone, PartialEq)]
pub struct AggregateExpr {
    /// Which aggregate.
    pub function: AggregateFunction,
    /// Whether `DISTINCT` was specified.
    pub distinct: bool,
    /// The aggregated expression; `None` means `COUNT(*)`.
    pub expr: Option<Box<Expression>>,
}

/// A SPARQL expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expression {
    /// A variable reference.
    Var(Variable),
    /// A constant term (IRI or literal).
    Constant(Term),
    /// Logical negation.
    Not(Box<Expression>),
    /// Logical conjunction.
    And(Box<Expression>, Box<Expression>),
    /// Logical disjunction.
    Or(Box<Expression>, Box<Expression>),
    /// Comparison.
    Compare(Box<Expression>, CmpOp, Box<Expression>),
    /// Arithmetic.
    Arithmetic(Box<Expression>, ArithOp, Box<Expression>),
    /// Unary minus.
    Neg(Box<Expression>),
    /// Built-in function call.
    Call(Function, Vec<Expression>),
    /// Aggregate (only valid in projections/HAVING of grouped queries).
    Aggregate(AggregateExpr),
    /// `expr IN (e1, e2, ...)`.
    In(Box<Expression>, Vec<Expression>),
    /// `EXISTS { ... }`.
    Exists(Box<GroupGraphPattern>),
    /// `NOT EXISTS { ... }`.
    NotExists(Box<GroupGraphPattern>),
}

impl Expression {
    /// Convenience: a variable reference expression.
    pub fn var(name: impl Into<String>) -> Self {
        Expression::Var(Variable::new(name))
    }

    /// Convenience: a constant term expression.
    pub fn constant(term: impl Into<Term>) -> Self {
        Expression::Constant(term.into())
    }

    /// Convenience: `a = b`.
    pub fn eq(a: Expression, b: Expression) -> Self {
        Expression::Compare(Box::new(a), CmpOp::Eq, Box::new(b))
    }

    /// Convenience: conjunction of a list of expressions (`true` if empty).
    pub fn and_all(mut exprs: Vec<Expression>) -> Self {
        match exprs.len() {
            0 => Expression::Constant(Term::Literal(rdf::Literal::boolean(true))),
            1 => exprs.remove(0),
            _ => {
                let first = exprs.remove(0);
                exprs
                    .into_iter()
                    .fold(first, |acc, e| Expression::And(Box::new(acc), Box::new(e)))
            }
        }
    }

    /// True if the expression (recursively) contains an aggregate.
    pub fn contains_aggregate(&self) -> bool {
        match self {
            Expression::Aggregate(_) => true,
            Expression::Var(_) | Expression::Constant(_) => false,
            Expression::Not(e) | Expression::Neg(e) => e.contains_aggregate(),
            Expression::And(a, b) | Expression::Or(a, b) => {
                a.contains_aggregate() || b.contains_aggregate()
            }
            Expression::Compare(a, _, b) | Expression::Arithmetic(a, _, b) => {
                a.contains_aggregate() || b.contains_aggregate()
            }
            Expression::Call(_, args) => args.iter().any(Expression::contains_aggregate),
            Expression::In(e, list) => {
                e.contains_aggregate() || list.iter().any(Expression::contains_aggregate)
            }
            Expression::Exists(_) | Expression::NotExists(_) => false,
        }
    }
}

/// One row of a `VALUES` block: each entry is a term or `UNDEF`.
pub type ValuesRow = Vec<Option<Term>>;

/// Elements of a group graph pattern, in syntactic order.
#[derive(Debug, Clone, PartialEq)]
pub enum PatternElement {
    /// A triple pattern.
    Triple(TriplePattern),
    /// `FILTER(expr)`.
    Filter(Expression),
    /// `OPTIONAL { ... }`.
    Optional(GroupGraphPattern),
    /// `{ ... } UNION { ... }`.
    Union(GroupGraphPattern, GroupGraphPattern),
    /// `MINUS { ... }`.
    Minus(GroupGraphPattern),
    /// `BIND(expr AS ?var)`.
    Bind {
        /// The bound expression.
        expr: Expression,
        /// The target variable.
        var: Variable,
    },
    /// `VALUES (?v1 ?v2) { (t11 t12) (t21 t22) ... }`.
    Values {
        /// The variables bound by the block.
        vars: Vec<Variable>,
        /// The rows of terms (`None` = `UNDEF`).
        rows: Vec<ValuesRow>,
    },
    /// A nested `{ SELECT ... }` sub-query.
    SubSelect(Box<SelectQuery>),
    /// A nested group `{ ... }`.
    Group(GroupGraphPattern),
}

/// A `{ ... }` group graph pattern.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct GroupGraphPattern {
    /// The elements in syntactic order.
    pub elements: Vec<PatternElement>,
}

impl GroupGraphPattern {
    /// Creates an empty group.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a triple pattern.
    pub fn push_triple(&mut self, pattern: TriplePattern) {
        self.elements.push(PatternElement::Triple(pattern));
    }

    /// Appends a filter.
    pub fn push_filter(&mut self, expr: Expression) {
        self.elements.push(PatternElement::Filter(expr));
    }

    /// Number of triple patterns (recursively, including nested groups,
    /// optionals, unions and sub-selects).
    pub fn triple_pattern_count(&self) -> usize {
        self.elements
            .iter()
            .map(|e| match e {
                PatternElement::Triple(_) => 1,
                PatternElement::Optional(g) | PatternElement::Group(g) | PatternElement::Minus(g) => {
                    g.triple_pattern_count()
                }
                PatternElement::Union(a, b) => a.triple_pattern_count() + b.triple_pattern_count(),
                PatternElement::SubSelect(q) => q.pattern.triple_pattern_count(),
                _ => 0,
            })
            .sum()
    }
}

/// An item of a SELECT projection.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// A plain variable.
    Var(Variable),
    /// `(expr AS ?alias)`.
    Expr {
        /// The projected expression.
        expr: Expression,
        /// The alias variable.
        alias: Variable,
    },
}

impl SelectItem {
    /// The output variable name of this item.
    pub fn output_variable(&self) -> &Variable {
        match self {
            SelectItem::Var(v) => v,
            SelectItem::Expr { alias, .. } => alias,
        }
    }
}

/// The projection of a SELECT query.
#[derive(Debug, Clone, PartialEq)]
pub enum Projection {
    /// `SELECT *`.
    Wildcard,
    /// An explicit list of items.
    Items(Vec<SelectItem>),
}

/// One `ORDER BY` condition.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderCondition {
    /// The sort key expression.
    pub expr: Expression,
    /// True for descending order.
    pub descending: bool,
}

/// A SELECT query.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectQuery {
    /// Prefixes declared in the query (used for pretty-printing).
    pub prefixes: PrefixMap,
    /// Whether `DISTINCT` was specified.
    pub distinct: bool,
    /// The projection.
    pub projection: Projection,
    /// The WHERE pattern.
    pub pattern: GroupGraphPattern,
    /// `GROUP BY` expressions.
    pub group_by: Vec<Expression>,
    /// `HAVING` constraints.
    pub having: Vec<Expression>,
    /// `ORDER BY` conditions.
    pub order_by: Vec<OrderCondition>,
    /// `LIMIT`.
    pub limit: Option<usize>,
    /// `OFFSET`.
    pub offset: Option<usize>,
}

impl SelectQuery {
    /// Creates an empty `SELECT *` query.
    pub fn new() -> Self {
        SelectQuery {
            prefixes: PrefixMap::new(),
            distinct: false,
            projection: Projection::Wildcard,
            pattern: GroupGraphPattern::new(),
            group_by: Vec::new(),
            having: Vec::new(),
            order_by: Vec::new(),
            limit: None,
            offset: None,
        }
    }

    /// True if the query uses grouping or any aggregate in its projection.
    pub fn is_aggregated(&self) -> bool {
        if !self.group_by.is_empty() {
            return true;
        }
        match &self.projection {
            Projection::Wildcard => false,
            Projection::Items(items) => items.iter().any(|i| match i {
                SelectItem::Var(_) => false,
                SelectItem::Expr { expr, .. } => expr.contains_aggregate(),
            }),
        }
    }

    /// The output variable names, if the projection is explicit.
    pub fn output_variables(&self) -> Option<Vec<Variable>> {
        match &self.projection {
            Projection::Wildcard => None,
            Projection::Items(items) => {
                Some(items.iter().map(|i| i.output_variable().clone()).collect())
            }
        }
    }
}

impl Default for SelectQuery {
    fn default() -> Self {
        Self::new()
    }
}

/// An ASK query.
#[derive(Debug, Clone, PartialEq)]
pub struct AskQuery {
    /// Prefixes declared in the query.
    pub prefixes: PrefixMap,
    /// The WHERE pattern.
    pub pattern: GroupGraphPattern,
}

/// Any parsed query form.
#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    /// A SELECT query.
    Select(SelectQuery),
    /// An ASK query.
    Ask(AskQuery),
}

impl Query {
    /// Returns the SELECT query, if this is one.
    pub fn as_select(&self) -> Option<&SelectQuery> {
        match self {
            Query::Select(q) => Some(q),
            Query::Ask(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triple_pattern_variables() {
        let p = TriplePattern::new(
            VarOrTerm::var("obs"),
            rdf::vocab::qb::data_set(),
            VarOrTerm::iri("http://example.org/ds"),
        );
        let vars: Vec<&str> = p.variables().iter().map(|v| v.name()).collect();
        assert_eq!(vars, vec!["obs"]);
    }

    #[test]
    fn and_all_folds() {
        let e = Expression::and_all(vec![
            Expression::var("a"),
            Expression::var("b"),
            Expression::var("c"),
        ]);
        match e {
            Expression::And(left, right) => {
                assert!(matches!(*right, Expression::Var(ref v) if v.name() == "c"));
                assert!(matches!(*left, Expression::And(_, _)));
            }
            other => panic!("unexpected fold shape: {other:?}"),
        }
    }

    #[test]
    fn aggregate_detection() {
        let sum = Expression::Aggregate(AggregateExpr {
            function: AggregateFunction::Sum,
            distinct: false,
            expr: Some(Box::new(Expression::var("m"))),
        });
        assert!(sum.contains_aggregate());

        let mut q = SelectQuery::new();
        q.projection = Projection::Items(vec![SelectItem::Expr {
            expr: sum,
            alias: Variable::new("total"),
        }]);
        assert!(q.is_aggregated());

        let plain = SelectQuery::new();
        assert!(!plain.is_aggregated());
    }

    #[test]
    fn triple_pattern_count_recurses() {
        let mut inner = GroupGraphPattern::new();
        inner.push_triple(TriplePattern::new(
            VarOrTerm::var("s"),
            rdf::vocab::rdfs::label(),
            VarOrTerm::var("l"),
        ));
        let mut outer = GroupGraphPattern::new();
        outer.push_triple(TriplePattern::new(
            VarOrTerm::var("s"),
            rdf::vocab::rdf::type_(),
            VarOrTerm::var("t"),
        ));
        outer.elements.push(PatternElement::Optional(inner.clone()));
        outer
            .elements
            .push(PatternElement::Union(inner.clone(), inner));
        assert_eq!(outer.triple_pattern_count(), 4);
    }

    #[test]
    fn function_and_aggregate_name_parsing() {
        assert_eq!(Function::from_name("regex"), Some(Function::Regex));
        assert_eq!(Function::from_name("isUri"), Some(Function::IsIri));
        assert_eq!(Function::from_name("nope"), None);
        assert_eq!(AggregateFunction::from_name("sum"), Some(AggregateFunction::Sum));
        assert_eq!(AggregateFunction::from_name("median"), None);
    }

    #[test]
    fn output_variables() {
        let mut q = SelectQuery::new();
        assert_eq!(q.output_variables(), None);
        q.projection = Projection::Items(vec![
            SelectItem::Var(Variable::new("year")),
            SelectItem::Expr {
                expr: Expression::var("m"),
                alias: Variable::new("total"),
            },
        ]);
        let vars = q.output_variables().unwrap();
        assert_eq!(vars, vec![Variable::new("year"), Variable::new("total")]);
    }
}
