//! Order-independent numeric aggregation, shared by every engine that must
//! agree **bit-for-bit** on aggregate values.
//!
//! The SPARQL evaluator and the columnar cube engine both compute SUM and
//! AVG over the same multisets of values, but they visit the values in
//! different orders (SPARQL in solution order, the columnar scan in row or
//! chunk order, incremental maintenance in append order). Naive `f64`
//! accumulation makes the result depend on that order in the last ulp, so
//! it used to force the columnar engine to refuse float-measure deltas and
//! to keep its chunked scan integral-only. The types here remove the order
//! dependence at the root:
//!
//! * [`CompensatedSum`] keeps the running sum as a Shewchuk-style
//!   *expansion* — a short list of non-overlapping `f64` partials built
//!   from two-sum (Neumaier) steps whose exact sum equals the exact
//!   (infinite-precision) sum of every value added. [`CompensatedSum::value`]
//!   rounds that exact sum to the nearest `f64` once, so the result is the
//!   **correctly rounded exact sum**: it depends only on the multiset of
//!   inputs, never on the order they arrived in or how they were
//!   partitioned across threads (error ≤ 0.5 ulp; plain Neumaier
//!   summation alone would be within ~1 ulp but *not* order-independent).
//! * [`NumericSum`] adds the SPARQL engine's value model on top: integer
//!   inputs accumulate exactly in an `i128`, float inputs go through the
//!   compensated expansion, and [`NumericSum::sum_term`] applies the
//!   engine's SUM typing rules (integral inputs keep `xsd:integer` results
//!   where the engine historically kept them).
//!
//! Inputs must be finite (measure literals always are); behaviour on
//! infinities/NaN is unspecified. The order-independence guarantee also
//! assumes no intermediate overflow — i.e. the exact sum of every prefix,
//! in whatever order values arrive, stays within `f64` range — which holds
//! for any realistic statistical data.

use rdf::{Literal, Term};

/// An order-independent, correctly rounded `f64` accumulator.
///
/// See the [module docs](self) for the guarantee; the implementation
/// follows `math.fsum` (Shewchuk's grow-expansion over two-sum steps, with
/// the round-half-even correction on read-out).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CompensatedSum {
    /// Non-overlapping partials in increasing magnitude order; their exact
    /// sum is the exact sum of every value added so far.
    partials: Vec<f64>,
}

impl CompensatedSum {
    /// An empty sum (value `0.0`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one value to the exact running sum.
    pub fn add(&mut self, mut x: f64) {
        let mut kept = 0;
        for index in 0..self.partials.len() {
            let mut y = self.partials[index];
            if x.abs() < y.abs() {
                std::mem::swap(&mut x, &mut y);
            }
            // Two-sum: hi + lo == x + y exactly, |lo| ≤ ulp(hi)/2.
            let hi = x + y;
            let lo = y - (hi - x);
            if lo != 0.0 {
                self.partials[kept] = lo;
                kept += 1;
            }
            x = hi;
        }
        self.partials.truncate(kept);
        self.partials.push(x);
    }

    /// Adds an exact `i128` (used to fold an exact integer sub-sum into a
    /// float total): the integer is split into `f64`-exact chunks of 52
    /// bits, each scaled by an exact power of two.
    pub fn add_i128(&mut self, value: i128) {
        let negative = value < 0;
        let mut magnitude = value.unsigned_abs();
        let mut shift = 0i32;
        while magnitude != 0 {
            let chunk = (magnitude & ((1u128 << 52) - 1)) as f64;
            let scaled = chunk * (2f64).powi(shift);
            self.add(if negative { -scaled } else { scaled });
            magnitude >>= 52;
            shift += 52;
        }
    }

    /// Folds another accumulator in. Exact: the merged expansion represents
    /// the sum of both exact sums, so merging per-chunk accumulators from a
    /// partitioned scan yields the same [`CompensatedSum::value`] as one
    /// sequential pass, for any partitioning.
    pub fn merge(&mut self, other: &CompensatedSum) {
        for &partial in &other.partials {
            self.add(partial);
        }
    }

    /// The exact sum, rounded once to the nearest `f64` (ties to even).
    pub fn value(&self) -> f64 {
        let partials = &self.partials;
        let mut n = partials.len();
        if n == 0 {
            return 0.0;
        }
        n -= 1;
        let mut hi = partials[n];
        let mut lo = 0.0;
        while n > 0 {
            let x = hi;
            n -= 1;
            let y = partials[n];
            hi = x + y;
            let yr = hi - x;
            lo = y - yr;
            if lo != 0.0 {
                break;
            }
        }
        // Make round-half-even work across several partials: if the
        // discarded half-ulp is backed by further partials of the same
        // sign, the exact sum lies strictly beyond the halfway point.
        if n > 0 && ((lo < 0.0 && partials[n - 1] < 0.0) || (lo > 0.0 && partials[n - 1] > 0.0)) {
            let y = lo * 2.0;
            let x = hi + y;
            if y == x - hi {
                hi = x;
            }
        }
        hi
    }
}

/// A SUM/AVG accumulator with the SPARQL engine's value model and typing
/// rules, usable incrementally and mergeable across scan partitions.
///
/// Values are routed by how the engine reads the *literal*: a lexical form
/// that parses as `i64` (every canonical `xsd:integer`, but also e.g. the
/// canonical `xsd:double` form `"2"`) accumulates exactly in an `i128`;
/// everything else goes through the order-independent [`CompensatedSum`].
/// Both engines must route identically for the typing rules to agree —
/// [`NumericSum::add_term`] implements the literal-side routing, and the
/// columnar engine mirrors it per measure-vector variant.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NumericSum {
    /// Exact sum of the integer-routed inputs.
    int_sum: i128,
    /// Exact-rounded sum of the float-routed inputs.
    float_sum: CompensatedSum,
    /// True once any input took the float route.
    saw_float: bool,
    /// True while every input (either route) was an integral number — the
    /// condition under which the engine's SUM historically stayed
    /// `xsd:integer`.
    all_integral: bool,
}

impl NumericSum {
    /// An empty sum.
    pub fn new() -> Self {
        NumericSum {
            all_integral: true,
            ..Default::default()
        }
    }

    /// Accumulates an integer-routed value (exact).
    pub fn add_integer(&mut self, value: i64) {
        self.int_sum += value as i128;
    }

    /// Accumulates a float-routed value.
    pub fn add_float(&mut self, value: f64) {
        self.saw_float = true;
        if value.fract() != 0.0 {
            self.all_integral = false;
        }
        self.float_sum.add(value);
    }

    /// Accumulates a term the way the SPARQL engine reads it. Returns
    /// `false` (leaving the sum untouched) for non-numeric terms, on which
    /// the engine's aggregates error out.
    pub fn add_term(&mut self, term: &Term) -> bool {
        let Some(literal) = term.as_literal() else {
            return false;
        };
        match literal.as_integer() {
            Some(value) => self.add_integer(value),
            None => match literal.as_double() {
                Some(value) => self.add_float(value),
                None => return false,
            },
        }
        true
    }

    /// Folds another accumulator in (partitioned scans). Exact.
    pub fn merge(&mut self, other: &NumericSum) {
        self.int_sum += other.int_sum;
        self.float_sum.merge(&other.float_sum);
        self.saw_float |= other.saw_float;
        self.all_integral &= other.all_integral;
    }

    /// The total as an `f64`: the exact sum of both routes, correctly
    /// rounded once. Order- and partition-independent.
    pub fn value(&self) -> f64 {
        if !self.saw_float {
            return self.int_sum as f64;
        }
        if self.int_sum == 0 {
            return self.float_sum.value();
        }
        let mut total = self.float_sum.clone();
        total.add_i128(self.int_sum);
        total.value()
    }

    /// The SUM result with the engine's typing rules: a sum of exclusively
    /// integer-routed inputs stays an exact `xsd:integer` while it fits
    /// `i64`; a sum involving float-routed inputs stays `xsd:integer` when
    /// every input was integral and the total is within the exact range
    /// (the engine's historical `9.0e15` cutoff); everything else is an
    /// `xsd:decimal` of the correctly rounded total.
    pub fn sum_term(&self) -> Term {
        if !self.saw_float {
            if let Ok(value) = i64::try_from(self.int_sum) {
                return Term::Literal(Literal::integer(value));
            }
            return Term::Literal(Literal::decimal(self.value()));
        }
        let total = self.value();
        if self.all_integral && total.abs() < 9.0e15 {
            Term::Literal(Literal::integer(total as i64))
        } else {
            Term::Literal(Literal::decimal(total))
        }
    }
}

/// MIN with a deterministic signed-zero tie-break (`-0.0 < 0.0`):
/// `f64::min(-0.0, 0.0)` may return either operand, which would make the
/// winning value depend on scan order / chunk partitioning. Treating the
/// negative zero as strictly smaller matches the engine's term-level MIN,
/// which falls back to the lexical ordering (`"-0" < "0"`) when the
/// numeric comparison ties — so every consumer (the SPARQL aggregate path
/// and the columnar measure scan in `cubestore`) picks the same winning
/// term regardless of visit order.
#[inline]
pub fn float_min(a: f64, b: f64) -> f64 {
    if b < a || (b == a && b.is_sign_negative()) {
        b
    } else {
        a
    }
}

/// MAX with the mirror tie-break (`0.0 > -0.0`); see [`float_min`].
#[inline]
pub fn float_max(a: f64, b: f64) -> f64 {
    if b > a || (b == a && b.is_sign_positive()) {
        b
    } else {
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn fsum(values: &[f64]) -> f64 {
        let mut sum = CompensatedSum::new();
        for &v in values {
            sum.add(v);
        }
        sum.value()
    }

    #[test]
    fn float_min_max_break_signed_zero_ties_deterministically() {
        // Both argument orders must agree: `f64::min(-0.0, 0.0)` is allowed
        // to return either operand, which would leak visit order.
        for (a, b) in [(0.0f64, -0.0f64), (-0.0, 0.0)] {
            assert!(float_min(a, b).is_sign_negative());
            assert!(float_max(a, b).is_sign_positive());
        }
        // Plain ordering still wins over the tie-break.
        assert_eq!(float_min(1.0, -2.0), -2.0);
        assert_eq!(float_max(1.0, -2.0), 1.0);
        // Infinities and extremes pass through untouched.
        assert_eq!(float_max(f64::NEG_INFINITY, -0.0), -0.0);
        assert_eq!(float_min(f64::INFINITY, 0.5), 0.5);
        assert_eq!(float_max(f64::MAX, 1.0), f64::MAX);
        assert_eq!(float_min(-f64::MAX, f64::MAX), -f64::MAX);
        // Subnormals order correctly against zero and each other.
        let tiny = 5e-324f64;
        assert_eq!(float_min(tiny, 0.0), 0.0);
        assert_eq!(float_max(tiny, 0.0), tiny);
        assert_eq!(float_min(-tiny, tiny), -tiny);
        assert_eq!(float_max(-tiny, -0.0), -0.0);
    }

    #[test]
    fn float_min_max_are_merge_order_independent() {
        // Reducing a value set in any chunking / order must yield the same
        // bits — the property the columnar chunked scan relies on.
        let values = [0.0f64, -0.0, 5e-324, -5e-324, f64::MAX, -f64::MAX, 2.5];
        let reduce = |order: &[usize]| {
            let mut min = f64::INFINITY;
            let mut max = f64::NEG_INFINITY;
            for &i in order {
                min = float_min(min, values[i]);
                max = float_max(max, values[i]);
            }
            (min, max)
        };
        let forward: Vec<usize> = (0..values.len()).collect();
        let reverse: Vec<usize> = (0..values.len()).rev().collect();
        let rotated: Vec<usize> = (0..values.len()).map(|i| (i + 3) % values.len()).collect();
        let expected = reduce(&forward);
        for order in [&reverse, &rotated] {
            let got = reduce(order);
            assert_eq!(got.0.to_bits(), expected.0.to_bits());
            assert_eq!(got.1.to_bits(), expected.1.to_bits());
        }
        assert_eq!(expected.0.to_bits(), (-f64::MAX).to_bits());
        assert_eq!(expected.1.to_bits(), f64::MAX.to_bits());
    }

    #[test]
    fn adversarial_cancellation_is_exact() {
        // Naive left-to-right summation gets all of these wrong.
        assert_eq!(fsum(&[1e100, 1.0, -1e100]), 1.0);
        assert_eq!(fsum(&[1.0, 1e100, 1.0, -1e100]), 2.0);
        assert_eq!(fsum(&[1e16, 1.0, 1.0, 1.0, 1.0, -1e16]), 4.0);
        // Denormals survive.
        assert_eq!(fsum(&[5e-324, 5e-324, -5e-324]), 5e-324);
        // Alternating signs with a tiny residue: 500 × ((1e15 + 1) − 1e15).
        let mut values = Vec::new();
        for i in 0..1000 {
            values.push(if i % 2 == 0 { 1e15 + 1.0 } else { -1e15 });
        }
        assert_eq!(fsum(&values), 500.0);
    }

    #[test]
    fn signed_zeros_behave_like_ieee() {
        assert_eq!(fsum(&[]).to_bits(), 0f64.to_bits());
        assert_eq!(fsum(&[-0.0, -0.0]).to_bits(), (-0.0f64).to_bits());
        assert_eq!(fsum(&[-0.0, 0.0]).to_bits(), 0f64.to_bits());
        assert_eq!(fsum(&[1.0, -1.0]).to_bits(), 0f64.to_bits());
    }

    /// The exact reference: inputs are constructed as `k · 2⁻²⁰` with
    /// integer `k`, so the exact sum is `(Σk) · 2⁻²⁰` with `Σk` computed in
    /// `i128`; rounding `Σk` to `f64` and scaling by the exact power of two
    /// is the correctly rounded exact sum.
    fn scaled_reference(numerators: &[i128]) -> f64 {
        let total: i128 = numerators.iter().sum();
        (total as f64) * (2f64).powi(-20)
    }

    #[test]
    fn property_correctly_rounded_and_order_independent() {
        let mut rng = StdRng::seed_from_u64(0x5EED_F00D);
        for _ in 0..200 {
            let n = rng.gen_range(3..120usize);
            let mut numerators: Vec<i128> = Vec::with_capacity(n);
            for _ in 0..n {
                // Mix magnitudes over ~15 binary orders plus sign flips, so
                // partial sums cancel hard.
                let magnitude = rng.gen_range(0..50u32);
                let base: i64 = rng.gen_range(-(1i64 << 36)..(1i64 << 36));
                numerators.push((base as i128) << (magnitude % 15));
            }
            let values: Vec<f64> = numerators
                .iter()
                .map(|&k| (k as f64) * (2f64).powi(-20))
                .collect();
            // Every numerator is < 2^52, so each value is exact in f64.
            for (&k, &v) in numerators.iter().zip(&values) {
                assert_eq!((v * (2f64).powi(20)) as i128, k);
            }
            let reference = scaled_reference(&numerators);
            let forward = fsum(&values);
            assert_eq!(
                forward.to_bits(),
                reference.to_bits(),
                "compensated sum is not the correctly rounded exact sum"
            );

            // Shuffled orders: bit-identical.
            let mut shuffled = values.clone();
            for _ in 0..4 {
                for i in (1..shuffled.len()).rev() {
                    let j = rng.gen_range(0..=i);
                    shuffled.swap(i, j);
                }
                assert_eq!(fsum(&shuffled).to_bits(), reference.to_bits());
            }

            // Partitioned into 1/2/8 chunks and merged: bit-identical (the
            // multi-threaded scan's merge path).
            for chunks in [1usize, 2, 8] {
                let mut merged = CompensatedSum::new();
                for chunk in shuffled.chunks(shuffled.len().div_ceil(chunks)) {
                    let mut partial = CompensatedSum::new();
                    for &v in chunk {
                        partial.add(v);
                    }
                    merged.merge(&partial);
                }
                assert_eq!(merged.value().to_bits(), reference.to_bits());
            }
        }
    }

    #[test]
    fn add_i128_folds_exactly() {
        let mut sum = CompensatedSum::new();
        sum.add(0.5);
        sum.add_i128(i64::MAX as i128 * 3);
        let expected = ((i64::MAX as i128 * 3) as f64) + 0.5; // 0.5 vanishes in rounding
        assert_eq!(sum.value(), expected);
        let mut negative = CompensatedSum::new();
        negative.add_i128(-(1i128 << 100));
        assert_eq!(negative.value(), -((1i128 << 100) as f64));
        let mut zero = CompensatedSum::new();
        zero.add_i128(0);
        assert_eq!(zero.value(), 0.0);
    }

    #[test]
    fn numeric_sum_typing_rules() {
        // Pure integer inputs: exact xsd:integer over the full i64 range.
        let mut ints = NumericSum::new();
        ints.add_integer(i64::MAX);
        ints.add_integer(-7);
        ints.add_integer(7);
        assert_eq!(ints.sum_term(), Term::Literal(Literal::integer(i64::MAX)));

        // Integer overflow past i64 falls back to a rounded decimal.
        let mut overflow = NumericSum::new();
        overflow.add_integer(i64::MAX);
        overflow.add_integer(i64::MAX);
        assert_eq!(
            overflow.sum_term(),
            Term::Literal(Literal::decimal((i64::MAX as i128 * 2) as f64))
        );

        // Integral floats keep the engine's historical integer typing...
        let mut integral = NumericSum::new();
        integral.add_float(2.0);
        integral.add_float(3.0);
        assert_eq!(integral.sum_term(), Term::Literal(Literal::integer(5)));
        // ... while fractional floats produce decimals.
        let mut fractional = NumericSum::new();
        fractional.add_float(2.5);
        fractional.add_integer(1);
        assert_eq!(fractional.sum_term(), Term::Literal(Literal::decimal(3.5)));
        assert_eq!(fractional.value(), 3.5);

        // Integral floats beyond the exact range turn decimal.
        let mut huge = NumericSum::new();
        huge.add_float(9.0e15);
        huge.add_float(1.0);
        assert_eq!(
            huge.sum_term(),
            Term::Literal(Literal::decimal(9.0e15 + 1.0))
        );

        // Empty sum: integer zero (SPARQL's SUM over an empty group).
        assert_eq!(NumericSum::new().sum_term(), Term::Literal(Literal::integer(0)));
        assert_eq!(NumericSum::new().value(), 0.0);
    }

    #[test]
    fn term_routing_matches_the_engine() {
        let mut sum = NumericSum::new();
        assert!(sum.add_term(&Term::Literal(Literal::integer(2))));
        assert!(sum.add_term(&Term::Literal(Literal::decimal(0.5))));
        // Canonical xsd:double "2" parses as an integer, exactly like the
        // evaluator's `as_integer` read.
        assert!(sum.add_term(&Term::Literal(Literal::double(2.0))));
        assert_eq!(sum.value(), 4.5);
        assert!(!sum.add_term(&Term::iri("http://not-a-number")));
        assert!(!sum.add_term(&Term::Literal(Literal::string("nan"))));
        assert_eq!(sum.value(), 4.5, "rejected terms leave the sum untouched");
    }

    #[test]
    fn merge_is_partition_independent() {
        let mut rng = StdRng::seed_from_u64(0xACC);
        let values: Vec<f64> = (0..300)
            .map(|_| (rng.gen_range(-(1i64 << 40)..(1i64 << 40)) as f64) * (2f64).powi(-10))
            .collect();
        let mut sequential = NumericSum::new();
        for (i, &v) in values.iter().enumerate() {
            if i % 3 == 0 {
                sequential.add_integer(i as i64);
            }
            sequential.add_float(v);
        }
        for chunks in [2usize, 5, 8] {
            let mut merged = NumericSum::new();
            let size = values.len().div_ceil(chunks);
            for (chunk_index, chunk) in values.chunks(size).enumerate() {
                let mut partial = NumericSum::new();
                for (offset, &v) in chunk.iter().enumerate() {
                    let i = chunk_index * size + offset;
                    if i % 3 == 0 {
                        partial.add_integer(i as i64);
                    }
                    partial.add_float(v);
                }
                merged.merge(&partial);
            }
            assert_eq!(merged.value().to_bits(), sequential.value().to_bits());
            assert_eq!(merged.sum_term(), sequential.sum_term());
        }
    }
}
