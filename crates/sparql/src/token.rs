//! Tokenizer for the SPARQL subset.

use crate::error::SparqlError;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// A bare word: keyword, function name, `a`, `true`, `false`, ...
    Word(String),
    /// A variable `?name` or `$name` (name stored without the sigil).
    Var(String),
    /// `<...>` IRI reference (stored without the angle brackets).
    IriRef(String),
    /// `prefix:local` (prefix may be empty).
    PrefixedName(String, String),
    /// A string literal (unescaped).
    StringLit(String),
    /// `@lang` tag following a string literal.
    LangTag(String),
    /// A numeric literal in its lexical form plus whether it is integral.
    Number(String, bool),
    /// `^^` datatype marker.
    DatatypeMarker,
    /// A blank node label `_:x`.
    BlankLabel(String),
    /// Punctuation and operators.
    Punct(Punct),
}

/// Punctuation and operator tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Punct {
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `.`
    Dot,
    /// `,`
    Comma,
    /// `;`
    Semicolon,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Bang,
}

/// A token plus its source position (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub column: usize,
}

/// Tokenizes a SPARQL query string.
pub fn tokenize(input: &str) -> Result<Vec<Spanned>, SparqlError> {
    Lexer::new(input).run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: usize,
    column: usize,
    tokens: Vec<Spanned>,
}

impl Lexer {
    fn new(input: &str) -> Self {
        Lexer {
            chars: input.chars().collect(),
            pos: 0,
            line: 1,
            column: 1,
            tokens: Vec::new(),
        }
    }

    fn error(&self, message: impl Into<String>) -> SparqlError {
        SparqlError::parse(self.line, self.column, message)
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek_at(&self, offset: usize) -> Option<char> {
        self.chars.get(self.pos + offset).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.column = 1;
        } else {
            self.column += 1;
        }
        Some(c)
    }

    fn push(&mut self, token: Token, line: usize, column: usize) {
        self.tokens.push(Spanned { token, line, column });
    }

    fn run(mut self) -> Result<Vec<Spanned>, SparqlError> {
        loop {
            self.skip_ws();
            let (line, column) = (self.line, self.column);
            let Some(c) = self.peek() else { break };
            match c {
                '{' => {
                    self.bump();
                    self.push(Token::Punct(Punct::LBrace), line, column);
                }
                '}' => {
                    self.bump();
                    self.push(Token::Punct(Punct::RBrace), line, column);
                }
                '(' => {
                    self.bump();
                    self.push(Token::Punct(Punct::LParen), line, column);
                }
                ')' => {
                    self.bump();
                    self.push(Token::Punct(Punct::RParen), line, column);
                }
                ',' => {
                    self.bump();
                    self.push(Token::Punct(Punct::Comma), line, column);
                }
                ';' => {
                    self.bump();
                    self.push(Token::Punct(Punct::Semicolon), line, column);
                }
                '*' => {
                    self.bump();
                    self.push(Token::Punct(Punct::Star), line, column);
                }
                '/' => {
                    self.bump();
                    self.push(Token::Punct(Punct::Slash), line, column);
                }
                '+' => {
                    self.bump();
                    self.push(Token::Punct(Punct::Plus), line, column);
                }
                '-' => {
                    self.bump();
                    self.push(Token::Punct(Punct::Minus), line, column);
                }
                '=' => {
                    self.bump();
                    self.push(Token::Punct(Punct::Eq), line, column);
                }
                '!' => {
                    self.bump();
                    if self.peek() == Some('=') {
                        self.bump();
                        self.push(Token::Punct(Punct::Ne), line, column);
                    } else {
                        self.push(Token::Punct(Punct::Bang), line, column);
                    }
                }
                '&' => {
                    self.bump();
                    if self.peek() == Some('&') {
                        self.bump();
                        self.push(Token::Punct(Punct::AndAnd), line, column);
                    } else {
                        return Err(self.error("expected '&&'"));
                    }
                }
                '|' => {
                    self.bump();
                    if self.peek() == Some('|') {
                        self.bump();
                        self.push(Token::Punct(Punct::OrOr), line, column);
                    } else {
                        return Err(self.error("expected '||'"));
                    }
                }
                '^' => {
                    self.bump();
                    if self.peek() == Some('^') {
                        self.bump();
                        self.push(Token::DatatypeMarker, line, column);
                    } else {
                        return Err(self.error("expected '^^'"));
                    }
                }
                '.' => {
                    self.bump();
                    self.push(Token::Punct(Punct::Dot), line, column);
                }
                '<' => {
                    if self.looks_like_iri_ref() {
                        let iri = self.read_iri_ref()?;
                        self.push(Token::IriRef(iri), line, column);
                    } else {
                        self.bump();
                        if self.peek() == Some('=') {
                            self.bump();
                            self.push(Token::Punct(Punct::Le), line, column);
                        } else {
                            self.push(Token::Punct(Punct::Lt), line, column);
                        }
                    }
                }
                '>' => {
                    self.bump();
                    if self.peek() == Some('=') {
                        self.bump();
                        self.push(Token::Punct(Punct::Ge), line, column);
                    } else {
                        self.push(Token::Punct(Punct::Gt), line, column);
                    }
                }
                '?' | '$' => {
                    self.bump();
                    let name = self.read_name();
                    if name.is_empty() {
                        return Err(self.error("empty variable name"));
                    }
                    self.push(Token::Var(name), line, column);
                }
                '"' | '\'' => {
                    let s = self.read_string(c)?;
                    self.push(Token::StringLit(s), line, column);
                }
                '@' => {
                    self.bump();
                    let lang = self.read_while(|c| c.is_ascii_alphanumeric() || c == '-');
                    if lang.is_empty() {
                        return Err(self.error("empty language tag"));
                    }
                    self.push(Token::LangTag(lang), line, column);
                }
                '_' if self.peek_at(1) == Some(':') => {
                    self.bump();
                    self.bump();
                    let label = self.read_name();
                    self.push(Token::BlankLabel(label), line, column);
                }
                c if c.is_ascii_digit() => {
                    let (text, integral) = self.read_number();
                    self.push(Token::Number(text, integral), line, column);
                }
                c if c.is_alphabetic() || c == '_' => {
                    let word = self.read_while(|c| c.is_alphanumeric() || c == '_' || c == '-');
                    if self.peek() == Some(':') {
                        self.bump();
                        let local = self.read_local_name();
                        self.push(Token::PrefixedName(word, local), line, column);
                    } else {
                        self.push(Token::Word(word), line, column);
                    }
                }
                ':' => {
                    // Prefixed name with the empty prefix.
                    self.bump();
                    let local = self.read_local_name();
                    self.push(Token::PrefixedName(String::new(), local), line, column);
                }
                other => return Err(self.error(format!("unexpected character '{other}'"))),
            }
        }
        Ok(self.tokens)
    }

    fn skip_ws(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('#') => {
                    while let Some(c) = self.peek() {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => break,
            }
        }
    }

    /// Heuristic: `<` starts an IRI reference if a matching `>` appears
    /// before any whitespace.
    fn looks_like_iri_ref(&self) -> bool {
        let mut offset = 1;
        while let Some(c) = self.peek_at(offset) {
            if c == '>' {
                return true;
            }
            if c.is_whitespace() || c == '<' {
                return false;
            }
            offset += 1;
        }
        false
    }

    fn read_iri_ref(&mut self) -> Result<String, SparqlError> {
        self.bump(); // '<'
        let mut iri = String::new();
        loop {
            match self.bump() {
                Some('>') => return Ok(iri),
                Some(c) if c.is_whitespace() => return Err(self.error("whitespace inside IRI")),
                Some(c) => iri.push(c),
                None => return Err(self.error("unterminated IRI reference")),
            }
        }
    }

    fn read_string(&mut self, quote: char) -> Result<String, SparqlError> {
        self.bump(); // opening quote
        let mut out = String::new();
        loop {
            match self.bump() {
                Some(c) if c == quote => return Ok(out),
                Some('\\') => match self.bump() {
                    Some('n') => out.push('\n'),
                    Some('t') => out.push('\t'),
                    Some('r') => out.push('\r'),
                    Some('"') => out.push('"'),
                    Some('\'') => out.push('\''),
                    Some('\\') => out.push('\\'),
                    Some(c) => return Err(self.error(format!("invalid escape '\\{c}'"))),
                    None => return Err(self.error("unterminated string")),
                },
                Some(c) => out.push(c),
                None => return Err(self.error("unterminated string")),
            }
        }
    }

    fn read_number(&mut self) -> (String, bool) {
        let mut text = String::new();
        let mut integral = true;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() {
                text.push(c);
                self.bump();
            } else if c == '.' && self.peek_at(1).map(|d| d.is_ascii_digit()).unwrap_or(false) {
                integral = false;
                text.push(c);
                self.bump();
            } else if (c == 'e' || c == 'E')
                && self
                    .peek_at(1)
                    .map(|d| d.is_ascii_digit() || d == '+' || d == '-')
                    .unwrap_or(false)
            {
                integral = false;
                text.push(c);
                self.bump();
                if matches!(self.peek(), Some('+') | Some('-')) {
                    text.push(self.bump().expect("sign"));
                }
            } else {
                break;
            }
        }
        (text, integral)
    }

    fn read_name(&mut self) -> String {
        self.read_while(|c| c.is_alphanumeric() || c == '_')
    }

    fn read_local_name(&mut self) -> String {
        let raw = self.read_while(|c| {
            c.is_alphanumeric() || c == '_' || c == '-' || c == '.' || c == '%' || c == '+'
        });
        let trimmed = raw.trim_end_matches('.');
        let dots = raw.len() - trimmed.len();
        self.pos -= dots;
        self.column = self.column.saturating_sub(dots);
        trimmed.to_string()
    }

    fn read_while(&mut self, pred: impl Fn(char) -> bool) -> String {
        let mut out = String::new();
        while let Some(c) = self.peek() {
            if pred(c) {
                out.push(c);
                self.bump();
            } else {
                break;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(input: &str) -> Vec<Token> {
        tokenize(input).unwrap().into_iter().map(|s| s.token).collect()
    }

    #[test]
    fn tokenize_basic_select() {
        let t = toks("SELECT ?x WHERE { ?x a <http://example.org/C> . }");
        assert_eq!(t[0], Token::Word("SELECT".into()));
        assert_eq!(t[1], Token::Var("x".into()));
        assert!(t.contains(&Token::IriRef("http://example.org/C".into())));
        assert!(t.contains(&Token::Punct(Punct::LBrace)));
        assert!(t.contains(&Token::Punct(Punct::Dot)));
    }

    #[test]
    fn tokenize_prefixed_names_and_strings() {
        let t = toks("qb:DataSet schema:continentName \"Africa\"@en 'x' \"5\"^^xsd:integer");
        assert_eq!(t[0], Token::PrefixedName("qb".into(), "DataSet".into()));
        assert_eq!(
            t[1],
            Token::PrefixedName("schema".into(), "continentName".into())
        );
        assert_eq!(t[2], Token::StringLit("Africa".into()));
        assert_eq!(t[3], Token::LangTag("en".into()));
        assert_eq!(t[4], Token::StringLit("x".into()));
        assert_eq!(t[5], Token::StringLit("5".into()));
        assert_eq!(t[6], Token::DatatypeMarker);
        assert_eq!(t[7], Token::PrefixedName("xsd".into(), "integer".into()));
    }

    #[test]
    fn tokenize_comparison_vs_iri() {
        let t = toks("FILTER(?v < 10 && ?w >= 2)");
        assert!(t.contains(&Token::Punct(Punct::Lt)));
        assert!(t.contains(&Token::Punct(Punct::Ge)));
        assert!(t.contains(&Token::Punct(Punct::AndAnd)));

        let t2 = toks("?s <http://p> ?o");
        assert!(t2.contains(&Token::IriRef("http://p".into())));
    }

    #[test]
    fn tokenize_numbers() {
        let t = toks("42 3.25 1e3");
        assert_eq!(t[0], Token::Number("42".into(), true));
        assert_eq!(t[1], Token::Number("3.25".into(), false));
        assert_eq!(t[2], Token::Number("1e3".into(), false));
    }

    #[test]
    fn tokenize_comments() {
        let t = toks("SELECT ?x # comment with < and ?\nWHERE { }");
        assert_eq!(t.len(), 5);
    }

    #[test]
    fn tokenize_blank_and_empty_prefix() {
        let t = toks("_:b1 :local");
        assert_eq!(t[0], Token::BlankLabel("b1".into()));
        assert_eq!(t[1], Token::PrefixedName(String::new(), "local".into()));
    }

    #[test]
    fn tokenize_errors() {
        assert!(tokenize("\"unterminated").is_err());
        assert!(tokenize("& x").is_err());
        assert!(tokenize("? ").is_err());
    }

    #[test]
    fn local_name_keeps_statement_dot() {
        let t = toks("ex:thing.");
        assert_eq!(t[0], Token::PrefixedName("ex".into(), "thing".into()));
        assert_eq!(t[1], Token::Punct(Punct::Dot));
    }
}
