//! The query evaluator: executes parsed queries against an [`rdf::Graph`].
//!
//! Evaluation is a straightforward pipeline of index nested-loop joins over
//! the graph's SPO/POS/OSP indexes, followed by filtering, grouping /
//! aggregation and solution modifiers. This is sufficient for the workloads
//! QB2OLAP generates (star-shaped observation joins plus roll-up navigation
//! joins and a final GROUP BY).

use std::collections::{BTreeMap, HashMap};

use rdf::{Graph, Iri, Literal, Term};

use crate::ast::*;
use crate::error::SparqlError;
use crate::results::{QueryResults, Solutions};

/// Evaluates any query form against a graph.
pub fn evaluate_query(graph: &Graph, query: &Query) -> Result<QueryResults, SparqlError> {
    match query {
        Query::Select(q) => Ok(QueryResults::Solutions(evaluate_select(graph, q)?)),
        Query::Ask(q) => {
            let mut ev = Evaluator::new(graph);
            let rows = ev.eval_group(&q.pattern, vec![Vec::new()])?;
            Ok(QueryResults::Boolean(!rows.is_empty()))
        }
    }
}

/// Evaluates a SELECT query against a graph.
pub fn evaluate_select(graph: &Graph, query: &SelectQuery) -> Result<Solutions, SparqlError> {
    Evaluator::new(graph).run_select(query)
}

/// A partial solution: one entry per registered variable (None = unbound).
type Row = Vec<Option<Term>>;

struct Evaluator<'g> {
    graph: &'g Graph,
    vars: Vec<String>,
    var_index: HashMap<String, usize>,
}

impl<'g> Evaluator<'g> {
    fn new(graph: &'g Graph) -> Self {
        Evaluator {
            graph,
            vars: Vec::new(),
            var_index: HashMap::new(),
        }
    }

    fn var_id(&mut self, name: &str) -> usize {
        if let Some(&id) = self.var_index.get(name) {
            return id;
        }
        let id = self.vars.len();
        self.vars.push(name.to_string());
        self.var_index.insert(name.to_string(), id);
        id
    }

    fn lookup<'r>(&self, row: &'r Row, name: &str) -> Option<&'r Term> {
        let id = *self.var_index.get(name)?;
        row.get(id)?.as_ref()
    }

    fn bind(row: &mut Row, id: usize, term: Term) {
        if row.len() <= id {
            row.resize(id + 1, None);
        }
        row[id] = Some(term);
    }

    // ---- SELECT pipeline -------------------------------------------------

    fn run_select(&mut self, query: &SelectQuery) -> Result<Solutions, SparqlError> {
        let rows = self.eval_group(&query.pattern, vec![Vec::new()])?;

        let (mut solution_rows, out_vars) = if query.is_aggregated() {
            self.aggregate(query, rows)?
        } else {
            self.project_plain(query, rows)?
        };

        // DISTINCT on the projected values.
        if query.distinct {
            let ids: Vec<usize> = out_vars.iter().map(|v| self.var_id(v.name())).collect();
            let mut seen = std::collections::BTreeSet::new();
            solution_rows.retain(|row| {
                let key: Vec<Option<Term>> =
                    ids.iter().map(|&i| row.get(i).cloned().flatten()).collect();
                seen.insert(key)
            });
        }

        // ORDER BY.
        if !query.order_by.is_empty() {
            // One sort key per ORDER BY condition: the evaluated expression
            // plus its direction flag.
            type SortKeys = Vec<(Option<Term>, bool)>;
            let mut keyed: Vec<(SortKeys, Row)> = solution_rows
                .into_iter()
                .map(|row| {
                    let keys = query
                        .order_by
                        .iter()
                        .map(|cond| (self.eval_expr(&cond.expr, &row), cond.descending))
                        .collect::<Vec<_>>();
                    (keys, row)
                })
                .collect();
            keyed.sort_by(|(ka, _), (kb, _)| {
                for ((va, desc), (vb, _)) in ka.iter().zip(kb.iter()) {
                    let ord = compare_for_order(va.as_ref(), vb.as_ref());
                    let ord = if *desc { ord.reverse() } else { ord };
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
            solution_rows = keyed.into_iter().map(|(_, row)| row).collect();
        }

        // OFFSET / LIMIT.
        let offset = query.offset.unwrap_or(0);
        if offset > 0 {
            solution_rows = solution_rows.into_iter().skip(offset).collect();
        }
        if let Some(limit) = query.limit {
            solution_rows.truncate(limit);
        }

        // Final projection to the output width.
        let ids: Vec<usize> = out_vars.iter().map(|v| self.var_id(v.name())).collect();
        let rows = solution_rows
            .into_iter()
            .map(|row| ids.iter().map(|&i| row.get(i).cloned().flatten()).collect())
            .collect();
        Ok(Solutions {
            variables: out_vars,
            rows,
        })
    }

    /// Projection of a non-aggregated query: binds expression aliases into
    /// the rows and determines the output variable list.
    fn project_plain(
        &mut self,
        query: &SelectQuery,
        mut rows: Vec<Row>,
    ) -> Result<(Vec<Row>, Vec<Variable>), SparqlError> {
        match &query.projection {
            Projection::Wildcard => {
                let out_vars = self.vars.iter().map(|v| Variable::new(v.clone())).collect();
                Ok((rows, out_vars))
            }
            Projection::Items(items) => {
                let mut out_vars = Vec::with_capacity(items.len());
                for item in items {
                    match item {
                        SelectItem::Var(v) => {
                            self.var_id(v.name());
                            out_vars.push(v.clone());
                        }
                        SelectItem::Expr { expr, alias } => {
                            let alias_id = self.var_id(alias.name());
                            for row in rows.iter_mut() {
                                if let Some(value) = self.eval_expr(expr, row) {
                                    Self::bind(row, alias_id, value);
                                }
                            }
                            out_vars.push(alias.clone());
                        }
                    }
                }
                Ok((rows, out_vars))
            }
        }
    }

    /// Grouping and aggregation.
    fn aggregate(
        &mut self,
        query: &SelectQuery,
        rows: Vec<Row>,
    ) -> Result<(Vec<Row>, Vec<Variable>), SparqlError> {
        let items = match &query.projection {
            Projection::Items(items) => items.clone(),
            Projection::Wildcard => {
                return Err(SparqlError::unsupported(
                    "SELECT * cannot be combined with GROUP BY / aggregates",
                ))
            }
        };

        // Partition rows into groups keyed by the GROUP BY expressions.
        let mut groups: BTreeMap<Vec<Option<Term>>, Vec<Row>> = BTreeMap::new();
        if query.group_by.is_empty() {
            // Implicit single group (possibly empty).
            groups.insert(Vec::new(), rows);
        } else {
            for row in rows {
                let key: Vec<Option<Term>> = query
                    .group_by
                    .iter()
                    .map(|e| self.eval_expr(e, &row))
                    .collect();
                groups.entry(key).or_default().push(row);
            }
        }

        let mut out_vars = Vec::with_capacity(items.len());
        for item in &items {
            out_vars.push(item.output_variable().clone());
        }
        let out_ids: Vec<usize> = out_vars.iter().map(|v| self.var_id(v.name())).collect();

        let mut result_rows = Vec::with_capacity(groups.len());
        'groups: for (_key, group_rows) in groups {
            let sample_row: Row = group_rows.first().cloned().unwrap_or_default();

            // HAVING.
            for having in &query.having {
                let value = self.eval_grouped_expr(having, &group_rows, &sample_row);
                if !matches!(value.as_ref().and_then(effective_boolean), Some(true)) {
                    continue 'groups;
                }
            }

            let mut out_row: Row = Vec::new();
            for (item, &id) in items.iter().zip(&out_ids) {
                let value = match item {
                    SelectItem::Var(v) => self.lookup(&sample_row, v.name()).cloned(),
                    SelectItem::Expr { expr, .. } => {
                        self.eval_grouped_expr(expr, &group_rows, &sample_row)
                    }
                };
                if let Some(value) = value {
                    Self::bind(&mut out_row, id, value);
                }
            }
            result_rows.push(out_row);
        }
        Ok((result_rows, out_vars))
    }

    // ---- graph pattern evaluation -----------------------------------------

    fn eval_group(
        &mut self,
        group: &GroupGraphPattern,
        input: Vec<Row>,
    ) -> Result<Vec<Row>, SparqlError> {
        let mut rows = input;
        let mut filters: Vec<&Expression> = Vec::new();

        for element in &group.elements {
            match element {
                PatternElement::Triple(pattern) => {
                    rows = self.eval_triple(pattern, rows);
                }
                PatternElement::Filter(expr) => {
                    filters.push(expr);
                }
                PatternElement::Optional(inner) => {
                    let mut next = Vec::with_capacity(rows.len());
                    for row in rows {
                        let extended = self.eval_group(inner, vec![row.clone()])?;
                        if extended.is_empty() {
                            next.push(row);
                        } else {
                            next.extend(extended);
                        }
                    }
                    rows = next;
                }
                PatternElement::Union(left, right) => {
                    let mut combined = self.eval_group(left, rows.clone())?;
                    combined.extend(self.eval_group(right, rows)?);
                    rows = combined;
                }
                PatternElement::Minus(inner) => {
                    let right_rows = self.eval_group(inner, vec![Vec::new()])?;
                    rows.retain(|row| {
                        !right_rows.iter().any(|r| {
                            let mut shares_var = false;
                            let compatible = (0..self.vars.len()).all(|i| {
                                let a = row.get(i).and_then(Option::as_ref);
                                let b = r.get(i).and_then(Option::as_ref);
                                match (a, b) {
                                    (Some(a), Some(b)) => {
                                        shares_var = true;
                                        a == b
                                    }
                                    _ => true,
                                }
                            });
                            compatible && shares_var
                        })
                    });
                }
                PatternElement::Bind { expr, var } => {
                    let id = self.var_id(var.name());
                    for row in rows.iter_mut() {
                        if let Some(value) = self.eval_expr(expr, row) {
                            Self::bind(row, id, value);
                        }
                    }
                }
                PatternElement::Values { vars, rows: value_rows } => {
                    let ids: Vec<usize> = vars.iter().map(|v| self.var_id(v.name())).collect();
                    let mut next = Vec::new();
                    for row in &rows {
                        for value_row in value_rows {
                            let mut merged = row.clone();
                            let mut compatible = true;
                            for (&id, value) in ids.iter().zip(value_row) {
                                if let Some(term) = value {
                                    match merged.get(id).and_then(Option::as_ref) {
                                        Some(existing) if existing != term => {
                                            compatible = false;
                                            break;
                                        }
                                        _ => Self::bind(&mut merged, id, term.clone()),
                                    }
                                }
                            }
                            if compatible {
                                next.push(merged);
                            }
                        }
                    }
                    rows = next;
                }
                PatternElement::SubSelect(sub) => {
                    let solutions = evaluate_select(self.graph, sub)?;
                    let ids: Vec<usize> = solutions
                        .variables
                        .iter()
                        .map(|v| self.var_id(v.name()))
                        .collect();
                    let mut next = Vec::new();
                    for row in &rows {
                        for sub_row in &solutions.rows {
                            let mut merged = row.clone();
                            let mut compatible = true;
                            for (&id, value) in ids.iter().zip(sub_row) {
                                if let Some(term) = value {
                                    match merged.get(id).and_then(Option::as_ref) {
                                        Some(existing) if existing != term => {
                                            compatible = false;
                                            break;
                                        }
                                        _ => Self::bind(&mut merged, id, term.clone()),
                                    }
                                }
                            }
                            if compatible {
                                next.push(merged);
                            }
                        }
                    }
                    rows = next;
                }
                PatternElement::Group(inner) => {
                    rows = self.eval_group(inner, rows)?;
                }
            }
        }

        // Apply the group's filters over its final rows. Filters are
        // evaluated with EXISTS support, so this goes through `eval_expr`.
        for filter in filters {
            let mut kept = Vec::with_capacity(rows.len());
            for row in rows {
                let keep = matches!(
                    self.eval_expr(filter, &row).as_ref().and_then(effective_boolean),
                    Some(true)
                );
                if keep {
                    kept.push(row);
                }
            }
            rows = kept;
        }
        Ok(rows)
    }

    fn eval_triple(&mut self, pattern: &TriplePattern, rows: Vec<Row>) -> Vec<Row> {
        let subject_id = match &pattern.subject {
            VarOrTerm::Var(v) => Some(self.var_id(v.name())),
            VarOrTerm::Term(_) => None,
        };
        let predicate_id = match &pattern.predicate {
            VarOrIri::Var(v) => Some(self.var_id(v.name())),
            VarOrIri::Iri(_) => None,
        };
        let object_id = match &pattern.object {
            VarOrTerm::Var(v) => Some(self.var_id(v.name())),
            VarOrTerm::Term(_) => None,
        };

        let mut out = Vec::new();
        for row in rows {
            // Resolve each position to a concrete term if bound.
            let subject = match &pattern.subject {
                VarOrTerm::Term(t) => Some(t.clone()),
                VarOrTerm::Var(_) => subject_id.and_then(|id| row.get(id).cloned().flatten()),
            };
            let predicate: Option<Iri> = match &pattern.predicate {
                VarOrIri::Iri(iri) => Some(iri.clone()),
                VarOrIri::Var(_) => {
                    match predicate_id.and_then(|id| row.get(id).cloned().flatten()) {
                        Some(Term::Iri(iri)) => Some(iri),
                        Some(_) => {
                            // A non-IRI bound to a predicate variable can never match.
                            continue;
                        }
                        None => None,
                    }
                }
            };
            let object = match &pattern.object {
                VarOrTerm::Term(t) => Some(t.clone()),
                VarOrTerm::Var(_) => object_id.and_then(|id| row.get(id).cloned().flatten()),
            };

            let matches =
                self.graph
                    .triples_matching(subject.as_ref(), predicate.as_ref(), object.as_ref());
            for triple in matches {
                let mut new_row = row.clone();
                let mut ok = true;
                if let (Some(id), VarOrTerm::Var(_)) = (subject_id, &pattern.subject) {
                    ok &= Self::bind_checked(&mut new_row, id, triple.subject.clone());
                }
                if let (Some(id), VarOrIri::Var(_)) = (predicate_id, &pattern.predicate) {
                    ok &= Self::bind_checked(&mut new_row, id, Term::Iri(triple.predicate.clone()));
                }
                if let (Some(id), VarOrTerm::Var(_)) = (object_id, &pattern.object) {
                    ok &= Self::bind_checked(&mut new_row, id, triple.object.clone());
                }
                if ok {
                    out.push(new_row);
                }
            }
        }
        out
    }

    /// Binds `term` to variable `id`, returning false if the row already has
    /// an incompatible binding (needed when a variable repeats in a pattern).
    fn bind_checked(row: &mut Row, id: usize, term: Term) -> bool {
        match row.get(id).and_then(Option::as_ref) {
            Some(existing) => *existing == term,
            None => {
                Self::bind(row, id, term);
                true
            }
        }
    }

    // ---- expression evaluation --------------------------------------------

    /// Expression evaluation that may register new variables (EXISTS bodies).
    fn eval_expr(&mut self, expr: &Expression, row: &Row) -> Option<Term> {
        match expr {
            Expression::Exists(pattern) => {
                let rows = self.eval_group(pattern, vec![row.clone()]).ok()?;
                Some(Term::Literal(Literal::boolean(!rows.is_empty())))
            }
            Expression::NotExists(pattern) => {
                let rows = self.eval_group(pattern, vec![row.clone()]).ok()?;
                Some(Term::Literal(Literal::boolean(rows.is_empty())))
            }
            _ => self.eval_expr_immutable(expr, row),
        }
    }

    /// Expression evaluation without EXISTS support (no mutation needed).
    fn eval_expr_immutable(&self, expr: &Expression, row: &Row) -> Option<Term> {
        match expr {
            Expression::Var(v) => self.lookup(row, v.name()).cloned(),
            Expression::Constant(t) => Some(t.clone()),
            Expression::Not(inner) => {
                let b = effective_boolean(&self.eval_expr_immutable(inner, row)?)?;
                Some(Term::Literal(Literal::boolean(!b)))
            }
            Expression::And(a, b) => {
                let va = self
                    .eval_expr_immutable(a, row)
                    .as_ref()
                    .and_then(effective_boolean);
                let vb = self
                    .eval_expr_immutable(b, row)
                    .as_ref()
                    .and_then(effective_boolean);
                match (va, vb) {
                    (Some(false), _) | (_, Some(false)) => {
                        Some(Term::Literal(Literal::boolean(false)))
                    }
                    (Some(true), Some(true)) => Some(Term::Literal(Literal::boolean(true))),
                    _ => None,
                }
            }
            Expression::Or(a, b) => {
                let va = self
                    .eval_expr_immutable(a, row)
                    .as_ref()
                    .and_then(effective_boolean);
                let vb = self
                    .eval_expr_immutable(b, row)
                    .as_ref()
                    .and_then(effective_boolean);
                match (va, vb) {
                    (Some(true), _) | (_, Some(true)) => {
                        Some(Term::Literal(Literal::boolean(true)))
                    }
                    (Some(false), Some(false)) => Some(Term::Literal(Literal::boolean(false))),
                    _ => None,
                }
            }
            Expression::Compare(a, op, b) => {
                let va = self.eval_expr_immutable(a, row)?;
                let vb = self.eval_expr_immutable(b, row)?;
                compare_terms(&va, *op, &vb).map(|b| Term::Literal(Literal::boolean(b)))
            }
            Expression::Arithmetic(a, op, b) => {
                let va = numeric_value(&self.eval_expr_immutable(a, row)?)?;
                let vb = numeric_value(&self.eval_expr_immutable(b, row)?)?;
                let result = match op {
                    ArithOp::Add => va + vb,
                    ArithOp::Sub => va - vb,
                    ArithOp::Mul => va * vb,
                    ArithOp::Div => {
                        if vb == 0.0 {
                            return None;
                        }
                        va / vb
                    }
                };
                Some(number_term(result))
            }
            Expression::Neg(inner) => {
                let v = numeric_value(&self.eval_expr_immutable(inner, row)?)?;
                Some(number_term(-v))
            }
            Expression::Call(function, args) => self.eval_function(*function, args, row),
            Expression::Aggregate(_) => None,
            Expression::In(needle, haystack) => {
                let v = self.eval_expr_immutable(needle, row)?;
                for candidate in haystack {
                    if let Some(c) = self.eval_expr_immutable(candidate, row) {
                        if compare_terms(&v, CmpOp::Eq, &c) == Some(true) {
                            return Some(Term::Literal(Literal::boolean(true)));
                        }
                    }
                }
                Some(Term::Literal(Literal::boolean(false)))
            }
            Expression::Exists(_) | Expression::NotExists(_) => None,
        }
    }

    fn eval_function(&self, function: Function, args: &[Expression], row: &Row) -> Option<Term> {
        let arg = |i: usize| -> Option<Term> {
            args.get(i).and_then(|e| self.eval_expr_immutable(e, row))
        };
        match function {
            Function::Bound => match args.first() {
                Some(Expression::Var(v)) => Some(Term::Literal(Literal::boolean(
                    self.lookup(row, v.name()).is_some(),
                ))),
                _ => None,
            },
            Function::Str => Some(Term::Literal(Literal::string(term_string(&arg(0)?)))),
            Function::Lang => match arg(0)? {
                Term::Literal(lit) => Some(Term::Literal(Literal::string(
                    lit.language().unwrap_or(""),
                ))),
                _ => None,
            },
            Function::Datatype => match arg(0)? {
                Term::Literal(lit) => Some(Term::Iri(lit.datatype().clone())),
                _ => None,
            },
            Function::IsIri => Some(Term::Literal(Literal::boolean(arg(0)?.is_iri()))),
            Function::IsLiteral => Some(Term::Literal(Literal::boolean(arg(0)?.is_literal()))),
            Function::IsBlank => Some(Term::Literal(Literal::boolean(arg(0)?.is_blank()))),
            Function::Regex => {
                let text = term_string(&arg(0)?);
                let pattern = term_string(&arg(1)?);
                let case_insensitive = args
                    .get(2)
                    .and_then(|e| self.eval_expr_immutable(e, row))
                    .map(|t| term_string(&t).contains('i'))
                    .unwrap_or(false);
                let (text, pattern) = if case_insensitive {
                    (text.to_lowercase(), pattern.to_lowercase())
                } else {
                    (text, pattern)
                };
                Some(Term::Literal(Literal::boolean(regex_like_match(
                    &text, &pattern,
                ))))
            }
            Function::Contains => Some(Term::Literal(Literal::boolean(
                term_string(&arg(0)?).contains(&term_string(&arg(1)?)),
            ))),
            Function::StrStarts => Some(Term::Literal(Literal::boolean(
                term_string(&arg(0)?).starts_with(&term_string(&arg(1)?)),
            ))),
            Function::StrEnds => Some(Term::Literal(Literal::boolean(
                term_string(&arg(0)?).ends_with(&term_string(&arg(1)?)),
            ))),
            Function::UCase => Some(Term::Literal(Literal::string(
                term_string(&arg(0)?).to_uppercase(),
            ))),
            Function::LCase => Some(Term::Literal(Literal::string(
                term_string(&arg(0)?).to_lowercase(),
            ))),
            Function::StrLen => Some(Term::Literal(Literal::integer(
                term_string(&arg(0)?).chars().count() as i64,
            ))),
            Function::Concat => {
                let mut out = String::new();
                for e in args {
                    out.push_str(&term_string(&self.eval_expr_immutable(e, row)?));
                }
                Some(Term::Literal(Literal::string(out)))
            }
            Function::Abs => Some(number_term(numeric_value(&arg(0)?)?.abs())),
            Function::Year => {
                let s = term_string(&arg(0)?);
                s.get(0..4)?.parse::<i64>().ok().map(|y| Term::Literal(Literal::integer(y)))
            }
            Function::Month => {
                let s = term_string(&arg(0)?);
                s.get(5..7)?.parse::<i64>().ok().map(|m| Term::Literal(Literal::integer(m)))
            }
            Function::If => {
                let cond = effective_boolean(&arg(0)?)?;
                if cond {
                    arg(1)
                } else {
                    arg(2)
                }
            }
            Function::Coalesce => {
                for e in args {
                    if let Some(v) = self.eval_expr_immutable(e, row) {
                        return Some(v);
                    }
                }
                None
            }
            Function::Iri => Some(Term::iri(term_string(&arg(0)?))),
            Function::SameTerm => Some(Term::Literal(Literal::boolean(arg(0)? == arg(1)?))),
        }
    }

    /// Evaluates an expression that may contain aggregates over a group.
    fn eval_grouped_expr(
        &self,
        expr: &Expression,
        group_rows: &[Row],
        sample_row: &Row,
    ) -> Option<Term> {
        match expr {
            Expression::Aggregate(agg) => self.eval_aggregate(agg, group_rows),
            Expression::Var(_) | Expression::Constant(_) => {
                self.eval_expr_immutable(expr, sample_row)
            }
            Expression::Not(inner) => {
                let b = effective_boolean(&self.eval_grouped_expr(inner, group_rows, sample_row)?)?;
                Some(Term::Literal(Literal::boolean(!b)))
            }
            Expression::And(a, b) => {
                let va = self.eval_grouped_expr(a, group_rows, sample_row);
                let vb = self.eval_grouped_expr(b, group_rows, sample_row);
                match (
                    va.as_ref().and_then(effective_boolean),
                    vb.as_ref().and_then(effective_boolean),
                ) {
                    (Some(false), _) | (_, Some(false)) => {
                        Some(Term::Literal(Literal::boolean(false)))
                    }
                    (Some(true), Some(true)) => Some(Term::Literal(Literal::boolean(true))),
                    _ => None,
                }
            }
            Expression::Or(a, b) => {
                let va = self.eval_grouped_expr(a, group_rows, sample_row);
                let vb = self.eval_grouped_expr(b, group_rows, sample_row);
                match (
                    va.as_ref().and_then(effective_boolean),
                    vb.as_ref().and_then(effective_boolean),
                ) {
                    (Some(true), _) | (_, Some(true)) => Some(Term::Literal(Literal::boolean(true))),
                    (Some(false), Some(false)) => Some(Term::Literal(Literal::boolean(false))),
                    _ => None,
                }
            }
            Expression::Compare(a, op, b) => {
                let va = self.eval_grouped_expr(a, group_rows, sample_row)?;
                let vb = self.eval_grouped_expr(b, group_rows, sample_row)?;
                compare_terms(&va, *op, &vb).map(|b| Term::Literal(Literal::boolean(b)))
            }
            Expression::Arithmetic(a, op, b) => {
                let va = numeric_value(&self.eval_grouped_expr(a, group_rows, sample_row)?)?;
                let vb = numeric_value(&self.eval_grouped_expr(b, group_rows, sample_row)?)?;
                let result = match op {
                    ArithOp::Add => va + vb,
                    ArithOp::Sub => va - vb,
                    ArithOp::Mul => va * vb,
                    ArithOp::Div => {
                        if vb == 0.0 {
                            return None;
                        }
                        va / vb
                    }
                };
                Some(number_term(result))
            }
            _ => self.eval_expr_immutable(expr, sample_row),
        }
    }

    fn eval_aggregate(&self, agg: &AggregateExpr, group_rows: &[Row]) -> Option<Term> {
        // Collect the evaluated values of the aggregated expression.
        let mut values: Vec<Term> = Vec::new();
        match &agg.expr {
            None => {
                // COUNT(*) counts rows.
                return Some(Term::Literal(Literal::integer(group_rows.len() as i64)));
            }
            Some(inner) => {
                for row in group_rows {
                    if let Some(v) = self.eval_expr_immutable(inner, row) {
                        values.push(v);
                    }
                }
            }
        }
        if agg.distinct {
            let mut seen = std::collections::BTreeSet::new();
            values.retain(|v| seen.insert(v.clone()));
        }
        match agg.function {
            AggregateFunction::Count => Some(Term::Literal(Literal::integer(values.len() as i64))),
            AggregateFunction::Sum => {
                // Order-independent accumulation (integers exactly, floats
                // through the compensated expansion): the result depends
                // only on the multiset of values, so the columnar engine —
                // which scans the same values in a different (chunked,
                // append-reordered) sequence through the same NumericSum —
                // stays bit-identical.
                let mut sum = crate::numeric::NumericSum::new();
                for v in &values {
                    if !sum.add_term(v) {
                        return None;
                    }
                }
                Some(sum.sum_term())
            }
            AggregateFunction::Avg => {
                if values.is_empty() {
                    return Some(Term::Literal(Literal::integer(0)));
                }
                let mut sum = crate::numeric::NumericSum::new();
                for v in &values {
                    if !sum.add_term(v) {
                        return None;
                    }
                }
                Some(Term::Literal(Literal::decimal(
                    sum.value() / values.len() as f64,
                )))
            }
            AggregateFunction::Min => values.into_iter().min(),
            AggregateFunction::Max => values.into_iter().max(),
            AggregateFunction::Sample => values.into_iter().next(),
            AggregateFunction::GroupConcat => {
                let joined = values
                    .iter()
                    .map(term_string)
                    .collect::<Vec<_>>()
                    .join(" ");
                Some(Term::Literal(Literal::string(joined)))
            }
        }
    }
}

// ---- value helpers ---------------------------------------------------------

/// SPARQL effective boolean value.
fn effective_boolean(term: &Term) -> Option<bool> {
    match term {
        Term::Literal(lit) => {
            if let Some(b) = lit.as_boolean() {
                Some(b)
            } else if lit.is_numeric() {
                lit.as_double().map(|n| n != 0.0)
            } else if lit.language().is_some() || lit.datatype() == &rdf::vocab::xsd::string() {
                Some(!lit.lexical().is_empty())
            } else {
                None
            }
        }
        _ => None,
    }
}

/// The string value of a term (IRI string, literal lexical form, blank label).
fn term_string(term: &Term) -> String {
    match term {
        Term::Iri(iri) => iri.as_str().to_string(),
        Term::Blank(b) => b.as_str().to_string(),
        Term::Literal(lit) => lit.lexical().to_string(),
    }
}

/// The numeric value of a term, if it is a numeric literal.
fn numeric_value(term: &Term) -> Option<f64> {
    term.as_literal().and_then(Literal::as_double)
}

/// Wraps an f64 result as an integer literal when it is integral.
fn number_term(value: f64) -> Term {
    if value.fract() == 0.0 && value.abs() < 9.0e15 {
        Term::Literal(Literal::integer(value as i64))
    } else {
        Term::Literal(Literal::decimal(value))
    }
}

/// SPARQL value comparison: numeric when both sides are numeric literals,
/// lexical between literals (with equality also requiring matching
/// datatype/language), term identity otherwise. Returns `None` on type
/// errors. Public so that engines that must agree cell-for-cell with this
/// evaluator (the columnar backend) can reuse the exact same semantics.
pub fn compare_terms(a: &Term, op: CmpOp, b: &Term) -> Option<bool> {
    use std::cmp::Ordering;
    // Numeric comparison when both sides are numeric literals.
    if let (Some(na), Some(nb)) = (numeric_value(a), numeric_value(b)) {
        let ord = na.partial_cmp(&nb)?;
        return Some(apply_cmp(op, ord));
    }
    match (a, b) {
        (Term::Literal(la), Term::Literal(lb)) => {
            // String/date-like comparison on lexical forms.
            let ord = la.lexical().cmp(lb.lexical());
            // Equality additionally requires matching language/datatype.
            match op {
                CmpOp::Eq => Some(la == lb),
                CmpOp::Ne => Some(la != lb),
                _ => Some(apply_cmp(op, ord)),
            }
        }
        _ => match op {
            CmpOp::Eq => Some(a == b),
            CmpOp::Ne => Some(a != b),
            _ => {
                let ord = a.cmp(b);
                if ord == Ordering::Equal {
                    Some(apply_cmp(op, ord))
                } else {
                    // Ordering IRIs/blank nodes is not defined in SPARQL; we
                    // still provide a deterministic order for robustness.
                    Some(apply_cmp(op, ord))
                }
            }
        },
    }
}

fn apply_cmp(op: CmpOp, ord: std::cmp::Ordering) -> bool {
    use std::cmp::Ordering::*;
    match op {
        CmpOp::Eq => ord == Equal,
        CmpOp::Ne => ord != Equal,
        CmpOp::Lt => ord == Less,
        CmpOp::Le => ord != Greater,
        CmpOp::Gt => ord == Greater,
        CmpOp::Ge => ord != Less,
    }
}

/// Ordering used by ORDER BY: unbound first, then by term order with numeric
/// awareness.
fn compare_for_order(a: Option<&Term>, b: Option<&Term>) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    match (a, b) {
        (None, None) => Ordering::Equal,
        (None, Some(_)) => Ordering::Less,
        (Some(_), None) => Ordering::Greater,
        (Some(a), Some(b)) => {
            if let (Some(na), Some(nb)) = (numeric_value(a), numeric_value(b)) {
                na.partial_cmp(&nb).unwrap_or(Ordering::Equal)
            } else {
                a.cmp(b)
            }
        }
    }
}

/// A tiny "regex" matcher supporting the common idioms QB2OLAP emits:
/// plain substring search plus optional `^` / `$` anchors.
fn regex_like_match(text: &str, pattern: &str) -> bool {
    let starts = pattern.starts_with('^');
    let ends = pattern.ends_with('$') && pattern.len() > 1;
    let core = &pattern[usize::from(starts)..pattern.len() - usize::from(ends)];
    match (starts, ends) {
        (true, true) => text == core,
        (true, false) => text.starts_with(core),
        (false, true) => text.ends_with(core),
        (false, false) => text.contains(core),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_query, parse_select};
    use rdf::parser::parse_turtle;

    fn graph() -> Graph {
        parse_turtle(
            r#"
@prefix ex: <http://example.org/> .
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .

ex:obs1 a ex:Observation ; ex:country ex:SY ; ex:year "2013"^^xsd:gYear ; ex:value 10 .
ex:obs2 a ex:Observation ; ex:country ex:SY ; ex:year "2014"^^xsd:gYear ; ex:value 20 .
ex:obs3 a ex:Observation ; ex:country ex:NG ; ex:year "2014"^^xsd:gYear ; ex:value 5 .
ex:obs4 a ex:Observation ; ex:country ex:FR ; ex:year "2014"^^xsd:gYear ; ex:value 7 .

ex:SY ex:continent ex:Asia ; rdfs:label "Syria"@en .
ex:NG ex:continent ex:Africa ; rdfs:label "Nigeria"@en .
ex:FR ex:continent ex:Europe ; rdfs:label "France"@en .
"#,
        )
        .unwrap()
        .into_graph()
    }

    fn select(g: &Graph, q: &str) -> Solutions {
        evaluate_select(g, &parse_select(q).unwrap()).unwrap()
    }

    #[test]
    fn basic_bgp_join() {
        let g = graph();
        let s = select(
            &g,
            "PREFIX ex: <http://example.org/>
             SELECT ?obs ?continent WHERE {
               ?obs ex:country ?c .
               ?c ex:continent ?continent .
             }",
        );
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn filter_on_numeric_value() {
        let g = graph();
        let s = select(
            &g,
            "PREFIX ex: <http://example.org/>
             SELECT ?obs WHERE { ?obs ex:value ?v . FILTER(?v >= 10) }",
        );
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn group_by_aggregation() {
        let g = graph();
        let s = select(
            &g,
            "PREFIX ex: <http://example.org/>
             SELECT ?continent (SUM(?v) AS ?total) WHERE {
               ?obs ex:country ?c ; ex:value ?v .
               ?c ex:continent ?continent .
             } GROUP BY ?continent ORDER BY DESC(?total)",
        );
        assert_eq!(s.len(), 3);
        // Asia (10+20=30) should come first.
        assert_eq!(
            s.get(0, "continent"),
            Some(&Term::iri("http://example.org/Asia"))
        );
        assert_eq!(s.get(0, "total"), Some(&Term::integer(30)));
    }

    #[test]
    fn count_star_and_avg() {
        let g = graph();
        let s = select(
            &g,
            "PREFIX ex: <http://example.org/>
             SELECT (COUNT(*) AS ?n) (AVG(?v) AS ?avg) WHERE { ?obs ex:value ?v . }",
        );
        assert_eq!(s.get(0, "n"), Some(&Term::integer(4)));
        let avg = s.get(0, "avg").unwrap().as_literal().unwrap().as_double().unwrap();
        assert!((avg - 10.5).abs() < 1e-9);
    }

    #[test]
    fn optional_keeps_unmatched_rows() {
        let g = graph();
        let s = select(
            &g,
            "PREFIX ex: <http://example.org/>
             PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>
             SELECT ?c ?label WHERE {
               ?obs ex:country ?c .
               OPTIONAL { ?c rdfs:label ?label . FILTER(CONTAINS(STR(?label), \"Nig\")) }
             }",
        );
        assert_eq!(s.len(), 4);
        let bound = s.rows.iter().filter(|r| r[1].is_some()).count();
        assert_eq!(bound, 1);
    }

    #[test]
    fn union_and_distinct() {
        let g = graph();
        let s = select(
            &g,
            "PREFIX ex: <http://example.org/>
             SELECT DISTINCT ?x WHERE {
               { ?x ex:continent ex:Asia } UNION { ?x ex:continent ex:Africa }
             }",
        );
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn values_restricts_bindings() {
        let g = graph();
        let s = select(
            &g,
            "PREFIX ex: <http://example.org/>
             SELECT ?obs WHERE {
               VALUES ?c { ex:SY }
               ?obs ex:country ?c .
             }",
        );
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn bind_and_str_functions() {
        let g = graph();
        let s = select(
            &g,
            "PREFIX ex: <http://example.org/>
             PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>
             SELECT ?c ?upper WHERE {
               ?c rdfs:label ?label .
               BIND(UCASE(STR(?label)) AS ?upper)
               FILTER(STRSTARTS(?upper, \"SY\"))
             }",
        );
        assert_eq!(s.len(), 1);
        assert_eq!(
            s.get(0, "upper").unwrap().as_literal().unwrap().lexical(),
            "SYRIA"
        );
    }

    #[test]
    fn subselect_joins_with_outer_pattern() {
        let g = graph();
        let s = select(
            &g,
            "PREFIX ex: <http://example.org/>
             SELECT ?c ?total WHERE {
               { SELECT ?c (SUM(?v) AS ?total) WHERE { ?o ex:country ?c ; ex:value ?v } GROUP BY ?c }
               ?c ex:continent ex:Asia .
             }",
        );
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(0, "total"), Some(&Term::integer(30)));
    }

    #[test]
    fn minus_removes_matching_rows() {
        let g = graph();
        let s = select(
            &g,
            "PREFIX ex: <http://example.org/>
             SELECT ?c WHERE {
               ?obs ex:country ?c .
               MINUS { ?c ex:continent ex:Asia }
             }",
        );
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn exists_filter() {
        let g = graph();
        let s = select(
            &g,
            "PREFIX ex: <http://example.org/>
             SELECT DISTINCT ?c WHERE {
               ?obs ex:country ?c .
               FILTER EXISTS { ?c ex:continent ex:Europe }
             }",
        );
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn ask_queries() {
        let g = graph();
        let yes = evaluate_query(
            &g,
            &parse_query("PREFIX ex: <http://example.org/> ASK { ex:SY ex:continent ex:Asia }")
                .unwrap(),
        )
        .unwrap();
        assert_eq!(yes.boolean(), Some(true));
        let no = evaluate_query(
            &g,
            &parse_query("PREFIX ex: <http://example.org/> ASK { ex:SY ex:continent ex:Europe }")
                .unwrap(),
        )
        .unwrap();
        assert_eq!(no.boolean(), Some(false));
    }

    #[test]
    fn order_limit_offset() {
        let g = graph();
        let s = select(
            &g,
            "PREFIX ex: <http://example.org/>
             SELECT ?obs ?v WHERE { ?obs ex:value ?v } ORDER BY DESC(?v) LIMIT 2 OFFSET 1",
        );
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(0, "v"), Some(&Term::integer(10)));
        assert_eq!(s.get(1, "v"), Some(&Term::integer(7)));
    }

    #[test]
    fn having_filters_groups() {
        let g = graph();
        let s = select(
            &g,
            "PREFIX ex: <http://example.org/>
             SELECT ?c (SUM(?v) AS ?total) WHERE { ?o ex:country ?c ; ex:value ?v }
             GROUP BY ?c HAVING (SUM(?v) > 6)",
        );
        assert_eq!(s.len(), 2, "SY (30) and FR (7) pass, NG (5) does not");
    }

    #[test]
    fn year_function_on_gyear() {
        let g = graph();
        let s = select(
            &g,
            "PREFIX ex: <http://example.org/>
             SELECT ?obs (YEAR(?y) AS ?yr) WHERE { ?obs ex:year ?y } ORDER BY ?obs",
        );
        assert_eq!(s.get(0, "yr"), Some(&Term::integer(2013)));
    }

    #[test]
    fn repeated_variable_in_pattern() {
        let mut g = graph();
        // self-loop: ex:X ex:rel ex:X
        g.insert(&rdf::Triple::new(
            Term::iri("http://example.org/X"),
            Iri::new("http://example.org/rel"),
            Term::iri("http://example.org/X"),
        ));
        g.insert(&rdf::Triple::new(
            Term::iri("http://example.org/X"),
            Iri::new("http://example.org/rel"),
            Term::iri("http://example.org/Y"),
        ));
        let s = select(
            &g,
            "PREFIX ex: <http://example.org/> SELECT ?x WHERE { ?x ex:rel ?x }",
        );
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(0, "x"), Some(&Term::iri("http://example.org/X")));
    }

    #[test]
    fn in_expression_and_lang() {
        let g = graph();
        let s = select(
            &g,
            "PREFIX ex: <http://example.org/>
             PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>
             SELECT ?c WHERE {
               ?c rdfs:label ?l .
               FILTER(STR(?l) IN (\"Syria\", \"France\"))
               FILTER(LANG(?l) = \"en\")
             } ORDER BY ?c",
        );
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn wildcard_projection_contains_all_vars() {
        let g = graph();
        let s = select(
            &g,
            "PREFIX ex: <http://example.org/> SELECT * WHERE { ?obs ex:value ?v }",
        );
        assert_eq!(s.variables.len(), 2);
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn empty_group_count_is_zero() {
        let g = graph();
        let s = select(
            &g,
            "PREFIX ex: <http://example.org/>
             SELECT (COUNT(*) AS ?n) WHERE { ?x ex:doesNotExist ?y }",
        );
        assert_eq!(s.get(0, "n"), Some(&Term::integer(0)));
    }
}
