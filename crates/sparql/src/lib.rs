//! A SPARQL 1.1 subset engine for the QB2OLAP reproduction.
//!
//! The crate provides the four pieces QB2OLAP needs from a SPARQL stack:
//!
//! * [`parser`] — query text → [`ast::Query`];
//! * [`eval`] — AST evaluation against an [`rdf::Graph`];
//! * [`pretty`] — AST → query text (used by the QL → SPARQL translator);
//! * [`endpoint`] — the [`Endpoint`](endpoint::Endpoint) abstraction plus the
//!   in-process [`LocalEndpoint`](endpoint::LocalEndpoint) that plays the
//!   role of Virtuoso in the paper's architecture (Figure 1).
//!
//! Supported features: SELECT / ASK, basic graph patterns, FILTER with the
//! common built-ins, OPTIONAL, UNION, MINUS, BIND, VALUES, sub-SELECT,
//! GROUP BY with COUNT/SUM/AVG/MIN/MAX/SAMPLE/GROUP_CONCAT, HAVING,
//! ORDER BY, DISTINCT, LIMIT and OFFSET — i.e. everything the QB2OLAP
//! Enrichment, Exploration and Querying modules generate.
//!
//! # Example
//!
//! ```
//! use sparql::endpoint::{Endpoint, LocalEndpoint};
//!
//! let ep = LocalEndpoint::new();
//! ep.store()
//!     .load_turtle(
//!         "@prefix ex: <http://example.org/> .
//!          ex:obs1 ex:value 10 . ex:obs2 ex:value 32 .",
//!     )
//!     .unwrap();
//! let solutions = ep
//!     .select(
//!         "PREFIX ex: <http://example.org/>
//!          SELECT (SUM(?v) AS ?total) WHERE { ?obs ex:value ?v }",
//!     )
//!     .unwrap();
//! assert_eq!(solutions.get(0, "total"), Some(&rdf::Term::integer(42)));
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod endpoint;
pub mod error;
pub mod eval;
pub mod parser;
pub mod pretty;
pub mod results;
pub mod token;

pub use ast::{Query, SelectQuery, Variable};
pub use endpoint::{Endpoint, LocalEndpoint};
pub use error::SparqlError;
pub use eval::{evaluate_query, evaluate_select};
pub use parser::{parse_query, parse_select};
pub use pretty::{query_to_string, select_to_string};
pub use results::{QueryResults, Solutions};

#[cfg(test)]
mod proptests {
    use proptest::prelude::*;
    use rdf::{Graph, Iri, Literal, Term, Triple};

    use crate::eval::evaluate_select;
    use crate::parser::parse_select;
    use crate::pretty::select_to_string;

    /// A small random data graph: observations with a country and a value.
    fn arb_graph() -> impl Strategy<Value = Graph> {
        proptest::collection::vec((0u8..6, 0i64..1000), 0..60).prop_map(|rows| {
            let mut graph = Graph::new();
            for (i, (country, value)) in rows.into_iter().enumerate() {
                let obs = Term::iri(format!("http://example.org/obs{i}"));
                graph.insert(&Triple::new(
                    obs.clone(),
                    Iri::new("http://example.org/country"),
                    Term::iri(format!("http://example.org/country{country}")),
                ));
                graph.insert(&Triple::new(
                    obs,
                    Iri::new("http://example.org/value"),
                    Literal::integer(value),
                ));
            }
            graph
        })
    }

    proptest! {
        /// SUM grouped by country matches a direct computation on the data.
        #[test]
        fn group_by_sum_matches_reference(graph in arb_graph()) {
            let query = parse_select(
                "PREFIX ex: <http://example.org/>
                 SELECT ?c (SUM(?v) AS ?total) WHERE { ?o ex:country ?c ; ex:value ?v } GROUP BY ?c",
            ).unwrap();
            let solutions = evaluate_select(&graph, &query).unwrap();

            // Reference computation straight from the graph.
            let mut expected: std::collections::BTreeMap<Term, i64> = Default::default();
            for t in graph.triples_matching(None, Some(&Iri::new("http://example.org/country")), None) {
                let value = graph
                    .object(&t.subject, &Iri::new("http://example.org/value"))
                    .and_then(|v| v.as_literal().and_then(|l| l.as_integer()))
                    .unwrap_or(0);
                *expected.entry(t.object.clone()).or_default() += value;
            }
            prop_assert_eq!(solutions.len(), expected.len());
            for (country, total) in expected {
                let row = solutions
                    .rows
                    .iter()
                    .find(|r| r[0].as_ref() == Some(&country))
                    .expect("country group present");
                prop_assert_eq!(row[1].clone(), Some(Term::integer(total)));
            }
        }

        /// Pretty-printing a parsed query and re-parsing it yields the same
        /// results on the same data (print/parse round-trip preserves
        /// semantics).
        #[test]
        fn print_parse_roundtrip_preserves_results(graph in arb_graph(), limit in 1usize..20) {
            let text = format!(
                "PREFIX ex: <http://example.org/>
                 SELECT ?o ?v WHERE {{ ?o ex:value ?v . FILTER(?v >= 0) }} ORDER BY DESC(?v) ?o LIMIT {limit}"
            );
            let query = parse_select(&text).unwrap();
            let printed = select_to_string(&query);
            let reparsed = parse_select(&printed).unwrap();
            let a = evaluate_select(&graph, &query).unwrap();
            let b = evaluate_select(&graph, &reparsed).unwrap();
            prop_assert_eq!(a, b);
        }

        /// DISTINCT never yields more rows than the non-distinct query, and
        /// LIMIT truncates correctly.
        #[test]
        fn distinct_and_limit_invariants(graph in arb_graph(), limit in 1usize..10) {
            let all = evaluate_select(
                &graph,
                &parse_select(
                    "PREFIX ex: <http://example.org/> SELECT ?c WHERE { ?o ex:country ?c }",
                ).unwrap(),
            ).unwrap();
            let distinct = evaluate_select(
                &graph,
                &parse_select(
                    "PREFIX ex: <http://example.org/> SELECT DISTINCT ?c WHERE { ?o ex:country ?c }",
                ).unwrap(),
            ).unwrap();
            prop_assert!(distinct.len() <= all.len());

            let limited = evaluate_select(
                &graph,
                &parse_select(&format!(
                    "PREFIX ex: <http://example.org/> SELECT ?c WHERE {{ ?o ex:country ?c }} LIMIT {limit}",
                )).unwrap(),
            ).unwrap();
            prop_assert_eq!(limited.len(), all.len().min(limit));
        }
    }
}
