//! A SPARQL 1.1 subset engine for the QB2OLAP reproduction.
//!
//! The crate provides the four pieces QB2OLAP needs from a SPARQL stack:
//!
//! * [`parser`] — query text → [`ast::Query`];
//! * [`eval`] — AST evaluation against an [`rdf::Graph`];
//! * [`pretty`] — AST → query text (used by the QL → SPARQL translator);
//! * [`endpoint`] — the [`endpoint::Endpoint`] abstraction plus the
//!   in-process [`endpoint::LocalEndpoint`] that plays the
//!   role of Virtuoso in the paper's architecture (Figure 1).
//!
//! Supported features: SELECT / ASK, basic graph patterns, FILTER with the
//! common built-ins, OPTIONAL, UNION, MINUS, BIND, VALUES, sub-SELECT,
//! GROUP BY with COUNT/SUM/AVG/MIN/MAX/SAMPLE/GROUP_CONCAT, HAVING,
//! ORDER BY, DISTINCT, LIMIT and OFFSET — i.e. everything the QB2OLAP
//! Enrichment, Exploration and Querying modules generate.
//!
//! # Example
//!
//! ```
//! use sparql::endpoint::{Endpoint, LocalEndpoint};
//!
//! let ep = LocalEndpoint::new();
//! ep.store()
//!     .load_turtle(
//!         "@prefix ex: <http://example.org/> .
//!          ex:obs1 ex:value 10 . ex:obs2 ex:value 32 .",
//!     )
//!     .unwrap();
//! let solutions = ep
//!     .select(
//!         "PREFIX ex: <http://example.org/>
//!          SELECT (SUM(?v) AS ?total) WHERE { ?obs ex:value ?v }",
//!     )
//!     .unwrap();
//! assert_eq!(solutions.get(0, "total"), Some(&rdf::Term::integer(42)));
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod endpoint;
pub mod error;
pub mod eval;
pub mod numeric;
pub mod parser;
pub mod pretty;
pub mod results;
#[cfg(any(test, feature = "testutil"))]
pub mod testutil;
pub mod token;

pub use ast::{Query, SelectQuery, Variable};
pub use endpoint::{ConservativeEndpoint, Endpoint, LocalEndpoint};
pub use error::SparqlError;
pub use eval::{compare_terms, evaluate_query, evaluate_select};
pub use numeric::{float_max, float_min, CompensatedSum, NumericSum};
pub use parser::{parse_query, parse_select};
pub use pretty::{query_to_string, select_to_string};
pub use results::{QueryResults, Solutions};

// Randomised invariant tests. The seed repo expressed these with `proptest`,
// which is unavailable in the offline build; seeded `StdRng` sampling keeps
// the same invariant coverage (without shrinking) and stays deterministic.
#[cfg(test)]
mod proptests {
    use rand::{rngs::StdRng, Rng, SeedableRng};
    use rdf::{Graph, Iri, Literal, Term, Triple};

    use crate::eval::evaluate_select;
    use crate::parser::parse_select;
    use crate::pretty::select_to_string;

    const CASES: u64 = 128;

    /// A small random data graph: observations with a country and a value.
    fn random_graph(rng: &mut StdRng) -> Graph {
        let mut graph = Graph::new();
        for i in 0..rng.gen_range(0..60usize) {
            let country = rng.gen_range(0..6u8);
            let value = rng.gen_range(0..1000i64);
            let obs = Term::iri(format!("http://example.org/obs{i}"));
            graph.insert(&Triple::new(
                obs.clone(),
                Iri::new("http://example.org/country"),
                Term::iri(format!("http://example.org/country{country}")),
            ));
            graph.insert(&Triple::new(
                obs,
                Iri::new("http://example.org/value"),
                Literal::integer(value),
            ));
        }
        graph
    }

    /// SUM grouped by country matches a direct computation on the data.
    #[test]
    fn group_by_sum_matches_reference() {
        for seed in 0..CASES {
            let graph = random_graph(&mut StdRng::seed_from_u64(seed));
            let query = parse_select(
                "PREFIX ex: <http://example.org/>
                 SELECT ?c (SUM(?v) AS ?total) WHERE { ?o ex:country ?c ; ex:value ?v } GROUP BY ?c",
            )
            .unwrap();
            let solutions = evaluate_select(&graph, &query).unwrap();

            // Reference computation straight from the graph.
            let mut expected: std::collections::BTreeMap<Term, i64> = Default::default();
            for t in
                graph.triples_matching(None, Some(&Iri::new("http://example.org/country")), None)
            {
                let value = graph
                    .object(&t.subject, &Iri::new("http://example.org/value"))
                    .and_then(|v| v.as_literal().and_then(|l| l.as_integer()))
                    .unwrap_or(0);
                *expected.entry(t.object.clone()).or_default() += value;
            }
            assert_eq!(solutions.len(), expected.len(), "seed {seed}");
            for (country, total) in expected {
                let row = solutions
                    .rows
                    .iter()
                    .find(|r| r[0].as_ref() == Some(&country))
                    .expect("country group present");
                assert_eq!(row[1].clone(), Some(Term::integer(total)), "seed {seed}");
            }
        }
    }

    /// Pretty-printing a parsed query and re-parsing it yields the same
    /// results on the same data (print/parse round-trip preserves
    /// semantics).
    #[test]
    fn print_parse_roundtrip_preserves_results() {
        for seed in 0..CASES {
            let mut rng = StdRng::seed_from_u64(seed);
            let graph = random_graph(&mut rng);
            let limit = rng.gen_range(1..20usize);
            let text = format!(
                "PREFIX ex: <http://example.org/>
                 SELECT ?o ?v WHERE {{ ?o ex:value ?v . FILTER(?v >= 0) }} ORDER BY DESC(?v) ?o LIMIT {limit}"
            );
            let query = parse_select(&text).unwrap();
            let printed = select_to_string(&query);
            let reparsed = parse_select(&printed).unwrap();
            let a = evaluate_select(&graph, &query).unwrap();
            let b = evaluate_select(&graph, &reparsed).unwrap();
            assert_eq!(a, b, "seed {seed}");
        }
    }

    /// DISTINCT never yields more rows than the non-distinct query, and
    /// LIMIT truncates correctly.
    #[test]
    fn distinct_and_limit_invariants() {
        for seed in 0..CASES {
            let mut rng = StdRng::seed_from_u64(seed);
            let graph = random_graph(&mut rng);
            let limit = rng.gen_range(1..10usize);
            let all = evaluate_select(
                &graph,
                &parse_select(
                    "PREFIX ex: <http://example.org/> SELECT ?c WHERE { ?o ex:country ?c }",
                )
                .unwrap(),
            )
            .unwrap();
            let distinct = evaluate_select(
                &graph,
                &parse_select(
                    "PREFIX ex: <http://example.org/> SELECT DISTINCT ?c WHERE { ?o ex:country ?c }",
                )
                .unwrap(),
            )
            .unwrap();
            assert!(distinct.len() <= all.len(), "seed {seed}");

            let limited = evaluate_select(
                &graph,
                &parse_select(&format!(
                    "PREFIX ex: <http://example.org/> SELECT ?c WHERE {{ ?o ex:country ?c }} LIMIT {limit}",
                ))
                .unwrap(),
            )
            .unwrap();
            assert_eq!(limited.len(), all.len().min(limit), "seed {seed}");
        }
    }
}
