//! AST builder conveniences for test harnesses (feature `testutil`).
//!
//! The qlsmith fuzzer generates [`SelectQuery`](crate::ast::SelectQuery)
//! values programmatically and
//! needs two things the regular API keeps implicit: terse constructors for
//! deeply nested expression trees, and *exhaustive* tables of the grammar's
//! productions. Every table below is paired with an index function whose
//! `match` has no wildcard arm, so adding a variant to the AST without
//! extending the generator fails to compile — that is the grammar-coverage
//! guarantee the CI gate relies on.

use rdf::Term;

use crate::ast::{
    AggregateExpr, AggregateFunction, ArithOp, CmpOp, Expression, Function, GroupGraphPattern,
    PatternElement, Variable,
};

/// Every comparison operator, in a fixed order.
pub const ALL_CMP_OPS: [CmpOp; 6] = [
    CmpOp::Eq,
    CmpOp::Ne,
    CmpOp::Lt,
    CmpOp::Le,
    CmpOp::Gt,
    CmpOp::Ge,
];

/// Every arithmetic operator, in a fixed order.
pub const ALL_ARITH_OPS: [ArithOp; 4] = [ArithOp::Add, ArithOp::Sub, ArithOp::Mul, ArithOp::Div];

/// Every built-in scalar function, in a fixed order.
pub const ALL_FUNCTIONS: [Function; 22] = [
    Function::Str,
    Function::Lang,
    Function::Datatype,
    Function::Bound,
    Function::IsIri,
    Function::IsLiteral,
    Function::IsBlank,
    Function::Regex,
    Function::Contains,
    Function::StrStarts,
    Function::StrEnds,
    Function::UCase,
    Function::LCase,
    Function::StrLen,
    Function::Concat,
    Function::Abs,
    Function::Year,
    Function::Month,
    Function::If,
    Function::Coalesce,
    Function::Iri,
    Function::SameTerm,
];

/// Every aggregate function, in a fixed order.
pub const ALL_AGGREGATES: [AggregateFunction; 7] = [
    AggregateFunction::Count,
    AggregateFunction::Sum,
    AggregateFunction::Avg,
    AggregateFunction::Min,
    AggregateFunction::Max,
    AggregateFunction::Sample,
    AggregateFunction::GroupConcat,
];

/// Index of a comparison operator in [`ALL_CMP_OPS`] (exhaustive).
pub fn cmp_op_index(op: CmpOp) -> usize {
    match op {
        CmpOp::Eq => 0,
        CmpOp::Ne => 1,
        CmpOp::Lt => 2,
        CmpOp::Le => 3,
        CmpOp::Gt => 4,
        CmpOp::Ge => 5,
    }
}

/// Index of an arithmetic operator in [`ALL_ARITH_OPS`] (exhaustive).
pub fn arith_op_index(op: ArithOp) -> usize {
    match op {
        ArithOp::Add => 0,
        ArithOp::Sub => 1,
        ArithOp::Mul => 2,
        ArithOp::Div => 3,
    }
}

/// Index of a scalar function in [`ALL_FUNCTIONS`] (exhaustive).
pub fn function_index(function: Function) -> usize {
    match function {
        Function::Str => 0,
        Function::Lang => 1,
        Function::Datatype => 2,
        Function::Bound => 3,
        Function::IsIri => 4,
        Function::IsLiteral => 5,
        Function::IsBlank => 6,
        Function::Regex => 7,
        Function::Contains => 8,
        Function::StrStarts => 9,
        Function::StrEnds => 10,
        Function::UCase => 11,
        Function::LCase => 12,
        Function::StrLen => 13,
        Function::Concat => 14,
        Function::Abs => 15,
        Function::Year => 16,
        Function::Month => 17,
        Function::If => 18,
        Function::Coalesce => 19,
        Function::Iri => 20,
        Function::SameTerm => 21,
    }
}

/// Index of an aggregate function in [`ALL_AGGREGATES`] (exhaustive).
pub fn aggregate_index(function: AggregateFunction) -> usize {
    match function {
        AggregateFunction::Count => 0,
        AggregateFunction::Sum => 1,
        AggregateFunction::Avg => 2,
        AggregateFunction::Min => 3,
        AggregateFunction::Max => 4,
        AggregateFunction::Sample => 5,
        AggregateFunction::GroupConcat => 6,
    }
}

/// `a <op> b` as an expression.
pub fn cmp(a: Expression, op: CmpOp, b: Expression) -> Expression {
    Expression::Compare(Box::new(a), op, Box::new(b))
}

/// `a <op> b` arithmetic.
pub fn arith(a: Expression, op: ArithOp, b: Expression) -> Expression {
    Expression::Arithmetic(Box::new(a), op, Box::new(b))
}

/// A scalar function call.
pub fn call(function: Function, args: Vec<Expression>) -> Expression {
    Expression::Call(function, args)
}

/// An aggregate expression such as `SUM(?m)`; `None` means `COUNT(*)`.
pub fn aggregate(
    function: AggregateFunction,
    distinct: bool,
    expr: Option<Expression>,
) -> Expression {
    Expression::Aggregate(AggregateExpr {
        function,
        distinct,
        expr: expr.map(Box::new),
    })
}

/// `BIND(expr AS ?var)`.
pub fn bind(expr: Expression, var: impl Into<String>) -> PatternElement {
    PatternElement::Bind {
        expr,
        var: Variable::new(var),
    }
}

/// A constant-term expression (shorthand for [`Expression::Constant`]).
pub fn constant(term: impl Into<Term>) -> Expression {
    Expression::Constant(term.into())
}

/// A group graph pattern holding the given elements.
pub fn group(elements: Vec<PatternElement>) -> GroupGraphPattern {
    GroupGraphPattern { elements }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn production_tables_are_self_consistent() {
        for (i, op) in ALL_CMP_OPS.iter().enumerate() {
            assert_eq!(cmp_op_index(*op), i);
        }
        for (i, op) in ALL_ARITH_OPS.iter().enumerate() {
            assert_eq!(arith_op_index(*op), i);
        }
        for (i, f) in ALL_FUNCTIONS.iter().enumerate() {
            assert_eq!(function_index(*f), i);
            assert_eq!(Function::from_name(f.as_str()), Some(*f));
        }
        for (i, f) in ALL_AGGREGATES.iter().enumerate() {
            assert_eq!(aggregate_index(*f), i);
            assert_eq!(AggregateFunction::from_name(f.as_str()), Some(*f));
        }
    }
}
