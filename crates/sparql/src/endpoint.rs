//! The endpoint abstraction.
//!
//! In the original QB2OLAP deployment all three modules talk to a Virtuoso
//! SPARQL endpoint. Here the [`Endpoint`] trait captures exactly that
//! contract — query text in, results out — and [`LocalEndpoint`] implements
//! it over an in-process [`rdf::Store`]. Higher layers (enrichment,
//! exploration, querying) only ever use the trait, so they are oblivious to
//! where the data lives, just as in the paper.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use rdf::{Iri, Store, StoreDelta, Triple};

use crate::ast::Query;
use crate::error::SparqlError;
use crate::eval::evaluate_query;
use crate::parser::parse_query;
use crate::pretty::query_to_string;
use crate::results::{QueryResults, Solutions};

/// A SPARQL endpoint: accepts query text, returns results.
pub trait Endpoint {
    /// Executes any supported query form.
    fn query(&self, sparql: &str) -> Result<QueryResults, SparqlError>;

    /// Executes an already-parsed query, skipping the text round-trip.
    ///
    /// Callers that run the same query shape many times (the Enrichment
    /// module's per-chunk `VALUES` probes) parse a template once, patch it,
    /// and execute it here. The default implementation pretty-prints the
    /// AST and goes through [`Self::query`], so remote endpoints that only
    /// speak text keep working; [`LocalEndpoint`] evaluates the AST
    /// directly.
    fn query_parsed(&self, query: &Query) -> Result<QueryResults, SparqlError> {
        self.query(&query_to_string(query))
    }

    /// Executes an already-parsed SELECT query and returns its solutions.
    fn select_parsed(&self, query: &Query) -> Result<Solutions, SparqlError> {
        match self.query_parsed(query)? {
            QueryResults::Solutions(s) => Ok(s),
            QueryResults::Boolean(_) => Err(SparqlError::Endpoint(
                "expected a SELECT query, got an ASK result".to_string(),
            )),
        }
    }

    /// Executes a SELECT query and returns its solutions.
    fn select(&self, sparql: &str) -> Result<Solutions, SparqlError> {
        match self.query(sparql)? {
            QueryResults::Solutions(s) => Ok(s),
            QueryResults::Boolean(_) => Err(SparqlError::Endpoint(
                "expected a SELECT query, got an ASK result".to_string(),
            )),
        }
    }

    /// Executes an ASK query and returns its boolean.
    fn ask(&self, sparql: &str) -> Result<bool, SparqlError> {
        match self.query(sparql)? {
            QueryResults::Boolean(b) => Ok(b),
            QueryResults::Solutions(_) => Err(SparqlError::Endpoint(
                "expected an ASK query, got a SELECT result".to_string(),
            )),
        }
    }

    /// Loads triples into the endpoint's default graph (the paper's
    /// Enrichment module loads the generated schema and instance triples
    /// back into the endpoint).
    fn insert_triples(&self, triples: &[Triple]) -> Result<usize, SparqlError>;

    /// Loads triples into a named graph.
    fn insert_triples_named(&self, graph: &Iri, triples: &[Triple]) -> Result<usize, SparqlError>;

    /// Number of triples stored (default graph).
    fn triple_count(&self) -> usize;

    /// The endpoint's mutation epoch (see [`rdf::Store::epoch`]).
    ///
    /// Consumers holding derived state compare epochs to detect staleness.
    /// The default (always 0) means "never reports a change": backends
    /// without change tracking serve snapshots, exactly as before.
    fn epoch(&self) -> u64 {
        0
    }

    /// The store deltas recorded after epoch `since`, oldest first, or
    /// `None` when the endpoint cannot answer (no change tracking, or the
    /// log no longer covers `since`) — the consumer must then rebuild from
    /// a fresh snapshot.
    fn deltas_since(&self, since: u64) -> Option<Vec<StoreDelta>> {
        let _ = since;
        None
    }

    /// Asks the endpoint to start recording mutations so that
    /// [`Self::deltas_since`] can answer. A no-op by default (and for
    /// backends that cannot track changes).
    fn enable_change_tracking(&self) {}

    /// An owned, thread-safe, **epoch-consistent** handle for background
    /// maintenance, or `None` when the endpoint cannot provide one.
    ///
    /// The handle must answer queries for one frozen store state whose
    /// [`Self::epoch`] matches that state — later mutations of the live
    /// endpoint must be invisible through it, so a rebuild running on
    /// another thread materializes a single well-defined epoch instead of
    /// a torn mix. Endpoints answering `None` (the default, and the
    /// conservative wrapper) degrade background maintenance to the inline
    /// blocking path.
    fn background_handle(&self) -> Option<Arc<dyn Endpoint + Send + Sync>> {
        None
    }
}

/// An in-process endpoint backed by an [`rdf::Store`].
#[derive(Debug, Clone, Default)]
pub struct LocalEndpoint {
    store: Store,
    queries_executed: Arc<AtomicUsize>,
}

impl LocalEndpoint {
    /// Creates an endpoint over a fresh, empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an endpoint over an existing store.
    pub fn with_store(store: Store) -> Self {
        LocalEndpoint {
            store,
            queries_executed: Arc::new(AtomicUsize::new(0)),
        }
    }

    /// The underlying store (shared).
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// Number of queries executed so far (for the workflow statistics the
    /// demo UI displays).
    pub fn queries_executed(&self) -> usize {
        self.queries_executed.load(Ordering::Relaxed)
    }
}

impl Endpoint for LocalEndpoint {
    fn query(&self, sparql: &str) -> Result<QueryResults, SparqlError> {
        self.queries_executed.fetch_add(1, Ordering::Relaxed);
        let parsed = {
            let _parse_span = obs::span("sparql.parse");
            parse_query(sparql)?
        };
        let _eval_span = obs::span("sparql.evaluate");
        self.store
            .with_default_graph(|graph| evaluate_query(graph, &parsed))
    }

    fn query_parsed(&self, query: &Query) -> Result<QueryResults, SparqlError> {
        self.queries_executed.fetch_add(1, Ordering::Relaxed);
        let _eval_span = obs::span("sparql.evaluate");
        self.store
            .with_default_graph(|graph| evaluate_query(graph, query))
    }

    fn insert_triples(&self, triples: &[Triple]) -> Result<usize, SparqlError> {
        Ok(self.store.bulk_insert(triples.iter().cloned()))
    }

    fn insert_triples_named(&self, graph: &Iri, triples: &[Triple]) -> Result<usize, SparqlError> {
        Ok(self.store.insert_all_named(graph, triples.iter().cloned()))
    }

    fn triple_count(&self) -> usize {
        self.store.len()
    }

    fn epoch(&self) -> u64 {
        self.store.epoch()
    }

    fn deltas_since(&self, since: u64) -> Option<Vec<StoreDelta>> {
        self.store.deltas_since(since)
    }

    fn enable_change_tracking(&self) {
        self.store.enable_change_log();
    }

    fn background_handle(&self) -> Option<Arc<dyn Endpoint + Send + Sync>> {
        // A frozen copy of the store (see `Store::snapshot`): the handle's
        // epoch and data are captured atomically, so a background rebuild
        // racing live writers still sees one consistent state.
        Some(Arc::new(LocalEndpoint::with_store(self.store.snapshot())))
    }
}

/// An endpoint wrapper that reports the **least capable** change-tracking
/// contract a remote SPARQL endpoint could offer.
///
/// A real HTTP endpoint (Virtuoso in the paper's deployment) has no store
/// epochs and no delta log. Until such a client exists, this wrapper lets
/// every epoch-aware consumer — most importantly the columnar cube catalog —
/// prove it degrades gracefully when the answers it relies on disappear:
///
/// * **snapshot mode** ([`ConservativeEndpoint::new`]): `epoch()` is pinned
///   to `0` and [`Endpoint::deltas_since`] always answers `None`, exactly
///   the trait defaults. Consumers must treat the endpoint as an immutable
///   snapshot — derived state is built once and never invalidated.
/// * **epoch-only mode** ([`ConservativeEndpoint::with_epochs`]): `epoch()`
///   forwards to the inner endpoint but `deltas_since` still answers
///   `None`, the shape of an endpoint that can say *that* something changed
///   but not *what*. Consumers must fall back to a full rebuild on every
///   epoch change — never stale, never panicking, never pretending a delta
///   path exists.
///
/// [`Endpoint::enable_change_tracking`] is a no-op in both modes: asking a
/// conservative endpoint to record mutations must not quietly upgrade its
/// contract.
#[derive(Debug, Clone)]
pub struct ConservativeEndpoint<E> {
    inner: E,
    forward_epochs: bool,
}

impl<E: Endpoint> ConservativeEndpoint<E> {
    /// Wraps `inner` in snapshot mode: `epoch()` is always `0` and deltas
    /// are never available.
    pub fn new(inner: E) -> Self {
        ConservativeEndpoint {
            inner,
            forward_epochs: false,
        }
    }

    /// Wraps `inner` in epoch-only mode: `epoch()` forwards, deltas stay
    /// unavailable.
    pub fn with_epochs(inner: E) -> Self {
        ConservativeEndpoint {
            inner,
            forward_epochs: true,
        }
    }

    /// The wrapped endpoint.
    pub fn inner(&self) -> &E {
        &self.inner
    }
}

impl<E: Endpoint> Endpoint for ConservativeEndpoint<E> {
    fn query(&self, sparql: &str) -> Result<QueryResults, SparqlError> {
        self.inner.query(sparql)
    }

    fn query_parsed(&self, query: &Query) -> Result<QueryResults, SparqlError> {
        self.inner.query_parsed(query)
    }

    fn insert_triples(&self, triples: &[Triple]) -> Result<usize, SparqlError> {
        self.inner.insert_triples(triples)
    }

    fn insert_triples_named(&self, graph: &Iri, triples: &[Triple]) -> Result<usize, SparqlError> {
        self.inner.insert_triples_named(graph, triples)
    }

    fn triple_count(&self) -> usize {
        self.inner.triple_count()
    }

    fn epoch(&self) -> u64 {
        if self.forward_epochs {
            self.inner.epoch()
        } else {
            0
        }
    }

    fn deltas_since(&self, _since: u64) -> Option<Vec<StoreDelta>> {
        // Deliberately not forwarded: the whole point of the wrapper is
        // that the delta log is never available.
        None
    }

    fn enable_change_tracking(&self) {
        // Deliberately a no-op — see the type-level docs.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdf::{Literal, Term};

    fn endpoint() -> LocalEndpoint {
        let ep = LocalEndpoint::new();
        ep.store()
            .load_turtle(
                "@prefix ex: <http://example.org/> .
                 ex:a ex:value 1 . ex:b ex:value 2 . ex:c ex:value 3 .",
            )
            .unwrap();
        ep
    }

    #[test]
    fn select_and_ask() {
        let ep = endpoint();
        let solutions = ep
            .select("PREFIX ex: <http://example.org/> SELECT ?s WHERE { ?s ex:value ?v . FILTER(?v > 1) }")
            .unwrap();
        assert_eq!(solutions.len(), 2);
        assert!(ep
            .ask("PREFIX ex: <http://example.org/> ASK { ex:a ex:value 1 }")
            .unwrap());
        assert_eq!(ep.queries_executed(), 2);
    }

    #[test]
    fn wrong_result_kind_is_an_error() {
        let ep = endpoint();
        assert!(ep.select("ASK { ?s ?p ?o }").is_err());
        assert!(ep.ask("SELECT * WHERE { ?s ?p ?o }").is_err());
    }

    #[test]
    fn insert_triples_visible_to_queries() {
        let ep = endpoint();
        let before = ep.triple_count();
        ep.insert_triples(&[Triple::new(
            Term::iri("http://example.org/d"),
            Iri::new("http://example.org/value"),
            Literal::integer(4),
        )])
        .unwrap();
        assert_eq!(ep.triple_count(), before + 1);
        let solutions = ep
            .select("PREFIX ex: <http://example.org/> SELECT ?s WHERE { ?s ex:value 4 }")
            .unwrap();
        assert_eq!(solutions.len(), 1);
    }

    #[test]
    fn named_graph_insertion_is_separate() {
        let ep = endpoint();
        let g = Iri::new("http://example.org/graph/schema");
        ep.insert_triples_named(
            &g,
            &[Triple::new(
                Term::iri("http://example.org/s"),
                Iri::new("http://example.org/p"),
                Term::iri("http://example.org/o"),
            )],
        )
        .unwrap();
        // Named graph triples are not visible in the default graph.
        let solutions = ep
            .select("PREFIX ex: <http://example.org/> SELECT ?o WHERE { ex:s ex:p ?o }")
            .unwrap();
        assert!(solutions.is_empty());
        assert_eq!(ep.store().total_len(), ep.triple_count() + 1);
    }

    #[test]
    fn parse_errors_surface() {
        let ep = endpoint();
        assert!(ep.query("SELECT WHERE {").is_err());
    }

    #[test]
    fn parsed_queries_skip_the_text_round_trip() {
        let ep = endpoint();
        let text =
            "PREFIX ex: <http://example.org/> SELECT ?s WHERE { ?s ex:value ?v . FILTER(?v > 1) }";
        let parsed = crate::parser::parse_query(text).unwrap();
        let via_text = ep.select(text).unwrap();
        let via_ast = ep.select_parsed(&parsed).unwrap();
        assert_eq!(via_text, via_ast);
        assert_eq!(ep.queries_executed(), 2, "parsed execution still counts");
        // Handing an ASK AST to select_parsed is a type error.
        let ask = crate::parser::parse_query("ASK { ?s ?p ?o }").unwrap();
        assert!(ep.select_parsed(&ask).is_err());
    }

    #[test]
    fn change_tracking_surfaces_store_epochs_and_deltas() {
        let ep = endpoint();
        let loaded_epoch = ep.epoch();
        assert!(loaded_epoch > 0, "loading data bumped the epoch");
        assert_eq!(ep.deltas_since(loaded_epoch), None, "tracking off by default");

        ep.enable_change_tracking();
        let tracked_from = ep.epoch();
        let triple = Triple::new(
            Term::iri("http://example.org/d"),
            Iri::new("http://example.org/value"),
            Literal::integer(4),
        );
        ep.insert_triples(std::slice::from_ref(&triple)).unwrap();
        assert!(ep.epoch() > tracked_from);
        let deltas = ep.deltas_since(tracked_from).expect("tracked");
        assert_eq!(deltas.len(), 1);
        assert_eq!(deltas[0].inserted, vec![triple]);
    }

    #[test]
    fn conservative_snapshot_mode_pins_epoch_zero() {
        let ep = ConservativeEndpoint::new(endpoint());
        assert!(ep.inner().epoch() > 0, "inner endpoint has real epochs");
        assert_eq!(ep.epoch(), 0);
        ep.enable_change_tracking(); // must NOT upgrade the contract
        ep.insert_triples(&[Triple::new(
            Term::iri("http://example.org/d"),
            Iri::new("http://example.org/value"),
            Literal::integer(4),
        )])
        .unwrap();
        assert_eq!(ep.epoch(), 0, "mutations never surface as epoch changes");
        assert_eq!(ep.deltas_since(0), None);
        // Queries still flow through to the wrapped endpoint.
        let solutions = ep
            .select("PREFIX ex: <http://example.org/> SELECT ?s WHERE { ?s ex:value 4 }")
            .unwrap();
        assert_eq!(solutions.len(), 1);
    }

    #[test]
    fn conservative_epoch_mode_reports_changes_but_never_deltas() {
        let ep = ConservativeEndpoint::with_epochs(endpoint());
        ep.enable_change_tracking(); // no-op: the inner log stays off
        let before = ep.epoch();
        assert!(before > 0, "epoch-only mode forwards the inner epoch");
        ep.insert_triples(&[Triple::new(
            Term::iri("http://example.org/d"),
            Iri::new("http://example.org/value"),
            Literal::integer(4),
        )])
        .unwrap();
        assert!(ep.epoch() > before, "the change is visible…");
        assert_eq!(ep.deltas_since(before), None, "…but never explainable");
    }
}
