//! The Query Translation phase (Section III-B): a simplified
//! [`QueryPipeline`] is translated into SPARQL, guided by the QB4OLAP
//! metadata.
//!
//! Two semantically equivalent SELECT queries are produced, exactly as in
//! the paper:
//!
//! * the **direct** translation joins the observations with the roll-up
//!   paths (`skos:broader` navigation anchored with `qb4o:memberOf`),
//!   attaches dice attributes to the grouped members and filters them with
//!   `FILTER`, aggregates with `GROUP BY` + the measure's
//!   `qb4o:aggregateFunction`, and turns measure dices into `HAVING`;
//! * the **alternative** translation applies "optimization heuristics
//!   thought to deal with some of the typical limitations of SPARQL
//!   endpoints": attribute dices are evaluated first in nested sub-SELECTs
//!   that pre-select the qualifying level members, so the observation join
//!   only touches the restricted members.

use std::collections::BTreeSet;

use qb4olap::{AggregateFunction, CubeSchema};
use rdf::vocab::{qb as qbv, qb4o, skos};
use rdf::{Iri, Literal, PrefixMap, Term};
use sparql::ast::{
    AggregateExpr, AggregateFunction as SparqlAgg, CmpOp, Expression, GroupGraphPattern,
    OrderCondition, PatternElement, Projection, SelectItem, SelectQuery, TriplePattern, VarOrTerm,
    Variable,
};

use crate::ast::{DiceCondition, DiceOp, DiceOperand, DiceValue};
use crate::cube::CubeAxis;
use crate::error::QlError;
use crate::pipeline::QueryPipeline;

/// The output of the translation phase.
#[derive(Debug, Clone, PartialEq)]
pub struct TranslationOutput {
    /// The direct translation.
    pub direct: SelectQuery,
    /// The alternative, endpoint-friendly translation.
    pub alternative: SelectQuery,
    /// The axes of the result cube (dimension, level, output variable).
    pub axes: Vec<CubeAxis>,
    /// The measures of the result cube: `(property, output variable)`.
    pub measures: Vec<(Iri, String)>,
}

impl TranslationOutput {
    /// The direct translation as SPARQL text.
    pub fn direct_sparql(&self) -> String {
        sparql::select_to_string(&self.direct)
    }

    /// The alternative translation as SPARQL text.
    pub fn alternative_sparql(&self) -> String {
        sparql::select_to_string(&self.alternative)
    }
}

/// Which of the two generated SPARQL queries to execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SparqlVariant {
    /// The direct translation.
    #[default]
    Direct,
    /// The alternative translation with early member restriction.
    Alternative,
}

/// Translates a simplified pipeline into the two SPARQL variants.
pub fn translate(
    pipeline: &QueryPipeline,
    schema: &CubeSchema,
) -> Result<TranslationOutput, QlError> {
    Translator::new(pipeline, schema).run()
}

struct DimensionPlan {
    axis: CubeAxis,
    bottom_level: Iri,
    bottom_property: Iri,
    bottom_variable: String,
    /// Intermediate variables of the roll-up path, bottom-exclusive,
    /// ending with the axis variable.
    path_variables: Vec<String>,
}

struct Translator<'a> {
    pipeline: &'a QueryPipeline,
    schema: &'a CubeSchema,
    used_names: BTreeSet<String>,
}

impl<'a> Translator<'a> {
    fn new(pipeline: &'a QueryPipeline, schema: &'a CubeSchema) -> Self {
        Translator {
            pipeline,
            schema,
            used_names: BTreeSet::new(),
        }
    }

    fn fresh_name(&mut self, base: &str) -> String {
        let sanitized: String = base
            .chars()
            .map(|c| if c.is_alphanumeric() { c } else { '_' })
            .collect();
        let sanitized = if sanitized.is_empty() {
            "v".to_string()
        } else {
            sanitized
        };
        let mut name = sanitized.clone();
        let mut counter = 1;
        while !self.used_names.insert(name.clone()) {
            counter += 1;
            name = format!("{sanitized}{counter}");
        }
        name
    }

    fn run(mut self) -> Result<TranslationOutput, QlError> {
        // Plan each kept (non-sliced) dimension.
        let mut plans: Vec<DimensionPlan> = Vec::new();
        for dimension in &self.schema.dimensions {
            if self.pipeline.slices.contains(&dimension.iri) {
                continue;
            }
            let bottom = self
                .schema
                .bottom_level_of_dimension(&dimension.iri)
                .ok_or_else(|| {
                    QlError::Validation(format!(
                        "dimension <{}> has no bottom level",
                        dimension.iri.as_str()
                    ))
                })?;
            let target = self
                .pipeline
                .rollups
                .get(&dimension.iri)
                .cloned()
                .unwrap_or_else(|| bottom.clone());
            let bottom_variable = self.fresh_name(bottom.local_name());
            let mut path_variables = Vec::new();
            if target != bottom {
                let (_, steps) = dimension.rollup_path(&bottom, &target).ok_or_else(|| {
                    QlError::Validation(format!(
                        "no roll-up path from <{}> to <{}> in dimension <{}>",
                        bottom.as_str(),
                        target.as_str(),
                        dimension.iri.as_str()
                    ))
                })?;
                for step in &steps {
                    path_variables.push(self.fresh_name(step.parent.local_name()));
                }
            }
            let axis_variable = path_variables
                .last()
                .cloned()
                .unwrap_or_else(|| bottom_variable.clone());
            plans.push(DimensionPlan {
                axis: CubeAxis {
                    dimension: dimension.iri.clone(),
                    level: target,
                    variable: axis_variable,
                },
                bottom_level: bottom,
                bottom_property: self
                    .schema
                    .bottom_level_of_dimension(&dimension.iri)
                    .expect("checked above"),
                bottom_variable,
                path_variables,
            });
        }

        // Measures.
        let mut measures: Vec<(Iri, String, String, AggregateFunction)> = Vec::new();
        for (index, measure) in self.schema.measures.iter().enumerate() {
            let raw_variable = format!("m{index}");
            let output_variable = self.fresh_name(measure.property.local_name());
            measures.push((
                measure.property.clone(),
                raw_variable,
                output_variable,
                measure.aggregate,
            ));
        }

        // Partition the dices into attribute dices and measure dices.
        let mut attribute_dices: Vec<&DiceCondition> = Vec::new();
        let mut measure_dices: Vec<&DiceCondition> = Vec::new();
        for dice in &self.pipeline.dices {
            let comparisons = dice.comparisons();
            let has_measure = comparisons
                .iter()
                .any(|(operand, _, _)| matches!(operand, DiceOperand::Measure(_)));
            let has_attribute = comparisons
                .iter()
                .any(|(operand, _, _)| matches!(operand, DiceOperand::Attribute { .. }));
            if has_measure && has_attribute {
                return Err(QlError::Validation(
                    "a single DICE condition cannot mix measures and level attributes".to_string(),
                ));
            }
            if has_measure {
                measure_dices.push(dice);
            } else {
                attribute_dices.push(dice);
            }
        }

        let direct = self.build_query(&plans, &measures, &attribute_dices, &measure_dices, false)?;
        let alternative =
            self.build_query(&plans, &measures, &attribute_dices, &measure_dices, true)?;

        Ok(TranslationOutput {
            direct,
            alternative,
            axes: plans.into_iter().map(|p| p.axis).collect(),
            measures: measures
                .into_iter()
                .map(|(property, _, output, _)| (property, output))
                .collect(),
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn build_query(
        &mut self,
        plans: &[DimensionPlan],
        measures: &[(Iri, String, String, AggregateFunction)],
        attribute_dices: &[&DiceCondition],
        measure_dices: &[&DiceCondition],
        alternative: bool,
    ) -> Result<SelectQuery, QlError> {
        let mut query = SelectQuery::new();
        query.prefixes = PrefixMap::with_common_prefixes();

        let obs = Variable::new("o");
        let mut pattern = GroupGraphPattern::new();

        // In the alternative variant, pre-restrict the diced members with
        // nested sub-selects placed before the observation join.
        if alternative {
            for dice in attribute_dices {
                if let Some(element) = self.member_restriction_subselect(plans, dice)? {
                    pattern.elements.push(element);
                }
            }
        }

        // Observation skeleton.
        pattern.push_triple(TriplePattern::new(
            VarOrTerm::Var(obs.clone()),
            rdf::vocab::rdf::type_(),
            qbv::observation(),
        ));
        pattern.push_triple(TriplePattern::new(
            VarOrTerm::Var(obs.clone()),
            qbv::data_set(),
            VarOrTerm::Term(Term::Iri(self.pipeline.dataset.clone())),
        ));

        // Dimension joins and roll-up navigation.
        for plan in plans {
            pattern.push_triple(TriplePattern::new(
                VarOrTerm::Var(obs.clone()),
                plan.bottom_property.clone(),
                VarOrTerm::var(plan.bottom_variable.clone()),
            ));
            let mut previous = plan.bottom_variable.clone();
            for variable in &plan.path_variables {
                pattern.push_triple(TriplePattern::new(
                    VarOrTerm::var(previous.clone()),
                    skos::broader(),
                    VarOrTerm::var(variable.clone()),
                ));
                previous = variable.clone();
            }
            // Anchor the member carried by the axis variable at its level,
            // "guided by the dimension hierarchy representation provided by
            // the QB4OLAP metadata".
            pattern.push_triple(TriplePattern::new(
                VarOrTerm::var(plan.axis.variable.clone()),
                qb4o::member_of(),
                VarOrTerm::Term(Term::Iri(plan.axis.level.clone())),
            ));
            let _ = &plan.bottom_level;
        }

        // Measures.
        for (property, raw, _, _) in measures {
            pattern.push_triple(TriplePattern::new(
                VarOrTerm::Var(obs.clone()),
                property.clone(),
                VarOrTerm::var(raw.clone()),
            ));
        }

        // Attribute dices: in the direct variant, join the attributes and
        // filter; in the alternative variant the sub-selects already
        // restricted the members, so nothing more is needed here.
        if !alternative {
            for dice in attribute_dices {
                let (triples, expression) = self.attribute_dice_patterns(plans, dice)?;
                for triple in triples {
                    pattern.push_triple(triple);
                }
                pattern.push_filter(expression);
            }
        }

        // Projection, grouping, ordering.
        let mut items: Vec<SelectItem> = Vec::new();
        let mut group_by: Vec<Expression> = Vec::new();
        let mut order_by: Vec<OrderCondition> = Vec::new();
        for plan in plans {
            let variable = Variable::new(plan.axis.variable.clone());
            items.push(SelectItem::Var(variable.clone()));
            group_by.push(Expression::Var(variable.clone()));
            order_by.push(OrderCondition {
                expr: Expression::Var(variable),
                descending: false,
            });
        }
        for (_, raw, output, aggregate) in measures {
            items.push(SelectItem::Expr {
                expr: Expression::Aggregate(AggregateExpr {
                    function: to_sparql_aggregate(*aggregate),
                    distinct: false,
                    expr: Some(Box::new(Expression::var(raw.clone()))),
                }),
                alias: Variable::new(output.clone()),
            });
        }
        query.projection = Projection::Items(items);
        query.pattern = pattern;
        query.group_by = group_by;
        query.order_by = order_by;

        // Measure dices become HAVING constraints over the aggregates.
        for dice in measure_dices {
            query.having.push(self.measure_dice_expression(measures, dice)?);
        }

        Ok(query)
    }

    /// The plan whose *current* level matches the dice operand's level.
    fn plan_for_attribute<'p>(
        &self,
        plans: &'p [DimensionPlan],
        dimension: &Iri,
        level: &Iri,
    ) -> Result<&'p DimensionPlan, QlError> {
        plans
            .iter()
            .find(|p| &p.axis.dimension == dimension && &p.axis.level == level)
            .ok_or_else(|| {
                QlError::Validation(format!(
                    "the dice on dimension <{}> refers to level <{}>, which is not the level of that dimension in the result",
                    dimension.as_str(),
                    level.as_str()
                ))
            })
    }

    /// Attribute triples + filter expression for a dice (direct variant).
    fn attribute_dice_patterns(
        &mut self,
        plans: &[DimensionPlan],
        dice: &DiceCondition,
    ) -> Result<(Vec<TriplePattern>, Expression), QlError> {
        let mut triples = Vec::new();
        let expression = self.condition_expression(plans, dice, &mut triples)?;
        Ok((triples, expression))
    }

    fn condition_expression(
        &mut self,
        plans: &[DimensionPlan],
        condition: &DiceCondition,
        triples: &mut Vec<TriplePattern>,
    ) -> Result<Expression, QlError> {
        match condition {
            DiceCondition::And(a, b) => Ok(Expression::And(
                Box::new(self.condition_expression(plans, a, triples)?),
                Box::new(self.condition_expression(plans, b, triples)?),
            )),
            DiceCondition::Or(a, b) => Ok(Expression::Or(
                Box::new(self.condition_expression(plans, a, triples)?),
                Box::new(self.condition_expression(plans, b, triples)?),
            )),
            DiceCondition::Comparison { operand, op, value } => match operand {
                DiceOperand::Attribute {
                    dimension,
                    level,
                    attribute,
                } => {
                    let plan = self.plan_for_attribute(plans, dimension, level)?;
                    let attribute_variable = self.fresh_name(attribute.local_name());
                    triples.push(TriplePattern::new(
                        VarOrTerm::var(plan.axis.variable.clone()),
                        attribute.clone(),
                        VarOrTerm::var(attribute_variable.clone()),
                    ));
                    Ok(comparison_expression(&attribute_variable, *op, value))
                }
                DiceOperand::Measure(_) => Err(QlError::Validation(
                    "measure comparisons cannot appear inside attribute dice conditions"
                        .to_string(),
                )),
            },
        }
    }

    /// A `{ SELECT ?member WHERE { ?member qb4o:memberOf <level> ; <attr> ?a . FILTER(...) } }`
    /// sub-select that pre-restricts the members of the diced level
    /// (alternative variant). Only produced when the whole condition refers
    /// to a single dimension; otherwise `None` is returned and the condition
    /// is handled exactly like the direct variant.
    fn member_restriction_subselect(
        &mut self,
        plans: &[DimensionPlan],
        dice: &DiceCondition,
    ) -> Result<Option<PatternElement>, QlError> {
        let comparisons = dice.comparisons();
        let mut dimensions: BTreeSet<&Iri> = BTreeSet::new();
        for (operand, _, _) in &comparisons {
            if let DiceOperand::Attribute { dimension, .. } = operand {
                dimensions.insert(dimension);
            }
        }
        if dimensions.len() != 1 {
            return Ok(None);
        }
        let dimension = (*dimensions.iter().next().expect("one dimension")).clone();
        let level = match &comparisons[0].0 {
            DiceOperand::Attribute { level, .. } => level.clone(),
            DiceOperand::Measure(_) => return Ok(None),
        };
        let plan = self.plan_for_attribute(plans, &dimension, &level)?;
        let member_variable = plan.axis.variable.clone();

        let mut sub = SelectQuery::new();
        sub.prefixes = PrefixMap::with_common_prefixes();
        sub.projection = Projection::Items(vec![SelectItem::Var(Variable::new(
            member_variable.clone(),
        ))]);
        sub.distinct = true;
        let mut sub_pattern = GroupGraphPattern::new();
        sub_pattern.push_triple(TriplePattern::new(
            VarOrTerm::var(member_variable.clone()),
            qb4o::member_of(),
            VarOrTerm::Term(Term::Iri(level.clone())),
        ));
        let mut triples = Vec::new();
        let expression = self.condition_expression(plans, dice, &mut triples)?;
        for triple in triples {
            sub_pattern.push_triple(triple);
        }
        sub_pattern.push_filter(expression);
        sub.pattern = sub_pattern;
        Ok(Some(PatternElement::SubSelect(Box::new(sub))))
    }

    /// HAVING expression for a measure dice.
    fn measure_dice_expression(
        &self,
        measures: &[(Iri, String, String, AggregateFunction)],
        condition: &DiceCondition,
    ) -> Result<Expression, QlError> {
        match condition {
            DiceCondition::And(a, b) => Ok(Expression::And(
                Box::new(self.measure_dice_expression(measures, a)?),
                Box::new(self.measure_dice_expression(measures, b)?),
            )),
            DiceCondition::Or(a, b) => Ok(Expression::Or(
                Box::new(self.measure_dice_expression(measures, a)?),
                Box::new(self.measure_dice_expression(measures, b)?),
            )),
            DiceCondition::Comparison { operand, op, value } => match operand {
                DiceOperand::Measure(property) => {
                    let (_, raw, _, aggregate) = measures
                        .iter()
                        .find(|(p, ..)| p == property)
                        .ok_or_else(|| {
                            QlError::Validation(format!(
                                "unknown measure <{}>",
                                property.as_str()
                            ))
                        })?;
                    let aggregate_expr = Expression::Aggregate(AggregateExpr {
                        function: to_sparql_aggregate(*aggregate),
                        distinct: false,
                        expr: Some(Box::new(Expression::var(raw.clone()))),
                    });
                    let constant = match value {
                        DiceValue::Number(n) => Expression::Constant(Term::Literal(
                            if n.fract() == 0.0 {
                                Literal::integer(*n as i64)
                            } else {
                                Literal::decimal(*n)
                            },
                        )),
                        DiceValue::String(s) => {
                            Expression::Constant(Term::Literal(Literal::string(s)))
                        }
                        DiceValue::Iri(iri) => Expression::Constant(Term::Iri(iri.clone())),
                    };
                    Ok(Expression::Compare(
                        Box::new(aggregate_expr),
                        to_sparql_cmp(*op),
                        Box::new(constant),
                    ))
                }
                DiceOperand::Attribute { .. } => Err(QlError::Validation(
                    "attribute comparisons cannot appear inside measure dice conditions"
                        .to_string(),
                )),
            },
        }
    }
}

fn comparison_expression(variable: &str, op: DiceOp, value: &DiceValue) -> Expression {
    match value {
        DiceValue::String(s) => Expression::Compare(
            Box::new(Expression::Call(
                sparql::ast::Function::Str,
                vec![Expression::var(variable)],
            )),
            to_sparql_cmp(op),
            Box::new(Expression::Constant(Term::Literal(Literal::string(s)))),
        ),
        DiceValue::Number(n) => Expression::Compare(
            Box::new(Expression::var(variable)),
            to_sparql_cmp(op),
            Box::new(Expression::Constant(Term::Literal(if n.fract() == 0.0 {
                Literal::integer(*n as i64)
            } else {
                Literal::decimal(*n)
            }))),
        ),
        DiceValue::Iri(iri) => Expression::Compare(
            Box::new(Expression::var(variable)),
            to_sparql_cmp(op),
            Box::new(Expression::Constant(Term::Iri(iri.clone()))),
        ),
    }
}

/// The SPARQL comparison operator implementing a QL dice operator (shared
/// with the columnar backend, which reuses the SPARQL value-comparison
/// semantics).
pub(crate) fn to_sparql_cmp(op: DiceOp) -> CmpOp {
    match op {
        DiceOp::Eq => CmpOp::Eq,
        DiceOp::Ne => CmpOp::Ne,
        DiceOp::Lt => CmpOp::Lt,
        DiceOp::Le => CmpOp::Le,
        DiceOp::Gt => CmpOp::Gt,
        DiceOp::Ge => CmpOp::Ge,
    }
}

fn to_sparql_aggregate(aggregate: AggregateFunction) -> SparqlAgg {
    match aggregate {
        AggregateFunction::Sum => SparqlAgg::Sum,
        AggregateFunction::Avg => SparqlAgg::Avg,
        AggregateFunction::Count => SparqlAgg::Count,
        AggregateFunction::Min => SparqlAgg::Min,
        AggregateFunction::Max => SparqlAgg::Max,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_ql;
    use crate::pipeline::simplify;
    use crate::testutil::demo_cube_schema;
    use rdf::vocab::demo_schema;

    fn translate_text(text: &str) -> TranslationOutput {
        let schema = demo_cube_schema();
        let program = parse_ql(text).unwrap();
        let (pipeline, _) = simplify(&program, &schema).unwrap();
        translate(&pipeline, &schema).unwrap()
    }

    #[test]
    fn mary_query_translates_to_long_sparql() {
        let output = translate_text(&datagen::workload::mary_query());
        let direct = output.direct_sparql();
        // The paper: "the above query translates to more than 30 lines of SPARQL".
        assert!(
            direct.lines().count() > 30,
            "expected > 30 lines, got {}:\n{direct}",
            direct.lines().count()
        );
        // Both variants reparse as valid SPARQL.
        sparql::parse_select(&direct).expect("direct variant must be valid SPARQL");
        sparql::parse_select(&output.alternative_sparql())
            .expect("alternative variant must be valid SPARQL");
        // Five axes remain (asylapp sliced out of six dimensions).
        assert_eq!(output.axes.len(), 5);
        assert!(output
            .axes
            .iter()
            .any(|a| a.level == demo_schema::continent()));
        assert!(output.axes.iter().any(|a| a.level == demo_schema::year()));
        assert_eq!(output.measures.len(), 1);
    }

    #[test]
    fn direct_variant_filters_alternative_uses_subselects() {
        let output = translate_text(&datagen::workload::mary_query());
        let direct = output.direct_sparql();
        let alternative = output.alternative_sparql();
        assert!(direct.contains("FILTER"), "{direct}");
        assert!(!direct.contains("SELECT DISTINCT ?continent"), "{direct}");
        assert!(
            alternative.contains("SELECT DISTINCT"),
            "the alternative variant pre-restricts members:\n{alternative}"
        );
        assert!(alternative.contains("memberOf"), "{alternative}");
    }

    #[test]
    fn rollup_paths_navigate_broader_links() {
        let output = translate_text(&datagen::workload::rollup_citizenship_to_continent());
        let direct = output.direct_sparql();
        assert!(direct.contains("skos:broader"), "{direct}");
        assert!(direct.contains("qb4o:memberOf"), "{direct}");
        assert!(direct.contains("GROUP BY"), "{direct}");
        assert!(direct.contains("SUM(?m0)"), "{direct}");
    }

    #[test]
    fn measure_dice_becomes_having() {
        let output = translate_text(&datagen::workload::yearly_large_cells());
        let direct = output.direct_sparql();
        assert!(direct.contains("HAVING"), "{direct}");
        assert!(direct.contains("> \"400\"") || direct.contains("> 400"), "{direct}");
    }

    #[test]
    fn multi_level_rollup_chains_broader_twice() {
        let schema = demo_cube_schema();
        let program = parse_ql(
            "PREFIX schema: <http://www.fing.edu.uy/inco/cubes/schemas/migr_asyapp#>;
             PREFIX data: <http://eurostat.linked-statistics.org/data/>;
             QUERY
             $C1 := ROLLUP (data:migr_asyappctzm, schema:citizenshipDim, schema:citAll);",
        )
        .unwrap();
        let (pipeline, _) = simplify(&program, &schema).unwrap();
        let output = translate(&pipeline, &schema).unwrap();
        let direct = output.direct_sparql();
        assert_eq!(direct.matches("skos:broader").count(), 2, "{direct}");
    }

    #[test]
    fn slicing_all_dimensions_leaves_a_single_cell_query() {
        let output = translate_text(&datagen::workload::totals_by_citizenship());
        // Only the citizenship dimension remains as an axis.
        assert_eq!(output.axes.len(), 1);
        assert_eq!(
            output.axes[0].dimension,
            demo_schema::citizenship_dim()
        );
        let direct = output.direct_sparql();
        assert!(direct.contains("GROUP BY ?citizen"), "{direct}");
    }

    #[test]
    fn mixing_measures_and_attributes_in_one_dice_is_rejected() {
        let schema = demo_cube_schema();
        let program = parse_ql(
            "PREFIX schema: <http://www.fing.edu.uy/inco/cubes/schemas/migr_asyapp#>;
             PREFIX property: <http://eurostat.linked-statistics.org/property#>;
             PREFIX sdmx-measure: <http://purl.org/linked-data/sdmx/2009/measure#>;
             PREFIX data: <http://eurostat.linked-statistics.org/data/>;
             QUERY
             $C1 := DICE (data:migr_asyappctzm,
               schema:destinationDim|property:geo|schema:countryName = \"France\"
               AND sdmx-measure:obsValue > 10);",
        )
        .unwrap();
        let (pipeline, _) = simplify(&program, &schema).unwrap();
        assert!(matches!(
            translate(&pipeline, &schema),
            Err(QlError::Validation(_))
        ));
    }
}
