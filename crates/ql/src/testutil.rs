//! Test fixtures shared by the unit tests of this crate and, behind the
//! `testutil` feature, by downstream test harnesses (the qlsmith fuzzer).

use qb4olap::{
    AggregateFunction, Cardinality, CubeSchema, Dimension, Hierarchy, HierarchyStep,
    LevelAttribute, LevelComponent, MeasureSpec,
};
use rdf::vocab::{demo_schema, eurostat_data, eurostat_property, sdmx_dimension, sdmx_measure};
use rdf::Iri;

/// The schema produced by the demo enrichment: the four dimensions used in
/// Mary's query (citizenship, destination, time, applicant type) plus age
/// and sex, with the paper's names.
pub fn demo_cube_schema() -> CubeSchema {
    let mut schema = CubeSchema::new(
        demo_schema::term("migr_asyappctzmQB4O"),
        eurostat_data::migr_asyappctzm(),
    );
    schema.measures.push(MeasureSpec {
        property: sdmx_measure::obs_value(),
        aggregate: AggregateFunction::Sum,
    });

    let mut add_dim = |dim: Iri, hier: Iri, bottom: Iri, uppers: Vec<Iri>| {
        schema.level_components.push(LevelComponent {
            level: bottom.clone(),
            cardinality: Cardinality::ManyToOne,
            dimension: Some(dim.clone()),
        });
        let mut hierarchy = Hierarchy::new(hier);
        hierarchy.levels.push(bottom.clone());
        let mut child = bottom.clone();
        for upper in &uppers {
            hierarchy.levels.push(upper.clone());
            hierarchy.steps.push(HierarchyStep {
                child: child.clone(),
                parent: upper.clone(),
                cardinality: Cardinality::ManyToOne,
            });
            child = upper.clone();
        }
        let mut dimension = Dimension::new(dim);
        dimension.hierarchies.push(hierarchy);
        schema.dimensions.push(dimension);
        schema.level_mut(&bottom);
        for upper in uppers {
            schema.level_mut(&upper);
        }
    };

    add_dim(
        demo_schema::citizenship_dim(),
        demo_schema::citizenship_geo_hier(),
        eurostat_property::citizen(),
        vec![demo_schema::continent(), demo_schema::cit_all()],
    );
    add_dim(
        demo_schema::destination_dim(),
        demo_schema::term("destinationHier"),
        eurostat_property::geo(),
        vec![demo_schema::term("politicalOrg")],
    );
    add_dim(
        demo_schema::time_dim(),
        demo_schema::term("timeHier"),
        sdmx_dimension::ref_period(),
        vec![demo_schema::year()],
    );
    add_dim(
        demo_schema::asylapp_dim(),
        demo_schema::term("asylappHier"),
        eurostat_property::asyl_app(),
        vec![],
    );
    add_dim(
        demo_schema::term("ageDim"),
        demo_schema::term("ageHier"),
        eurostat_property::age(),
        vec![demo_schema::term("ageGroup")],
    );
    add_dim(
        demo_schema::term("sexDim"),
        demo_schema::term("sexHier"),
        eurostat_property::sex(),
        vec![],
    );

    schema
        .level_mut(&demo_schema::continent())
        .attributes
        .push(LevelAttribute::new(demo_schema::continent_name()));
    schema
        .level_mut(&eurostat_property::geo())
        .attributes
        .push(LevelAttribute::new(demo_schema::country_name()));
    schema
}
