//! The Querying module workflow (Figure 3 of the paper): QL text is parsed,
//! simplified, translated to SPARQL and executed, and the resulting cube is
//! computed on the fly.
//!
//! Execution goes through an [`ExecutionBackend`] seam: the
//! [`ExecutionBackend::Sparql`] path evaluates one of the two generated
//! SPARQL variants on the endpoint (the paper's workflow), while
//! [`ExecutionBackend::Columnar`] runs the simplified pipeline on a
//! [`cubestore::MaterializedCube`] served by a shared
//! [`cubestore::CubeCatalog`] — built lazily from the endpoint, kept live
//! by O(delta) incremental maintenance (copy-on-write refreshes for
//! appends, tombstoned rows for whole-observation removals, a reported
//! rebuild for everything the classifier refuses), and validated against
//! the store's mutation epoch on every execution, so no SPARQL round-trip
//! per query and no stale reads. Both backends return identical
//! [`ResultCube`]s for the same prepared query.

use std::sync::Arc;
use std::time::{Duration, Instant};

use cubestore::{CubeCatalog, MaintenanceReport, MaterializedCube};
use qb4olap::CubeSchema;
use rdf::Iri;
use sparql::Endpoint;

use crate::ast::QlProgram;
use crate::columnar;
use crate::cube::{CubeAxis, ResultCube};
use crate::error::QlError;
use crate::parser::parse_ql;
use crate::pipeline::{simplify, QueryPipeline, SimplificationReport};
use crate::translate::{translate, SparqlVariant, TranslationOutput};

/// Which engine executes a prepared query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutionBackend {
    /// Translate-and-ship: evaluate the chosen generated SPARQL variant on
    /// the endpoint (the paper's Figure 3 workflow).
    Sparql(SparqlVariant),
    /// Run the simplified pipeline on the lazily materialized columnar
    /// cube, bypassing SPARQL entirely.
    Columnar,
}

impl Default for ExecutionBackend {
    fn default() -> Self {
        ExecutionBackend::Sparql(SparqlVariant::default())
    }
}

impl From<SparqlVariant> for ExecutionBackend {
    fn from(variant: SparqlVariant) -> Self {
        ExecutionBackend::Sparql(variant)
    }
}

/// A QL query after the Simplification and Translation phases, ready to be
/// executed (possibly several times, with either backend).
#[derive(Debug, Clone)]
pub struct PreparedQuery {
    /// The parsed program.
    pub program: QlProgram,
    /// The simplified pipeline.
    pub pipeline: QueryPipeline,
    /// What the simplification did.
    pub report: SimplificationReport,
    /// The translation (both SPARQL variants + result-cube metadata).
    pub translation: TranslationOutput,
    /// The backend [`QueryingModule::run`] executes the query on.
    pub backend: ExecutionBackend,
}

impl PreparedQuery {
    /// The SPARQL text of the chosen variant.
    pub fn sparql(&self, variant: SparqlVariant) -> String {
        match variant {
            SparqlVariant::Direct => self.translation.direct_sparql(),
            SparqlVariant::Alternative => self.translation.alternative_sparql(),
        }
    }

    /// The axes of the result cube.
    pub fn axes(&self) -> &[CubeAxis] {
        &self.translation.axes
    }

    /// Selects the backend [`QueryingModule::run`] executes on.
    pub fn with_backend(mut self, backend: ExecutionBackend) -> Self {
        self.backend = backend;
        self
    }
}

/// Timings of one query execution, per workflow phase.
#[derive(Debug, Clone, Copy, Default)]
pub struct QueryTimings {
    /// Parsing + simplification + translation.
    pub preparation: Duration,
    /// Backend execution (including result-cube construction).
    pub execution: Duration,
}

/// The Querying module: holds the endpoint and the QB4OLAP schema of one
/// cube, plus the shared [`CubeCatalog`] the columnar backend serves from.
///
/// The catalog validates the store's mutation epoch on **every**
/// [`QueryingModule::execute`], replaying recorded deltas (or rebuilding)
/// when the store moved — columnar results can never be stale, and several
/// modules (Querying and Exploration) can share one live columnar
/// representation by sharing the catalog.
pub struct QueryingModule<'e> {
    endpoint: &'e dyn Endpoint,
    schema: CubeSchema,
    catalog: Arc<CubeCatalog>,
}

impl<'e> QueryingModule<'e> {
    /// Creates the module by reading the QB4OLAP schema of `dataset` back
    /// from the endpoint (i.e. after the Enrichment module loaded it). The
    /// module gets a private catalog; use
    /// [`Self::for_dataset_with_catalog`] to share one across consumers.
    pub fn for_dataset(endpoint: &'e dyn Endpoint, dataset: &Iri) -> Result<Self, QlError> {
        Self::for_dataset_with_catalog(endpoint, dataset, Arc::new(CubeCatalog::new()))
    }

    /// Creates the module on a shared cube catalog.
    pub fn for_dataset_with_catalog(
        endpoint: &'e dyn Endpoint,
        dataset: &Iri,
        catalog: Arc<CubeCatalog>,
    ) -> Result<Self, QlError> {
        let schema = qb4olap::schema_from_endpoint(endpoint, dataset)?;
        Ok(QueryingModule {
            endpoint,
            schema,
            catalog,
        })
    }

    /// Creates the module from an already materialised schema.
    pub fn with_schema(endpoint: &'e dyn Endpoint, schema: CubeSchema) -> Self {
        QueryingModule {
            endpoint,
            schema,
            catalog: Arc::new(CubeCatalog::new()),
        }
    }

    /// Creates the module from an already materialised schema **and** a
    /// shared catalog — the HTTP server's per-request path: the schema is
    /// read from the endpoint once and cached, so opening the module costs
    /// no SPARQL round-trips, while columnar serving still flows through
    /// the one shared live catalog.
    pub fn with_schema_and_catalog(
        endpoint: &'e dyn Endpoint,
        schema: CubeSchema,
        catalog: Arc<CubeCatalog>,
    ) -> Self {
        QueryingModule {
            endpoint,
            schema,
            catalog,
        }
    }

    /// The cube schema the module works against.
    pub fn schema(&self) -> &CubeSchema {
        &self.schema
    }

    /// The cube catalog the module serves columnar executions from.
    pub fn catalog(&self) -> &Arc<CubeCatalog> {
        &self.catalog
    }

    /// The maintenance history of this module's dataset (first build, delta
    /// refreshes, rebuild fallbacks — with reasons and timings).
    pub fn maintenance_reports(&self) -> Vec<MaintenanceReport> {
        self.catalog.reports(&self.schema.dataset)
    }

    /// The up-to-date columnar materialization of the dataset, built on
    /// first call and incrementally maintained afterwards: if the store
    /// mutated since the last call, the catalog replays the recorded
    /// deltas or rebuilds before returning.
    pub fn materialize(&self) -> Result<Arc<MaterializedCube>, QlError> {
        self.catalog
            .serve(self.endpoint, &self.schema)
            .map_err(|e| QlError::Columnar(e.to_string()))
    }

    /// Pins a [`cubestore::CubeSnapshot`] of the dataset **without waiting
    /// on maintenance**: appliable deltas are accreted into the snapshot's
    /// overlay inline, structural changes trigger a background rebuild
    /// while this call returns the stale-but-consistent pin immediately.
    /// Execute against it with [`Self::execute_on_snapshot`]; results are
    /// bit-identical to the blocking [`Self::materialize`] path at the
    /// snapshot's epoch.
    pub fn snapshot(&self) -> Result<cubestore::CubeSnapshot, QlError> {
        self.catalog
            .serve_snapshot(self.endpoint, &self.schema)
            .map_err(|e| QlError::Columnar(e.to_string()))
    }

    /// Like [`Self::snapshot`], but waits for any background fold to
    /// publish first and retries until the pin is current — the
    /// "fold-then-serve" side of the overlay differential oracle. Falls
    /// back to the blocking serve if the store keeps mutating underneath.
    pub fn snapshot_settled(&self) -> Result<cubestore::CubeSnapshot, QlError> {
        for _ in 0..8 {
            let snapshot = self.snapshot()?;
            if snapshot.epoch() == self.endpoint.epoch()
                && !self.catalog.maintenance_in_flight(&self.schema.dataset)
            {
                return Ok(snapshot);
            }
            self.catalog.wait_for_maintenance(&self.schema.dataset);
        }
        // A store mutating faster than folds can land never settles; the
        // blocking serve is fresh by construction at its epoch check.
        self.materialize()?;
        self.catalog
            .current_snapshot(&self.schema.dataset)
            .ok_or_else(|| QlError::Columnar("catalog lost the served entry".to_string()))
    }

    /// Runs a prepared query's columnar pipeline against an explicitly
    /// pinned snapshot (base + overlay merged at scan time). The snapshot
    /// is immutable: concurrent mutations and background folds cannot
    /// change what this execution sees.
    pub fn execute_on_snapshot(
        &self,
        prepared: &PreparedQuery,
        snapshot: &cubestore::CubeSnapshot,
    ) -> Result<ResultCube, QlError> {
        let _span = obs::span("ql.execute");
        let metrics = self.catalog.metrics();
        metrics.counter("ql.execute.columnar_snapshot").inc();
        let started = Instant::now();
        let (cube, stats) = columnar::execute_columnar(snapshot.cube(), prepared)?;
        stats.record_into(metrics);
        metrics
            .histogram("ql.execute.duration_ns")
            .record(started.elapsed().as_nanos() as u64);
        Ok(cube)
    }

    /// Runs the Query Simplification and Query Translation phases. The
    /// prepared query carries the default backend; override it with
    /// [`PreparedQuery::with_backend`] or pick one per [`Self::execute`].
    pub fn prepare(&self, ql_text: &str) -> Result<PreparedQuery, QlError> {
        let _span = obs::span("ql.prepare");
        let program = parse_ql(ql_text)?;
        let (pipeline, report) = simplify(&program, &self.schema)?;
        let translation = translate(&pipeline, &self.schema)?;
        Ok(PreparedQuery {
            program,
            pipeline,
            report,
            translation,
            backend: ExecutionBackend::default(),
        })
    }

    /// Runs the Execution phase on the chosen backend. Accepts a plain
    /// [`SparqlVariant`] as shorthand for [`ExecutionBackend::Sparql`].
    pub fn execute(
        &self,
        prepared: &PreparedQuery,
        backend: impl Into<ExecutionBackend>,
    ) -> Result<ResultCube, QlError> {
        let _span = obs::span("ql.execute");
        let metrics = self.catalog.metrics();
        let started = Instant::now();
        let cube = match backend.into() {
            ExecutionBackend::Sparql(variant) => {
                metrics.counter("ql.execute.sparql").inc();
                let sparql_text = prepared.sparql(variant);
                let solutions = self.endpoint.select(&sparql_text)?;
                ResultCube::from_solutions(
                    prepared.translation.axes.clone(),
                    prepared.translation.measures.clone(),
                    &solutions,
                )
            }
            ExecutionBackend::Columnar => {
                metrics.counter("ql.execute.columnar").inc();
                let materialized = self.materialize()?;
                let (cube, stats) = columnar::execute_columnar(&materialized, prepared)?;
                stats.record_into(metrics);
                cube
            }
        };
        metrics
            .histogram("ql.execute.duration_ns")
            .record(started.elapsed().as_nanos() as u64);
        Ok(cube)
    }

    /// [`Self::execute`] with an EXPLAIN-style [`obs::ExecutionProfile`]:
    /// the logical plan (one line per pipeline operation, plus the backend's
    /// physical plan) and per-step timings with row counts.
    pub fn execute_profiled(
        &self,
        prepared: &PreparedQuery,
        backend: impl Into<ExecutionBackend>,
    ) -> Result<(ResultCube, obs::ExecutionProfile), QlError> {
        let _span = obs::span("ql.execute");
        let metrics = self.catalog.metrics();
        let total = Instant::now();
        let (cube, mut profile) = match backend.into() {
            ExecutionBackend::Sparql(variant) => {
                metrics.counter("ql.execute.sparql").inc();
                let name = match variant {
                    SparqlVariant::Direct => "sparql:direct",
                    SparqlVariant::Alternative => "sparql:alternative",
                };
                let mut profile = obs::ExecutionProfile::new(name);
                for line in prepared.pipeline.plan_lines() {
                    profile.push_plan(&line);
                }
                let started = Instant::now();
                let sparql_text = prepared.sparql(variant);
                profile.push_step(
                    "translate-sparql",
                    started.elapsed(),
                    Some(sparql_text.lines().count() as u64),
                    "generated query lines",
                );
                let started = Instant::now();
                let solutions = self.endpoint.select(&sparql_text)?;
                profile.push_step("select", started.elapsed(), Some(solutions.len() as u64), "");
                let started = Instant::now();
                let cube = ResultCube::from_solutions(
                    prepared.translation.axes.clone(),
                    prepared.translation.measures.clone(),
                    &solutions,
                );
                profile.push_step(
                    "assemble-cube",
                    started.elapsed(),
                    Some(cube.cells.len() as u64),
                    "",
                );
                profile.add_counter("solutions", solutions.len() as u64);
                (cube, profile)
            }
            ExecutionBackend::Columnar => {
                metrics.counter("ql.execute.columnar").inc();
                let started = Instant::now();
                let materialized = self.materialize()?;
                let materialize = started.elapsed();
                let (cube, inner, stats) =
                    columnar::execute_columnar_traced(&materialized, prepared)?;
                stats.record_into(metrics);
                let mut profile = obs::ExecutionProfile::new(&inner.backend);
                for line in prepared.pipeline.plan_lines() {
                    profile.push_plan(&line);
                }
                for line in &inner.plan {
                    profile.push_plan(line);
                }
                if let Some(snapshot) = self.catalog.current_snapshot(&self.schema.dataset) {
                    profile.push_plan(snapshot.plan_line());
                }
                profile.push_step(
                    "materialize",
                    materialize,
                    Some(materialized.row_count() as u64),
                    "catalog-served cube rows",
                );
                profile.steps.extend(inner.steps);
                profile.counters = inner.counters;
                (cube, profile)
            }
        };
        profile.total = total.elapsed();
        metrics
            .histogram("ql.execute.duration_ns")
            .record(profile.total.as_nanos() as u64);
        Ok((cube, profile))
    }

    /// Prepares `ql_text` and renders EXPLAIN ANALYZE output for **both**
    /// backends (the direct SPARQL variant and the columnar engine), so the
    /// plans and timings can be compared side by side.
    pub fn explain(&self, ql_text: &str) -> Result<String, QlError> {
        let prepared = self.prepare(ql_text)?;
        let (_, sparql_profile) =
            self.execute_profiled(&prepared, SparqlVariant::Direct)?;
        let (_, columnar_profile) =
            self.execute_profiled(&prepared, ExecutionBackend::Columnar)?;
        Ok(format!(
            "{}\n{}",
            sparql_profile.render(),
            columnar_profile.render()
        ))
    }

    /// Convenience: full workflow (parse → simplify → translate → execute
    /// on the prepared query's backend, the direct SPARQL variant by
    /// default), returning the prepared query, the cube and the phase
    /// timings.
    pub fn run(&self, ql_text: &str) -> Result<(PreparedQuery, ResultCube, QueryTimings), QlError> {
        let started = Instant::now();
        let prepared = self.prepare(ql_text)?;
        let preparation = started.elapsed();
        let started = Instant::now();
        let cube = self.execute(&prepared, prepared.backend)?;
        let execution = started.elapsed();
        Ok((
            prepared,
            cube,
            QueryTimings {
                preparation,
                execution,
            },
        ))
    }

    /// Executes a handwritten SPARQL query (the demo's Querying module "also
    /// gives the possibility to manually formulate SPARQL queries").
    pub fn execute_raw_sparql(&self, sparql_text: &str) -> Result<sparql::Solutions, QlError> {
        Ok(self.endpoint.select(sparql_text)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::demo_cube_schema;
    use datagen::{load_demo_endpoint, EurostatConfig};
    use enrichment::{EnrichmentConfig, EnrichmentSession};
    use rdf::vocab::{demo_schema, eurostat_property, rdfs, sdmx_dimension};
    use sparql::LocalEndpoint;

    /// Builds an endpoint with a small generated dataset, runs the demo
    /// enrichment on it and returns the endpoint + dataset IRI.
    fn enriched_endpoint(observations: usize) -> (LocalEndpoint, Iri) {
        enriched_endpoint_with(&EurostatConfig::small(observations))
    }

    fn enriched_endpoint_with(config: &EurostatConfig) -> (LocalEndpoint, Iri) {
        let (endpoint, data) = load_demo_endpoint(config);
        let config = EnrichmentConfig::default()
            .name_dimension(
                eurostat_property::citizen(),
                "citizenshipDim",
                "citizenshipGeoHier",
            )
            .name_dimension(eurostat_property::geo(), "destinationDim", "destinationHier")
            .name_dimension(sdmx_dimension::ref_period(), "timeDim", "timeHier")
            .name_dimension(eurostat_property::asyl_app(), "asylappDim", "asylappHier")
            .name_dimension(eurostat_property::age(), "ageDim", "ageHier")
            .name_dimension(eurostat_property::sex(), "sexDim", "sexHier");
        let mut session = EnrichmentSession::start(&endpoint, &data.dataset, config).unwrap();
        session.redefine().unwrap();

        // citizenship: citizen -> continent (+ continentName), destination:
        // countryName attribute and politicalOrg level, time: month -> year.
        let candidates = session
            .discover_candidates(&eurostat_property::citizen())
            .unwrap();
        let continent = candidates
            .level_candidate(&datagen::eurostat::continent_property())
            .unwrap()
            .clone();
        let continent_level = session
            .add_level(&eurostat_property::citizen(), &continent, "continent")
            .unwrap();
        session
            .add_attribute(&continent_level, &rdfs::label(), "continentName")
            .unwrap();

        session
            .add_attribute(&eurostat_property::geo(), &rdfs::label(), "countryName")
            .unwrap();
        let geo_candidates = session
            .discover_candidates(&eurostat_property::geo())
            .unwrap();
        let polorg = geo_candidates
            .level_candidate(&datagen::eurostat::political_org_property())
            .unwrap()
            .clone();
        session
            .add_level(&eurostat_property::geo(), &polorg, "politicalOrg")
            .unwrap();

        let time_candidates = session
            .discover_candidates(&sdmx_dimension::ref_period())
            .unwrap();
        let year = time_candidates
            .level_candidate(&datagen::eurostat::year_property())
            .unwrap()
            .clone();
        session
            .add_level(&sdmx_dimension::ref_period(), &year, "year")
            .unwrap();

        session.load_into_endpoint().unwrap();
        (endpoint, data.dataset)
    }

    #[test]
    fn full_workflow_on_the_enriched_cube() {
        let (endpoint, dataset) = enriched_endpoint(400);
        let module = QueryingModule::for_dataset(&endpoint, &dataset).unwrap();
        assert!(module.schema().dimension(&demo_schema::citizenship_dim()).is_some());

        let (prepared, cube, timings) = module.run(&datagen::workload::mary_query()).unwrap();
        assert!(prepared.sparql(SparqlVariant::Direct).lines().count() > 30);
        assert_eq!(prepared.axes().len(), 5);
        // The cube has cells only for African citizens applying in France,
        // grouped by year (and the remaining bottom-level dimensions).
        for cell in &cube.cells {
            assert_eq!(cell.coordinates.len(), 5);
        }
        assert!(timings.preparation > Duration::ZERO);
        assert!(timings.execution > Duration::ZERO);
    }

    #[test]
    fn both_variants_return_the_same_cube() {
        let (endpoint, dataset) = enriched_endpoint(400);
        let module = QueryingModule::for_dataset(&endpoint, &dataset).unwrap();
        for (name, text) in datagen::workload::bench_queries() {
            if name == "by_political_organisation" {
                // politicalOrg has no attribute dice; still part of the loop.
            }
            let prepared = match module.prepare(&text) {
                Ok(p) => p,
                Err(e) => panic!("workload query '{name}' failed to prepare: {e}"),
            };
            let direct = module.execute(&prepared, SparqlVariant::Direct).unwrap();
            let alternative = module
                .execute(&prepared, SparqlVariant::Alternative)
                .unwrap();
            assert_eq!(
                direct, alternative,
                "variants disagree for workload query '{name}'"
            );
        }
    }

    #[test]
    fn unoptimized_and_optimized_mary_query_agree() {
        let (endpoint, dataset) = enriched_endpoint(300);
        let module = QueryingModule::for_dataset(&endpoint, &dataset).unwrap();
        let (_, optimised, _) = module.run(&datagen::workload::mary_query()).unwrap();
        let (prepared, unoptimised, _) = module
            .run(&datagen::workload::mary_query_unoptimized())
            .unwrap();
        assert!(prepared.report.fused_operations >= 2);
        assert_eq!(optimised, unoptimised);
    }

    #[test]
    fn rollup_totals_are_preserved() {
        let (endpoint, dataset) = enriched_endpoint(300);
        let module = QueryingModule::for_dataset(&endpoint, &dataset).unwrap();

        // Total of the measure across all observations (no slicing at all).
        let raw_total = module
            .execute_raw_sparql(
                "PREFIX qb: <http://purl.org/linked-data/cube#>
                 PREFIX sdmx-measure: <http://purl.org/linked-data/sdmx/2009/measure#>
                 SELECT (SUM(?v) AS ?total) WHERE { ?o a qb:Observation ; sdmx-measure:obsValue ?v }",
            )
            .unwrap()
            .get(0, "total")
            .and_then(|t| t.as_literal().and_then(|l| l.as_double()))
            .unwrap();

        // Rolling citizenship up to continent must preserve the grand total.
        let (_, cube, _) = module
            .run(&datagen::workload::rollup_citizenship_to_continent())
            .unwrap();
        assert!((cube.first_measure_total() - raw_total).abs() < 1e-6);
    }

    #[test]
    fn preparation_errors_surface() {
        let (endpoint, dataset) = enriched_endpoint(100);
        let module = QueryingModule::for_dataset(&endpoint, &dataset).unwrap();
        assert!(module.prepare("not ql").is_err());
        assert!(module
            .prepare(
                "PREFIX schema: <http://www.fing.edu.uy/inco/cubes/schemas/migr_asyapp#>;
                 PREFIX data: <http://eurostat.linked-statistics.org/data/>;
                 QUERY
                 $C1 := SLICE (data:migr_asyappctzm, schema:noSuchDim);"
            )
            .is_err());
        // The module refuses to start on a dataset without a QB4OLAP schema.
        let empty = LocalEndpoint::new();
        assert!(QueryingModule::for_dataset(&empty, &dataset).is_err());
    }

    #[test]
    fn columnar_backend_matches_sparql_for_the_whole_workload() {
        let (endpoint, dataset) = enriched_endpoint(500);
        let module = QueryingModule::for_dataset(&endpoint, &dataset).unwrap();
        let queries_before = endpoint.queries_executed();
        // Force the one-time materialization, then count round-trips.
        module.materialize().unwrap();
        let queries_after_build = endpoint.queries_executed();
        for (name, text) in datagen::workload::bench_queries() {
            let prepared = module.prepare(&text).unwrap();
            let sparql_cube = module.execute(&prepared, SparqlVariant::Direct).unwrap();
            let columnar_cube = module
                .execute(&prepared, ExecutionBackend::Columnar)
                .unwrap();
            assert_eq!(
                sparql_cube, columnar_cube,
                "backends disagree for workload query '{name}'"
            );
        }
        assert!(queries_after_build > queries_before, "the build queries once");
        // Re-running columnar queries must not touch the endpoint again.
        let before = endpoint.queries_executed();
        let prepared = module
            .prepare(&datagen::workload::mary_query())
            .unwrap()
            .with_backend(ExecutionBackend::Columnar);
        assert_eq!(prepared.backend, ExecutionBackend::Columnar);
        module.execute(&prepared, prepared.backend).unwrap();
        assert_eq!(
            endpoint.queries_executed(),
            before,
            "columnar execution must not issue SPARQL round-trips"
        );
    }

    #[test]
    fn catalog_refreshes_columnar_results_after_store_mutation() {
        use cubestore::MaintenanceStrategy;
        use rdf::vocab::{qb, rdf as rdfv, sdmx_measure};
        use rdf::{Literal, Term, Triple};

        let (endpoint, dataset) = enriched_endpoint(300);
        let module = QueryingModule::for_dataset(&endpoint, &dataset).unwrap();
        let prepared = module
            .prepare(&datagen::workload::totals_by_citizenship())
            .unwrap();
        let before = module
            .execute(&prepared, ExecutionBackend::Columnar)
            .unwrap();

        // Append one new observation through the endpoint: an extra Syrian
        // application worth 1000.
        let node = Term::iri("http://example.org/obs/late-arrival");
        let citizen = datagen::eurostat::citizen_member("SY");
        endpoint
            .insert_triples(&[
                Triple::new(node.clone(), rdfv::type_(), Term::Iri(qb::observation())),
                Triple::new(node.clone(), qb::data_set(), Term::Iri(dataset.clone())),
                Triple::new(node.clone(), eurostat_property::citizen(), citizen.clone()),
                Triple::new(node, sdmx_measure::obs_value(), Literal::integer(1000)),
            ])
            .unwrap();

        // The same module, the same prepared query: the catalog detects the
        // epoch change and serves the refreshed columns — and the SPARQL
        // backend (always live) agrees cell-for-cell.
        let columnar = module
            .execute(&prepared, ExecutionBackend::Columnar)
            .unwrap();
        let sparql_cube = module.execute(&prepared, SparqlVariant::Direct).unwrap();
        assert_eq!(columnar, sparql_cube, "no stale cells after mutation");
        assert!(
            (columnar.first_measure_total() - before.first_measure_total() - 1000.0).abs() < 1e-6
        );

        let reports = module.maintenance_reports();
        assert_eq!(reports.len(), 2, "one fresh build, one refresh");
        assert_eq!(reports[0].strategy, MaintenanceStrategy::Fresh);
        assert_eq!(reports[1].strategy, MaintenanceStrategy::Delta);
        assert_eq!(reports[1].rows_appended, 1);
    }

    #[test]
    fn float_measure_cube_refreshes_via_deltas_and_matches_sparql() {
        use cubestore::MaintenanceStrategy;
        use rdf::vocab::{qb, rdf as rdfv, sdmx_measure};
        use rdf::{Literal, Term, Triple};

        // A float-heavy (xsd:decimal) dataset, the Eurostat rate/index
        // shape: appends and partial removals must refresh the served
        // columns via the delta path — both were rebuild-only before the
        // order-independent summator — and stay cell-identical to SPARQL.
        let (endpoint, dataset) = enriched_endpoint_with(&EurostatConfig {
            decimal_measures: true,
            ..EurostatConfig::small(300)
        });
        let module = QueryingModule::for_dataset(&endpoint, &dataset).unwrap();
        let prepared = module
            .prepare(&datagen::workload::rollup_citizenship_to_continent())
            .unwrap();
        module
            .execute(&prepared, ExecutionBackend::Columnar)
            .unwrap();

        let node = Term::iri("http://example.org/obs/float-late");
        endpoint
            .insert_triples(&[
                Triple::new(node.clone(), rdfv::type_(), Term::Iri(qb::observation())),
                Triple::new(node.clone(), qb::data_set(), Term::Iri(dataset.clone())),
                Triple::new(
                    node.clone(),
                    eurostat_property::citizen(),
                    datagen::eurostat::citizen_member("SY"),
                ),
                Triple::new(node, sdmx_measure::obs_value(), Literal::decimal(123.25)),
            ])
            .unwrap();
        let columnar = module
            .execute(&prepared, ExecutionBackend::Columnar)
            .unwrap();
        let sparql_cube = module.execute(&prepared, SparqlVariant::Direct).unwrap();
        assert_eq!(columnar, sparql_cube, "float append left stale/divergent cells");
        let report = module.maintenance_reports().last().cloned().unwrap();
        assert_eq!(
            report.strategy,
            MaintenanceStrategy::Delta,
            "a float append must refresh via the delta path: {report:?}"
        );
        assert_eq!(report.rows_appended, 1);

        // Strip one observation's measure value (a partial removal): the
        // fragment is dropped and the row tombstoned, still no rebuild.
        let victim = endpoint
            .select(&format!(
                "PREFIX qb: <http://purl.org/linked-data/cube#>
                 SELECT ?o WHERE {{ ?o a qb:Observation ; qb:dataSet <{}> }} ORDER BY ?o LIMIT 1",
                dataset.as_str()
            ))
            .unwrap()
            .get(0, "o")
            .cloned()
            .unwrap();
        let removed = endpoint
            .store()
            .remove_matching(Some(&victim), Some(&sdmx_measure::obs_value()), None);
        assert_eq!(removed.len(), 1);
        let columnar = module
            .execute(&prepared, ExecutionBackend::Columnar)
            .unwrap();
        let sparql_cube = module.execute(&prepared, SparqlVariant::Direct).unwrap();
        assert_eq!(columnar, sparql_cube, "partial removal left stale/divergent cells");
        let report = module.maintenance_reports().last().cloned().unwrap();
        assert_eq!(
            report.strategy,
            MaintenanceStrategy::Delta,
            "a partial removal must refresh via the delta path: {report:?}"
        );
        assert_eq!(report.rows_removed, 1);
    }

    #[test]
    fn profiled_execution_names_every_step_on_both_backends() {
        let (endpoint, dataset) = enriched_endpoint(300);
        let module = QueryingModule::for_dataset(&endpoint, &dataset).unwrap();
        let prepared = module.prepare(&datagen::workload::mary_query()).unwrap();
        let plain = module.execute(&prepared, SparqlVariant::Direct).unwrap();

        let (sparql_cube, sparql_profile) = module
            .execute_profiled(&prepared, SparqlVariant::Direct)
            .unwrap();
        assert_eq!(sparql_cube, plain, "profiling must not change the result");
        assert_eq!(sparql_profile.backend, "sparql:direct");
        assert_eq!(
            sparql_profile.step_names(),
            vec!["translate-sparql", "select", "assemble-cube"]
        );
        assert_eq!(
            sparql_profile.plan.len(),
            prepared.pipeline.operation_count(),
            "one logical plan line per pipeline operation"
        );
        assert!(sparql_profile.total >= sparql_profile.steps_total());

        let (columnar_cube, columnar_profile) = module
            .execute_profiled(&prepared, ExecutionBackend::Columnar)
            .unwrap();
        assert_eq!(columnar_cube, plain, "backends agree under profiling");
        assert_eq!(columnar_profile.backend, "columnar");
        assert_eq!(
            columnar_profile.step_names(),
            vec![
                "materialize",
                "lower-pipeline",
                "plan-axes",
                "compile-filters",
                "scan",
                "aggregate",
                "assemble-cube"
            ]
        );
        assert!(
            columnar_profile.plan.len() > prepared.pipeline.operation_count(),
            "logical plan lines plus the physical cubestore plan"
        );
        assert!(columnar_profile.counter("rows_scanned") > 0);

        // Every step renders with its row count in the EXPLAIN output.
        let rendered = columnar_profile.render();
        assert!(rendered.contains("EXPLAIN ANALYZE (backend=columnar"));
        assert!(rendered.contains("scan"));
        assert!(rendered.contains("rows="));
    }

    #[test]
    fn explain_renders_both_backends_side_by_side() {
        let (endpoint, dataset) = enriched_endpoint(200);
        let module = QueryingModule::for_dataset(&endpoint, &dataset).unwrap();
        let explained = module.explain(&datagen::workload::mary_query()).unwrap();
        assert!(explained.contains("EXPLAIN ANALYZE (backend=sparql:direct"));
        assert!(explained.contains("EXPLAIN ANALYZE (backend=columnar"));
        assert!(explained.contains("SLICE dimension=<"));
    }

    #[test]
    fn executions_feed_the_shared_metrics_registry() {
        let (endpoint, dataset) = enriched_endpoint(200);
        let module = QueryingModule::for_dataset(&endpoint, &dataset).unwrap();
        let prepared = module.prepare(&datagen::workload::mary_query()).unwrap();
        module.execute(&prepared, SparqlVariant::Direct).unwrap();
        module.execute(&prepared, SparqlVariant::Alternative).unwrap();
        module
            .execute(&prepared, ExecutionBackend::Columnar)
            .unwrap();
        let snapshot = module.catalog().metrics().snapshot();
        assert_eq!(snapshot.counter("ql.execute.sparql"), 2);
        assert_eq!(snapshot.counter("ql.execute.columnar"), 1);
        assert!(snapshot.counter("cubestore.scan.rows") > 0);
        let durations = snapshot.histogram("ql.execute.duration_ns").unwrap();
        assert_eq!(durations.count, 3);
    }

    #[test]
    fn collecting_subscriber_never_changes_results() {
        // Differential check: the exact same executions with a collecting
        // subscriber installed and with the no-op subscriber must return
        // bit-identical cubes — observability is passive.
        let (endpoint, dataset) = enriched_endpoint(300);
        let module = QueryingModule::for_dataset(&endpoint, &dataset).unwrap();
        let collector = Arc::new(obs::CollectingSubscriber::new());
        for (name, text) in datagen::workload::bench_queries() {
            let prepared = module.prepare(&text).unwrap();
            let quiet_sparql = module.execute(&prepared, SparqlVariant::Direct).unwrap();
            let quiet_columnar = module
                .execute(&prepared, ExecutionBackend::Columnar)
                .unwrap();
            let (observed_sparql, observed_columnar) =
                obs::with_subscriber(collector.clone(), || {
                    (
                        module.execute(&prepared, SparqlVariant::Direct).unwrap(),
                        module
                            .execute(&prepared, ExecutionBackend::Columnar)
                            .unwrap(),
                    )
                });
            assert_eq!(quiet_sparql, observed_sparql, "sparql diverged for '{name}'");
            assert_eq!(
                quiet_columnar, observed_columnar,
                "columnar diverged for '{name}'"
            );
        }
        assert!(
            collector.completed().contains(&"ql.execute"),
            "the subscriber observed the executions"
        );
    }

    #[test]
    fn modules_share_a_catalog_and_its_materialization() {
        let (endpoint, dataset) = enriched_endpoint(200);
        let catalog = Arc::new(cubestore::CubeCatalog::new());
        let first =
            QueryingModule::for_dataset_with_catalog(&endpoint, &dataset, catalog.clone()).unwrap();
        let second =
            QueryingModule::for_dataset_with_catalog(&endpoint, &dataset, catalog.clone()).unwrap();
        let cube_a = first.materialize().unwrap();
        let queries = endpoint.queries_executed();
        let cube_b = second.materialize().unwrap();
        assert!(Arc::ptr_eq(&cube_a, &cube_b), "one shared materialization");
        assert_eq!(endpoint.queries_executed(), queries, "second module built nothing");
        assert_eq!(catalog.datasets(), vec![dataset]);
    }

    #[test]
    fn with_schema_constructor_uses_the_given_schema() {
        let (endpoint, _dataset) = enriched_endpoint(100);
        let module = QueryingModule::with_schema(&endpoint, demo_cube_schema());
        let prepared = module
            .prepare(&datagen::workload::rollup_citizenship_to_continent())
            .unwrap();
        assert_eq!(prepared.report.simplified_operations, 1);
    }
}
