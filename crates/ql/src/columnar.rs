//! The columnar execution backend: lowers a simplified [`QueryPipeline`]
//! into a [`cubestore::CubeQuery`] and runs it on a
//! [`cubestore::MaterializedCube`], producing a [`ResultCube`] identical to
//! what the SPARQL backend computes for the same prepared query.

use cubestore::{CubeQuery, MaterializedCube, MeasureFilter, MemberFilter, MemberPredicate};
use rdf::{Literal, Term};

use crate::ast::{DiceCondition, DiceOperand, DiceValue};
use crate::cube::{CubeCell, ResultCube};
use crate::error::QlError;
use crate::executor::PreparedQuery;
use crate::pipeline::QueryPipeline;
use crate::translate::to_sparql_cmp;

/// Lowers a simplified pipeline into columnar terms. The partitioning of
/// dices into member (pre-aggregation) and measure (post-aggregation)
/// filters mirrors the SPARQL translator exactly.
pub(crate) fn to_cube_query(pipeline: &QueryPipeline) -> Result<CubeQuery, QlError> {
    let mut query = CubeQuery {
        slices: pipeline.slices.clone(),
        rollups: pipeline.rollups.clone(),
        ..CubeQuery::default()
    };
    for dice in &pipeline.dices {
        let comparisons = dice.comparisons();
        let has_measure = comparisons
            .iter()
            .any(|(operand, _, _)| matches!(operand, DiceOperand::Measure(_)));
        let has_attribute = comparisons
            .iter()
            .any(|(operand, _, _)| matches!(operand, DiceOperand::Attribute { .. }));
        if has_measure && has_attribute {
            return Err(QlError::Validation(
                "a single DICE condition cannot mix measures and level attributes".to_string(),
            ));
        }
        if has_measure {
            query.measure_filters.push(measure_filter(dice)?);
        } else {
            query.member_filters.push(member_filter(dice)?);
        }
    }
    Ok(query)
}

/// The constant term a QL dice value compares against — the same literal
/// the SPARQL translator puts into the generated query.
fn constant_term(value: &DiceValue) -> Term {
    match value {
        DiceValue::Number(n) => Term::Literal(if n.fract() == 0.0 {
            Literal::integer(*n as i64)
        } else {
            Literal::decimal(*n)
        }),
        DiceValue::String(s) => Term::Literal(Literal::string(s)),
        DiceValue::Iri(iri) => Term::Iri(iri.clone()),
    }
}

fn member_filter(condition: &DiceCondition) -> Result<MemberFilter, QlError> {
    match condition {
        DiceCondition::And(a, b) => Ok(MemberFilter::And(
            Box::new(member_filter(a)?),
            Box::new(member_filter(b)?),
        )),
        DiceCondition::Or(a, b) => Ok(MemberFilter::Or(
            Box::new(member_filter(a)?),
            Box::new(member_filter(b)?),
        )),
        DiceCondition::Comparison { operand, op, value } => match operand {
            DiceOperand::Attribute {
                dimension,
                level,
                attribute,
            } => {
                // String dices compare `STR(?attr)` in the generated
                // SPARQL; numbers and IRIs compare the raw term.
                let predicate = match value {
                    DiceValue::String(s) => MemberPredicate::Str {
                        op: to_sparql_cmp(*op),
                        value: s.clone(),
                    },
                    DiceValue::Number(_) | DiceValue::Iri(_) => MemberPredicate::Constant {
                        op: to_sparql_cmp(*op),
                        value: constant_term(value),
                    },
                };
                Ok(MemberFilter::Compare {
                    dimension: dimension.clone(),
                    level: level.clone(),
                    attribute: attribute.clone(),
                    predicate,
                })
            }
            DiceOperand::Measure(_) => Err(QlError::Validation(
                "measure comparisons cannot appear inside attribute dice conditions".to_string(),
            )),
        },
    }
}

fn measure_filter(condition: &DiceCondition) -> Result<MeasureFilter, QlError> {
    match condition {
        DiceCondition::And(a, b) => Ok(MeasureFilter::And(
            Box::new(measure_filter(a)?),
            Box::new(measure_filter(b)?),
        )),
        DiceCondition::Or(a, b) => Ok(MeasureFilter::Or(
            Box::new(measure_filter(a)?),
            Box::new(measure_filter(b)?),
        )),
        DiceCondition::Comparison { operand, op, value } => match operand {
            DiceOperand::Measure(property) => Ok(MeasureFilter::Compare {
                measure: property.clone(),
                op: to_sparql_cmp(*op),
                value: constant_term(value),
            }),
            DiceOperand::Attribute { .. } => Err(QlError::Validation(
                "attribute comparisons cannot appear inside measure dice conditions".to_string(),
            )),
        },
    }
}

/// Runs a prepared query on the materialized cube and assembles the result
/// with the *same* axes and measure variables as the SPARQL translation, so
/// the two backends produce comparable (identical) cubes. Also returns the
/// scan totals so the caller can feed the metrics registry.
pub(crate) fn execute_columnar(
    cube: &MaterializedCube,
    prepared: &PreparedQuery,
) -> Result<(ResultCube, cubestore::ScanStats), QlError> {
    let query = to_cube_query(&prepared.pipeline)?;
    let (output, stats) =
        cubestore::execute_with_stats(cube, &query, cubestore::auto_scan_threads(cube))?;
    Ok((assemble_result(output, prepared)?, stats))
}

/// [`execute_columnar`] with per-phase timings: the cubestore execution
/// profile plus the lowering and result-assembly phases on top.
pub(crate) fn execute_columnar_traced(
    cube: &MaterializedCube,
    prepared: &PreparedQuery,
) -> Result<(ResultCube, obs::ExecutionProfile, cubestore::ScanStats), QlError> {
    let started = std::time::Instant::now();
    let query = to_cube_query(&prepared.pipeline)?;
    let lower = started.elapsed();
    let (output, mut profile, stats) = cubestore::execute_traced(cube, &query)?;
    profile.steps.insert(
        0,
        obs::ProfileStep {
            name: "lower-pipeline".to_string(),
            duration: lower,
            rows: None,
            detail: String::new(),
        },
    );
    let started = std::time::Instant::now();
    let result = assemble_result(output, prepared)?;
    profile.push_step(
        "assemble-cube",
        started.elapsed(),
        Some(result.cells.len() as u64),
        "",
    );
    Ok((result, profile, stats))
}

/// Validates the axis alignment and builds the sorted result cube.
fn assemble_result(
    output: cubestore::QueryOutput,
    prepared: &PreparedQuery,
) -> Result<ResultCube, QlError> {
    // Both planners walk the schema dimensions in order, so the axes must
    // line up; anything else means the materialization is out of sync with
    // the schema the query was prepared against.
    let translated = &prepared.translation.axes;
    if output.axes.len() != translated.len()
        || output
            .axes
            .iter()
            .zip(translated)
            .any(|(a, t)| a.dimension != t.dimension || a.level != t.level)
    {
        return Err(QlError::Columnar(format!(
            "axis mismatch between the materialized cube and the prepared query \
             (columnar: {:?}, translation: {:?}); re-materialize the cube",
            output.axes, translated
        )));
    }

    let mut result = ResultCube {
        axes: prepared.translation.axes.clone(),
        measures: prepared.translation.measures.clone(),
        cells: output
            .cells
            .into_iter()
            .map(|cell| CubeCell {
                coordinates: cell.coordinates,
                values: cell.values,
            })
            .collect(),
    };
    result.sort_cells();
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_ql;
    use crate::pipeline::simplify;
    use crate::testutil::demo_cube_schema;
    use sparql::ast::CmpOp;

    fn pipeline_of(text: &str) -> QueryPipeline {
        let schema = demo_cube_schema();
        let program = parse_ql(text).unwrap();
        simplify(&program, &schema).unwrap().0
    }

    #[test]
    fn mary_query_lowers_to_columnar_terms() {
        let pipeline = pipeline_of(&datagen::workload::mary_query());
        let query = to_cube_query(&pipeline).unwrap();
        assert_eq!(query.slices, pipeline.slices);
        assert_eq!(query.rollups, pipeline.rollups);
        assert_eq!(query.member_filters.len(), 2);
        assert!(query.measure_filters.is_empty());
        match &query.member_filters[0] {
            MemberFilter::Compare { predicate, .. } => {
                assert_eq!(
                    predicate,
                    &MemberPredicate::Str {
                        op: CmpOp::Eq,
                        value: "Africa".to_string()
                    }
                );
            }
            other => panic!("expected a comparison, got {other:?}"),
        }
    }

    #[test]
    fn measure_dice_lowers_to_a_measure_filter() {
        let pipeline = pipeline_of(&datagen::workload::yearly_large_cells());
        let query = to_cube_query(&pipeline).unwrap();
        assert!(query.member_filters.is_empty());
        assert_eq!(query.measure_filters.len(), 1);
        match &query.measure_filters[0] {
            MeasureFilter::Compare { op, value, .. } => {
                assert_eq!(*op, CmpOp::Gt);
                assert_eq!(value, &Term::integer(400));
            }
            other => panic!("expected a comparison, got {other:?}"),
        }
    }

    #[test]
    fn constants_match_the_sparql_translator() {
        assert_eq!(
            constant_term(&DiceValue::Number(400.0)),
            Term::integer(400)
        );
        assert_eq!(
            constant_term(&DiceValue::Number(2.5)),
            Term::Literal(Literal::decimal(2.5))
        );
        assert_eq!(
            constant_term(&DiceValue::String("x".into())),
            Term::Literal(Literal::string("x"))
        );
        assert_eq!(
            constant_term(&DiceValue::Iri(rdf::Iri::new("http://m"))),
            Term::iri("http://m")
        );
    }
}
