//! Error type for the QL querying module.

use std::fmt;

/// Errors raised while parsing, validating, translating or executing QL.
#[derive(Debug, Clone, PartialEq)]
pub enum QlError {
    /// A QL syntax error.
    Parse {
        /// 1-based line.
        line: usize,
        /// Description.
        message: String,
    },
    /// The program is syntactically valid but inconsistent with the cube
    /// schema (unknown dimension, unreachable level, attribute on the wrong
    /// level, ...).
    Validation(String),
    /// The generated SPARQL failed to execute.
    Sparql(String),
    /// The QB4OLAP layer failed (schema could not be read back, ...).
    Schema(String),
    /// The columnar backend failed to materialize or execute (data the
    /// columnar engine does not support, stale materialization, ...).
    Columnar(String),
}

impl fmt::Display for QlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QlError::Parse { line, message } => write!(f, "QL syntax error at line {line}: {message}"),
            QlError::Validation(m) => write!(f, "QL validation error: {m}"),
            QlError::Sparql(m) => write!(f, "SPARQL execution error: {m}"),
            QlError::Schema(m) => write!(f, "schema error: {m}"),
            QlError::Columnar(m) => write!(f, "columnar execution error: {m}"),
        }
    }
}

impl std::error::Error for QlError {}

impl From<sparql::SparqlError> for QlError {
    fn from(e: sparql::SparqlError) -> Self {
        QlError::Sparql(e.to_string())
    }
}

impl From<qb4olap::Qb4olapError> for QlError {
    fn from(e: qb4olap::Qb4olapError) -> Self {
        QlError::Schema(e.to_string())
    }
}

impl From<qb::QbError> for QlError {
    fn from(e: qb::QbError) -> Self {
        QlError::Schema(e.to_string())
    }
}

impl From<cubestore::CubeStoreError> for QlError {
    fn from(e: cubestore::CubeStoreError) -> Self {
        QlError::Columnar(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        assert!(QlError::Parse {
            line: 3,
            message: "x".into()
        }
        .to_string()
        .contains("line 3"));
        assert!(QlError::Validation("v".into()).to_string().contains("v"));
        let e: QlError = sparql::SparqlError::eval("boom").into();
        assert!(e.to_string().contains("boom"));
        let e: QlError = qb4olap::Qb4olapError::SchemaNotFound("s".into()).into();
        assert!(e.to_string().contains("s"));
        let e: QlError = qb::QbError::NotFound("d".into()).into();
        assert!(e.to_string().contains("d"));
        let e: QlError = cubestore::CubeStoreError::Unsupported("nf".into()).into();
        assert!(e.to_string().contains("nf"));
        assert!(QlError::Columnar("c".into()).to_string().contains("columnar"));
    }
}
