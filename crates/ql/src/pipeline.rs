//! The Query Simplification phase (Section III-B).
//!
//! A parsed QL program is validated against the QB4OLAP cube schema and
//! rewritten into a canonical [`QueryPipeline`] applying the paper's two
//! optimisation rules:
//!
//! * **(a)** SLICE operations are performed as soon as possible, to reduce
//!   the size of intermediate results;
//! * **(b)** all ROLLUP / DRILLDOWN operations over the same dimension are
//!   fused into a single ROLLUP from the dimension's bottom level to the
//!   last level reached by the sequence.

use std::collections::BTreeMap;

use qb4olap::CubeSchema;
use rdf::Iri;

use crate::ast::{CubeRef, DiceCondition, DiceOperand, QlOperation, QlProgram, QlStatement};
use crate::error::QlError;

/// The canonical, simplified form of a QL program.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryPipeline {
    /// The dataset the query runs against.
    pub dataset: Iri,
    /// Dimensions sliced out, in first-mention order.
    pub slices: Vec<Iri>,
    /// For each rolled-up dimension, the final target level (only dimensions
    /// whose final level differs from their bottom level appear here).
    pub rollups: BTreeMap<Iri, Iri>,
    /// Dice conditions, in program order.
    pub dices: Vec<DiceCondition>,
}

/// What the simplification phase did, for display in the demo UI and for the
/// E9 ablation experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SimplificationReport {
    /// Operations in the original program.
    pub original_operations: usize,
    /// Operations in the simplified program.
    pub simplified_operations: usize,
    /// ROLLUP/DRILLDOWN operations fused away by rule (b).
    pub fused_operations: usize,
    /// SLICE operations moved to the front by rule (a).
    pub slices_moved: usize,
}

impl QueryPipeline {
    /// Number of operations in the simplified pipeline.
    pub fn operation_count(&self) -> usize {
        self.slices.len() + self.rollups.len() + self.dices.len()
    }

    /// One logical-plan line per pipeline step, in execution order
    /// (slices, roll-ups, dices) — the `plan:` section of an execution
    /// profile. Exactly [`Self::operation_count`] lines.
    pub fn plan_lines(&self) -> Vec<String> {
        let mut lines = Vec::with_capacity(self.operation_count());
        for dimension in &self.slices {
            lines.push(format!("SLICE dimension=<{}>", dimension.as_str()));
        }
        for (dimension, level) in &self.rollups {
            lines.push(format!(
                "ROLLUP dimension=<{}> level=<{}>",
                dimension.as_str(),
                level.as_str()
            ));
        }
        for dice in &self.dices {
            lines.push(format!("DICE comparisons={}", dice.comparisons().len()));
        }
        lines
    }

    /// Renders the pipeline as a canonical QL program (slices first, then
    /// roll-ups, then dices), mirroring what the Querying module shows after
    /// simplification.
    pub fn to_program(&self, prefixes: rdf::PrefixMap) -> QlProgram {
        let mut statements = Vec::new();
        let mut counter = 0usize;
        let mut last: Option<String> = None;
        let mut push = |operation: QlOperation, last: &mut Option<String>, counter: &mut usize| {
            *counter += 1;
            let target = format!("C{counter}");
            statements.push(QlStatement {
                target: target.clone(),
                operation,
            });
            *last = Some(target);
        };
        let input = |last: &Option<String>, dataset: &Iri| match last {
            Some(var) => CubeRef::Variable(var.clone()),
            None => CubeRef::Dataset(dataset.clone()),
        };
        for dimension in &self.slices {
            let cube = input(&last, &self.dataset);
            push(
                QlOperation::Slice {
                    cube,
                    dimension: dimension.clone(),
                },
                &mut last,
                &mut counter,
            );
        }
        for (dimension, level) in &self.rollups {
            let cube = input(&last, &self.dataset);
            push(
                QlOperation::Rollup {
                    cube,
                    dimension: dimension.clone(),
                    level: level.clone(),
                },
                &mut last,
                &mut counter,
            );
        }
        for condition in &self.dices {
            let cube = input(&last, &self.dataset);
            push(
                QlOperation::Dice {
                    cube,
                    condition: condition.clone(),
                },
                &mut last,
                &mut counter,
            );
        }
        QlProgram {
            prefixes,
            statements,
        }
    }
}

/// Validates a QL program against a cube schema and simplifies it into a
/// [`QueryPipeline`].
pub fn simplify(
    program: &QlProgram,
    schema: &CubeSchema,
) -> Result<(QueryPipeline, SimplificationReport), QlError> {
    if program.statements.is_empty() {
        return Err(QlError::Validation("empty QL program".to_string()));
    }

    // The first statement must start from a dataset; every later statement
    // must consume the cube produced by the previous one (linear chains, as
    // in the paper's examples).
    let dataset = match program.statements[0].operation.input() {
        CubeRef::Dataset(iri) => iri.clone(),
        CubeRef::Variable(v) => {
            return Err(QlError::Validation(format!(
                "the first statement must start from a dataset, found the undefined cube variable ${v}"
            )))
        }
    };
    if dataset != schema.dataset {
        return Err(QlError::Validation(format!(
            "the program queries <{}> but the schema describes <{}>",
            dataset.as_str(),
            schema.dataset.as_str()
        )));
    }
    for window in program.statements.windows(2) {
        let previous = &window[0];
        let current = &window[1];
        match current.operation.input() {
            CubeRef::Variable(v) if *v == previous.target => {}
            CubeRef::Variable(v) => {
                return Err(QlError::Validation(format!(
                    "statement ${} consumes ${v}, but the previous statement defined ${}",
                    current.target, previous.target
                )))
            }
            CubeRef::Dataset(_) => {
                return Err(QlError::Validation(format!(
                    "statement ${} restarts from the dataset; only the first statement may do so",
                    current.target
                )))
            }
        }
    }

    // Grammar shape: (ROLLUP | SLICE | DRILLDOWN)* (DICE)*.
    let first_dice = program
        .statements
        .iter()
        .position(|s| matches!(s.operation, QlOperation::Dice { .. }));
    if let Some(first_dice) = first_dice {
        if let Some(offender) = program.statements[first_dice..]
            .iter()
            .find(|s| !matches!(s.operation, QlOperation::Dice { .. }))
        {
            return Err(QlError::Validation(format!(
                "dicing must be written at the end of the QL program, but ${} applies {} after a DICE",
                offender.target,
                offender.operation.name()
            )));
        }
    }

    let mut slices: Vec<Iri> = Vec::new();
    let mut current_level: BTreeMap<Iri, Iri> = BTreeMap::new();
    let mut dices: Vec<DiceCondition> = Vec::new();
    let mut fused = 0usize;
    let mut slices_moved = 0usize;
    let mut seen_non_slice = false;

    for statement in &program.statements {
        match &statement.operation {
            QlOperation::Slice { dimension, .. } => {
                let dim = lookup_dimension(schema, dimension)?;
                if slices.contains(&dim.iri) {
                    return Err(QlError::Validation(format!(
                        "dimension <{}> is sliced twice",
                        dimension.as_str()
                    )));
                }
                if current_level.contains_key(&dim.iri) {
                    return Err(QlError::Validation(format!(
                        "dimension <{}> is sliced after being rolled up",
                        dimension.as_str()
                    )));
                }
                if seen_non_slice {
                    slices_moved += 1;
                }
                slices.push(dim.iri.clone());
            }
            QlOperation::Rollup {
                dimension, level, ..
            }
            | QlOperation::Drilldown {
                dimension, level, ..
            } => {
                seen_non_slice = true;
                let dim = lookup_dimension(schema, dimension)?;
                if slices.contains(&dim.iri) {
                    return Err(QlError::Validation(format!(
                        "dimension <{}> was sliced out and cannot be rolled up or drilled down",
                        dimension.as_str()
                    )));
                }
                if !dim.has_level(level) {
                    return Err(QlError::Validation(format!(
                        "level <{}> does not belong to dimension <{}>",
                        level.as_str(),
                        dimension.as_str()
                    )));
                }
                let bottom = schema
                    .bottom_level_of_dimension(&dim.iri)
                    .ok_or_else(|| QlError::Validation(format!(
                        "dimension <{}> has no bottom level",
                        dim.iri.as_str()
                    )))?;
                let from = current_level.get(&dim.iri).cloned().unwrap_or(bottom.clone());
                let is_rollup = matches!(statement.operation, QlOperation::Rollup { .. });
                let reachable_up = dim.rollup_path(&from, level).is_some();
                let reachable_down = dim.rollup_path(level, &from).is_some();
                if is_rollup && !reachable_up {
                    return Err(QlError::Validation(format!(
                        "cannot roll up dimension <{}> from <{}> to <{}>: no hierarchy path",
                        dimension.as_str(),
                        from.as_str(),
                        level.as_str()
                    )));
                }
                if !is_rollup && !reachable_down {
                    return Err(QlError::Validation(format!(
                        "cannot drill down dimension <{}> from <{}> to <{}>: <{}> is not a finer level",
                        dimension.as_str(),
                        from.as_str(),
                        level.as_str(),
                        level.as_str()
                    )));
                }
                if current_level.contains_key(&dim.iri) {
                    fused += 1;
                }
                current_level.insert(dim.iri.clone(), level.clone());
            }
            QlOperation::Dice { condition, .. } => {
                validate_condition(schema, condition, &slices, &current_level)?;
                dices.push(condition.clone());
            }
        }
    }

    // Rule (b): a fused roll-up that ends on the bottom level disappears.
    let mut rollups = BTreeMap::new();
    for (dimension, level) in current_level {
        let bottom = schema
            .bottom_level_of_dimension(&dimension)
            .expect("validated above");
        if level != bottom {
            rollups.insert(dimension, level);
        } else {
            fused += 1;
        }
    }

    let pipeline = QueryPipeline {
        dataset,
        slices,
        rollups,
        dices,
    };
    let report = SimplificationReport {
        original_operations: program.statements.len(),
        simplified_operations: pipeline.operation_count(),
        fused_operations: fused,
        slices_moved,
    };
    Ok((pipeline, report))
}

fn lookup_dimension<'s>(
    schema: &'s CubeSchema,
    dimension: &Iri,
) -> Result<&'s qb4olap::Dimension, QlError> {
    schema.dimension(dimension).ok_or_else(|| {
        QlError::Validation(format!(
            "unknown dimension <{}> (known dimensions: {})",
            dimension.as_str(),
            schema
                .dimensions
                .iter()
                .map(|d| d.iri.local_name().to_string())
                .collect::<Vec<_>>()
                .join(", ")
        ))
    })
}

fn validate_condition(
    schema: &CubeSchema,
    condition: &DiceCondition,
    slices: &[Iri],
    current_level: &BTreeMap<Iri, Iri>,
) -> Result<(), QlError> {
    for (operand, _op, _value) in condition.comparisons() {
        match operand {
            DiceOperand::Measure(measure) => {
                if schema.measure(measure).is_none() {
                    return Err(QlError::Validation(format!(
                        "unknown measure <{}>",
                        measure.as_str()
                    )));
                }
            }
            DiceOperand::Attribute {
                dimension,
                level,
                attribute,
            } => {
                let dim = lookup_dimension(schema, dimension)?;
                if slices.contains(&dim.iri) {
                    return Err(QlError::Validation(format!(
                        "cannot dice on dimension <{}>: it was sliced out",
                        dimension.as_str()
                    )));
                }
                if !dim.has_level(level) {
                    return Err(QlError::Validation(format!(
                        "level <{}> does not belong to dimension <{}>",
                        level.as_str(),
                        dimension.as_str()
                    )));
                }
                let bottom = schema
                    .bottom_level_of_dimension(&dim.iri)
                    .expect("dimension exists");
                let cube_level = current_level.get(&dim.iri).unwrap_or(&bottom);
                if cube_level != level {
                    return Err(QlError::Validation(format!(
                        "the dice on <{}> refers to level <{}>, but dimension <{}> is at level <{}> at that point of the program",
                        attribute.as_str(),
                        level.as_str(),
                        dimension.as_str(),
                        cube_level.as_str()
                    )));
                }
                if !schema
                    .level_attributes(level)
                    .iter()
                    .any(|a| &a.iri == attribute)
                {
                    return Err(QlError::Validation(format!(
                        "level <{}> has no attribute <{}>",
                        level.as_str(),
                        attribute.as_str()
                    )));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_ql;
    use crate::testutil::demo_cube_schema;
    use rdf::vocab::demo_schema;

    #[test]
    fn mary_query_simplifies_to_the_expected_pipeline() {
        let schema = demo_cube_schema();
        let program = parse_ql(&datagen::workload::mary_query()).unwrap();
        let (pipeline, report) = simplify(&program, &schema).unwrap();

        assert_eq!(pipeline.slices, vec![demo_schema::asylapp_dim()]);
        assert_eq!(pipeline.rollups.len(), 2);
        assert_eq!(
            pipeline.rollups.get(&demo_schema::citizenship_dim()),
            Some(&demo_schema::continent())
        );
        assert_eq!(
            pipeline.rollups.get(&demo_schema::time_dim()),
            Some(&demo_schema::year())
        );
        assert_eq!(pipeline.dices.len(), 2);
        assert_eq!(report.original_operations, 5);
        assert_eq!(report.simplified_operations, 5);
        assert_eq!(report.fused_operations, 0);
    }

    #[test]
    fn unoptimized_query_is_fused_and_reordered() {
        let schema = demo_cube_schema();
        let program = parse_ql(&datagen::workload::mary_query_unoptimized()).unwrap();
        let (pipeline, report) = simplify(&program, &schema).unwrap();

        // The roll-up/drill-down/roll-up chain over citizenship fuses into a
        // single roll-up to continent, and the late slice moves to the front.
        assert_eq!(
            pipeline.rollups.get(&demo_schema::citizenship_dim()),
            Some(&demo_schema::continent())
        );
        assert_eq!(report.original_operations, 7);
        assert_eq!(report.simplified_operations, 5);
        assert!(report.fused_operations >= 2);
        assert!(report.slices_moved >= 1);

        // The simplified pipeline is identical to the one of the already
        // optimised query.
        let optimised = parse_ql(&datagen::workload::mary_query()).unwrap();
        let (expected, _) = simplify(&optimised, &schema).unwrap();
        assert_eq!(pipeline, expected);
    }

    #[test]
    fn rollup_then_drilldown_back_to_bottom_disappears() {
        let schema = demo_cube_schema();
        let program = parse_ql(
            "PREFIX schema: <http://www.fing.edu.uy/inco/cubes/schemas/migr_asyapp#>;
             PREFIX property: <http://eurostat.linked-statistics.org/property#>;
             PREFIX data: <http://eurostat.linked-statistics.org/data/>;
             QUERY
             $C1 := ROLLUP (data:migr_asyappctzm, schema:citizenshipDim, schema:continent);
             $C2 := DRILLDOWN ($C1, schema:citizenshipDim, property:citizen);",
        )
        .unwrap();
        let (pipeline, report) = simplify(&program, &schema).unwrap();
        assert!(pipeline.rollups.is_empty());
        assert_eq!(report.simplified_operations, 0);
        assert_eq!(report.fused_operations, 2);
    }

    #[test]
    fn canonical_program_rendering() {
        let schema = demo_cube_schema();
        let program = parse_ql(&datagen::workload::mary_query_unoptimized()).unwrap();
        let (pipeline, _) = simplify(&program, &schema).unwrap();
        let canonical = pipeline.to_program(rdf::PrefixMap::with_common_prefixes());
        // Slices come first in the canonical rendering.
        assert!(matches!(
            canonical.statements[0].operation,
            QlOperation::Slice { .. }
        ));
        let text = canonical.to_ql_string();
        assert!(text.contains("SLICE"));
        assert!(text.contains("ROLLUP"));
        assert!(text.contains("DICE"));
        // The canonical program re-simplifies to the same pipeline.
        let (again, _) = simplify(&canonical, &schema).unwrap();
        assert_eq!(again, pipeline);
    }

    #[test]
    fn validation_errors() {
        let schema = demo_cube_schema();
        let parse = |text: &str| parse_ql(text).unwrap();
        let prologue = "PREFIX schema: <http://www.fing.edu.uy/inco/cubes/schemas/migr_asyapp#>;
             PREFIX property: <http://eurostat.linked-statistics.org/property#>;
             PREFIX data: <http://eurostat.linked-statistics.org/data/>;
             PREFIX sdmx-measure: <http://purl.org/linked-data/sdmx/2009/measure#>;
             QUERY\n";

        // Unknown dimension.
        let program = parse(&format!(
            "{prologue}$C1 := SLICE (data:migr_asyappctzm, schema:bogusDim);"
        ));
        assert!(matches!(simplify(&program, &schema), Err(QlError::Validation(_))));

        // Level not in dimension.
        let program = parse(&format!(
            "{prologue}$C1 := ROLLUP (data:migr_asyappctzm, schema:timeDim, schema:continent);"
        ));
        assert!(matches!(simplify(&program, &schema), Err(QlError::Validation(_))));

        // Dice attribute on the wrong level (continent attribute while the
        // dimension is still at the bottom level).
        let program = parse(&format!(
            "{prologue}$C1 := DICE (data:migr_asyappctzm, schema:citizenshipDim|schema:continent|schema:continentName = \"Africa\");"
        ));
        assert!(matches!(simplify(&program, &schema), Err(QlError::Validation(_))));

        // Rolling up a sliced dimension.
        let program = parse(&format!(
            "{prologue}$C1 := SLICE (data:migr_asyappctzm, schema:citizenshipDim);
             $C2 := ROLLUP ($C1, schema:citizenshipDim, schema:continent);"
        ));
        assert!(matches!(simplify(&program, &schema), Err(QlError::Validation(_))));

        // Operation after a dice violates the grammar shape.
        let program = parse(&format!(
            "{prologue}$C1 := DICE (data:migr_asyappctzm, sdmx-measure:obsValue > 5);
             $C2 := SLICE ($C1, schema:asylappDim);"
        ));
        assert!(matches!(simplify(&program, &schema), Err(QlError::Validation(_))));

        // Broken chaining.
        let program = parse(&format!(
            "{prologue}$C1 := SLICE (data:migr_asyappctzm, schema:asylappDim);
             $C2 := SLICE (data:migr_asyappctzm, schema:sexDim);"
        ));
        assert!(matches!(simplify(&program, &schema), Err(QlError::Validation(_))));

        // Unknown measure in a dice.
        let program = parse(&format!(
            "{prologue}$C1 := DICE (data:migr_asyappctzm, schema:notAMeasure > 5);"
        ));
        assert!(matches!(simplify(&program, &schema), Err(QlError::Validation(_))));

        // Querying a dataset the schema does not describe.
        let program = parse(&format!(
            "{prologue}$C1 := SLICE (data:someOtherDataset, schema:asylappDim);"
        ));
        assert!(matches!(simplify(&program, &schema), Err(QlError::Validation(_))));
    }

    #[test]
    fn drilldown_below_bottom_is_rejected() {
        let schema = demo_cube_schema();
        let program = parse_ql(
            "PREFIX schema: <http://www.fing.edu.uy/inco/cubes/schemas/migr_asyapp#>;
             PREFIX property: <http://eurostat.linked-statistics.org/property#>;
             PREFIX data: <http://eurostat.linked-statistics.org/data/>;
             QUERY
             $C1 := DRILLDOWN (data:migr_asyappctzm, schema:citizenshipDim, schema:continent);",
        )
        .unwrap();
        assert!(matches!(simplify(&program, &schema), Err(QlError::Validation(_))));
    }
}
