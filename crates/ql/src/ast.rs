//! Abstract syntax of the QL language.
//!
//! QL follows the cube-algebra style of Ciferri et al. (as cited in the
//! paper): a QL program is a sequence of assignments
//! `$Cn := OP(...)` where `OP` is `SLICE`, `ROLLUP`, `DRILLDOWN` or `DICE`,
//! and the grammar imposes the shape `(ROLLUP | SLICE | DRILLDOWN)* (DICE)*`.

use rdf::{Iri, PrefixMap};

/// A reference to a cube: either the published dataset or the result of a
/// previous statement (`$C2`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CubeRef {
    /// The dataset IRI (e.g. `data:migr_asyappctzm`).
    Dataset(Iri),
    /// A cube variable, without the `$` (e.g. `C1`).
    Variable(String),
}

/// The left-hand side of a dice comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiceOperand {
    /// A `dimension|level|attribute` path, as in
    /// `schema:citizenshipDim|schema:continent|schema:continentName`.
    Attribute {
        /// The dimension.
        dimension: Iri,
        /// The level within the dimension.
        level: Iri,
        /// The level attribute.
        attribute: Iri,
    },
    /// A measure of the cube (e.g. `sdmx-measure:obsValue`).
    Measure(Iri),
}

/// The right-hand side of a dice comparison.
#[derive(Debug, Clone, PartialEq)]
pub enum DiceValue {
    /// A string constant (compared against the string value of the operand).
    String(String),
    /// A numeric constant.
    Number(f64),
    /// An IRI constant (compared against member identity).
    Iri(Iri),
}

/// Comparison operators allowed in dice conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiceOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl DiceOp {
    /// Surface syntax of the operator.
    pub fn as_str(self) -> &'static str {
        match self {
            DiceOp::Eq => "=",
            DiceOp::Ne => "!=",
            DiceOp::Lt => "<",
            DiceOp::Le => "<=",
            DiceOp::Gt => ">",
            DiceOp::Ge => ">=",
        }
    }
}

/// A dice condition: comparisons combined with AND / OR.
#[derive(Debug, Clone, PartialEq)]
pub enum DiceCondition {
    /// A single comparison.
    Comparison {
        /// Left-hand side.
        operand: DiceOperand,
        /// Operator.
        op: DiceOp,
        /// Right-hand side.
        value: DiceValue,
    },
    /// Conjunction.
    And(Box<DiceCondition>, Box<DiceCondition>),
    /// Disjunction.
    Or(Box<DiceCondition>, Box<DiceCondition>),
}

impl DiceCondition {
    /// All comparisons in the condition, in syntactic order.
    pub fn comparisons(&self) -> Vec<(&DiceOperand, DiceOp, &DiceValue)> {
        match self {
            DiceCondition::Comparison { operand, op, value } => vec![(operand, *op, value)],
            DiceCondition::And(a, b) | DiceCondition::Or(a, b) => {
                let mut out = a.comparisons();
                out.extend(b.comparisons());
                out
            }
        }
    }
}

/// One OLAP operation.
#[derive(Debug, Clone, PartialEq)]
pub enum QlOperation {
    /// `SLICE(cube, dimension)` — remove a dimension, aggregating the
    /// measures over it.
    Slice {
        /// Input cube.
        cube: CubeRef,
        /// Dimension to slice out.
        dimension: Iri,
    },
    /// `ROLLUP(cube, dimension, level)` — aggregate the dimension up to the
    /// given level.
    Rollup {
        /// Input cube.
        cube: CubeRef,
        /// Dimension to roll up.
        dimension: Iri,
        /// Target level.
        level: Iri,
    },
    /// `DRILLDOWN(cube, dimension, level)` — disaggregate the dimension down
    /// to the given level.
    Drilldown {
        /// Input cube.
        cube: CubeRef,
        /// Dimension to drill down.
        dimension: Iri,
        /// Target level.
        level: Iri,
    },
    /// `DICE(cube, condition)` — keep only the cells satisfying the condition.
    Dice {
        /// Input cube.
        cube: CubeRef,
        /// The filter condition.
        condition: DiceCondition,
    },
}

impl QlOperation {
    /// The input cube reference of the operation.
    pub fn input(&self) -> &CubeRef {
        match self {
            QlOperation::Slice { cube, .. }
            | QlOperation::Rollup { cube, .. }
            | QlOperation::Drilldown { cube, .. }
            | QlOperation::Dice { cube, .. } => cube,
        }
    }

    /// The operation's name as written in QL.
    pub fn name(&self) -> &'static str {
        match self {
            QlOperation::Slice { .. } => "SLICE",
            QlOperation::Rollup { .. } => "ROLLUP",
            QlOperation::Drilldown { .. } => "DRILLDOWN",
            QlOperation::Dice { .. } => "DICE",
        }
    }
}

/// One statement: `$Cn := OP(...)`.
#[derive(Debug, Clone, PartialEq)]
pub struct QlStatement {
    /// The assigned cube variable, without the `$`.
    pub target: String,
    /// The operation.
    pub operation: QlOperation,
}

/// A full QL program.
#[derive(Debug, Clone, PartialEq)]
pub struct QlProgram {
    /// Prefixes declared before the `QUERY` keyword.
    pub prefixes: PrefixMap,
    /// Statements in order.
    pub statements: Vec<QlStatement>,
}

impl QlProgram {
    /// The dataset the program starts from (the first statement must
    /// reference a dataset IRI).
    pub fn dataset(&self) -> Option<&Iri> {
        self.statements.iter().find_map(|s| match s.operation.input() {
            CubeRef::Dataset(iri) => Some(iri),
            CubeRef::Variable(_) => None,
        })
    }

    /// Number of operations of each kind `(slice, rollup, drilldown, dice)`.
    pub fn operation_counts(&self) -> (usize, usize, usize, usize) {
        let mut counts = (0, 0, 0, 0);
        for statement in &self.statements {
            match statement.operation {
                QlOperation::Slice { .. } => counts.0 += 1,
                QlOperation::Rollup { .. } => counts.1 += 1,
                QlOperation::Drilldown { .. } => counts.2 += 1,
                QlOperation::Dice { .. } => counts.3 += 1,
            }
        }
        counts
    }

    /// Renders the program back as QL text.
    pub fn to_ql_string(&self) -> String {
        let mut out = String::new();
        for (prefix, ns) in self.prefixes.iter() {
            out.push_str(&format!("PREFIX {prefix}: <{ns}>;\n"));
        }
        out.push_str("QUERY\n");
        for statement in &self.statements {
            out.push_str(&format!(
                "$ {target} := {op};\n",
                target = statement.target,
                op = render_operation(&statement.operation, &self.prefixes)
            ));
        }
        out.replace("$ ", "$")
    }
}

fn render_cube_ref(cube: &CubeRef, prefixes: &PrefixMap) -> String {
    match cube {
        CubeRef::Dataset(iri) => prefixes.compact(iri),
        CubeRef::Variable(name) => format!("${name}"),
    }
}

fn render_value(value: &DiceValue, prefixes: &PrefixMap) -> String {
    match value {
        DiceValue::String(s) => format!("\"{s}\""),
        DiceValue::Number(n) => format!("{n}"),
        DiceValue::Iri(iri) => prefixes.compact(iri),
    }
}

fn render_condition(condition: &DiceCondition, prefixes: &PrefixMap) -> String {
    match condition {
        DiceCondition::Comparison { operand, op, value } => {
            let lhs = match operand {
                DiceOperand::Attribute {
                    dimension,
                    level,
                    attribute,
                } => format!(
                    "{}|{}|{}",
                    prefixes.compact(dimension),
                    prefixes.compact(level),
                    prefixes.compact(attribute)
                ),
                DiceOperand::Measure(m) => prefixes.compact(m),
            };
            format!("{lhs} {} {}", op.as_str(), render_value(value, prefixes))
        }
        DiceCondition::And(a, b) => format!(
            "({} AND {})",
            render_condition(a, prefixes),
            render_condition(b, prefixes)
        ),
        DiceCondition::Or(a, b) => format!(
            "({} OR {})",
            render_condition(a, prefixes),
            render_condition(b, prefixes)
        ),
    }
}

fn render_operation(operation: &QlOperation, prefixes: &PrefixMap) -> String {
    match operation {
        QlOperation::Slice { cube, dimension } => format!(
            "SLICE ({}, {})",
            render_cube_ref(cube, prefixes),
            prefixes.compact(dimension)
        ),
        QlOperation::Rollup {
            cube,
            dimension,
            level,
        } => format!(
            "ROLLUP ({}, {}, {})",
            render_cube_ref(cube, prefixes),
            prefixes.compact(dimension),
            prefixes.compact(level)
        ),
        QlOperation::Drilldown {
            cube,
            dimension,
            level,
        } => format!(
            "DRILLDOWN ({}, {}, {})",
            render_cube_ref(cube, prefixes),
            prefixes.compact(dimension),
            prefixes.compact(level)
        ),
        QlOperation::Dice { cube, condition } => format!(
            "DICE ({}, ({}))",
            render_cube_ref(cube, prefixes),
            render_condition(condition, prefixes)
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdf::vocab::demo_schema;

    #[test]
    fn operation_accessors() {
        let op = QlOperation::Rollup {
            cube: CubeRef::Variable("C1".into()),
            dimension: demo_schema::citizenship_dim(),
            level: demo_schema::continent(),
        };
        assert_eq!(op.name(), "ROLLUP");
        assert_eq!(op.input(), &CubeRef::Variable("C1".into()));
    }

    #[test]
    fn condition_comparisons_are_flattened() {
        let condition = DiceCondition::And(
            Box::new(DiceCondition::Comparison {
                operand: DiceOperand::Measure(rdf::vocab::sdmx_measure::obs_value()),
                op: DiceOp::Gt,
                value: DiceValue::Number(10.0),
            }),
            Box::new(DiceCondition::Comparison {
                operand: DiceOperand::Attribute {
                    dimension: demo_schema::citizenship_dim(),
                    level: demo_schema::continent(),
                    attribute: demo_schema::continent_name(),
                },
                op: DiceOp::Eq,
                value: DiceValue::String("Africa".into()),
            }),
        );
        assert_eq!(condition.comparisons().len(), 2);
    }

    #[test]
    fn program_counts_and_dataset() {
        let program = QlProgram {
            prefixes: PrefixMap::with_common_prefixes(),
            statements: vec![
                QlStatement {
                    target: "C1".into(),
                    operation: QlOperation::Slice {
                        cube: CubeRef::Dataset(rdf::vocab::eurostat_data::migr_asyappctzm()),
                        dimension: demo_schema::asylapp_dim(),
                    },
                },
                QlStatement {
                    target: "C2".into(),
                    operation: QlOperation::Rollup {
                        cube: CubeRef::Variable("C1".into()),
                        dimension: demo_schema::citizenship_dim(),
                        level: demo_schema::continent(),
                    },
                },
            ],
        };
        assert_eq!(program.operation_counts(), (1, 1, 0, 0));
        assert_eq!(
            program.dataset(),
            Some(&rdf::vocab::eurostat_data::migr_asyappctzm())
        );
        let text = program.to_ql_string();
        assert!(text.contains("QUERY"));
        assert!(text.contains("$C1 := SLICE (data:migr_asyappctzm, schema:asylappDim);"));
        assert!(text.contains("$C2 := ROLLUP ($C1, schema:citizenshipDim, schema:continent);"));
    }
}
