//! Parser for the QL surface syntax used in the paper's demonstration:
//!
//! ```text
//! PREFIX data: <http://eurostat.linked-statistics.org/data/>;
//! PREFIX schema: <http://www.fing.edu.uy/inco/cubes/schemas/migr_asyapp#>;
//! QUERY
//! $C1 := SLICE (data:migr_asyappctzm, schema:asylappDim);
//! $C2 := ROLLUP ($C1, schema:citizenshipDim, schema:continent);
//! $C4 := DICE ($C3, (schema:citizenshipDim|schema:continent|schema:continentName = "Africa"));
//! ```

use rdf::{Iri, PrefixMap};

use crate::ast::*;
use crate::error::QlError;

/// Parses a QL program.
pub fn parse_ql(input: &str) -> Result<QlProgram, QlError> {
    Parser::new(input).parse()
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
    line: usize,
    prefixes: PrefixMap,
}

impl Parser {
    fn new(input: &str) -> Self {
        Parser {
            chars: input.chars().collect(),
            pos: 0,
            line: 1,
            prefixes: PrefixMap::new(),
        }
    }

    fn error(&self, message: impl Into<String>) -> QlError {
        QlError::Parse {
            line: self.line,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn skip_ws(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('#') => {
                    while let Some(c) = self.peek() {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => break,
            }
        }
    }

    fn eat(&mut self, expected: char) -> Result<(), QlError> {
        self.skip_ws();
        match self.peek() {
            Some(c) if c == expected => {
                self.bump();
                Ok(())
            }
            other => Err(self.error(format!("expected '{expected}', found {other:?}"))),
        }
    }

    fn read_word(&mut self) -> String {
        self.skip_ws();
        let mut out = String::new();
        while let Some(c) = self.peek() {
            if c.is_alphanumeric() || c == '_' || c == '-' {
                out.push(c);
                self.bump();
            } else {
                break;
            }
        }
        out
    }

    fn at_keyword(&mut self, keyword: &str) -> bool {
        self.skip_ws();
        let saved = self.pos;
        let word = self.read_word();
        let matches = word.eq_ignore_ascii_case(keyword);
        if !matches {
            self.pos = saved;
        }
        matches
    }

    fn parse(mut self) -> Result<QlProgram, QlError> {
        // Prologue: PREFIX declarations, each terminated by ';'.
        loop {
            self.skip_ws();
            if self.at_keyword("PREFIX") {
                let prefix = self.read_word();
                self.eat(':')?;
                let iri = self.parse_iri_ref()?;
                self.prefixes.insert(prefix, iri.as_str());
                self.skip_ws();
                if self.peek() == Some(';') {
                    self.bump();
                }
            } else {
                break;
            }
        }
        if !self.at_keyword("QUERY") {
            return Err(self.error("expected the QUERY keyword after the prefix declarations"));
        }

        let mut statements = Vec::new();
        loop {
            self.skip_ws();
            if self.peek().is_none() {
                break;
            }
            statements.push(self.parse_statement()?);
        }
        if statements.is_empty() {
            return Err(self.error("a QL program must contain at least one statement"));
        }
        Ok(QlProgram {
            prefixes: self.prefixes,
            statements,
        })
    }

    fn parse_statement(&mut self) -> Result<QlStatement, QlError> {
        self.eat('$')?;
        let target = self.read_word();
        if target.is_empty() {
            return Err(self.error("expected a cube variable name after '$'"));
        }
        self.eat(':')?;
        self.eat('=')?;
        let op_name = self.read_word().to_ascii_uppercase();
        self.eat('(')?;
        let cube = self.parse_cube_ref()?;
        let operation = match op_name.as_str() {
            "SLICE" => {
                self.eat(',')?;
                let dimension = self.parse_iri()?;
                QlOperation::Slice { cube, dimension }
            }
            "ROLLUP" => {
                self.eat(',')?;
                let dimension = self.parse_iri()?;
                self.eat(',')?;
                let level = self.parse_iri()?;
                QlOperation::Rollup {
                    cube,
                    dimension,
                    level,
                }
            }
            "DRILLDOWN" => {
                self.eat(',')?;
                let dimension = self.parse_iri()?;
                self.eat(',')?;
                let level = self.parse_iri()?;
                QlOperation::Drilldown {
                    cube,
                    dimension,
                    level,
                }
            }
            "DICE" => {
                self.eat(',')?;
                let condition = self.parse_condition()?;
                QlOperation::Dice { cube, condition }
            }
            other => return Err(self.error(format!("unknown QL operation '{other}'"))),
        };
        self.eat(')')?;
        self.skip_ws();
        if self.peek() == Some(';') {
            self.bump();
        }
        Ok(QlStatement { target, operation })
    }

    fn parse_cube_ref(&mut self) -> Result<CubeRef, QlError> {
        self.skip_ws();
        if self.peek() == Some('$') {
            self.bump();
            let name = self.read_word();
            if name.is_empty() {
                return Err(self.error("expected a cube variable name after '$'"));
            }
            Ok(CubeRef::Variable(name))
        } else {
            Ok(CubeRef::Dataset(self.parse_iri()?))
        }
    }

    fn parse_iri_ref(&mut self) -> Result<Iri, QlError> {
        self.skip_ws();
        if self.peek() != Some('<') {
            return Err(self.error("expected '<' starting an IRI"));
        }
        self.bump();
        let mut iri = String::new();
        loop {
            match self.bump() {
                Some('>') => return Ok(Iri::new(iri)),
                Some(c) if c.is_whitespace() => return Err(self.error("whitespace inside IRI")),
                Some(c) => iri.push(c),
                None => return Err(self.error("unterminated IRI")),
            }
        }
    }

    /// Parses either a full IRI (`<...>`) or a prefixed name (`schema:continent`).
    fn parse_iri(&mut self) -> Result<Iri, QlError> {
        self.skip_ws();
        if self.peek() == Some('<') {
            return self.parse_iri_ref();
        }
        let prefix = self.read_word();
        self.eat(':')?;
        let local = self.read_local();
        match self.prefixes.namespace(&prefix) {
            Some(ns) => Ok(Iri::new(format!("{ns}{local}"))),
            None => Err(self.error(format!("undefined prefix '{prefix}:'"))),
        }
    }

    fn read_local(&mut self) -> String {
        let mut out = String::new();
        while let Some(c) = self.peek() {
            if c.is_alphanumeric() || c == '_' || c == '-' || c == '.' {
                out.push(c);
                self.bump();
            } else {
                break;
            }
        }
        // A trailing '.' belongs to the statement, not the local name.
        while out.ends_with('.') {
            out.pop();
            self.pos -= 1;
        }
        out
    }

    // ---- dice conditions ----------------------------------------------------

    fn parse_condition(&mut self) -> Result<DiceCondition, QlError> {
        self.parse_or_condition()
    }

    fn parse_or_condition(&mut self) -> Result<DiceCondition, QlError> {
        let mut left = self.parse_and_condition()?;
        loop {
            if self.at_keyword("OR") {
                let right = self.parse_and_condition()?;
                left = DiceCondition::Or(Box::new(left), Box::new(right));
            } else {
                return Ok(left);
            }
        }
    }

    fn parse_and_condition(&mut self) -> Result<DiceCondition, QlError> {
        let mut left = self.parse_primary_condition()?;
        loop {
            if self.at_keyword("AND") {
                let right = self.parse_primary_condition()?;
                left = DiceCondition::And(Box::new(left), Box::new(right));
            } else {
                return Ok(left);
            }
        }
    }

    fn parse_primary_condition(&mut self) -> Result<DiceCondition, QlError> {
        self.skip_ws();
        if self.peek() == Some('(') {
            self.bump();
            let inner = self.parse_condition()?;
            self.eat(')')?;
            return Ok(inner);
        }
        // Operand: IRI, optionally followed by |level|attribute.
        let first = self.parse_iri()?;
        self.skip_ws();
        let operand = if self.peek() == Some('|') {
            self.bump();
            let level = self.parse_iri()?;
            self.eat('|')?;
            let attribute = self.parse_iri()?;
            DiceOperand::Attribute {
                dimension: first,
                level,
                attribute,
            }
        } else {
            DiceOperand::Measure(first)
        };
        let op = self.parse_operator()?;
        let value = self.parse_value()?;
        Ok(DiceCondition::Comparison { operand, op, value })
    }

    fn parse_operator(&mut self) -> Result<DiceOp, QlError> {
        self.skip_ws();
        let first = self
            .bump()
            .ok_or_else(|| self.error("expected a comparison operator"))?;
        Ok(match (first, self.peek()) {
            ('=', _) => DiceOp::Eq,
            ('!', Some('=')) => {
                self.bump();
                DiceOp::Ne
            }
            ('<', Some('=')) => {
                self.bump();
                DiceOp::Le
            }
            ('<', _) => DiceOp::Lt,
            ('>', Some('=')) => {
                self.bump();
                DiceOp::Ge
            }
            ('>', _) => DiceOp::Gt,
            (other, _) => return Err(self.error(format!("unknown comparison operator '{other}'"))),
        })
    }

    fn parse_value(&mut self) -> Result<DiceValue, QlError> {
        self.skip_ws();
        match self.peek() {
            Some('"') => {
                self.bump();
                let mut out = String::new();
                loop {
                    match self.bump() {
                        Some('"') => return Ok(DiceValue::String(out)),
                        Some('\\') => match self.bump() {
                            Some(c) => out.push(c),
                            None => return Err(self.error("unterminated string")),
                        },
                        Some(c) => out.push(c),
                        None => return Err(self.error("unterminated string")),
                    }
                }
            }
            Some(c) if c.is_ascii_digit() || c == '-' || c == '+' => {
                let mut text = String::new();
                if c == '-' || c == '+' {
                    text.push(c);
                    self.bump();
                }
                while let Some(c) = self.peek() {
                    if c.is_ascii_digit() || c == '.' {
                        text.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
                text.parse::<f64>()
                    .map(DiceValue::Number)
                    .map_err(|_| self.error(format!("invalid number '{text}'")))
            }
            Some('<') => Ok(DiceValue::Iri(self.parse_iri_ref()?)),
            Some(_) => Ok(DiceValue::Iri(self.parse_iri()?)),
            None => Err(self.error("expected a value after the comparison operator")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdf::vocab::{demo_schema, eurostat_property};

    #[test]
    fn parses_the_paper_query() {
        let program = parse_ql(&datagen::workload::mary_query()).unwrap();
        assert_eq!(program.statements.len(), 5);
        assert_eq!(program.operation_counts(), (1, 2, 0, 2));
        assert_eq!(
            program.dataset(),
            Some(&rdf::vocab::eurostat_data::migr_asyappctzm())
        );
        // The first statement slices the applicant-type dimension.
        match &program.statements[0].operation {
            QlOperation::Slice { dimension, .. } => {
                assert_eq!(dimension, &demo_schema::asylapp_dim());
            }
            other => panic!("expected SLICE, got {other:?}"),
        }
        // The Africa dice uses the dimension|level|attribute path.
        match &program.statements[3].operation {
            QlOperation::Dice { condition, .. } => match condition {
                DiceCondition::Comparison { operand, op, value } => {
                    assert_eq!(*op, DiceOp::Eq);
                    assert_eq!(value, &DiceValue::String("Africa".into()));
                    match operand {
                        DiceOperand::Attribute {
                            dimension,
                            level,
                            attribute,
                        } => {
                            assert_eq!(dimension, &demo_schema::citizenship_dim());
                            assert_eq!(level, &demo_schema::continent());
                            assert_eq!(attribute, &demo_schema::continent_name());
                        }
                        other => panic!("expected attribute operand, got {other:?}"),
                    }
                }
                other => panic!("expected a comparison, got {other:?}"),
            },
            other => panic!("expected DICE, got {other:?}"),
        }
    }

    #[test]
    fn parses_all_workload_queries() {
        for (name, text) in datagen::workload::bench_queries() {
            let program = parse_ql(&text)
                .unwrap_or_else(|e| panic!("workload query '{name}' failed to parse: {e}"));
            assert!(!program.statements.is_empty(), "{name}");
        }
    }

    #[test]
    fn parses_measure_dice_and_numbers() {
        let program = parse_ql(
            "PREFIX schema: <http://www.fing.edu.uy/inco/cubes/schemas/migr_asyapp#>;
             PREFIX sdmx-measure: <http://purl.org/linked-data/sdmx/2009/measure#>;
             PREFIX data: <http://eurostat.linked-statistics.org/data/>;
             QUERY
             $C1 := ROLLUP (data:migr_asyappctzm, schema:timeDim, schema:year);
             $C2 := DICE ($C1, sdmx-measure:obsValue >= 42.5);",
        )
        .unwrap();
        match &program.statements[1].operation {
            QlOperation::Dice { condition, .. } => match condition {
                DiceCondition::Comparison { operand, op, value } => {
                    assert!(matches!(operand, DiceOperand::Measure(_)));
                    assert_eq!(*op, DiceOp::Ge);
                    assert_eq!(value, &DiceValue::Number(42.5));
                }
                other => panic!("unexpected condition {other:?}"),
            },
            other => panic!("expected DICE, got {other:?}"),
        }
    }

    #[test]
    fn parses_and_or_conditions() {
        let program = parse_ql(
            "PREFIX schema: <http://www.fing.edu.uy/inco/cubes/schemas/migr_asyapp#>;
             PREFIX property: <http://eurostat.linked-statistics.org/property#>;
             PREFIX data: <http://eurostat.linked-statistics.org/data/>;
             QUERY
             $C1 := DICE (data:migr_asyappctzm,
                (schema:citizenshipDim|schema:continent|schema:continentName = \"Africa\"
                 AND schema:destinationDim|property:geo|schema:countryName = \"France\")
                OR schema:citizenshipDim|schema:continent|schema:continentName = \"Asia\");",
        )
        .unwrap();
        match &program.statements[0].operation {
            QlOperation::Dice { condition, .. } => {
                assert!(matches!(condition, DiceCondition::Or(_, _)));
                assert_eq!(condition.comparisons().len(), 3);
            }
            other => panic!("expected DICE, got {other:?}"),
        }
    }

    #[test]
    fn full_iris_are_accepted() {
        let program = parse_ql(
            "QUERY
             $C1 := ROLLUP (<http://eurostat.linked-statistics.org/data/migr_asyappctzm>,
                            <http://www.fing.edu.uy/inco/cubes/schemas/migr_asyapp#citizenshipDim>,
                            <http://www.fing.edu.uy/inco/cubes/schemas/migr_asyapp#continent>);",
        )
        .unwrap();
        match &program.statements[0].operation {
            QlOperation::Rollup { level, .. } => assert_eq!(level, &demo_schema::continent()),
            other => panic!("expected ROLLUP, got {other:?}"),
        }
    }

    #[test]
    fn roundtrip_through_to_ql_string() {
        let program = parse_ql(&datagen::workload::mary_query()).unwrap();
        let text = program.to_ql_string();
        let reparsed = parse_ql(&text).unwrap();
        assert_eq!(program.statements, reparsed.statements);
    }

    #[test]
    fn errors_are_reported_with_context() {
        assert!(parse_ql("no query keyword").is_err());
        assert!(parse_ql("QUERY").is_err());
        assert!(parse_ql("QUERY $C1 := EXPLODE (data:x);").is_err());
        let err = parse_ql(
            "QUERY\n$C1 := SLICE (schema:unknownPrefix, schema:x);",
        )
        .unwrap_err();
        assert!(err.to_string().contains("undefined prefix"));
        assert!(parse_ql(
            "PREFIX data: <http://d/>;\nQUERY\n$C1 := SLICE (data:x data:y);"
        )
        .is_err());
    }

    #[test]
    fn drilldown_is_parsed() {
        let program = parse_ql(
            "PREFIX schema: <http://www.fing.edu.uy/inco/cubes/schemas/migr_asyapp#>;
             PREFIX property: <http://eurostat.linked-statistics.org/property#>;
             PREFIX data: <http://eurostat.linked-statistics.org/data/>;
             QUERY
             $C1 := ROLLUP (data:migr_asyappctzm, schema:citizenshipDim, schema:continent);
             $C2 := DRILLDOWN ($C1, schema:citizenshipDim, property:citizen);",
        )
        .unwrap();
        assert_eq!(program.operation_counts(), (0, 1, 1, 0));
        match &program.statements[1].operation {
            QlOperation::Drilldown { level, .. } => {
                assert_eq!(level, &eurostat_property::citizen());
            }
            other => panic!("expected DRILLDOWN, got {other:?}"),
        }
    }
}
