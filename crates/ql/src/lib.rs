//! The Querying module of QB2OLAP (Section III-B of the paper).
//!
//! Users write OLAP queries in the high-level language **QL** — a sequence
//! of `SLICE`, `ROLLUP`, `DRILLDOWN` and `DICE` operations — and the module
//! simplifies the program, translates it into SPARQL (two semantically
//! equivalent variants) using the QB4OLAP metadata, executes it on the
//! endpoint and materialises the resulting cube on the fly.
//!
//! * [`ast`] / [`parser`] — the QL language;
//! * [`pipeline`] — the Query Simplification phase (slice push-down,
//!   roll-up/drill-down fusion) and schema validation;
//! * [`translate`](mod@translate) — the Query Translation phase (direct +
//!   alternative SPARQL);
//! * [`executor`] — the Execution phase behind the
//!   [`executor::ExecutionBackend`] seam (SPARQL on the endpoint, or the
//!   columnar [`cubestore`] engine) and the end-to-end
//!   [`executor::QueryingModule`];
//! * [`cube`] — the result cube.

#![warn(missing_docs)]

pub mod ast;
pub(crate) mod columnar;
pub mod cube;
pub mod error;
pub mod executor;
pub mod parser;
pub mod pipeline;
pub mod reference;
pub mod translate;

pub use cubestore;
pub use obs;

#[cfg(any(test, feature = "testutil"))]
pub mod testutil;

pub use ast::{
    CubeRef, DiceCondition, DiceOp, DiceOperand, DiceValue, QlOperation, QlProgram, QlStatement,
};
pub use cube::{CubeAxis, CubeCell, ResultCube};
pub use cubestore::{CubeCatalog, MaintenanceReport, MaintenanceStrategy};
pub use error::QlError;
pub use executor::{ExecutionBackend, PreparedQuery, QueryTimings, QueryingModule};
pub use parser::parse_ql;
pub use pipeline::{simplify, QueryPipeline, SimplificationReport};
pub use reference::evaluate_reference;
pub use translate::{translate, SparqlVariant, TranslationOutput};
