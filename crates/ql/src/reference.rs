//! An independent in-memory OLAP evaluator for simplified pipelines.
//!
//! This evaluator computes the result cube of a [`QueryPipeline`] directly
//! from the observation, roll-up and attribute triples, without going
//! through the SPARQL translation at all. It exists purely as a correctness
//! oracle: the integration tests and the experiment harness compare its
//! output against both SPARQL variants (experiment E6/E10 support).

use std::collections::BTreeMap;

use qb4olap::{AggregateFunction, CubeSchema};
use rdf::{Iri, Term};
use sparql::Endpoint;

use crate::ast::{DiceCondition, DiceOp, DiceOperand, DiceValue};
use crate::cube::{CubeAxis, CubeCell, ResultCube};
use crate::error::QlError;
use crate::pipeline::QueryPipeline;

/// Evaluates a simplified pipeline with plain in-memory aggregation.
pub fn evaluate_reference(
    endpoint: &dyn Endpoint,
    schema: &CubeSchema,
    pipeline: &QueryPipeline,
) -> Result<ResultCube, QlError> {
    // Plan the kept dimensions exactly like the translator does.
    let mut axes: Vec<CubeAxis> = Vec::new();
    let mut bottoms: Vec<Iri> = Vec::new();
    let mut ancestor_maps: Vec<Option<BTreeMap<Term, Term>>> = Vec::new();
    for dimension in &schema.dimensions {
        if pipeline.slices.contains(&dimension.iri) {
            continue;
        }
        let bottom = schema
            .bottom_level_of_dimension(&dimension.iri)
            .ok_or_else(|| {
                QlError::Validation(format!(
                    "dimension <{}> has no bottom level",
                    dimension.iri.as_str()
                ))
            })?;
        let target = pipeline
            .rollups
            .get(&dimension.iri)
            .cloned()
            .unwrap_or_else(|| bottom.clone());
        let map = if target == bottom {
            None
        } else {
            let (_, steps) = dimension.rollup_path(&bottom, &target).ok_or_else(|| {
                QlError::Validation(format!(
                    "no roll-up path from <{}> to <{}>",
                    bottom.as_str(),
                    target.as_str()
                ))
            })?;
            // Compose the member-level roll-up maps along the path.
            let mut composed: Option<BTreeMap<Term, Term>> = None;
            for step in steps {
                let pairs = qb4olap::rollup_pairs(endpoint, &step.child, &step.parent)?;
                let step_map: BTreeMap<Term, Term> = pairs.into_iter().collect();
                composed = Some(match composed {
                    None => step_map,
                    Some(previous) => previous
                        .into_iter()
                        .filter_map(|(member, mid)| {
                            step_map.get(&mid).map(|top| (member, top.clone()))
                        })
                        .collect(),
                });
            }
            composed
        };
        axes.push(CubeAxis {
            dimension: dimension.iri.clone(),
            level: target,
            variable: String::new(),
        });
        bottoms.push(bottom);
        ancestor_maps.push(map);
    }

    // Attribute values needed by the dices: attribute IRI → member → value.
    let mut attribute_values: BTreeMap<Iri, BTreeMap<Term, Term>> = BTreeMap::new();
    for dice in &pipeline.dices {
        for (operand, _, _) in dice.comparisons() {
            if let DiceOperand::Attribute { attribute, .. } = operand {
                if attribute_values.contains_key(attribute) {
                    continue;
                }
                let solutions = endpoint.select(&format!(
                    "SELECT ?m ?v WHERE {{ ?m <{}> ?v }}",
                    attribute.as_str()
                ))?;
                let mut map = BTreeMap::new();
                for row in &solutions.rows {
                    if let (Some(m), Some(v)) =
                        (row.first().cloned().flatten(), row.get(1).cloned().flatten())
                    {
                        map.entry(m).or_insert(v);
                    }
                }
                attribute_values.insert(attribute.clone(), map);
            }
        }
    }

    // Load the observations (bottom members + measure values).
    let dsd = qb::load_dataset(endpoint, &pipeline.dataset)?.structure;
    let observations = qb::load_observations(endpoint, &pipeline.dataset, &dsd, None)?;

    // Aggregate.
    let measures: Vec<(Iri, AggregateFunction)> = schema
        .measures
        .iter()
        .map(|m| (m.property.clone(), m.aggregate))
        .collect();
    let mut groups: BTreeMap<Vec<Term>, Vec<Vec<f64>>> = BTreeMap::new();
    'observations: for observation in &observations {
        let mut coordinates = Vec::with_capacity(axes.len());
        for ((axis, bottom), map) in axes.iter().zip(&bottoms).zip(&ancestor_maps) {
            let Some(member) = observation.dimension(bottom) else {
                continue 'observations;
            };
            let coordinate = match map {
                None => member.clone(),
                Some(map) => match map.get(member) {
                    Some(parent) => parent.clone(),
                    None => continue 'observations,
                },
            };
            let _ = axis;
            coordinates.push(coordinate);
        }
        // Attribute dices apply to the coordinates.
        for dice in &pipeline.dices {
            let is_measure_dice = dice
                .comparisons()
                .iter()
                .any(|(operand, _, _)| matches!(operand, DiceOperand::Measure(_)));
            if is_measure_dice {
                continue;
            }
            if !condition_holds(dice, &axes, &coordinates, &attribute_values) {
                continue 'observations;
            }
        }
        let values: Vec<f64> = measures
            .iter()
            .map(|(property, _)| observation.measure_number(property).unwrap_or(0.0))
            .collect();
        groups.entry(coordinates).or_default().push(values);
    }

    // Produce cells, then apply measure dices on the aggregated values.
    let mut cells = Vec::with_capacity(groups.len());
    'groups: for (coordinates, rows) in groups {
        let mut aggregated = Vec::with_capacity(measures.len());
        for (index, (_, function)) in measures.iter().enumerate() {
            let values: Vec<f64> = rows.iter().map(|r| r[index]).collect();
            aggregated.push(aggregate(*function, &values));
        }
        for dice in &pipeline.dices {
            if !measure_condition_holds(dice, &measures, &aggregated) {
                continue 'groups;
            }
        }
        cells.push(CubeCell {
            coordinates,
            values: aggregated
                .iter()
                .map(|v| Some(number_term(*v)))
                .collect(),
        });
    }

    let mut cube = ResultCube {
        axes,
        measures: measures
            .iter()
            .map(|(property, _)| (property.clone(), property.local_name().to_string()))
            .collect(),
        cells,
    };
    cube.sort_cells();
    Ok(cube)
}

fn aggregate(function: AggregateFunction, values: &[f64]) -> f64 {
    match function {
        AggregateFunction::Sum => values.iter().sum(),
        AggregateFunction::Count => values.len() as f64,
        AggregateFunction::Avg => {
            if values.is_empty() {
                0.0
            } else {
                values.iter().sum::<f64>() / values.len() as f64
            }
        }
        AggregateFunction::Min => values.iter().copied().fold(f64::INFINITY, f64::min),
        AggregateFunction::Max => values.iter().copied().fold(f64::NEG_INFINITY, f64::max),
    }
}

fn number_term(value: f64) -> Term {
    if value.fract() == 0.0 && value.abs() < 9.0e15 {
        Term::Literal(rdf::Literal::integer(value as i64))
    } else {
        Term::Literal(rdf::Literal::decimal(value))
    }
}

fn compare_f64(op: DiceOp, left: f64, right: f64) -> bool {
    match op {
        DiceOp::Eq => left == right,
        DiceOp::Ne => left != right,
        DiceOp::Lt => left < right,
        DiceOp::Le => left <= right,
        DiceOp::Gt => left > right,
        DiceOp::Ge => left >= right,
    }
}

fn compare_strings(op: DiceOp, left: &str, right: &str) -> bool {
    match op {
        DiceOp::Eq => left == right,
        DiceOp::Ne => left != right,
        DiceOp::Lt => left < right,
        DiceOp::Le => left <= right,
        DiceOp::Gt => left > right,
        DiceOp::Ge => left >= right,
    }
}

fn condition_holds(
    condition: &DiceCondition,
    axes: &[CubeAxis],
    coordinates: &[Term],
    attribute_values: &BTreeMap<Iri, BTreeMap<Term, Term>>,
) -> bool {
    match condition {
        DiceCondition::And(a, b) => {
            condition_holds(a, axes, coordinates, attribute_values)
                && condition_holds(b, axes, coordinates, attribute_values)
        }
        DiceCondition::Or(a, b) => {
            condition_holds(a, axes, coordinates, attribute_values)
                || condition_holds(b, axes, coordinates, attribute_values)
        }
        DiceCondition::Comparison { operand, op, value } => match operand {
            DiceOperand::Measure(_) => true,
            DiceOperand::Attribute {
                dimension,
                level,
                attribute,
            } => {
                let Some(index) = axes
                    .iter()
                    .position(|a| &a.dimension == dimension && &a.level == level)
                else {
                    return false;
                };
                let member = &coordinates[index];
                let attribute_value = attribute_values
                    .get(attribute)
                    .and_then(|map| map.get(member));
                match (attribute_value, value) {
                    (Some(actual), DiceValue::String(expected)) => {
                        let actual = match actual {
                            Term::Literal(lit) => lit.lexical().to_string(),
                            other => other.display_label(),
                        };
                        compare_strings(*op, &actual, expected)
                    }
                    (Some(actual), DiceValue::Number(expected)) => actual
                        .as_literal()
                        .and_then(|l| l.as_double())
                        .map(|n| compare_f64(*op, n, *expected))
                        .unwrap_or(false),
                    (Some(actual), DiceValue::Iri(expected)) => match op {
                        DiceOp::Eq => actual == &Term::Iri(expected.clone()),
                        DiceOp::Ne => actual != &Term::Iri(expected.clone()),
                        _ => false,
                    },
                    (None, _) => false,
                }
            }
        },
    }
}

fn measure_condition_holds(
    condition: &DiceCondition,
    measures: &[(Iri, AggregateFunction)],
    aggregated: &[f64],
) -> bool {
    match condition {
        DiceCondition::And(a, b) => {
            measure_condition_holds(a, measures, aggregated)
                && measure_condition_holds(b, measures, aggregated)
        }
        DiceCondition::Or(a, b) => {
            measure_condition_holds(a, measures, aggregated)
                || measure_condition_holds(b, measures, aggregated)
        }
        DiceCondition::Comparison { operand, op, value } => match operand {
            DiceOperand::Attribute { .. } => true,
            DiceOperand::Measure(property) => {
                let Some(index) = measures.iter().position(|(p, _)| p == property) else {
                    return false;
                };
                match value {
                    DiceValue::Number(expected) => compare_f64(*op, aggregated[index], *expected),
                    _ => false,
                }
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::QueryingModule;
    use crate::translate::SparqlVariant;
    use rdf::vocab::eurostat_property;

    fn enriched() -> (sparql::LocalEndpoint, Iri) {
        let (endpoint, data) =
            datagen::load_demo_endpoint(&datagen::EurostatConfig::small(800));
        let config = enrichment::EnrichmentConfig::default()
            .name_dimension(
                eurostat_property::citizen(),
                "citizenshipDim",
                "citizenshipGeoHier",
            )
            .name_dimension(eurostat_property::geo(), "destinationDim", "destinationHier")
            .name_dimension(
                rdf::vocab::sdmx_dimension::ref_period(),
                "timeDim",
                "timeHier",
            )
            .name_dimension(eurostat_property::asyl_app(), "asylappDim", "asylappHier")
            .name_dimension(eurostat_property::age(), "ageDim", "ageHier")
            .name_dimension(eurostat_property::sex(), "sexDim", "sexHier");
        let mut session =
            enrichment::EnrichmentSession::start(&endpoint, &data.dataset, config).unwrap();
        session.redefine().unwrap();
        let candidates = session
            .discover_candidates(&eurostat_property::citizen())
            .unwrap();
        let continent = candidates
            .level_candidate(&datagen::eurostat::continent_property())
            .unwrap()
            .clone();
        let level = session
            .add_level(&eurostat_property::citizen(), &continent, "continent")
            .unwrap();
        session
            .add_attribute(&level, &rdf::vocab::rdfs::label(), "continentName")
            .unwrap();
        session
            .add_attribute(&eurostat_property::geo(), &rdf::vocab::rdfs::label(), "countryName")
            .unwrap();
        let time_candidates = session
            .discover_candidates(&rdf::vocab::sdmx_dimension::ref_period())
            .unwrap();
        let year = time_candidates
            .level_candidate(&datagen::eurostat::year_property())
            .unwrap()
            .clone();
        session
            .add_level(&rdf::vocab::sdmx_dimension::ref_period(), &year, "year")
            .unwrap();
        session.load_into_endpoint().unwrap();
        (endpoint, data.dataset)
    }

    /// The reference evaluator and the SPARQL translation agree on the
    /// roll-up query and on Mary's query (modulo measure variable naming).
    #[test]
    fn reference_matches_sparql_translation() {
        let (endpoint, dataset) = enriched();
        let module = QueryingModule::for_dataset(&endpoint, &dataset).unwrap();
        for text in [
            datagen::workload::rollup_citizenship_to_continent(),
            datagen::workload::mary_query(),
        ] {
            let prepared = module.prepare(&text).unwrap();
            let sparql_cube = module.execute(&prepared, SparqlVariant::Direct).unwrap();
            let reference =
                evaluate_reference(&endpoint, module.schema(), &prepared.pipeline).unwrap();
            assert_eq!(sparql_cube.len(), reference.len());
            for (a, b) in sparql_cube.cells.iter().zip(reference.cells.iter()) {
                assert_eq!(a.coordinates, b.coordinates);
                let left = a.values[0]
                    .as_ref()
                    .and_then(|t| t.as_literal().and_then(|l| l.as_double()))
                    .unwrap_or(f64::NAN);
                let right = b.values[0]
                    .as_ref()
                    .and_then(|t| t.as_literal().and_then(|l| l.as_double()))
                    .unwrap_or(f64::NAN);
                assert!((left - right).abs() < 1e-6, "{left} vs {right}");
            }
        }
    }
}
