//! The result of a QL query: a data cube computed on the fly.

use rdf::{Iri, Term};
use sparql::Solutions;

/// One axis of the result cube: a dimension kept in the result, the level it
/// was aggregated to, and the SPARQL variable that carries its members.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CubeAxis {
    /// The dimension.
    pub dimension: Iri,
    /// The level of the dimension present in the result.
    pub level: Iri,
    /// The SPARQL variable name (without `?`).
    pub variable: String,
}

/// One cell of the result cube.
#[derive(Debug, Clone, PartialEq)]
pub struct CubeCell {
    /// The member of each axis, in axis order.
    pub coordinates: Vec<Term>,
    /// The aggregated value of each measure, in measure order (`None` when
    /// the aggregate produced no value).
    pub values: Vec<Option<Term>>,
}

/// A result cube.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultCube {
    /// The axes (non-sliced dimensions at their final levels).
    pub axes: Vec<CubeAxis>,
    /// The measures: `(measure property, output variable name)`.
    pub measures: Vec<(Iri, String)>,
    /// The cells.
    pub cells: Vec<CubeCell>,
}

impl ResultCube {
    /// Builds a cube from SPARQL solutions using the axis/measure variables.
    pub fn from_solutions(
        axes: Vec<CubeAxis>,
        measures: Vec<(Iri, String)>,
        solutions: &Solutions,
    ) -> Self {
        let mut cells = Vec::with_capacity(solutions.len());
        for row in 0..solutions.len() {
            let coordinates = axes
                .iter()
                .map(|axis| {
                    solutions
                        .get(row, &axis.variable)
                        .cloned()
                        .unwrap_or_else(|| Term::string(""))
                })
                .collect();
            let values = measures
                .iter()
                .map(|(_, var)| solutions.get(row, var).cloned())
                .collect();
            cells.push(CubeCell {
                coordinates,
                values,
            });
        }
        let mut cube = ResultCube {
            axes,
            measures,
            cells,
        };
        cube.sort_cells();
        cube
    }

    /// Sorts cells by their coordinates (canonical order, so that cubes can
    /// be compared independently of how they were computed).
    pub fn sort_cells(&mut self) {
        self.cells.sort_by(|a, b| a.coordinates.cmp(&b.coordinates));
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True if the cube has no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// The numeric total of the first measure over all cells (handy in tests
    /// and summaries).
    pub fn first_measure_total(&self) -> f64 {
        self.cells
            .iter()
            .filter_map(|c| c.values.first().cloned().flatten())
            .filter_map(|t| t.as_literal().and_then(|l| l.as_double()))
            .sum()
    }

    /// Looks up a cell by its coordinates.
    pub fn cell(&self, coordinates: &[Term]) -> Option<&CubeCell> {
        self.cells.iter().find(|c| c.coordinates == coordinates)
    }

    /// Renders the cube as a text table (the "resulting cube computed
    /// on-the-fly" the demo shows).
    pub fn to_table_string(&self) -> String {
        let mut headers: Vec<String> = self
            .axes
            .iter()
            .map(|a| a.level.local_name().to_string())
            .collect();
        headers.extend(self.measures.iter().map(|(_, v)| v.clone()));

        let rows: Vec<Vec<String>> = self
            .cells
            .iter()
            .map(|cell| {
                let mut row: Vec<String> = cell
                    .coordinates
                    .iter()
                    .map(Term::display_label)
                    .collect();
                row.extend(cell.values.iter().map(|v| {
                    v.as_ref().map(Term::display_label).unwrap_or_default()
                }));
                row
            })
            .collect();

        let mut widths: Vec<usize> = headers.iter().map(String::len).collect();
        for row in &rows {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        let mut out = String::new();
        let write_row = |cells: &[String], out: &mut String| {
            out.push('|');
            for (value, width) in cells.iter().zip(&widths) {
                out.push_str(&format!(" {value:<width$} |"));
            }
            out.push('\n');
        };
        write_row(&headers, &mut out);
        out.push('|');
        for width in &widths {
            out.push_str(&format!("{}|", "-".repeat(width + 2)));
        }
        out.push('\n');
        for row in &rows {
            write_row(row, &mut out);
        }
        out.push_str(&format!("{} cell(s)\n", self.cells.len()));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparql::Variable;

    fn sample_cube() -> ResultCube {
        let solutions = Solutions {
            variables: vec![
                Variable::new("continent"),
                Variable::new("year"),
                Variable::new("obsValue"),
            ],
            rows: vec![
                vec![
                    Some(Term::iri("http://dic/continent#Africa")),
                    Some(Term::iri("http://dic/time#2014")),
                    Some(Term::integer(250)),
                ],
                vec![
                    Some(Term::iri("http://dic/continent#Asia")),
                    Some(Term::iri("http://dic/time#2013")),
                    Some(Term::integer(420)),
                ],
            ],
        };
        ResultCube::from_solutions(
            vec![
                CubeAxis {
                    dimension: Iri::new("http://schema/citizenshipDim"),
                    level: Iri::new("http://schema/continent"),
                    variable: "continent".to_string(),
                },
                CubeAxis {
                    dimension: Iri::new("http://schema/timeDim"),
                    level: Iri::new("http://schema/year"),
                    variable: "year".to_string(),
                },
            ],
            vec![(
                rdf::vocab::sdmx_measure::obs_value(),
                "obsValue".to_string(),
            )],
            &solutions,
        )
    }

    #[test]
    fn cube_from_solutions() {
        let cube = sample_cube();
        assert_eq!(cube.len(), 2);
        assert!(!cube.is_empty());
        assert_eq!(cube.first_measure_total(), 670.0);
        let cell = cube
            .cell(&[
                Term::iri("http://dic/continent#Africa"),
                Term::iri("http://dic/time#2014"),
            ])
            .expect("cell exists");
        assert_eq!(cell.values[0], Some(Term::integer(250)));
        assert!(cube.cell(&[Term::iri("http://nope")]).is_none());
    }

    #[test]
    fn table_rendering_contains_labels() {
        let table = sample_cube().to_table_string();
        assert!(table.contains("continent"));
        assert!(table.contains("Africa"));
        assert!(table.contains("2 cell(s)"));
    }

    #[test]
    fn cells_are_sorted_canonically() {
        let cube = sample_cube();
        let mut coordinates: Vec<_> = cube.cells.iter().map(|c| c.coordinates.clone()).collect();
        let sorted = {
            let mut copy = coordinates.clone();
            copy.sort();
            copy
        };
        assert_eq!(coordinates, sorted);
        coordinates.reverse();
        assert_ne!(coordinates, sorted);
    }
}
