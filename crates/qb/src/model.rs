//! Data model for the W3C RDF Data Cube (QB) vocabulary.
//!
//! These types mirror what Section II of the paper calls the input of
//! QB2OLAP: a QB data set is a collection of observations whose schema is a
//! Data Structure Definition (DSD) made of dimension, measure and attribute
//! component properties.

use std::collections::{BTreeMap, BTreeSet};

use rdf::{Iri, Term};

/// The kind of a DSD component property.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ComponentKind {
    /// `qb:dimension`.
    Dimension,
    /// `qb:measure`.
    Measure,
    /// `qb:attribute`.
    Attribute,
}

impl ComponentKind {
    /// A human-readable name.
    pub fn as_str(self) -> &'static str {
        match self {
            ComponentKind::Dimension => "dimension",
            ComponentKind::Measure => "measure",
            ComponentKind::Attribute => "attribute",
        }
    }
}

/// One component specification of a DSD.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Component {
    /// The component property (e.g. `property:citizen`, `sdmx-measure:obsValue`).
    pub property: Iri,
    /// Dimension, measure or attribute.
    pub kind: ComponentKind,
    /// `qb:order`, if declared.
    pub order: Option<u32>,
    /// `qb:componentRequired`, if declared (attributes only in practice).
    pub required: bool,
    /// `qb:codeList`, if declared.
    pub code_list: Option<Iri>,
}

impl Component {
    /// Creates a dimension component.
    pub fn dimension(property: Iri) -> Self {
        Component {
            property,
            kind: ComponentKind::Dimension,
            order: None,
            required: true,
            code_list: None,
        }
    }

    /// Creates a measure component.
    pub fn measure(property: Iri) -> Self {
        Component {
            property,
            kind: ComponentKind::Measure,
            order: None,
            required: true,
            code_list: None,
        }
    }

    /// Creates an attribute component.
    pub fn attribute(property: Iri) -> Self {
        Component {
            property,
            kind: ComponentKind::Attribute,
            order: None,
            required: false,
            code_list: None,
        }
    }
}

/// A Data Structure Definition: the schema of a QB data set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataStructureDefinition {
    /// The DSD IRI.
    pub iri: Iri,
    /// All components, in declaration order (then by `qb:order`).
    pub components: Vec<Component>,
}

impl DataStructureDefinition {
    /// Creates an empty DSD with the given IRI.
    pub fn new(iri: Iri) -> Self {
        DataStructureDefinition {
            iri,
            components: Vec::new(),
        }
    }

    /// All dimension component properties.
    pub fn dimensions(&self) -> Vec<&Iri> {
        self.components_of_kind(ComponentKind::Dimension)
    }

    /// All measure component properties.
    pub fn measures(&self) -> Vec<&Iri> {
        self.components_of_kind(ComponentKind::Measure)
    }

    /// All attribute component properties.
    pub fn attributes(&self) -> Vec<&Iri> {
        self.components_of_kind(ComponentKind::Attribute)
    }

    fn components_of_kind(&self, kind: ComponentKind) -> Vec<&Iri> {
        self.components
            .iter()
            .filter(|c| c.kind == kind)
            .map(|c| &c.property)
            .collect()
    }

    /// Finds the component for a given property.
    pub fn component(&self, property: &Iri) -> Option<&Component> {
        self.components.iter().find(|c| &c.property == property)
    }

    /// Adds a component.
    pub fn push(&mut self, component: Component) {
        self.components.push(component);
    }
}

/// A QB data set: an IRI, its DSD, and optional metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QbDataset {
    /// The dataset IRI.
    pub iri: Iri,
    /// Its structure.
    pub structure: DataStructureDefinition,
    /// `rdfs:label`, if any.
    pub label: Option<String>,
    /// `rdfs:comment`, if any.
    pub comment: Option<String>,
}

impl QbDataset {
    /// Creates a dataset description.
    pub fn new(iri: Iri, structure: DataStructureDefinition) -> Self {
        QbDataset {
            iri,
            structure,
            label: None,
            comment: None,
        }
    }
}

/// One observation (a fact, in OLAP terms).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Observation {
    /// The observation node (IRI or blank).
    pub node: Term,
    /// Dimension property → member.
    pub dimensions: BTreeMap<Iri, Term>,
    /// Measure property → value.
    pub measures: BTreeMap<Iri, Term>,
    /// Attribute property → value.
    pub attributes: BTreeMap<Iri, Term>,
    /// Dimension/measure properties that carried **several distinct
    /// values** in the store (QB-malformed data; the maps above keep only
    /// one). Consumers that freeze a single value per slot — the columnar
    /// materialization — must treat these observations conservatively:
    /// removing the kept value would silently expose the other one.
    pub multivalued: BTreeSet<Iri>,
}

impl Observation {
    /// Creates an empty observation for the given node.
    pub fn new(node: Term) -> Self {
        Observation {
            node,
            dimensions: BTreeMap::new(),
            measures: BTreeMap::new(),
            attributes: BTreeMap::new(),
            multivalued: BTreeSet::new(),
        }
    }

    /// The member bound to a dimension, if present.
    pub fn dimension(&self, property: &Iri) -> Option<&Term> {
        self.dimensions.get(property)
    }

    /// The value bound to a measure, if present.
    pub fn measure(&self, property: &Iri) -> Option<&Term> {
        self.measures.get(property)
    }

    /// The numeric value of a measure, if present and numeric.
    pub fn measure_number(&self, property: &Iri) -> Option<f64> {
        self.measures
            .get(property)
            .and_then(|t| t.as_literal())
            .and_then(|l| l.as_double())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdf::vocab::{eurostat_property, sdmx_dimension, sdmx_measure};
    use rdf::Literal;

    fn eurostat_dsd() -> DataStructureDefinition {
        let mut dsd =
            DataStructureDefinition::new(rdf::vocab::eurostat_dsd::migr_asyappctzm());
        dsd.push(Component::dimension(sdmx_dimension::ref_period()));
        dsd.push(Component::dimension(eurostat_property::citizen()));
        dsd.push(Component::dimension(eurostat_property::geo()));
        dsd.push(Component::dimension(eurostat_property::age()));
        dsd.push(Component::dimension(eurostat_property::sex()));
        dsd.push(Component::dimension(eurostat_property::asyl_app()));
        dsd.push(Component::measure(sdmx_measure::obs_value()));
        dsd.push(Component::attribute(
            rdf::vocab::sdmx_attribute::obs_status(),
        ));
        dsd
    }

    #[test]
    fn dsd_component_classification() {
        let dsd = eurostat_dsd();
        assert_eq!(dsd.dimensions().len(), 6);
        assert_eq!(dsd.measures().len(), 1);
        assert_eq!(dsd.attributes().len(), 1);
        assert_eq!(
            dsd.component(&eurostat_property::citizen()).unwrap().kind,
            ComponentKind::Dimension
        );
        assert!(dsd.component(&Iri::new("http://missing")).is_none());
    }

    #[test]
    fn observation_accessors() {
        let mut obs = Observation::new(Term::iri("http://example.org/obs1"));
        obs.dimensions.insert(
            eurostat_property::citizen(),
            Term::iri("http://eurostat.linked-statistics.org/dic/citizen#SY"),
        );
        obs.measures
            .insert(sdmx_measure::obs_value(), Term::Literal(Literal::integer(125)));
        assert!(obs.dimension(&eurostat_property::citizen()).is_some());
        assert!(obs.dimension(&eurostat_property::geo()).is_none());
        assert_eq!(obs.measure_number(&sdmx_measure::obs_value()), Some(125.0));
    }

    #[test]
    fn component_kind_names() {
        assert_eq!(ComponentKind::Dimension.as_str(), "dimension");
        assert_eq!(ComponentKind::Measure.as_str(), "measure");
        assert_eq!(ComponentKind::Attribute.as_str(), "attribute");
    }

    #[test]
    fn component_constructors() {
        let c = Component::dimension(eurostat_property::citizen());
        assert!(c.required);
        let a = Component::attribute(rdf::vocab::sdmx_attribute::obs_status());
        assert!(!a.required);
        assert_eq!(a.kind, ComponentKind::Attribute);
    }
}
