//! Introspection of QB data sets published on a SPARQL endpoint.
//!
//! Mirrors the first step of the Enrichment module workflow (Figure 2): the
//! tool "triggers the queries" needed to retrieve the cube structure from
//! the endpoint, so the user never writes SPARQL herself. All functions here
//! work against the [`Endpoint`] trait, exactly as the original tool works
//! against Virtuoso.

use std::collections::BTreeMap;

use rdf::{Iri, Term};
use sparql::{Endpoint, Solutions};

use crate::error::QbError;
use crate::model::{Component, ComponentKind, DataStructureDefinition, Observation, QbDataset};

/// A QB dataset discovered on an endpoint, with its DSD IRI and observation count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatasetSummary {
    /// The dataset IRI.
    pub dataset: Iri,
    /// The DSD it points to.
    pub structure: Iri,
    /// Its `rdfs:label`, if any.
    pub label: Option<String>,
    /// Number of observations linked to it.
    pub observations: usize,
}

/// Lists all QB datasets available on the endpoint.
pub fn list_datasets(endpoint: &dyn Endpoint) -> Result<Vec<DatasetSummary>, QbError> {
    let solutions = endpoint.select(
        "PREFIX qb: <http://purl.org/linked-data/cube#>
         PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>
         SELECT ?ds ?dsd ?label (COUNT(?obs) AS ?n) WHERE {
           ?ds a qb:DataSet ; qb:structure ?dsd .
           OPTIONAL { ?ds rdfs:label ?label }
           OPTIONAL { ?obs qb:dataSet ?ds }
         } GROUP BY ?ds ?dsd ?label ORDER BY ?ds",
    )?;
    let mut out = Vec::with_capacity(solutions.len());
    for i in 0..solutions.len() {
        let dataset = expect_iri(&solutions, i, "ds")?;
        let structure = expect_iri(&solutions, i, "dsd")?;
        let label = solutions
            .get(i, "label")
            .and_then(|t| t.as_literal())
            .map(|l| l.lexical().to_string());
        let observations = solutions
            .get(i, "n")
            .and_then(|t| t.as_literal())
            .and_then(|l| l.as_integer())
            .unwrap_or(0) as usize;
        out.push(DatasetSummary {
            dataset,
            structure,
            label,
            observations,
        });
    }
    Ok(out)
}

/// Loads the DSD of a dataset: its dimension, measure and attribute components.
pub fn load_dsd(endpoint: &dyn Endpoint, dsd: &Iri) -> Result<DataStructureDefinition, QbError> {
    let query = format!(
        "PREFIX qb: <http://purl.org/linked-data/cube#>
         SELECT ?prop ?kind ?order ?required ?codeList WHERE {{
           <{dsd}> qb:component ?spec .
           {{ ?spec qb:dimension ?prop . BIND(\"dimension\" AS ?kind) }}
           UNION {{ ?spec qb:measure ?prop . BIND(\"measure\" AS ?kind) }}
           UNION {{ ?spec qb:attribute ?prop . BIND(\"attribute\" AS ?kind) }}
           OPTIONAL {{ ?spec qb:order ?order }}
           OPTIONAL {{ ?spec qb:componentRequired ?required }}
           OPTIONAL {{ ?spec qb:codeList ?codeList }}
         }} ORDER BY ?order ?prop",
        dsd = dsd.as_str()
    );
    let solutions = endpoint.select(&query)?;
    if solutions.is_empty() {
        return Err(QbError::NotFound(format!(
            "no qb:component found for DSD <{}>",
            dsd.as_str()
        )));
    }
    let mut structure = DataStructureDefinition::new(dsd.clone());
    for i in 0..solutions.len() {
        let property = expect_iri(&solutions, i, "prop")?;
        let kind = match solutions
            .get(i, "kind")
            .and_then(|t| t.as_literal())
            .map(|l| l.lexical().to_string())
            .unwrap_or_default()
            .as_str()
        {
            "dimension" => ComponentKind::Dimension,
            "measure" => ComponentKind::Measure,
            "attribute" => ComponentKind::Attribute,
            other => {
                return Err(QbError::Malformed(format!(
                    "unknown component kind '{other}'"
                )))
            }
        };
        let order = solutions
            .get(i, "order")
            .and_then(|t| t.as_literal())
            .and_then(|l| l.as_integer())
            .map(|o| o as u32);
        let required = solutions
            .get(i, "required")
            .and_then(|t| t.as_literal())
            .and_then(|l| l.as_boolean())
            .unwrap_or(kind != ComponentKind::Attribute);
        let code_list = solutions
            .get(i, "codeList")
            .and_then(|t| t.as_iri())
            .cloned();
        structure.push(Component {
            property,
            kind,
            order,
            required,
            code_list,
        });
    }
    // Deduplicate (OPTIONAL rows can fan out if a spec repeats annotations).
    structure.components.dedup_by(|a, b| a.property == b.property && a.kind == b.kind);
    Ok(structure)
}

/// Loads a dataset description (label, comment, structure).
pub fn load_dataset(endpoint: &dyn Endpoint, dataset: &Iri) -> Result<QbDataset, QbError> {
    let query = format!(
        "PREFIX qb: <http://purl.org/linked-data/cube#>
         PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>
         SELECT ?dsd ?label ?comment WHERE {{
           <{ds}> qb:structure ?dsd .
           OPTIONAL {{ <{ds}> rdfs:label ?label }}
           OPTIONAL {{ <{ds}> rdfs:comment ?comment }}
         }}",
        ds = dataset.as_str()
    );
    let solutions = endpoint.select(&query)?;
    if solutions.is_empty() {
        return Err(QbError::NotFound(format!(
            "dataset <{}> has no qb:structure",
            dataset.as_str()
        )));
    }
    let dsd_iri = expect_iri(&solutions, 0, "dsd")?;
    let structure = load_dsd(endpoint, &dsd_iri)?;
    let mut ds = QbDataset::new(dataset.clone(), structure);
    ds.label = solutions
        .get(0, "label")
        .and_then(|t| t.as_literal())
        .map(|l| l.lexical().to_string());
    ds.comment = solutions
        .get(0, "comment")
        .and_then(|t| t.as_literal())
        .map(|l| l.lexical().to_string());
    Ok(ds)
}

/// Counts the observations of a dataset.
pub fn count_observations(endpoint: &dyn Endpoint, dataset: &Iri) -> Result<usize, QbError> {
    let query = format!(
        "PREFIX qb: <http://purl.org/linked-data/cube#>
         SELECT (COUNT(?obs) AS ?n) WHERE {{ ?obs qb:dataSet <{}> }}",
        dataset.as_str()
    );
    let solutions = endpoint.select(&query)?;
    Ok(solutions
        .get(0, "n")
        .and_then(|t| t.as_literal())
        .and_then(|l| l.as_integer())
        .unwrap_or(0) as usize)
}

/// The distinct members bound to a dimension across a dataset's observations.
pub fn dimension_members(
    endpoint: &dyn Endpoint,
    dataset: &Iri,
    dimension: &Iri,
) -> Result<Vec<Term>, QbError> {
    let query = format!(
        "PREFIX qb: <http://purl.org/linked-data/cube#>
         SELECT DISTINCT ?member WHERE {{
           ?obs qb:dataSet <{ds}> ; <{dim}> ?member .
         }} ORDER BY ?member",
        ds = dataset.as_str(),
        dim = dimension.as_str()
    );
    let solutions = endpoint.select(&query)?;
    Ok(solutions
        .rows
        .iter()
        .filter_map(|row| row.first().cloned().flatten())
        .collect())
}

/// Loads observations of a dataset, classifying each bound property according
/// to the DSD. `limit` bounds the number of observations fetched (None = all).
pub fn load_observations(
    endpoint: &dyn Endpoint,
    dataset: &Iri,
    dsd: &DataStructureDefinition,
    limit: Option<usize>,
) -> Result<Vec<Observation>, QbError> {
    let limit_clause = limit.map(|l| format!(" LIMIT {l}")).unwrap_or_default();
    let query = format!(
        "PREFIX qb: <http://purl.org/linked-data/cube#>
         SELECT ?obs ?p ?v WHERE {{
           {{ SELECT DISTINCT ?obs WHERE {{ ?obs qb:dataSet <{ds}> }} ORDER BY ?obs{limit_clause} }}
           ?obs ?p ?v .
         }}",
        ds = dataset.as_str(),
    );
    let solutions = endpoint.select(&query)?;

    let mut observations: BTreeMap<Term, Observation> = BTreeMap::new();
    for i in 0..solutions.len() {
        let (Some(obs), Some(p), Some(v)) = (
            solutions.get(i, "obs"),
            solutions.get(i, "p"),
            solutions.get(i, "v"),
        ) else {
            continue;
        };
        let Some(property) = p.as_iri() else { continue };
        let entry = observations
            .entry(obs.clone())
            .or_insert_with(|| Observation::new(obs.clone()));
        match dsd.component(property).map(|c| c.kind) {
            Some(ComponentKind::Dimension) => {
                if let Some(previous) = entry.dimensions.insert(property.clone(), v.clone()) {
                    if previous != *v {
                        entry.multivalued.insert(property.clone());
                    }
                }
            }
            Some(ComponentKind::Measure) => {
                if let Some(previous) = entry.measures.insert(property.clone(), v.clone()) {
                    if previous != *v {
                        entry.multivalued.insert(property.clone());
                    }
                }
            }
            Some(ComponentKind::Attribute) => {
                entry.attributes.insert(property.clone(), v.clone());
            }
            None => {}
        }
    }
    Ok(observations.into_values().collect())
}

/// The distinct properties observed on a set of resources, with usage counts.
/// This is the query behind candidate-level discovery in the Enrichment phase.
pub fn properties_of_members(
    endpoint: &dyn Endpoint,
    members: &[Term],
) -> Result<BTreeMap<Iri, usize>, QbError> {
    let mut counts: BTreeMap<Iri, usize> = BTreeMap::new();
    if members.is_empty() {
        return Ok(counts);
    }
    let values: Vec<String> = members
        .iter()
        .filter_map(|m| m.as_iri())
        .map(|iri| format!("(<{}>)", iri.as_str()))
        .collect();
    if values.is_empty() {
        return Ok(counts);
    }
    let query = format!(
        "SELECT ?p (COUNT(?m) AS ?n) WHERE {{
           VALUES (?m) {{ {values} }}
           ?m ?p ?v .
         }} GROUP BY ?p ORDER BY ?p",
        values = values.join(" ")
    );
    let solutions = endpoint.select(&query)?;
    for i in 0..solutions.len() {
        if let (Some(Term::Iri(p)), Some(n)) = (
            solutions.get(i, "p").cloned(),
            solutions
                .get(i, "n")
                .and_then(|t| t.as_literal())
                .and_then(|l| l.as_integer()),
        ) {
            counts.insert(p, n as usize);
        }
    }
    Ok(counts)
}

fn expect_iri(solutions: &Solutions, row: usize, var: &str) -> Result<Iri, QbError> {
    solutions
        .get(row, var)
        .and_then(|t| t.as_iri())
        .cloned()
        .ok_or_else(|| QbError::Malformed(format!("expected an IRI binding for ?{var}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::QbDatasetBuilder;
    use crate::model::Observation;
    use rdf::vocab::{eurostat_property, sdmx_measure};
    use rdf::Literal;
    use sparql::LocalEndpoint;

    fn endpoint_with_tiny_cube() -> (LocalEndpoint, Iri, Iri) {
        let dataset_iri = Iri::new("http://example.org/dataset");
        let dsd_iri = Iri::new("http://example.org/dsd");
        let mut builder = QbDatasetBuilder::new(dataset_iri.clone(), dsd_iri.clone())
            .label("Tiny cube")
            .dimension(eurostat_property::citizen())
            .dimension(eurostat_property::geo())
            .measure(sdmx_measure::obs_value());
        for (i, (cit, geo, v)) in [("SY", "DE", 10), ("SY", "FR", 4), ("NG", "FR", 7)]
            .iter()
            .enumerate()
        {
            let mut obs = Observation::new(Term::iri(format!("http://example.org/obs{i}")));
            obs.dimensions.insert(
                eurostat_property::citizen(),
                Term::iri(format!("http://example.org/dic/citizen#{cit}")),
            );
            obs.dimensions.insert(
                eurostat_property::geo(),
                Term::iri(format!("http://example.org/dic/geo#{geo}")),
            );
            obs.measures.insert(
                sdmx_measure::obs_value(),
                Term::Literal(Literal::integer(*v)),
            );
            builder = builder.observation(obs);
        }
        let endpoint = LocalEndpoint::new();
        endpoint.insert_triples(&builder.build_triples()).unwrap();
        (endpoint, dataset_iri, dsd_iri)
    }

    #[test]
    fn list_datasets_finds_the_cube() {
        let (endpoint, dataset, dsd) = endpoint_with_tiny_cube();
        let datasets = list_datasets(&endpoint).unwrap();
        assert_eq!(datasets.len(), 1);
        assert_eq!(datasets[0].dataset, dataset);
        assert_eq!(datasets[0].structure, dsd);
        assert_eq!(datasets[0].observations, 3);
        assert_eq!(datasets[0].label.as_deref(), Some("Tiny cube"));
    }

    #[test]
    fn load_dsd_classifies_components() {
        let (endpoint, _dataset, dsd) = endpoint_with_tiny_cube();
        let structure = load_dsd(&endpoint, &dsd).unwrap();
        assert_eq!(structure.dimensions().len(), 2);
        assert_eq!(structure.measures().len(), 1);
        assert!(structure.attributes().is_empty());
    }

    #[test]
    fn load_dataset_includes_label_and_structure() {
        let (endpoint, dataset, _dsd) = endpoint_with_tiny_cube();
        let ds = load_dataset(&endpoint, &dataset).unwrap();
        assert_eq!(ds.label.as_deref(), Some("Tiny cube"));
        assert_eq!(ds.structure.components.len(), 3);
    }

    #[test]
    fn observation_count_and_members() {
        let (endpoint, dataset, _dsd) = endpoint_with_tiny_cube();
        assert_eq!(count_observations(&endpoint, &dataset).unwrap(), 3);
        let members =
            dimension_members(&endpoint, &dataset, &eurostat_property::citizen()).unwrap();
        assert_eq!(members.len(), 2);
        let geos = dimension_members(&endpoint, &dataset, &eurostat_property::geo()).unwrap();
        assert_eq!(geos.len(), 2);
    }

    #[test]
    fn load_observations_roundtrip() {
        let (endpoint, dataset, dsd) = endpoint_with_tiny_cube();
        let structure = load_dsd(&endpoint, &dsd).unwrap();
        let observations = load_observations(&endpoint, &dataset, &structure, None).unwrap();
        assert_eq!(observations.len(), 3);
        for obs in &observations {
            assert_eq!(obs.dimensions.len(), 2);
            assert_eq!(obs.measures.len(), 1);
        }
        let limited = load_observations(&endpoint, &dataset, &structure, Some(2)).unwrap();
        assert_eq!(limited.len(), 2);
    }

    #[test]
    fn load_observations_flags_multivalued_slots() {
        let (endpoint, dataset, dsd) = endpoint_with_tiny_cube();
        // Give obs0 a second, different destination and a duplicate
        // (identical) citizenship triple: only the former is multi-valued.
        endpoint
            .insert_triples(&[rdf::Triple::new(
                Term::iri("http://example.org/obs0"),
                eurostat_property::geo(),
                Term::iri("http://example.org/dic/geo#AT"),
            )])
            .unwrap();
        let structure = load_dsd(&endpoint, &dsd).unwrap();
        let observations = load_observations(&endpoint, &dataset, &structure, None).unwrap();
        let obs0 = observations
            .iter()
            .find(|o| o.node == Term::iri("http://example.org/obs0"))
            .unwrap();
        assert_eq!(
            obs0.multivalued.iter().collect::<Vec<_>>(),
            vec![&eurostat_property::geo()]
        );
        assert!(observations
            .iter()
            .filter(|o| o.node != obs0.node)
            .all(|o| o.multivalued.is_empty()));
    }

    #[test]
    fn properties_of_members_counts_usage() {
        let (endpoint, _dataset, _dsd) = endpoint_with_tiny_cube();
        // Attach an extra property to the citizenship members.
        endpoint
            .insert_triples(&[
                rdf::Triple::new(
                    Term::iri("http://example.org/dic/citizen#SY"),
                    Iri::new("http://example.org/continent"),
                    Term::iri("http://example.org/Asia"),
                ),
                rdf::Triple::new(
                    Term::iri("http://example.org/dic/citizen#NG"),
                    Iri::new("http://example.org/continent"),
                    Term::iri("http://example.org/Africa"),
                ),
            ])
            .unwrap();
        let members = vec![
            Term::iri("http://example.org/dic/citizen#SY"),
            Term::iri("http://example.org/dic/citizen#NG"),
        ];
        let counts = properties_of_members(&endpoint, &members).unwrap();
        assert_eq!(
            counts.get(&Iri::new("http://example.org/continent")),
            Some(&2)
        );
    }

    #[test]
    fn missing_resources_are_reported() {
        let (endpoint, _dataset, _dsd) = endpoint_with_tiny_cube();
        assert!(matches!(
            load_dsd(&endpoint, &Iri::new("http://example.org/nope")),
            Err(QbError::NotFound(_))
        ));
        assert!(matches!(
            load_dataset(&endpoint, &Iri::new("http://example.org/nope")),
            Err(QbError::NotFound(_))
        ));
    }
}
