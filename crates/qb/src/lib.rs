//! The W3C RDF Data Cube (QB) layer of the QB2OLAP reproduction.
//!
//! QB is the input format of QB2OLAP: statistical data sets published as
//! collections of observations whose schema is a Data Structure Definition
//! (DSD). This crate provides:
//!
//! * [`model`] — DSDs, components, datasets and observations;
//! * [`builder`] — triple generation for QB structures (used by the
//!   synthetic Eurostat generator and by tests);
//! * [`introspect`] — SPARQL-based discovery of QB structures on an
//!   endpoint, mirroring how the Enrichment module retrieves the cube
//!   structure (Figure 2 of the paper);
//! * [`validate`] — a practical subset of the QB integrity constraints.

#![warn(missing_docs)]

pub mod builder;
pub mod error;
pub mod introspect;
pub mod model;
pub mod validate;

pub use builder::{dataset_triples, dsd_triples, observation_triples, QbDatasetBuilder};
pub use error::QbError;
pub use introspect::{
    count_observations, dimension_members, list_datasets, load_dataset, load_dsd,
    load_observations, properties_of_members, DatasetSummary,
};
pub use model::{Component, ComponentKind, DataStructureDefinition, Observation, QbDataset};
pub use validate::{validate_dataset, Severity, ValidationIssue, ValidationReport};
