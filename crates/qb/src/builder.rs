//! Programmatic construction of QB datasets and generation of their triples.
//!
//! The synthetic Eurostat generator ([`datagen`](https://docs.rs)) uses this
//! builder to publish a structurally faithful `migr_asyappctzm` data set; the
//! unit tests across the workspace use it to build small cubes.

use rdf::vocab::{qb, rdf as rdfv, rdfs};
use rdf::{BlankNode, Iri, Literal, Term, Triple};

use crate::model::{Component, ComponentKind, DataStructureDefinition, Observation, QbDataset};

/// Generates the RDF triples describing a DSD (one blank component
/// specification node per component, as in the paper's Section II listing).
pub fn dsd_triples(dsd: &DataStructureDefinition) -> Vec<Triple> {
    let mut triples = Vec::new();
    let dsd_term = Term::Iri(dsd.iri.clone());
    triples.push(Triple::new(
        dsd_term.clone(),
        rdfv::type_(),
        Term::Iri(qb::data_structure_definition()),
    ));
    for (index, component) in dsd.components.iter().enumerate() {
        let spec = Term::Blank(BlankNode::new(format!(
            "component-{}-{}",
            dsd.iri.local_name(),
            index
        )));
        triples.push(Triple::new(dsd_term.clone(), qb::component(), spec.clone()));
        triples.push(Triple::new(
            spec.clone(),
            rdfv::type_(),
            Term::Iri(qb::component_specification()),
        ));
        let link = match component.kind {
            ComponentKind::Dimension => qb::dimension(),
            ComponentKind::Measure => qb::measure(),
            ComponentKind::Attribute => qb::attribute(),
        };
        triples.push(Triple::new(
            spec.clone(),
            link,
            Term::Iri(component.property.clone()),
        ));
        if let Some(order) = component.order {
            triples.push(Triple::new(
                spec.clone(),
                qb::order(),
                Literal::integer(order as i64),
            ));
        }
        if component.kind == ComponentKind::Attribute {
            triples.push(Triple::new(
                spec.clone(),
                qb::component_required(),
                Literal::boolean(component.required),
            ));
        }
        if let Some(code_list) = &component.code_list {
            triples.push(Triple::new(
                spec,
                qb::code_list(),
                Term::Iri(code_list.clone()),
            ));
        }
        // Declare the property itself.
        let class = match component.kind {
            ComponentKind::Dimension => qb::dimension_property(),
            ComponentKind::Measure => qb::measure_property(),
            ComponentKind::Attribute => qb::attribute_property(),
        };
        triples.push(Triple::new(
            Term::Iri(component.property.clone()),
            rdfv::type_(),
            Term::Iri(class),
        ));
    }
    triples
}

/// Generates the triples describing a dataset (type, structure, label).
pub fn dataset_triples(dataset: &QbDataset) -> Vec<Triple> {
    let mut triples = vec![
        Triple::new(
            Term::Iri(dataset.iri.clone()),
            rdfv::type_(),
            Term::Iri(qb::data_set_class()),
        ),
        Triple::new(
            Term::Iri(dataset.iri.clone()),
            qb::structure(),
            Term::Iri(dataset.structure.iri.clone()),
        ),
    ];
    if let Some(label) = &dataset.label {
        triples.push(Triple::new(
            Term::Iri(dataset.iri.clone()),
            rdfs::label(),
            Literal::lang_string(label, "en"),
        ));
    }
    if let Some(comment) = &dataset.comment {
        triples.push(Triple::new(
            Term::Iri(dataset.iri.clone()),
            rdfs::comment(),
            Literal::lang_string(comment, "en"),
        ));
    }
    triples.extend(dsd_triples(&dataset.structure));
    triples
}

/// Generates the triples for one observation of a dataset.
pub fn observation_triples(dataset_iri: &Iri, observation: &Observation) -> Vec<Triple> {
    let node = observation.node.clone();
    let mut triples = vec![
        Triple::new(node.clone(), rdfv::type_(), Term::Iri(qb::observation())),
        Triple::new(node.clone(), qb::data_set(), Term::Iri(dataset_iri.clone())),
    ];
    for (property, member) in &observation.dimensions {
        triples.push(Triple::new(node.clone(), property.clone(), member.clone()));
    }
    for (property, value) in &observation.measures {
        triples.push(Triple::new(node.clone(), property.clone(), value.clone()));
    }
    for (property, value) in &observation.attributes {
        triples.push(Triple::new(node.clone(), property.clone(), value.clone()));
    }
    triples
}

/// A convenience builder that assembles a dataset plus its observations and
/// emits all triples at once.
#[derive(Debug, Clone)]
pub struct QbDatasetBuilder {
    dataset: QbDataset,
    observations: Vec<Observation>,
}

impl QbDatasetBuilder {
    /// Starts a builder for a dataset with the given IRIs.
    pub fn new(dataset_iri: Iri, dsd_iri: Iri) -> Self {
        QbDatasetBuilder {
            dataset: QbDataset::new(dataset_iri, DataStructureDefinition::new(dsd_iri)),
            observations: Vec::new(),
        }
    }

    /// Sets the dataset label.
    pub fn label(mut self, label: impl Into<String>) -> Self {
        self.dataset.label = Some(label.into());
        self
    }

    /// Adds a dimension component.
    pub fn dimension(mut self, property: Iri) -> Self {
        self.dataset.structure.push(Component::dimension(property));
        self
    }

    /// Adds a measure component.
    pub fn measure(mut self, property: Iri) -> Self {
        self.dataset.structure.push(Component::measure(property));
        self
    }

    /// Adds an attribute component.
    pub fn attribute(mut self, property: Iri) -> Self {
        self.dataset.structure.push(Component::attribute(property));
        self
    }

    /// Adds a fully formed component.
    pub fn component(mut self, component: Component) -> Self {
        self.dataset.structure.push(component);
        self
    }

    /// Adds an observation.
    pub fn observation(mut self, observation: Observation) -> Self {
        self.observations.push(observation);
        self
    }

    /// The dataset description built so far.
    pub fn dataset(&self) -> &QbDataset {
        &self.dataset
    }

    /// Number of observations added so far.
    pub fn observation_count(&self) -> usize {
        self.observations.len()
    }

    /// Emits all triples: dataset + DSD + observations.
    pub fn build_triples(&self) -> Vec<Triple> {
        let mut triples = dataset_triples(&self.dataset);
        for obs in &self.observations {
            triples.extend(observation_triples(&self.dataset.iri, obs));
        }
        triples
    }

    /// Consumes the builder, returning the dataset description and triples.
    pub fn build(self) -> (QbDataset, Vec<Triple>) {
        let triples = self.build_triples();
        (self.dataset, triples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdf::vocab::{eurostat_property, sdmx_measure};
    use rdf::Graph;

    fn tiny_dataset() -> QbDatasetBuilder {
        let mut obs1 = Observation::new(Term::iri("http://example.org/obs1"));
        obs1.dimensions.insert(
            eurostat_property::citizen(),
            Term::iri("http://example.org/SY"),
        );
        obs1.measures
            .insert(sdmx_measure::obs_value(), Term::Literal(Literal::integer(10)));
        let mut obs2 = Observation::new(Term::iri("http://example.org/obs2"));
        obs2.dimensions.insert(
            eurostat_property::citizen(),
            Term::iri("http://example.org/NG"),
        );
        obs2.measures
            .insert(sdmx_measure::obs_value(), Term::Literal(Literal::integer(3)));

        QbDatasetBuilder::new(
            Iri::new("http://example.org/dataset"),
            Iri::new("http://example.org/dsd"),
        )
        .label("Tiny asylum cube")
        .dimension(eurostat_property::citizen())
        .measure(sdmx_measure::obs_value())
        .observation(obs1)
        .observation(obs2)
    }

    #[test]
    fn builder_generates_complete_structure() {
        let builder = tiny_dataset();
        assert_eq!(builder.observation_count(), 2);
        let (dataset, triples) = builder.build();
        assert_eq!(dataset.structure.dimensions().len(), 1);
        let graph = Graph::from_triples(triples);

        // Dataset typed and linked to its DSD.
        assert!(graph.contains(&Triple::new(
            Term::Iri(dataset.iri.clone()),
            rdfv::type_(),
            Term::Iri(qb::data_set_class()),
        )));
        assert_eq!(
            graph.object(&Term::Iri(dataset.iri.clone()), &qb::structure()),
            Some(Term::Iri(dataset.structure.iri.clone()))
        );
        // Two component specifications.
        assert_eq!(
            graph
                .objects(&Term::Iri(dataset.structure.iri.clone()), &qb::component())
                .len(),
            2
        );
        // Observations typed and linked to the dataset.
        assert_eq!(graph.subjects_of_type(&qb::observation()).len(), 2);
        assert_eq!(
            graph
                .subjects(&qb::data_set(), &Term::Iri(dataset.iri.clone()))
                .len(),
            2
        );
    }

    #[test]
    fn observation_triples_include_all_components() {
        let mut obs = Observation::new(Term::iri("http://example.org/obs9"));
        obs.dimensions.insert(
            eurostat_property::citizen(),
            Term::iri("http://example.org/SY"),
        );
        obs.attributes.insert(
            rdf::vocab::sdmx_attribute::obs_status(),
            Term::Literal(Literal::string("provisional")),
        );
        obs.measures
            .insert(sdmx_measure::obs_value(), Term::Literal(Literal::integer(7)));
        let triples = observation_triples(&Iri::new("http://example.org/dataset"), &obs);
        // type + dataSet + 1 dim + 1 measure + 1 attribute
        assert_eq!(triples.len(), 5);
    }

    #[test]
    fn dsd_triples_declare_property_classes() {
        let (dataset, triples) = tiny_dataset().build();
        let graph = Graph::from_triples(triples);
        assert!(graph.contains(&Triple::new(
            Term::Iri(eurostat_property::citizen()),
            rdfv::type_(),
            Term::Iri(qb::dimension_property()),
        )));
        assert!(graph.contains(&Triple::new(
            Term::Iri(sdmx_measure::obs_value()),
            rdfv::type_(),
            Term::Iri(qb::measure_property()),
        )));
        let _ = dataset;
    }

    #[test]
    fn attribute_components_carry_required_flag() {
        let mut component = Component::attribute(rdf::vocab::sdmx_attribute::obs_status());
        component.required = true;
        let builder = QbDatasetBuilder::new(
            Iri::new("http://example.org/ds2"),
            Iri::new("http://example.org/dsd2"),
        )
        .component(component);
        let graph = Graph::from_triples(builder.build_triples());
        assert_eq!(
            graph
                .triples_matching(None, Some(&qb::component_required()), None)
                .len(),
            1
        );
    }
}
