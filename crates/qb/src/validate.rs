//! Well-formedness checks for QB data, a practical subset of the W3C RDF
//! Data Cube integrity constraints.
//!
//! The Enrichment module runs these checks before redefinition so that data
//! quality issues (the paper's motivation for the fine-tuning parameters)
//! are surfaced to the user up front.

use rdf::{Iri, Term};
use sparql::Endpoint;

use crate::error::QbError;
use crate::model::DataStructureDefinition;

/// Severity of a validation finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// The data violates a QB integrity constraint.
    Error,
    /// The data is usable but will degrade the OLAP experience
    /// (e.g. missing labels, as discussed for Nigeria's IRI in the paper).
    Warning,
}

/// One validation finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidationIssue {
    /// Which check produced the finding.
    pub check: &'static str,
    /// Error or warning.
    pub severity: Severity,
    /// Human-readable description.
    pub message: String,
}

impl ValidationIssue {
    fn error(check: &'static str, message: impl Into<String>) -> Self {
        ValidationIssue {
            check,
            severity: Severity::Error,
            message: message.into(),
        }
    }

    fn warning(check: &'static str, message: impl Into<String>) -> Self {
        ValidationIssue {
            check,
            severity: Severity::Warning,
            message: message.into(),
        }
    }
}

/// A validation report.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ValidationReport {
    /// All findings.
    pub issues: Vec<ValidationIssue>,
}

impl ValidationReport {
    /// True if no error-severity issue was found.
    pub fn is_valid(&self) -> bool {
        !self
            .issues
            .iter()
            .any(|i| i.severity == Severity::Error)
    }

    /// The error-severity issues.
    pub fn errors(&self) -> Vec<&ValidationIssue> {
        self.issues
            .iter()
            .filter(|i| i.severity == Severity::Error)
            .collect()
    }

    /// The warning-severity issues.
    pub fn warnings(&self) -> Vec<&ValidationIssue> {
        self.issues
            .iter()
            .filter(|i| i.severity == Severity::Warning)
            .collect()
    }
}

/// Validates a dataset published on an endpoint against its DSD.
///
/// Checks implemented (names follow the W3C IC numbering loosely):
/// * `dataset-structure` — the dataset links to a DSD (IC-2);
/// * `observation-dataset` — every observation of the dataset is typed
///   `qb:Observation` (IC-1);
/// * `dimension-complete` — every observation carries a value for every
///   dimension of the DSD (IC-12);
/// * `measure-present` — every observation carries at least one measure;
/// * `no-duplicate-observations` — no two observations agree on all
///   dimension values (IC-12 uniqueness reading);
/// * `members-have-labels` — dimension members have an `rdfs:label` or
///   `skos:prefLabel` (warning only; this is the descriptive-attribute gap
///   the paper highlights).
pub fn validate_dataset(
    endpoint: &dyn Endpoint,
    dataset: &Iri,
    dsd: &DataStructureDefinition,
) -> Result<ValidationReport, QbError> {
    let mut report = ValidationReport::default();
    let ds = dataset.as_str();

    // dataset-structure
    let has_structure = endpoint.ask(&format!(
        "PREFIX qb: <http://purl.org/linked-data/cube#> ASK {{ <{ds}> qb:structure ?dsd }}"
    ))?;
    if !has_structure {
        report.issues.push(ValidationIssue::error(
            "dataset-structure",
            format!("dataset <{ds}> has no qb:structure link"),
        ));
    }

    // observation-dataset typing
    let untyped = endpoint.select(&format!(
        "PREFIX qb: <http://purl.org/linked-data/cube#>
         SELECT (COUNT(?obs) AS ?n) WHERE {{
           ?obs qb:dataSet <{ds}> .
           FILTER NOT EXISTS {{ ?obs a qb:Observation }}
         }}"
    ))?;
    let untyped_count = count_of(&untyped);
    if untyped_count > 0 {
        report.issues.push(ValidationIssue::error(
            "observation-dataset",
            format!("{untyped_count} observation(s) lack rdf:type qb:Observation"),
        ));
    }

    // dimension-complete: every observation has a value for every dimension.
    for dim in dsd.dimensions() {
        let missing = endpoint.select(&format!(
            "PREFIX qb: <http://purl.org/linked-data/cube#>
             SELECT (COUNT(?obs) AS ?n) WHERE {{
               ?obs qb:dataSet <{ds}> .
               FILTER NOT EXISTS {{ ?obs <{dim}> ?v }}
             }}",
            dim = dim.as_str()
        ))?;
        let missing_count = count_of(&missing);
        if missing_count > 0 {
            report.issues.push(ValidationIssue::error(
                "dimension-complete",
                format!(
                    "{missing_count} observation(s) have no value for dimension <{}>",
                    dim.as_str()
                ),
            ));
        }
    }

    // measure-present: at least one measure bound per observation.
    if !dsd.measures().is_empty() {
        let measure_filters: Vec<String> = dsd
            .measures()
            .iter()
            .map(|m| format!("FILTER NOT EXISTS {{ ?obs <{}> ?v{} }}", m.as_str(), "m"))
            .collect();
        let query = format!(
            "PREFIX qb: <http://purl.org/linked-data/cube#>
             SELECT (COUNT(?obs) AS ?n) WHERE {{
               ?obs qb:dataSet <{ds}> .
               {}
             }}",
            measure_filters.join("\n               ")
        );
        let missing = endpoint.select(&query)?;
        let missing_count = count_of(&missing);
        if missing_count > 0 {
            report.issues.push(ValidationIssue::error(
                "measure-present",
                format!("{missing_count} observation(s) carry no measure value"),
            ));
        }
    }

    // no-duplicate-observations: group by all dimensions, flag groups > 1.
    if !dsd.dimensions().is_empty() {
        let dims = dsd.dimensions();
        let dim_vars: Vec<String> = (0..dims.len()).map(|i| format!("?d{i}")).collect();
        let dim_patterns: Vec<String> = dims
            .iter()
            .enumerate()
            .map(|(i, d)| format!("?obs <{}> ?d{i} .", d.as_str()))
            .collect();
        let query = format!(
            "PREFIX qb: <http://purl.org/linked-data/cube#>
             SELECT {vars} (COUNT(?obs) AS ?n) WHERE {{
               ?obs qb:dataSet <{ds}> .
               {patterns}
             }} GROUP BY {vars} HAVING (COUNT(?obs) > 1)",
            vars = dim_vars.join(" "),
            patterns = dim_patterns.join("\n               ")
        );
        let duplicates = endpoint.select(&query)?;
        if !duplicates.is_empty() {
            report.issues.push(ValidationIssue::error(
                "no-duplicate-observations",
                format!(
                    "{} group(s) of observations share identical dimension values",
                    duplicates.len()
                ),
            ));
        }
    }

    // members-have-labels (warning): IRI dimension members without a label.
    for dim in dsd.dimensions() {
        let unlabeled = endpoint.select(&format!(
            "PREFIX qb: <http://purl.org/linked-data/cube#>
             PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>
             PREFIX skos: <http://www.w3.org/2004/02/skos/core#>
             SELECT (COUNT(DISTINCT ?m) AS ?n) WHERE {{
               ?obs qb:dataSet <{ds}> ; <{dim}> ?m .
               FILTER(isIRI(?m))
               FILTER NOT EXISTS {{ ?m rdfs:label ?l }}
               FILTER NOT EXISTS {{ ?m skos:prefLabel ?pl }}
             }}",
            dim = dim.as_str()
        ))?;
        let unlabeled_count = count_of(&unlabeled);
        if unlabeled_count > 0 {
            report.issues.push(ValidationIssue::warning(
                "members-have-labels",
                format!(
                    "{unlabeled_count} member(s) of dimension <{}> have no rdfs:label / skos:prefLabel",
                    dim.as_str()
                ),
            ));
        }
    }

    Ok(report)
}

fn count_of(solutions: &sparql::Solutions) -> i64 {
    solutions
        .get(0, "n")
        .and_then(Term::as_literal)
        .and_then(|l| l.as_integer())
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::QbDatasetBuilder;
    use crate::model::Observation;
    use rdf::vocab::{eurostat_property, rdfs, sdmx_measure};
    use rdf::{Literal, Triple};
    use sparql::LocalEndpoint;

    fn build_endpoint(complete: bool) -> (LocalEndpoint, Iri, DataStructureDefinition) {
        let dataset_iri = Iri::new("http://example.org/dataset");
        let dsd_iri = Iri::new("http://example.org/dsd");
        let mut builder = QbDatasetBuilder::new(dataset_iri.clone(), dsd_iri)
            .dimension(eurostat_property::citizen())
            .dimension(eurostat_property::geo())
            .measure(sdmx_measure::obs_value());
        for (i, (cit, geo, v)) in [("SY", "DE", 10), ("NG", "FR", 7)].iter().enumerate() {
            let mut obs = Observation::new(Term::iri(format!("http://example.org/obs{i}")));
            obs.dimensions.insert(
                eurostat_property::citizen(),
                Term::iri(format!("http://example.org/dic/citizen#{cit}")),
            );
            if complete || i == 0 {
                obs.dimensions.insert(
                    eurostat_property::geo(),
                    Term::iri(format!("http://example.org/dic/geo#{geo}")),
                );
            }
            obs.measures.insert(
                sdmx_measure::obs_value(),
                Term::Literal(Literal::integer(*v)),
            );
            builder = builder.observation(obs);
        }
        let dsd = builder.dataset().structure.clone();
        let endpoint = LocalEndpoint::new();
        endpoint.insert_triples(&builder.build_triples()).unwrap();
        // Label the members so the label warning stays quiet in the valid case.
        if complete {
            for m in ["citizen#SY", "citizen#NG", "geo#DE", "geo#FR"] {
                endpoint
                    .insert_triples(&[Triple::new(
                        Term::iri(format!("http://example.org/dic/{m}")),
                        rdfs::label(),
                        Literal::string(m),
                    )])
                    .unwrap();
            }
        }
        (endpoint, dataset_iri, dsd)
    }

    #[test]
    fn valid_dataset_passes() {
        let (endpoint, dataset, dsd) = build_endpoint(true);
        let report = validate_dataset(&endpoint, &dataset, &dsd).unwrap();
        assert!(report.is_valid(), "unexpected issues: {:?}", report.issues);
        assert!(report.errors().is_empty());
    }

    #[test]
    fn missing_dimension_is_an_error() {
        let (endpoint, dataset, dsd) = build_endpoint(false);
        let report = validate_dataset(&endpoint, &dataset, &dsd).unwrap();
        assert!(!report.is_valid());
        assert!(report
            .issues
            .iter()
            .any(|i| i.check == "dimension-complete"));
    }

    #[test]
    fn unlabeled_members_are_a_warning_only() {
        let (endpoint, dataset, dsd) = build_endpoint(false);
        let report = validate_dataset(&endpoint, &dataset, &dsd).unwrap();
        assert!(report
            .issues
            .iter()
            .any(|i| i.check == "members-have-labels" && i.severity == Severity::Warning));
    }

    #[test]
    fn duplicate_observations_are_detected() {
        let (endpoint, dataset, dsd) = build_endpoint(true);
        // Add an observation that duplicates obs0's dimension values.
        let mut obs = Observation::new(Term::iri("http://example.org/obs-dup"));
        obs.dimensions.insert(
            eurostat_property::citizen(),
            Term::iri("http://example.org/dic/citizen#SY"),
        );
        obs.dimensions.insert(
            eurostat_property::geo(),
            Term::iri("http://example.org/dic/geo#DE"),
        );
        obs.measures.insert(
            sdmx_measure::obs_value(),
            Term::Literal(Literal::integer(99)),
        );
        endpoint
            .insert_triples(&crate::builder::observation_triples(&dataset, &obs))
            .unwrap();
        let report = validate_dataset(&endpoint, &dataset, &dsd).unwrap();
        assert!(report
            .issues
            .iter()
            .any(|i| i.check == "no-duplicate-observations"));
    }

    #[test]
    fn missing_structure_link_is_an_error() {
        let endpoint = LocalEndpoint::new();
        let dataset = Iri::new("http://example.org/empty");
        let dsd = DataStructureDefinition::new(Iri::new("http://example.org/dsd"));
        let report = validate_dataset(&endpoint, &dataset, &dsd).unwrap();
        assert!(report
            .issues
            .iter()
            .any(|i| i.check == "dataset-structure"));
    }

    #[test]
    fn report_accessors() {
        let report = ValidationReport {
            issues: vec![
                ValidationIssue::error("a", "x"),
                ValidationIssue::warning("b", "y"),
            ],
        };
        assert!(!report.is_valid());
        assert_eq!(report.errors().len(), 1);
        assert_eq!(report.warnings().len(), 1);
    }
}
