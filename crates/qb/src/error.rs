//! Error type for the QB layer.

use std::fmt;

/// Errors raised while introspecting or validating QB data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QbError {
    /// A SPARQL query issued during introspection failed.
    Sparql(String),
    /// A requested dataset / DSD was not found in the endpoint.
    NotFound(String),
    /// The data is structurally malformed (missing required links).
    Malformed(String),
}

impl fmt::Display for QbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QbError::Sparql(m) => write!(f, "SPARQL error during QB introspection: {m}"),
            QbError::NotFound(m) => write!(f, "QB resource not found: {m}"),
            QbError::Malformed(m) => write!(f, "malformed QB data: {m}"),
        }
    }
}

impl std::error::Error for QbError {}

impl From<sparql::SparqlError> for QbError {
    fn from(e: sparql::SparqlError) -> Self {
        QbError::Sparql(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversion() {
        let e: QbError = sparql::SparqlError::eval("boom").into();
        assert!(e.to_string().contains("boom"));
        assert!(QbError::NotFound("x".into()).to_string().contains("x"));
        assert!(QbError::Malformed("y".into()).to_string().contains("y"));
    }
}
