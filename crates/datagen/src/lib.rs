//! Synthetic data generation for the QB2OLAP reproduction.
//!
//! The paper's demo runs on the Linked Open Data publication of Eurostat's
//! `migr_asyappctzm` dataset (~80,000 observations, 2013–2014) plus DBpedia
//! as an external linked dataset. Neither can be bundled here, so this crate
//! generates structurally faithful substitutes:
//!
//! * [`eurostat`] — the QB dataset (same DSD, same dictionary namespaces,
//!   configurable size and link noise);
//! * [`dbpedia`] — a DBpedia-like country graph for external enrichment;
//! * [`codelists`] — the underlying code lists;
//! * [`workload`] — the QL queries used by examples, tests and benchmarks
//!   (including Mary's query from Section IV).

#![warn(missing_docs)]

pub mod codelists;
pub mod dbpedia;
pub mod eurostat;
pub mod workload;

pub use eurostat::{generate, EurostatConfig, GeneratedDataset, NoiseConfig};

/// Generates the dataset and loads it (plus the external DBpedia-like graph)
/// into a fresh local endpoint, returning the endpoint and the generated
/// dataset description. This is the starting state of the demo: "the QB
/// data set loaded into the endpoint".
pub fn load_demo_endpoint(config: &EurostatConfig) -> (sparql::LocalEndpoint, GeneratedDataset) {
    use sparql::Endpoint as _;
    let data = generate(config);
    let endpoint = sparql::LocalEndpoint::new();
    endpoint
        .insert_triples(&data.triples)
        .expect("loading generated triples cannot fail");
    if config.dbpedia_links {
        endpoint
            .insert_triples(&dbpedia::dbpedia_graph())
            .expect("loading the external graph cannot fail");
    }
    (endpoint, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparql::Endpoint;

    #[test]
    fn demo_endpoint_contains_dataset_and_external_graph() {
        let (endpoint, data) = load_demo_endpoint(&EurostatConfig::small(200));
        assert_eq!(data.observation_count, 200);
        // The dataset is discoverable through the QB layer.
        let datasets = qb::list_datasets(&endpoint).unwrap();
        assert_eq!(datasets.len(), 1);
        assert_eq!(datasets[0].observations, 200);
        // The DBpedia-like resources are present too.
        assert!(endpoint
            .ask(
                "PREFIX dbo: <http://dbpedia.org/ontology/>
                 ASK { <http://dbpedia.org/resource/Syria> dbo:continent ?c }"
            )
            .unwrap());
    }
}
