//! Code lists used by the synthetic Eurostat `migr_asyappctzm` dataset.
//!
//! The lists reproduce the *structure* of the Eurostat dictionaries
//! (`dic:citizen`, `dic:geo`, `dic:age`, `dic:sex`, `dic:asyl_app`): codes,
//! English labels, and the cross-cutting properties (continent, political
//! organisation, government type, population) that the Enrichment module's
//! functional-dependency discovery is supposed to find.

/// A country of citizenship: `(code, label, continent, government type, population in millions)`.
pub const CITIZEN_COUNTRIES: &[(&str, &str, &str, &str, u32)] = &[
    ("SY", "Syria", "Asia", "UnitaryRepublic", 22),
    ("AF", "Afghanistan", "Asia", "IslamicRepublic", 33),
    ("IQ", "Iraq", "Asia", "FederalRepublic", 36),
    ("IR", "Iran", "Asia", "IslamicRepublic", 78),
    ("PK", "Pakistan", "Asia", "FederalRepublic", 185),
    ("BD", "Bangladesh", "Asia", "UnitaryRepublic", 156),
    ("CN", "China", "Asia", "SocialistRepublic", 1364),
    ("VN", "Vietnam", "Asia", "SocialistRepublic", 91),
    ("LK", "Sri Lanka", "Asia", "UnitaryRepublic", 20),
    ("GE", "Georgia", "Asia", "UnitaryRepublic", 4),
    ("AM", "Armenia", "Asia", "UnitaryRepublic", 3),
    ("LB", "Lebanon", "Asia", "ParliamentaryRepublic", 5),
    ("NG", "Nigeria", "Africa", "FederalRepublic", 177),
    ("ER", "Eritrea", "Africa", "UnitaryRepublic", 5),
    ("SO", "Somalia", "Africa", "FederalRepublic", 10),
    ("GM", "Gambia", "Africa", "UnitaryRepublic", 2),
    ("ML", "Mali", "Africa", "UnitaryRepublic", 17),
    ("SN", "Senegal", "Africa", "UnitaryRepublic", 14),
    ("DZ", "Algeria", "Africa", "UnitaryRepublic", 39),
    ("MA", "Morocco", "Africa", "ConstitutionalMonarchy", 34),
    ("TN", "Tunisia", "Africa", "UnitaryRepublic", 11),
    ("EG", "Egypt", "Africa", "UnitaryRepublic", 89),
    ("ET", "Ethiopia", "Africa", "FederalRepublic", 97),
    ("CD", "DR Congo", "Africa", "UnitaryRepublic", 74),
    ("GN", "Guinea", "Africa", "UnitaryRepublic", 12),
    ("CI", "Ivory Coast", "Africa", "UnitaryRepublic", 22),
    ("RS", "Serbia", "Europe", "ParliamentaryRepublic", 7),
    ("AL", "Albania", "Europe", "ParliamentaryRepublic", 3),
    ("XK", "Kosovo", "Europe", "ParliamentaryRepublic", 2),
    ("MK", "North Macedonia", "Europe", "ParliamentaryRepublic", 2),
    ("BA", "Bosnia and Herzegovina", "Europe", "FederalRepublic", 4),
    ("UA", "Ukraine", "Europe", "UnitaryRepublic", 45),
    ("RU", "Russia", "Europe", "FederalRepublic", 144),
    ("TR", "Turkey", "Asia", "UnitaryRepublic", 77),
    ("CO", "Colombia", "America", "UnitaryRepublic", 47),
    ("VE", "Venezuela", "America", "FederalRepublic", 30),
    ("HT", "Haiti", "America", "UnitaryRepublic", 10),
    ("SV", "El Salvador", "America", "UnitaryRepublic", 6),
    ("US", "United States", "America", "FederalRepublic", 318),
    ("LY", "Libya", "Africa", "ProvisionalGovernment", 6),
    ("SD", "Sudan", "Africa", "FederalRepublic", 37),
    ("SS", "South Sudan", "Africa", "FederalRepublic", 11),
    ("IN", "India", "Asia", "FederalRepublic", 1295),
    ("NP", "Nepal", "Asia", "FederalRepublic", 28),
    ("MM", "Myanmar", "Asia", "UnitaryRepublic", 53),
    ("PH", "Philippines", "Asia", "UnitaryRepublic", 99),
    ("JO", "Jordan", "Asia", "ConstitutionalMonarchy", 7),
    ("SA", "Saudi Arabia", "Asia", "AbsoluteMonarchy", 30),
    ("AO", "Angola", "Africa", "UnitaryRepublic", 24),
    ("CM", "Cameroon", "Africa", "UnitaryRepublic", 22),
];

/// A destination (host) country: `(code, label, continent, political organisation, EU member)`.
pub const GEO_COUNTRIES: &[(&str, &str, &str, &str, bool)] = &[
    ("DE", "Germany", "Europe", "EU", true),
    ("FR", "France", "Europe", "EU", true),
    ("IT", "Italy", "Europe", "EU", true),
    ("ES", "Spain", "Europe", "EU", true),
    ("SE", "Sweden", "Europe", "EU", true),
    ("HU", "Hungary", "Europe", "EU", true),
    ("AT", "Austria", "Europe", "EU", true),
    ("BE", "Belgium", "Europe", "EU", true),
    ("NL", "Netherlands", "Europe", "EU", true),
    ("UK", "United Kingdom", "Europe", "EU", true),
    ("PL", "Poland", "Europe", "EU", true),
    ("EL", "Greece", "Europe", "EU", true),
    ("BG", "Bulgaria", "Europe", "EU", true),
    ("RO", "Romania", "Europe", "EU", true),
    ("DK", "Denmark", "Europe", "EU", true),
    ("FI", "Finland", "Europe", "EU", true),
    ("IE", "Ireland", "Europe", "EU", true),
    ("PT", "Portugal", "Europe", "EU", true),
    ("CZ", "Czechia", "Europe", "EU", true),
    ("SK", "Slovakia", "Europe", "EU", true),
    ("SI", "Slovenia", "Europe", "EU", true),
    ("HR", "Croatia", "Europe", "EU", true),
    ("LT", "Lithuania", "Europe", "EU", true),
    ("LV", "Latvia", "Europe", "EU", true),
    ("EE", "Estonia", "Europe", "EU", true),
    ("LU", "Luxembourg", "Europe", "EU", true),
    ("MT", "Malta", "Europe", "EU", true),
    ("CY", "Cyprus", "Europe", "EU", true),
    ("CH", "Switzerland", "Europe", "EFTA", false),
    ("NO", "Norway", "Europe", "EFTA", false),
    ("IS", "Iceland", "Europe", "EFTA", false),
    ("LI", "Liechtenstein", "Europe", "EFTA", false),
];

/// Age classes: `(code, label, broader age group)`.
pub const AGE_CLASSES: &[(&str, &str, &str)] = &[
    ("Y_LT14", "Less than 14 years", "Minor"),
    ("Y14-17", "From 14 to 17 years", "Minor"),
    ("Y18-34", "From 18 to 34 years", "Adult"),
    ("Y35-64", "From 35 to 64 years", "Adult"),
    ("Y_GE65", "65 years or over", "Senior"),
    ("UNK", "Unknown", "Unknown"),
];

/// Sex codes: `(code, label)`.
pub const SEXES: &[(&str, &str)] = &[("M", "Males"), ("F", "Females"), ("UNK", "Unknown")];

/// Asylum applicant types: `(code, label)`.
pub const ASYL_APP_TYPES: &[(&str, &str)] = &[
    ("ASY_APP", "Asylum applicant"),
    ("NASY_APP", "First time asylum applicant"),
];

/// Continents appearing in the code lists.
pub const CONTINENTS: &[&str] = &["Africa", "Asia", "Europe", "America"];

/// The months of the demo subset (2013-01 .. 2014-12), as `(year, month)`.
pub fn demo_months() -> Vec<(i32, u32)> {
    let mut months = Vec::with_capacity(24);
    for year in [2013, 2014] {
        for month in 1..=12 {
            months.push((year, month));
        }
    }
    months
}

/// Looks up a citizenship country row by code.
pub fn citizen_by_code(code: &str) -> Option<&'static (&'static str, &'static str, &'static str, &'static str, u32)> {
    CITIZEN_COUNTRIES.iter().find(|(c, ..)| *c == code)
}

/// Looks up a destination country row by code.
pub fn geo_by_code(code: &str) -> Option<&'static (&'static str, &'static str, &'static str, &'static str, bool)> {
    GEO_COUNTRIES.iter().find(|(c, ..)| *c == code)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn code_lists_are_consistent() {
        let codes: BTreeSet<&str> = CITIZEN_COUNTRIES.iter().map(|(c, ..)| *c).collect();
        assert_eq!(codes.len(), CITIZEN_COUNTRIES.len(), "citizen codes must be unique");
        let geo_codes: BTreeSet<&str> = GEO_COUNTRIES.iter().map(|(c, ..)| *c).collect();
        assert_eq!(geo_codes.len(), GEO_COUNTRIES.len(), "geo codes must be unique");
        for (_, _, continent, _, _) in CITIZEN_COUNTRIES {
            assert!(CONTINENTS.contains(continent), "unknown continent {continent}");
        }
    }

    #[test]
    fn demo_months_cover_two_years() {
        let months = demo_months();
        assert_eq!(months.len(), 24);
        assert_eq!(months.first(), Some(&(2013, 1)));
        assert_eq!(months.last(), Some(&(2014, 12)));
    }

    #[test]
    fn lookups_work() {
        assert_eq!(citizen_by_code("SY").map(|r| r.2), Some("Asia"));
        assert_eq!(citizen_by_code("NG").map(|r| r.2), Some("Africa"));
        assert_eq!(geo_by_code("FR").map(|r| r.3), Some("EU"));
        assert_eq!(geo_by_code("CH").map(|r| r.3), Some("EFTA"));
        assert!(citizen_by_code("ZZ").is_none());
    }

    #[test]
    fn scale_supports_80k_distinct_observations() {
        // The demo subset has ~80,000 observations; the cross product of the
        // code lists must be able to provide that many distinct dimension
        // combinations.
        let combos = CITIZEN_COUNTRIES.len()
            * GEO_COUNTRIES.len()
            * demo_months().len()
            * AGE_CLASSES.len()
            * SEXES.len()
            * ASYL_APP_TYPES.len();
        assert!(combos >= 80_000, "only {combos} combinations available");
    }
}
