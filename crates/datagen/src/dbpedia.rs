//! A synthetic DBpedia-like linked dataset.
//!
//! The paper's demo shows that "in the presence of linked data sets, our
//! tool is able to extract dimensional information (schema and instances)
//! from other data sets (e.g., DBpedia)". Live DBpedia is not available
//! here, so this module publishes a small graph in the DBpedia ontology
//! namespace with exactly the properties that demonstration needs: each
//! country of citizenship is an `dbo:Country` with a `dbo:continent`, a
//! `dbo:governmentType` and a `dbo:populationTotal`. The Eurostat members
//! point at these resources through `owl:sameAs`.

use rdf::vocab::{dbpedia as dbo, rdf as rdfv, rdfs};
use rdf::{Iri, Literal, Term, Triple};

use crate::codelists::CITIZEN_COUNTRIES;
use crate::eurostat::citizen_member;

/// The DBpedia resource namespace used by the synthetic graph.
pub const RESOURCE_NAMESPACE: &str = "http://dbpedia.org/resource/";

/// The IRI of a DBpedia-like resource for an entity name ("Syria" →
/// `dbr:Syria`).
pub fn resource(name: &str) -> Term {
    Term::iri(format!("{RESOURCE_NAMESPACE}{}", name.replace(' ', "_")))
}

/// The DBpedia-like resource of a country, by its English label.
pub fn country_resource(name: &str) -> Term {
    resource(name)
}

/// The graph IRI under which the external dataset is stored.
pub fn graph_name() -> Iri {
    Iri::new("http://dbpedia.org/graph/countries")
}

/// All triples of the synthetic DBpedia-like dataset.
pub fn dbpedia_graph() -> Vec<Triple> {
    let mut triples = Vec::new();
    for (_code, name, continent, government, population) in CITIZEN_COUNTRIES {
        let country = country_resource(name);
        triples.push(Triple::new(
            country.clone(),
            rdfv::type_(),
            Term::Iri(dbo::country()),
        ));
        triples.push(Triple::new(
            country.clone(),
            rdfs::label(),
            Literal::lang_string(*name, "en"),
        ));
        triples.push(Triple::new(
            country.clone(),
            dbo::continent(),
            resource(continent),
        ));
        triples.push(Triple::new(
            country.clone(),
            dbo::government_type(),
            resource(government),
        ));
        triples.push(Triple::new(
            country,
            dbo::population_total(),
            Literal::integer(*population as i64 * 1_000_000),
        ));
    }
    // Label the continents and government types so they can become level
    // attributes after external enrichment.
    let mut seen = std::collections::BTreeSet::new();
    for (_code, _name, continent, government, _pop) in CITIZEN_COUNTRIES {
        for value in [continent, government] {
            if seen.insert(*value) {
                triples.push(Triple::new(
                    resource(value),
                    rdfs::label(),
                    Literal::lang_string(*value, "en"),
                ));
            }
        }
    }
    triples
}

/// `owl:sameAs` links from the Eurostat citizenship members to the
/// DBpedia-like country resources. These live in the Eurostat graph (they
/// are published by the statistical office), while [`dbpedia_graph`] is the
/// external dataset.
pub fn same_as_links() -> Vec<Triple> {
    CITIZEN_COUNTRIES
        .iter()
        .map(|(code, name, ..)| {
            Triple::new(
                citizen_member(code),
                rdf::vocab::owl::same_as(),
                country_resource(name),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdf::Graph;

    #[test]
    fn every_country_has_continent_government_and_population() {
        let graph = Graph::from_triples(dbpedia_graph());
        for (_code, name, ..) in CITIZEN_COUNTRIES {
            let country = country_resource(name);
            assert_eq!(
                graph.objects(&country, &dbo::continent()).len(),
                1,
                "{name} continent"
            );
            assert_eq!(
                graph.objects(&country, &dbo::government_type()).len(),
                1,
                "{name} government type"
            );
            let population = graph
                .object(&country, &dbo::population_total())
                .and_then(|t| t.as_literal().and_then(|l| l.as_integer()))
                .unwrap_or(0);
            assert!(population > 0, "{name} population");
        }
    }

    #[test]
    fn same_as_links_cover_all_citizenship_members() {
        let links = same_as_links();
        assert_eq!(links.len(), CITIZEN_COUNTRIES.len());
        let graph = Graph::from_triples(links);
        assert_eq!(
            graph.object(&citizen_member("SY"), &rdf::vocab::owl::same_as()),
            Some(country_resource("Syria"))
        );
    }

    #[test]
    fn resource_names_are_iri_safe() {
        let r = resource("Saudi Arabia");
        assert_eq!(
            r,
            Term::iri("http://dbpedia.org/resource/Saudi_Arabia")
        );
    }
}
