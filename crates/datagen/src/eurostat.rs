//! Synthetic generator for the Eurostat `migr_asyappctzm` QB dataset.
//!
//! The paper's demo uses the Linked Open Data publication of Eurostat's
//! monthly asylum-application statistics (≈ 80,000 observations for
//! 2013–2014). That dump is not redistributable here, so this module
//! generates a *structurally identical* dataset: the same DSD (six
//! dimensions + `sdmx-measure:obsValue`), the same dictionary namespaces for
//! code-list members, and member-level properties (continent, political
//! organisation, age group, year, `owl:sameAs` links into a DBpedia-like
//! graph) that exercise exactly the discovery paths of the Enrichment
//! module. Scale, noise and which link families are present are
//! configurable so every experiment in EXPERIMENTS.md can be regenerated.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use qb::{Observation, QbDataset, QbDatasetBuilder};
use rdf::vocab::{eurostat_data, eurostat_dic, eurostat_dsd, eurostat_property, owl, rdfs,
    sdmx_dimension, sdmx_measure, skos};
use rdf::{Iri, Literal, Term, Triple};

use crate::codelists::{
    demo_months, AGE_CLASSES, ASYL_APP_TYPES, CITIZEN_COUNTRIES, CONTINENTS, GEO_COUNTRIES, SEXES,
};
use crate::dbpedia;

/// Noise injected into the code-list links, used by the quasi-FD experiments
/// (the paper motivates quasi-FDs by exactly this kind of dirty linked data).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseConfig {
    /// Fraction of citizenship members whose continent link is missing.
    pub missing_link_fraction: f64,
    /// Fraction of citizenship members that carry a *second, conflicting*
    /// continent link.
    pub conflicting_link_fraction: f64,
}

impl Default for NoiseConfig {
    fn default() -> Self {
        NoiseConfig {
            missing_link_fraction: 0.0,
            conflicting_link_fraction: 0.0,
        }
    }
}

/// Configuration of the synthetic dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct EurostatConfig {
    /// Number of observations to generate (the demo subset has ≈ 80,000).
    pub observations: usize,
    /// RNG seed, for reproducible benchmarks.
    pub seed: u64,
    /// Whether to emit the code-list member triples (labels, notations,
    /// continent / political-organisation / age-group / year links).
    pub code_list_links: bool,
    /// Whether to emit `owl:sameAs` links from citizenship members to the
    /// synthetic DBpedia graph (needed for the external-enrichment demo).
    pub dbpedia_links: bool,
    /// Emit `xsd:decimal` measure values (quarter-step rates, the
    /// Eurostat-style float-heavy shape) instead of `xsd:integer` counts.
    /// Exercises the columnar engine's float path end to end: the measure
    /// vector materializes as `Decimal` and delta appends must replay
    /// float aggregation bit-identically (EXPERIMENTS.md §E14).
    pub decimal_measures: bool,
    /// Lay observations out in time-major order (all of month one, then
    /// month two, …) instead of striding the whole combination space.
    /// Real Eurostat dumps arrive month by month, which clusters each
    /// reference period into a handful of row segments — the layout the
    /// zone-map pruning experiment measures (EXPERIMENTS.md §E17). The
    /// default `false` keeps the historical shuffled layout byte for byte.
    pub time_ordered: bool,
    /// Link noise for quasi-FD experiments.
    pub noise: NoiseConfig,
}

impl Default for EurostatConfig {
    fn default() -> Self {
        EurostatConfig {
            observations: 80_000,
            seed: 42,
            code_list_links: true,
            dbpedia_links: true,
            decimal_measures: false,
            time_ordered: false,
            noise: NoiseConfig::default(),
        }
    }
}

impl EurostatConfig {
    /// A small configuration for unit tests and examples.
    pub fn small(observations: usize) -> Self {
        EurostatConfig {
            observations,
            ..Default::default()
        }
    }
}

/// The output of the generator.
#[derive(Debug, Clone)]
pub struct GeneratedDataset {
    /// The dataset IRI (`data:migr_asyappctzm`).
    pub dataset: Iri,
    /// The DSD IRI (`dsd:migr_asyappctzm`).
    pub dsd: Iri,
    /// The QB dataset description.
    pub qb_dataset: QbDataset,
    /// All generated triples (DSD + dataset + observations + code lists).
    pub triples: Vec<Triple>,
    /// Number of observations generated.
    pub observation_count: usize,
}

// ---- member IRI helpers ------------------------------------------------------

/// The IRI of a citizenship code-list member, e.g. `dic:citizen#SY`.
pub fn citizen_member(code: &str) -> Term {
    Term::Iri(eurostat_dic::term(&format!("citizen#{code}")))
}

/// The IRI of a destination (host country) member, e.g. `dic:geo#FR`.
pub fn geo_member(code: &str) -> Term {
    Term::Iri(eurostat_dic::term(&format!("geo#{code}")))
}

/// The IRI of a monthly reference-period member, e.g. `dic:time#2014M03`.
pub fn time_member(year: i32, month: u32) -> Term {
    Term::Iri(eurostat_dic::term(&format!("time#{year}M{month:02}")))
}

/// The IRI of a yearly reference-period member, e.g. `dic:time#2014`.
pub fn year_member(year: i32) -> Term {
    Term::Iri(eurostat_dic::term(&format!("time#{year}")))
}

/// The IRI of an age-class member.
pub fn age_member(code: &str) -> Term {
    Term::Iri(eurostat_dic::term(&format!("age#{code}")))
}

/// The IRI of an age-group member (the coarser age level).
pub fn age_group_member(code: &str) -> Term {
    Term::Iri(eurostat_dic::term(&format!("agegroup#{code}")))
}

/// The IRI of a sex member.
pub fn sex_member(code: &str) -> Term {
    Term::Iri(eurostat_dic::term(&format!("sex#{code}")))
}

/// The IRI of an applicant-type member.
pub fn asyl_app_member(code: &str) -> Term {
    Term::Iri(eurostat_dic::term(&format!("asyl_app#{code}")))
}

/// The IRI of a continent member, e.g. `dic:continent#Africa`.
pub fn continent_member(name: &str) -> Term {
    Term::Iri(eurostat_dic::term(&format!("continent#{name}")))
}

/// The IRI of a political-organisation member (EU / EFTA).
pub fn political_org_member(name: &str) -> Term {
    Term::Iri(eurostat_dic::term(&format!("polorg#{name}")))
}

/// The "all citizenships" top-level member.
pub fn all_member() -> Term {
    Term::Iri(eurostat_dic::term("all#Total"))
}

/// The member-level property linking a country to its continent.
pub fn continent_property() -> Iri {
    eurostat_dic::term("continent")
}

/// The member-level property linking a host country to its political organisation.
pub fn political_org_property() -> Iri {
    eurostat_dic::term("politicalOrg")
}

/// The member-level property linking a month to its year.
pub fn year_property() -> Iri {
    eurostat_dic::term("year")
}

/// The member-level property linking an age class to its age group.
pub fn age_group_property() -> Iri {
    eurostat_dic::term("ageGroup")
}

/// The member-level property linking a continent (or group) to the all level.
pub fn all_property() -> Iri {
    eurostat_dic::term("all")
}

// ---- generation --------------------------------------------------------------

/// Generates the synthetic dataset.
pub fn generate(config: &EurostatConfig) -> GeneratedDataset {
    let mut rng = StdRng::seed_from_u64(config.seed);

    let dataset_iri = eurostat_data::migr_asyappctzm();
    let dsd_iri = eurostat_dsd::migr_asyappctzm();

    let mut builder = QbDatasetBuilder::new(dataset_iri.clone(), dsd_iri.clone())
        .label("Asylum and first time asylum applicants by citizenship, age and sex (monthly data)")
        .dimension(sdmx_dimension::ref_period())
        .dimension(eurostat_property::citizen())
        .dimension(eurostat_property::geo())
        .dimension(eurostat_property::age())
        .dimension(eurostat_property::sex())
        .dimension(eurostat_property::asyl_app())
        .measure(sdmx_measure::obs_value());

    let months = demo_months();
    let radixes = [
        CITIZEN_COUNTRIES.len(),
        GEO_COUNTRIES.len(),
        months.len(),
        AGE_CLASSES.len(),
        SEXES.len(),
        ASYL_APP_TYPES.len(),
    ];
    let total_combinations: usize = radixes.iter().product();
    let observation_count = config.observations.min(total_combinations);

    // Walk the combination space with a stride coprime to its size so the
    // generated subset is spread over all dimension values while every
    // observation keeps a distinct dimension combination (no IC violations).
    let stride = coprime_stride(total_combinations);
    // In time-major order the month is the slow axis and only the five
    // other dimensions stride: month `m` owns rows
    // `[m * per_month, (m + 1) * per_month)`, so any single reference
    // period lands in a contiguous run of row segments. Distinctness
    // still holds because `per_month <= total_other` and the stride is
    // coprime with `total_other`.
    let other_radixes = [
        CITIZEN_COUNTRIES.len(),
        GEO_COUNTRIES.len(),
        AGE_CLASSES.len(),
        SEXES.len(),
        ASYL_APP_TYPES.len(),
    ];
    let total_other: usize = other_radixes.iter().product();
    let other_stride = coprime_stride(total_other);
    let per_month = observation_count.div_ceil(months.len()).max(1);
    for i in 0..observation_count {
        let [ci, gi, ti, ai, si, pi] = if config.time_ordered {
            let ti = i / per_month;
            let other = (i % per_month) * other_stride % total_other;
            let [ci, gi, ai, si, pi] = decompose(other, &other_radixes);
            [ci, gi, ti, ai, si, pi]
        } else {
            decompose((i * stride) % total_combinations, &radixes)
        };
        let (citizen_code, ..) = CITIZEN_COUNTRIES[ci];
        let (geo_code, ..) = GEO_COUNTRIES[gi];
        let (year, month) = months[ti];
        let (age_code, ..) = AGE_CLASSES[ai];
        let (sex_code, _) = SEXES[si];
        let (app_code, _) = ASYL_APP_TYPES[pi];

        let node = Term::Iri(eurostat_data::term(&format!(
            "migr_asyappctzm/obs{i:06}"
        )));
        let mut observation = Observation::new(node);
        observation
            .dimensions
            .insert(sdmx_dimension::ref_period(), time_member(year, month));
        observation
            .dimensions
            .insert(eurostat_property::citizen(), citizen_member(citizen_code));
        observation
            .dimensions
            .insert(eurostat_property::geo(), geo_member(geo_code));
        observation
            .dimensions
            .insert(eurostat_property::age(), age_member(age_code));
        observation
            .dimensions
            .insert(eurostat_property::sex(), sex_member(sex_code));
        observation
            .dimensions
            .insert(eurostat_property::asyl_app(), asyl_app_member(app_code));
        let measure_value = if config.decimal_measures {
            // Quarter-step decimal rates: exactly representable in f64, so
            // the canonical lexical form round-trips through the columnar
            // encoding.
            Literal::decimal(rng.gen_range(0..=2_000i64) as f64 / 4.0)
        } else {
            Literal::integer(rng.gen_range(0..=500))
        };
        observation
            .measures
            .insert(sdmx_measure::obs_value(), Term::Literal(measure_value));
        builder = builder.observation(observation);
    }

    let (qb_dataset, mut triples) = builder.build();

    if config.code_list_links {
        triples.extend(code_list_triples(config, &mut rng));
    }
    if config.dbpedia_links {
        triples.extend(dbpedia::same_as_links());
    }

    GeneratedDataset {
        dataset: dataset_iri,
        dsd: dsd_iri,
        qb_dataset,
        triples,
        observation_count,
    }
}

/// Generates the code-list member triples: labels, notations, and the
/// member-level properties the Enrichment module discovers as roll-up
/// candidates.
pub fn code_list_triples(config: &EurostatConfig, rng: &mut StdRng) -> Vec<Triple> {
    let mut triples = Vec::new();
    let label = |subject: &Term, text: &str| {
        Triple::new(subject.clone(), rdfs::label(), Literal::lang_string(text, "en"))
    };
    let notation = |subject: &Term, code: &str| {
        Triple::new(subject.clone(), skos::notation(), Literal::string(code))
    };

    // Continents and the all-citizenships top member.
    triples.push(label(&all_member(), "Total"));
    for continent in CONTINENTS {
        let member = continent_member(continent);
        triples.push(label(&member, continent));
        triples.push(Triple::new(member.clone(), all_property(), all_member()));
    }

    // Political organisations of the host countries.
    for org in ["EU", "EFTA"] {
        let member = political_org_member(org);
        triples.push(label(&member, org));
    }

    // Citizenship countries (with configurable noise on the continent link).
    let citizen_count = CITIZEN_COUNTRIES.len() as f64;
    let missing_budget = (config.noise.missing_link_fraction * citizen_count).round() as usize;
    let conflicting_budget =
        (config.noise.conflicting_link_fraction * citizen_count).round() as usize;
    for (index, (code, name, continent, _gov, _pop)) in CITIZEN_COUNTRIES.iter().enumerate() {
        let member = citizen_member(code);
        triples.push(label(&member, name));
        triples.push(notation(&member, code));
        triples.push(Triple::new(
            member.clone(),
            rdf::vocab::rdf::type_(),
            Term::Iri(skos::concept()),
        ));
        let drop_link = index < missing_budget;
        if !drop_link {
            triples.push(Triple::new(
                member.clone(),
                continent_property(),
                continent_member(continent),
            ));
        }
        let conflict = index >= missing_budget && index < missing_budget + conflicting_budget;
        if conflict {
            // Pick a different continent at random for the conflicting link.
            let other = CONTINENTS
                .iter()
                .filter(|c| *c != continent)
                .nth(rng.gen_range(0..CONTINENTS.len() - 1))
                .unwrap_or(&CONTINENTS[0]);
            triples.push(Triple::new(
                member.clone(),
                continent_property(),
                continent_member(other),
            ));
        }
    }

    // Destination countries.
    for (code, name, continent, org, _eu) in GEO_COUNTRIES {
        let member = geo_member(code);
        triples.push(label(&member, name));
        triples.push(notation(&member, code));
        triples.push(Triple::new(
            member.clone(),
            continent_property(),
            continent_member(continent),
        ));
        triples.push(Triple::new(
            member.clone(),
            political_org_property(),
            political_org_member(org),
        ));
    }

    // Reference periods: months link to their year.
    for (year, month) in demo_months() {
        let member = time_member(year, month);
        triples.push(label(&member, &format!("{year}-{month:02}")));
        triples.push(Triple::new(
            member.clone(),
            year_property(),
            year_member(year),
        ));
    }
    for year in [2013, 2014] {
        triples.push(label(&year_member(year), &year.to_string()));
    }

    // Age classes link to age groups.
    for (code, name, group) in AGE_CLASSES {
        let member = age_member(code);
        triples.push(label(&member, name));
        triples.push(Triple::new(
            member.clone(),
            age_group_property(),
            age_group_member(group),
        ));
    }
    for group in ["Minor", "Adult", "Senior", "Unknown"] {
        triples.push(label(&age_group_member(group), group));
    }

    // Sexes and applicant types only carry labels.
    for (code, name) in SEXES {
        triples.push(label(&sex_member(code), name));
    }
    for (code, name) in ASYL_APP_TYPES {
        triples.push(label(&asyl_app_member(code), name));
    }

    triples
}

/// Emits `owl:sameAs` links from citizenship members to the DBpedia-like
/// resources (part of the dataset graph, while the DBpedia triples
/// themselves live in [`dbpedia::dbpedia_graph`]).
pub fn same_as_link(code: &str, name: &str) -> Triple {
    Triple::new(
        citizen_member(code),
        owl::same_as(),
        dbpedia::country_resource(name),
    )
}

fn decompose<const N: usize>(mut index: usize, radixes: &[usize; N]) -> [usize; N] {
    let mut out = [0usize; N];
    for (slot, radix) in out.iter_mut().zip(radixes.iter()) {
        *slot = index % radix;
        index /= radix;
    }
    out
}

/// A stride that is coprime with `n`, used to spread the sampled
/// combinations over the whole space.
fn coprime_stride(n: usize) -> usize {
    let mut stride = (n / 7) | 1; // odd
    while gcd(stride, n) != 1 {
        stride += 2;
    }
    stride.max(1)
}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdf::Graph;

    #[test]
    fn generates_requested_number_of_distinct_observations() {
        let data = generate(&EurostatConfig::small(500));
        assert_eq!(data.observation_count, 500);
        let graph = Graph::from_triples(data.triples.clone());
        let observations = graph.subjects_of_type(&rdf::vocab::qb::observation());
        assert_eq!(observations.len(), 500);

        // Every observation carries all six dimensions and the measure.
        for obs in observations.iter().take(20) {
            assert!(graph.object(obs, &eurostat_property::citizen()).is_some());
            assert!(graph.object(obs, &sdmx_dimension::ref_period()).is_some());
            assert!(graph.object(obs, &sdmx_measure::obs_value()).is_some());
        }
    }

    #[test]
    fn observations_have_distinct_dimension_combinations() {
        let data = generate(&EurostatConfig::small(2000));
        let graph = Graph::from_triples(data.triples.clone());
        let mut combos = std::collections::BTreeSet::new();
        for obs in graph.subjects_of_type(&rdf::vocab::qb::observation()) {
            let key = (
                graph.object(&obs, &sdmx_dimension::ref_period()),
                graph.object(&obs, &eurostat_property::citizen()),
                graph.object(&obs, &eurostat_property::geo()),
                graph.object(&obs, &eurostat_property::age()),
                graph.object(&obs, &eurostat_property::sex()),
                graph.object(&obs, &eurostat_property::asyl_app()),
            );
            assert!(combos.insert(key), "duplicate dimension combination");
        }
    }

    #[test]
    fn code_lists_support_fd_discovery() {
        let data = generate(&EurostatConfig::small(100));
        let graph = Graph::from_triples(data.triples.clone());
        // Every citizenship member used in the data has exactly one continent.
        assert_eq!(
            graph.objects(&citizen_member("SY"), &continent_property()),
            vec![continent_member("Asia")]
        );
        assert_eq!(
            graph.objects(&geo_member("FR"), &political_org_property()),
            vec![political_org_member("EU")]
        );
        assert_eq!(
            graph.objects(&time_member(2014, 3), &year_property()),
            vec![year_member(2014)]
        );
        // Continents roll up to the single all member.
        assert_eq!(
            graph.objects(&continent_member("Africa"), &all_property()),
            vec![all_member()]
        );
        // sameAs links into the DBpedia-like graph exist.
        assert!(!graph
            .objects(&citizen_member("SY"), &owl::same_as())
            .is_empty());
    }

    #[test]
    fn noise_injection_drops_and_conflicts_links() {
        let config = EurostatConfig {
            observations: 10,
            noise: NoiseConfig {
                missing_link_fraction: 0.2,
                conflicting_link_fraction: 0.1,
            },
            ..Default::default()
        };
        let data = generate(&config);
        let graph = Graph::from_triples(data.triples.clone());
        let mut missing = 0;
        let mut conflicting = 0;
        for (code, ..) in CITIZEN_COUNTRIES {
            let links = graph.objects(&citizen_member(code), &continent_property());
            match links.len() {
                0 => missing += 1,
                1 => {}
                _ => conflicting += 1,
            }
        }
        assert_eq!(missing, (0.2f64 * CITIZEN_COUNTRIES.len() as f64).round() as usize);
        assert_eq!(
            conflicting,
            (0.1f64 * CITIZEN_COUNTRIES.len() as f64).round() as usize
        );
    }

    #[test]
    fn time_ordered_layout_clusters_months_and_keeps_combinations_distinct() {
        let config = EurostatConfig {
            observations: 2_400,
            time_ordered: true,
            ..Default::default()
        };
        let data = generate(&config);
        assert_eq!(data.observation_count, 2_400);
        let graph = Graph::from_triples(data.triples.clone());
        // Month m owns the contiguous run of rows [m*100, (m+1)*100).
        let months = demo_months();
        let per_month = 2_400usize.div_ceil(months.len());
        for i in [0usize, 99, 100, 1234, 2399] {
            let node = Term::Iri(eurostat_data::term(&format!("migr_asyappctzm/obs{i:06}")));
            let (year, month) = months[i / per_month];
            assert_eq!(
                graph.object(&node, &sdmx_dimension::ref_period()),
                Some(time_member(year, month)),
                "row {i} must carry its slot's month"
            );
        }
        // Distinctness is preserved (no IC violations).
        let mut combos = std::collections::BTreeSet::new();
        for obs in graph.subjects_of_type(&rdf::vocab::qb::observation()) {
            let key = (
                graph.object(&obs, &sdmx_dimension::ref_period()),
                graph.object(&obs, &eurostat_property::citizen()),
                graph.object(&obs, &eurostat_property::geo()),
                graph.object(&obs, &eurostat_property::age()),
                graph.object(&obs, &eurostat_property::sex()),
                graph.object(&obs, &eurostat_property::asyl_app()),
            );
            assert!(combos.insert(key), "duplicate dimension combination");
        }
        // The default layout is untouched by the new knob.
        let shuffled = generate(&EurostatConfig::small(2_400));
        assert_ne!(shuffled.triples, data.triples);
    }

    #[test]
    fn generation_is_deterministic_for_a_seed() {
        let a = generate(&EurostatConfig::small(200));
        let b = generate(&EurostatConfig::small(200));
        assert_eq!(a.triples, b.triples);
        let different_seed = EurostatConfig {
            observations: 200,
            seed: 7,
            ..Default::default()
        };
        let c = generate(&different_seed);
        assert_ne!(a.triples, c.triples, "different seed changes measure values");
    }

    #[test]
    fn requesting_more_than_the_space_caps_at_the_space() {
        let config = EurostatConfig {
            observations: usize::MAX,
            code_list_links: false,
            dbpedia_links: false,
            ..Default::default()
        };
        // Only check the arithmetic (do not actually materialise everything).
        let months = demo_months();
        let total = CITIZEN_COUNTRIES.len()
            * GEO_COUNTRIES.len()
            * months.len()
            * AGE_CLASSES.len()
            * SEXES.len()
            * ASYL_APP_TYPES.len();
        assert!(config.observations.min(total) == total);
    }

    #[test]
    fn mixed_radix_decomposition_is_bijective() {
        let radixes = [3usize, 4, 2, 5, 2, 2];
        let total: usize = radixes.iter().product();
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..total {
            let digits = decompose(i, &radixes);
            for (d, r) in digits.iter().zip(&radixes) {
                assert!(d < r);
            }
            assert!(seen.insert(digits));
        }
        assert_eq!(seen.len(), total);
    }

    #[test]
    fn coprime_stride_is_coprime() {
        for n in [10usize, 1000, 80_000, 123456] {
            let s = coprime_stride(n);
            assert_eq!(gcd(s, n), 1);
        }
    }
}
