//! Predefined QL workloads over the enriched Eurostat cube.
//!
//! These are the queries used by the examples, the integration tests and the
//! benchmark harness. They assume the schema produced by the demo
//! enrichment configuration (`qb2olap::demo`), which uses the same names as
//! the paper: `schema:citizenshipDim`, `schema:destinationDim`,
//! `schema:timeDim`, `schema:asylappDim`, the levels `schema:continent` and
//! `schema:year`, and the attributes `schema:continentName` and
//! `schema:countryName`.

/// Continent-name constants for generated attribute dices: the four real
/// continents of the demo data plus one that matches nothing, so generated
/// workloads probe both hit and miss paths.
pub const CONTINENT_NAMES: &[&str] = &["Africa", "Asia", "Europe", "America", "Atlantis"];

/// Country-name constants for generated attribute dices, again with one
/// guaranteed miss.
pub const COUNTRY_NAMES: &[&str] = &["France", "Germany", "Sweden", "Hungary", "Nowhere"];

/// Draws one string from a name pool — the shared sampling idiom of the
/// workload generator and downstream fuzz harnesses (`qlsmith` mixes these
/// pools into its dice constants as plausible-but-foreign values).
pub fn sample_name(rng: &mut rand::rngs::StdRng, pool: &[&'static str]) -> &'static str {
    use rand::Rng;
    pool[rng.gen_range(0..pool.len())]
}

/// The QL prologue shared by all workload queries.
pub const PROLOGUE: &str = "\
PREFIX data: <http://eurostat.linked-statistics.org/data/>;
PREFIX schema: <http://www.fing.edu.uy/inco/cubes/schemas/migr_asyapp#>;
PREFIX property: <http://eurostat.linked-statistics.org/property#>;
PREFIX sdmx-dimension: <http://purl.org/linked-data/sdmx/2009/dimension#>;
";

/// Mary's query from Section IV of the paper, already simplified: number of
/// applications per year submitted by citizens of African countries whose
/// destination is France.
pub fn mary_query() -> String {
    format!(
        "{PROLOGUE}QUERY
$C1 := SLICE (data:migr_asyappctzm, schema:asylappDim);
$C2 := ROLLUP ($C1, schema:citizenshipDim, schema:continent);
$C3 := ROLLUP ($C2, schema:timeDim, schema:year);
$C4 := DICE ($C3, (schema:citizenshipDim|schema:continent|schema:continentName = \"Africa\"));
$C5 := DICE ($C4, schema:destinationDim|property:geo|schema:countryName = \"France\");
"
    )
}

/// The same analysis written the way a user might naively write it: the
/// slice appears late and the citizenship dimension is rolled up, drilled
/// back down and rolled up again. The Query Simplification phase must
/// rewrite this into [`mary_query`]'s shape (rules (a) and (b) of
/// Section III-B).
pub fn mary_query_unoptimized() -> String {
    format!(
        "{PROLOGUE}QUERY
$C1 := ROLLUP (data:migr_asyappctzm, schema:citizenshipDim, schema:continent);
$C2 := DRILLDOWN ($C1, schema:citizenshipDim, property:citizen);
$C3 := ROLLUP ($C2, schema:citizenshipDim, schema:continent);
$C4 := ROLLUP ($C3, schema:timeDim, schema:year);
$C5 := SLICE ($C4, schema:asylappDim);
$C6 := DICE ($C5, (schema:citizenshipDim|schema:continent|schema:continentName = \"Africa\"));
$C7 := DICE ($C6, schema:destinationDim|property:geo|schema:countryName = \"France\");
"
    )
}

/// A single roll-up of citizenship to continent (the first OLAP need in the
/// paper's use case: "aggregate the origin nationality of immigrants per
/// continent").
pub fn rollup_citizenship_to_continent() -> String {
    format!(
        "{PROLOGUE}QUERY
$C1 := ROLLUP (data:migr_asyappctzm, schema:citizenshipDim, schema:continent);
"
    )
}

/// Roll-up of time to year combined with a dice on the measure value.
pub fn yearly_large_cells() -> String {
    format!(
        "{PROLOGUE}QUERY
$C1 := ROLLUP (data:migr_asyappctzm, schema:timeDim, schema:year);
$C2 := DICE ($C1, sdmx-measure:obsValue > 400);
",
    )
    .replace(
        "PREFIX sdmx-dimension:",
        "PREFIX sdmx-measure: <http://purl.org/linked-data/sdmx/2009/measure#>;\nPREFIX sdmx-dimension:",
    )
}

/// Slice away everything except citizenship: total applications per country
/// of origin.
pub fn totals_by_citizenship() -> String {
    format!(
        "{PROLOGUE}QUERY
$C1 := SLICE (data:migr_asyappctzm, schema:timeDim);
$C2 := SLICE ($C1, schema:destinationDim);
$C3 := SLICE ($C2, schema:ageDim);
$C4 := SLICE ($C3, schema:sexDim);
$C5 := SLICE ($C4, schema:asylappDim);
"
    )
}

/// The "wider analysis" the paper's use case motivates: analyse migration
/// according to the political organisation of the host countries (EU vs
/// EFTA), enabled by the enrichment of the destination dimension.
pub fn by_political_organisation() -> String {
    format!(
        "{PROLOGUE}QUERY
$C1 := SLICE (data:migr_asyappctzm, schema:asylappDim);
$C2 := SLICE ($C1, schema:ageDim);
$C3 := SLICE ($C2, schema:sexDim);
$C4 := ROLLUP ($C3, schema:destinationDim, schema:politicalOrg);
$C5 := ROLLUP ($C4, schema:timeDim, schema:year);
"
    )
}

/// The named workload used by the benchmark harness: `(name, QL program)`.
pub fn bench_queries() -> Vec<(&'static str, String)> {
    vec![
        ("mary", mary_query()),
        ("mary_unoptimized", mary_query_unoptimized()),
        ("rollup_continent", rollup_citizenship_to_continent()),
        ("yearly_large_cells", yearly_large_cells()),
        ("totals_by_citizenship", totals_by_citizenship()),
        ("by_political_organisation", by_political_organisation()),
    ]
}

/// A seeded generator of random — but always schema-valid — QL programs
/// over the demo cube: random slice subsets, random roll-up targets
/// (sometimes written redundantly, to exercise the simplification rules),
/// and random attribute/measure dices. The same `(seed, count)` always
/// yields the same programs, so differential harnesses (SPARQL variant vs
/// variant, SPARQL vs columnar backend) can replay a stable workload.
pub fn generated_queries(seed: u64, count: usize) -> Vec<(String, String)> {
    use rand::{rngs::StdRng, Rng, SeedableRng};

    let mut rng = StdRng::seed_from_u64(seed);
    let mut queries = Vec::with_capacity(count);
    for index in 0..count {
        // Which dimensions stay in the result (at least one must).
        let mut sliced = [false; 6];
        let dims = [
            "schema:citizenshipDim",
            "schema:destinationDim",
            "schema:timeDim",
            "schema:ageDim",
            "schema:sexDim",
            "schema:asylappDim",
        ];
        for flag in sliced.iter_mut() {
            *flag = rng.gen_bool(0.35);
        }
        if sliced.iter().all(|&s| s) {
            sliced[rng.gen_range(0..sliced.len())] = false;
        }

        // Roll-up targets for the kept hierarchical dimensions. The target
        // level decides which attribute dices stay valid later.
        let citizenship_target = if !sliced[0] && rng.gen_bool(0.6) {
            Some(if rng.gen_bool(0.75) {
                "schema:continent"
            } else {
                "schema:citAll"
            })
        } else {
            None
        };
        let destination_target = if !sliced[1] && rng.gen_bool(0.35) {
            Some("schema:politicalOrg")
        } else {
            None
        };
        let time_target = if !sliced[2] && rng.gen_bool(0.5) {
            Some("schema:year")
        } else {
            None
        };

        let mut operations: Vec<String> = Vec::new();
        let rollup = |operations: &mut Vec<String>,
                          rng: &mut StdRng,
                          dimension: &str,
                          bottom: &str,
                          target: &str| {
            // Sometimes write the roll-up redundantly (up, back down, up
            // again) so rule (b) fusion has something to do.
            if rng.gen_bool(0.25) {
                operations.push(format!("ROLLUP (@, {dimension}, {target})"));
                operations.push(format!("DRILLDOWN (@, {dimension}, {bottom})"));
            }
            operations.push(format!("ROLLUP (@, {dimension}, {target})"));
        };
        if let Some(target) = citizenship_target {
            rollup(
                &mut operations,
                &mut rng,
                "schema:citizenshipDim",
                "property:citizen",
                target,
            );
        }
        if let Some(target) = destination_target {
            rollup(
                &mut operations,
                &mut rng,
                "schema:destinationDim",
                "property:geo",
                target,
            );
        }
        if let Some(target) = time_target {
            rollup(
                &mut operations,
                &mut rng,
                "schema:timeDim",
                "sdmx-dimension:refPeriod",
                target,
            );
        }
        // Slices go last so that rule (a) (slice push-down) is exercised
        // whenever roll-ups precede them.
        for (dimension, &is_sliced) in dims.iter().zip(&sliced) {
            if is_sliced {
                operations.push(format!("SLICE (@, {dimension})"));
            }
        }

        // Dices (the grammar puts them at the end). Attribute dices must
        // target the dimension's *result* level.
        if citizenship_target == Some("schema:continent") && rng.gen_bool(0.6) {
            let name = sample_name(&mut rng, CONTINENT_NAMES);
            let op = if rng.gen_bool(0.8) { "=" } else { "!=" };
            operations.push(format!(
                "DICE (@, schema:citizenshipDim|schema:continent|schema:continentName {op} \"{name}\")"
            ));
        }
        if !sliced[1] && destination_target.is_none() && rng.gen_bool(0.4) {
            let name = sample_name(&mut rng, COUNTRY_NAMES);
            operations.push(format!(
                "DICE (@, schema:destinationDim|property:geo|schema:countryName = \"{name}\")"
            ));
        }
        if rng.gen_bool(0.4) {
            let threshold = rng.gen_range(1..=60) * 10;
            let op = [">", ">=", "<", "<="][rng.gen_range(0..4usize)];
            operations.push(format!("DICE (@, sdmx-measure:obsValue {op} {threshold})"));
        }
        // A program needs at least one operation to be valid QL.
        if operations.is_empty() {
            operations.push("SLICE (@, schema:asylappDim)".to_string());
        }

        let mut text = format!(
            "{PROLOGUE}PREFIX sdmx-measure: <http://purl.org/linked-data/sdmx/2009/measure#>;\nQUERY\n"
        );
        for (position, operation) in operations.iter().enumerate() {
            let input = if position == 0 {
                "data:migr_asyappctzm".to_string()
            } else {
                format!("$C{position}")
            };
            text.push_str(&format!(
                "$C{} := {};\n",
                position + 1,
                operation.replace('@', &input)
            ));
        }
        queries.push((format!("generated_{seed}_{index}"), text));
    }
    queries
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queries_share_the_prologue_and_query_keyword() {
        for (name, text) in bench_queries() {
            assert!(text.contains("QUERY"), "{name} is missing the QUERY keyword");
            assert!(
                text.contains("PREFIX schema:"),
                "{name} is missing the schema prefix"
            );
            assert!(text.trim_end().ends_with(';'), "{name} must end with ';'");
        }
    }

    #[test]
    fn mary_query_matches_the_paper_shape() {
        let q = mary_query();
        assert_eq!(q.matches(":= SLICE").count(), 1);
        assert_eq!(q.matches(":= ROLLUP").count(), 2);
        assert_eq!(q.matches(":= DICE").count(), 2);
        assert!(q.contains("schema:continentName = \"Africa\""));
        assert!(q.contains("schema:countryName = \"France\""));
    }

    #[test]
    fn unoptimized_variant_has_redundant_operations() {
        let q = mary_query_unoptimized();
        assert!(q.contains("DRILLDOWN"));
        assert!(
            q.matches(":= ROLLUP").count() > mary_query().matches(":= ROLLUP").count(),
            "the unoptimised query must contain fusable roll-ups"
        );
    }

    #[test]
    fn measure_dice_query_declares_the_measure_prefix() {
        assert!(yearly_large_cells().contains("PREFIX sdmx-measure:"));
    }

    #[test]
    fn generated_queries_are_deterministic_and_well_formed() {
        let a = generated_queries(7, 24);
        let b = generated_queries(7, 24);
        assert_eq!(a, b, "same seed, same workload");
        assert_eq!(a.len(), 24);
        let c = generated_queries(8, 24);
        assert_ne!(a, c, "different seeds differ");

        for (name, text) in &a {
            assert!(name.starts_with("generated_7_"), "{name}");
            assert!(text.contains("QUERY"), "{name} misses QUERY:\n{text}");
            assert!(
                text.contains("$C1 := "),
                "{name} must have at least one statement:\n{text}"
            );
            assert!(
                text.contains("data:migr_asyappctzm"),
                "{name} must start from the dataset:\n{text}"
            );
            assert!(text.trim_end().ends_with(';'), "{name} must end with ';'");
        }
        // The workload mixes the operation kinds across programs.
        let all: String = a.iter().map(|(_, t)| t.as_str()).collect();
        for keyword in ["SLICE", "ROLLUP", "DRILLDOWN", "DICE"] {
            assert!(all.contains(keyword), "workload never uses {keyword}");
        }
    }
}
