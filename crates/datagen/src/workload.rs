//! Predefined QL workloads over the enriched Eurostat cube.
//!
//! These are the queries used by the examples, the integration tests and the
//! benchmark harness. They assume the schema produced by the demo
//! enrichment configuration (`qb2olap::demo`), which uses the same names as
//! the paper: `schema:citizenshipDim`, `schema:destinationDim`,
//! `schema:timeDim`, `schema:asylappDim`, the levels `schema:continent` and
//! `schema:year`, and the attributes `schema:continentName` and
//! `schema:countryName`.

/// The QL prologue shared by all workload queries.
pub const PROLOGUE: &str = "\
PREFIX data: <http://eurostat.linked-statistics.org/data/>;
PREFIX schema: <http://www.fing.edu.uy/inco/cubes/schemas/migr_asyapp#>;
PREFIX property: <http://eurostat.linked-statistics.org/property#>;
PREFIX sdmx-dimension: <http://purl.org/linked-data/sdmx/2009/dimension#>;
";

/// Mary's query from Section IV of the paper, already simplified: number of
/// applications per year submitted by citizens of African countries whose
/// destination is France.
pub fn mary_query() -> String {
    format!(
        "{PROLOGUE}QUERY
$C1 := SLICE (data:migr_asyappctzm, schema:asylappDim);
$C2 := ROLLUP ($C1, schema:citizenshipDim, schema:continent);
$C3 := ROLLUP ($C2, schema:timeDim, schema:year);
$C4 := DICE ($C3, (schema:citizenshipDim|schema:continent|schema:continentName = \"Africa\"));
$C5 := DICE ($C4, schema:destinationDim|property:geo|schema:countryName = \"France\");
"
    )
}

/// The same analysis written the way a user might naively write it: the
/// slice appears late and the citizenship dimension is rolled up, drilled
/// back down and rolled up again. The Query Simplification phase must
/// rewrite this into [`mary_query`]'s shape (rules (a) and (b) of
/// Section III-B).
pub fn mary_query_unoptimized() -> String {
    format!(
        "{PROLOGUE}QUERY
$C1 := ROLLUP (data:migr_asyappctzm, schema:citizenshipDim, schema:continent);
$C2 := DRILLDOWN ($C1, schema:citizenshipDim, property:citizen);
$C3 := ROLLUP ($C2, schema:citizenshipDim, schema:continent);
$C4 := ROLLUP ($C3, schema:timeDim, schema:year);
$C5 := SLICE ($C4, schema:asylappDim);
$C6 := DICE ($C5, (schema:citizenshipDim|schema:continent|schema:continentName = \"Africa\"));
$C7 := DICE ($C6, schema:destinationDim|property:geo|schema:countryName = \"France\");
"
    )
}

/// A single roll-up of citizenship to continent (the first OLAP need in the
/// paper's use case: "aggregate the origin nationality of immigrants per
/// continent").
pub fn rollup_citizenship_to_continent() -> String {
    format!(
        "{PROLOGUE}QUERY
$C1 := ROLLUP (data:migr_asyappctzm, schema:citizenshipDim, schema:continent);
"
    )
}

/// Roll-up of time to year combined with a dice on the measure value.
pub fn yearly_large_cells() -> String {
    format!(
        "{PROLOGUE}QUERY
$C1 := ROLLUP (data:migr_asyappctzm, schema:timeDim, schema:year);
$C2 := DICE ($C1, sdmx-measure:obsValue > 400);
",
    )
    .replace(
        "PREFIX sdmx-dimension:",
        "PREFIX sdmx-measure: <http://purl.org/linked-data/sdmx/2009/measure#>;\nPREFIX sdmx-dimension:",
    )
}

/// Slice away everything except citizenship: total applications per country
/// of origin.
pub fn totals_by_citizenship() -> String {
    format!(
        "{PROLOGUE}QUERY
$C1 := SLICE (data:migr_asyappctzm, schema:timeDim);
$C2 := SLICE ($C1, schema:destinationDim);
$C3 := SLICE ($C2, schema:ageDim);
$C4 := SLICE ($C3, schema:sexDim);
$C5 := SLICE ($C4, schema:asylappDim);
"
    )
}

/// The "wider analysis" the paper's use case motivates: analyse migration
/// according to the political organisation of the host countries (EU vs
/// EFTA), enabled by the enrichment of the destination dimension.
pub fn by_political_organisation() -> String {
    format!(
        "{PROLOGUE}QUERY
$C1 := SLICE (data:migr_asyappctzm, schema:asylappDim);
$C2 := SLICE ($C1, schema:ageDim);
$C3 := SLICE ($C2, schema:sexDim);
$C4 := ROLLUP ($C3, schema:destinationDim, schema:politicalOrg);
$C5 := ROLLUP ($C4, schema:timeDim, schema:year);
"
    )
}

/// The named workload used by the benchmark harness: `(name, QL program)`.
pub fn bench_queries() -> Vec<(&'static str, String)> {
    vec![
        ("mary", mary_query()),
        ("mary_unoptimized", mary_query_unoptimized()),
        ("rollup_continent", rollup_citizenship_to_continent()),
        ("yearly_large_cells", yearly_large_cells()),
        ("totals_by_citizenship", totals_by_citizenship()),
        ("by_political_organisation", by_political_organisation()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queries_share_the_prologue_and_query_keyword() {
        for (name, text) in bench_queries() {
            assert!(text.contains("QUERY"), "{name} is missing the QUERY keyword");
            assert!(
                text.contains("PREFIX schema:"),
                "{name} is missing the schema prefix"
            );
            assert!(text.trim_end().ends_with(';'), "{name} must end with ';'");
        }
    }

    #[test]
    fn mary_query_matches_the_paper_shape() {
        let q = mary_query();
        assert_eq!(q.matches(":= SLICE").count(), 1);
        assert_eq!(q.matches(":= ROLLUP").count(), 2);
        assert_eq!(q.matches(":= DICE").count(), 2);
        assert!(q.contains("schema:continentName = \"Africa\""));
        assert!(q.contains("schema:countryName = \"France\""));
    }

    #[test]
    fn unoptimized_variant_has_redundant_operations() {
        let q = mary_query_unoptimized();
        assert!(q.contains("DRILLDOWN"));
        assert!(
            q.matches(":= ROLLUP").count() > mary_query().matches(":= ROLLUP").count(),
            "the unoptimised query must contain fusable roll-ups"
        );
    }

    #[test]
    fn measure_dice_query_declares_the_measure_prefix() {
        assert!(yearly_large_cells().contains("PREFIX sdmx-measure:"));
    }
}
