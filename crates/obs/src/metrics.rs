//! The metrics registry: atomic counters, gauges and log-bucketed
//! histograms, snapshotable into a serializable [`MetricsSnapshot`].
//!
//! All three instruments are lock-free on the hot path (relaxed atomics);
//! the registry itself takes a lock only to find or create an instrument,
//! and callers on hot paths hold the returned `Arc` instead of re-looking
//! it up per event.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use serde::Serialize;

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`. Concurrent adds from any number of threads sum exactly
    /// (relaxed atomic addition — no increment can be lost).
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current count.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins measurement (fraction, size, temperature…), stored as
/// `f64` bits in an atomic.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A gauge starting at `0.0`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the gauge.
    #[inline]
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// The last value set (`0.0` if never set).
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Number of histogram buckets: bucket `i` holds the values whose binary
/// length is `i` (bucket 0 holds exactly the value 0, bucket 64 the values
/// with the top bit set). Log bucketing keeps recording O(1) and bounds
/// the quantile error to a factor of two — plenty for latency percentiles.
const BUCKETS: usize = 65;

/// A log-bucketed histogram of `u64` samples (latencies in nanoseconds by
/// convention: name histogram metrics `*.duration_ns`).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

/// The bucket a value lands in: its binary length (0 for the value 0).
#[inline]
fn bucket_of(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// The largest value bucket `index` can hold (the inclusive upper bound
/// reported for quantiles).
fn bucket_upper_bound(index: usize) -> u64 {
    if index == 0 {
        0
    } else if index >= 64 {
        u64::MAX
    } else {
        (1u64 << index) - 1
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records a duration as nanoseconds (saturating above `u64::MAX` ns,
    /// i.e. ~585 years).
    #[inline]
    pub fn record_duration(&self, duration: Duration) {
        self.record(u64::try_from(duration.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// The value at or below which a fraction `q` (0..=1) of the samples
    /// fall, reported as the upper bound of the sample's bucket (so the
    /// estimate is within 2× of the true quantile). `None` while empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let count = self.count();
        if count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (index, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                return Some(bucket_upper_bound(index));
            }
        }
        Some(u64::MAX)
    }

    /// The frozen view of this histogram.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count();
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
            p50: self.quantile(0.50).unwrap_or(0),
            p95: self.quantile(0.95).unwrap_or(0),
            p99: self.quantile(0.99).unwrap_or(0),
        }
    }
}

/// A histogram's summary statistics at snapshot time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples (wrapping on overflow).
    pub sum: u64,
    /// Smallest sample (0 while empty).
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Median, as the upper bound of its log bucket.
    pub p50: u64,
    /// 95th percentile, as the upper bound of its log bucket.
    pub p95: u64,
    /// 99th percentile, as the upper bound of its log bucket.
    pub p99: u64,
}

/// A named collection of instruments. Cloning the `Arc`s returned by the
/// accessors is the intended usage pattern on hot paths.
#[derive(Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, created at zero on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut counters = self.counters.lock().expect("metrics lock poisoned");
        match counters.get(name) {
            Some(counter) => counter.clone(),
            None => {
                let counter = Arc::new(Counter::new());
                counters.insert(name.to_string(), counter.clone());
                counter
            }
        }
    }

    /// The gauge named `name`, created at `0.0` on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut gauges = self.gauges.lock().expect("metrics lock poisoned");
        match gauges.get(name) {
            Some(gauge) => gauge.clone(),
            None => {
                let gauge = Arc::new(Gauge::new());
                gauges.insert(name.to_string(), gauge.clone());
                gauge
            }
        }
    }

    /// The histogram named `name`, created empty on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut histograms = self.histograms.lock().expect("metrics lock poisoned");
        match histograms.get(name) {
            Some(histogram) => histogram.clone(),
            None => {
                let histogram = Arc::new(Histogram::new());
                histograms.insert(name.to_string(), histogram.clone());
                histogram
            }
        }
    }

    /// A consistent-enough point-in-time view of every instrument (each
    /// instrument is read atomically; the registry is not frozen across
    /// instruments — fine for serving dashboards and test assertions).
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .lock()
                .expect("metrics lock poisoned")
                .iter()
                .map(|(name, counter)| (name.clone(), counter.get()))
                .collect(),
            gauges: self
                .gauges
                .lock()
                .expect("metrics lock poisoned")
                .iter()
                .map(|(name, gauge)| (name.clone(), gauge.get()))
                .collect(),
            histograms: self
                .histograms
                .lock()
                .expect("metrics lock poisoned")
                .iter()
                .map(|(name, histogram)| (name.clone(), histogram.snapshot()))
                .collect(),
        }
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field(
                "counters",
                &self.counters.lock().expect("metrics lock poisoned").len(),
            )
            .field(
                "gauges",
                &self.gauges.lock().expect("metrics lock poisoned").len(),
            )
            .field(
                "histograms",
                &self
                    .histograms
                    .lock()
                    .expect("metrics lock poisoned")
                    .len(),
            )
            .finish()
    }
}

/// A frozen view of a [`MetricsRegistry`], sorted by name, serializable
/// (`serde_json::to_string(&snapshot)`) and renderable as stable text.
#[derive(Debug, Clone, PartialEq, Serialize, Default)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// The value of a counter (0 when absent — an instrument that was
    /// never touched and one that never fired are indistinguishable by
    /// design, so invariant checks read naturally).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The value of a gauge, if it was ever set or read.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// A histogram's summary, if it exists.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// The sum of all counters matching a dotted prefix (`catalog.refresh.`
    /// sums the per-strategy refresh counters).
    pub fn counter_prefix_sum(&self, prefix: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(name, _)| name.starts_with(prefix))
            .map(|(_, value)| value)
            .sum()
    }

    /// A stable, line-oriented text rendering (one instrument per line,
    /// sorted by name) — the `metrics` page of a future HTTP front end.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            out.push_str(&format!("counter {name} {value}\n"));
        }
        for (name, value) in &self.gauges {
            out.push_str(&format!("gauge {name} {value}\n"));
        }
        for (name, h) in &self.histograms {
            out.push_str(&format!(
                "histogram {name} count={} sum={} min={} max={} p50={} p95={} p99={}\n",
                h.count, h.sum, h.min, h.max, h.p50, h.p95, h.p99
            ));
        }
        out
    }

    /// The snapshot as a JSON document.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("snapshot serialization is infallible")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_add_and_read() {
        let registry = MetricsRegistry::new();
        let counter = registry.counter("a.b");
        counter.inc();
        counter.add(41);
        assert_eq!(counter.get(), 42);
        // Same name, same instrument.
        assert_eq!(registry.counter("a.b").get(), 42);
        assert_eq!(registry.snapshot().counter("a.b"), 42);
        assert_eq!(registry.snapshot().counter("never.touched"), 0);
    }

    #[test]
    fn gauges_are_last_write_wins() {
        let registry = MetricsRegistry::new();
        let gauge = registry.gauge("live.fraction");
        gauge.set(0.75);
        gauge.set(0.5);
        assert_eq!(registry.snapshot().gauge("live.fraction"), Some(0.5));
        assert_eq!(registry.snapshot().gauge("missing"), None);
    }

    /// The satellite-mandated boundary cases: 0, 1 (a 1ns latency) and
    /// `u64::MAX` must each land in a well-defined bucket, count exactly
    /// once and report sane quantiles.
    #[test]
    fn histogram_bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_of(1u64 << 63), 64);
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(2), 3);
        assert_eq!(bucket_upper_bound(64), u64::MAX);

        let histogram = Histogram::new();
        assert_eq!(histogram.quantile(0.5), None, "empty histogram");
        histogram.record(0);
        histogram.record(1);
        histogram.record(u64::MAX);
        let snapshot = histogram.snapshot();
        assert_eq!(snapshot.count, 3);
        assert_eq!(snapshot.min, 0);
        assert_eq!(snapshot.max, u64::MAX);
        assert_eq!(snapshot.sum, u64::MAX.wrapping_add(1), "wrapping sum");
        // Ranks: p50 → 2nd sample (value 1), p99 → 3rd (u64::MAX).
        assert_eq!(snapshot.p50, 1);
        assert_eq!(snapshot.p99, u64::MAX);
    }

    #[test]
    fn histogram_quantiles_are_within_one_bucket() {
        let histogram = Histogram::new();
        for value in 1..=1000u64 {
            histogram.record(value);
        }
        let snapshot = histogram.snapshot();
        assert_eq!(snapshot.count, 1000);
        assert_eq!(snapshot.min, 1);
        assert_eq!(snapshot.max, 1000);
        // True p50 = 500 → bucket [512, 1023] or [256, 511]; log-bucketed
        // estimates are within 2× above the true quantile.
        assert!((511..=1023).contains(&snapshot.p50), "p50={}", snapshot.p50);
        assert!(snapshot.p95 >= 950 / 2 && snapshot.p95 <= 1023);
        assert!(snapshot.p99 >= 990 / 2 && snapshot.p99 <= 1023);
    }

    #[test]
    fn histogram_records_durations() {
        let histogram = Histogram::new();
        histogram.record_duration(Duration::from_nanos(1));
        histogram.record_duration(Duration::from_micros(1));
        assert_eq!(histogram.snapshot().count, 2);
        assert_eq!(histogram.snapshot().min, 1);
        assert_eq!(histogram.snapshot().max, 1000);
    }

    #[test]
    fn concurrent_counter_increments_sum_exactly() {
        let registry = MetricsRegistry::new();
        let counter = registry.counter("spin");
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let counter = counter.clone();
                scope.spawn(move || {
                    for _ in 0..10_000 {
                        counter.inc();
                    }
                });
            }
        });
        assert_eq!(counter.get(), 80_000);
    }

    #[test]
    fn snapshot_renders_stable_text_and_json() {
        let registry = MetricsRegistry::new();
        registry.counter("b").add(2);
        registry.counter("a").add(1);
        registry.gauge("g").set(0.5);
        registry.histogram("h.duration_ns").record(7);
        let snapshot = registry.snapshot();
        let text = snapshot.render_text();
        let a = text.find("counter a 1").expect("a rendered");
        let b = text.find("counter b 2").expect("b rendered");
        assert!(a < b, "sorted by name");
        assert!(text.contains("gauge g 0.5"));
        assert!(text.contains("histogram h.duration_ns count=1"));
        let json = snapshot.to_json();
        assert!(json.contains("\"counters\""));
        assert!(json.contains("\"p99\""));
        assert_eq!(snapshot.counter_prefix_sum(""), 3);
    }
}
