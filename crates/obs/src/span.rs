//! Nestable timing spans with a pluggable subscriber.
//!
//! [`span("name")`](span) returns a guard; the time between creation and
//! drop is the span's duration, and spans opened while another guard is
//! live nest under it (a thread-local depth counter tracks the stack).
//!
//! Dispatch is two-level:
//!
//! * a **thread-local** subscriber, installed for the extent of a closure
//!   by [`with_subscriber`] — how tests and the repro harness capture a
//!   span tree without perturbing other threads;
//! * a **global** subscriber, installed by [`set_global_subscriber`] —
//!   how a long-running process turns tracing on.
//!
//! With neither installed (the production default) [`span`] returns an
//! inert guard **without reading the clock**: the entire cost of an
//! instrumented call site is one thread-local read and one atomic load.
//! The `obs_overhead` bench pins that this is indistinguishable from
//! noise on an E7-scale scan.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

/// Receives span enter/exit events. Implementations must be cheap and
/// re-entrant: spans nest, and subscribers are called with the guard's
/// thread-local depth already updated.
pub trait Subscriber: Send + Sync {
    /// Whether the subscriber wants events at all. Returning `false`
    /// makes [`span`] skip the clock read entirely.
    fn enabled(&self) -> bool {
        true
    }

    /// A span was opened at `depth` (0 = root).
    fn enter(&self, name: &'static str, depth: usize) {
        let _ = (name, depth);
    }

    /// A span closed after `elapsed`.
    fn exit(&self, name: &'static str, depth: usize, elapsed: Duration);
}

/// The production-path subscriber: refuses events, so instrumented code
/// never reads the clock. Installing it is equivalent to installing
/// nothing; it exists so "no tracing" is an explicit, testable value.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopSubscriber;

impl Subscriber for NoopSubscriber {
    fn enabled(&self) -> bool {
        false
    }

    fn exit(&self, _name: &'static str, _depth: usize, _elapsed: Duration) {}
}

/// One completed (or still-open) span seen by a [`CollectingSubscriber`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// The span name.
    pub name: &'static str,
    /// Nesting depth at open time (0 = root).
    pub depth: usize,
    /// Wall-clock duration; `None` while the span is still open.
    pub duration: Option<Duration>,
}

/// A subscriber that records every span in open order — the test and
/// repro harness backend. Records are pre-order (parents before their
/// children), so [`CollectingSubscriber::render_tree`] is a straight
/// indent-by-depth walk.
#[derive(Debug, Default)]
pub struct CollectingSubscriber {
    records: Mutex<Vec<SpanRecord>>,
}

impl CollectingSubscriber {
    /// An empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Everything recorded so far.
    pub fn records(&self) -> Vec<SpanRecord> {
        self.records.lock().expect("span lock poisoned").clone()
    }

    /// The names of all completed spans, in open order.
    pub fn completed(&self) -> Vec<&'static str> {
        self.records()
            .into_iter()
            .filter(|r| r.duration.is_some())
            .map(|r| r.name)
            .collect()
    }

    /// Drops all records.
    pub fn reset(&self) {
        self.records.lock().expect("span lock poisoned").clear();
    }

    /// The span tree as indented text, one span per line.
    pub fn render_tree(&self) -> String {
        let mut out = String::new();
        for record in self.records() {
            let duration = record
                .duration
                .map(|d| format!("{:.3} ms", d.as_secs_f64() * 1e3))
                .unwrap_or_else(|| "(open)".to_string());
            out.push_str(&format!(
                "{}{} {}\n",
                "  ".repeat(record.depth),
                record.name,
                duration
            ));
        }
        out
    }
}

impl Subscriber for CollectingSubscriber {
    fn enter(&self, name: &'static str, depth: usize) {
        self.records
            .lock()
            .expect("span lock poisoned")
            .push(SpanRecord {
                name,
                depth,
                duration: None,
            });
    }

    fn exit(&self, name: &'static str, depth: usize, elapsed: Duration) {
        let mut records = self.records.lock().expect("span lock poisoned");
        // The matching record is the last still-open one with this name
        // and depth (spans close innermost-first).
        if let Some(record) = records
            .iter_mut()
            .rev()
            .find(|r| r.duration.is_none() && r.name == name && r.depth == depth)
        {
            record.duration = Some(elapsed);
        }
    }
}

/// `true` while a global subscriber is installed — the one-atomic-load
/// fast path check.
static GLOBAL_ACTIVE: AtomicBool = AtomicBool::new(false);
static GLOBAL: RwLock<Option<Arc<dyn Subscriber>>> = RwLock::new(None);

thread_local! {
    static LOCAL: RefCell<Option<Arc<dyn Subscriber>>> = const { RefCell::new(None) };
    static DEPTH: Cell<usize> = const { Cell::new(0) };
}

/// Installs a process-wide subscriber (e.g. at the top of a repro run).
/// Thread-local subscribers installed by [`with_subscriber`] take
/// precedence on their thread.
pub fn set_global_subscriber(subscriber: Arc<dyn Subscriber>) {
    let active = subscriber.enabled();
    *GLOBAL.write().expect("subscriber lock poisoned") = Some(subscriber);
    GLOBAL_ACTIVE.store(active, Ordering::Release);
}

/// Removes the global subscriber; spans on threads without a local
/// subscriber become free again.
pub fn clear_global_subscriber() {
    GLOBAL_ACTIVE.store(false, Ordering::Release);
    *GLOBAL.write().expect("subscriber lock poisoned") = None;
}

/// Runs `f` with `subscriber` receiving this thread's spans, restoring
/// the previous thread-local subscriber afterwards (also on panic-free
/// early return; the closure's spans are fully scoped). This is how a
/// test collects spans without seeing another test's.
pub fn with_subscriber<T>(subscriber: Arc<dyn Subscriber>, f: impl FnOnce() -> T) -> T {
    struct Restore(Option<Arc<dyn Subscriber>>);
    impl Drop for Restore {
        fn drop(&mut self) {
            LOCAL.with(|local| *local.borrow_mut() = self.0.take());
        }
    }
    let previous = LOCAL.with(|local| local.borrow_mut().replace(subscriber));
    let _restore = Restore(previous);
    f()
}

/// The subscriber this thread's spans should report to, if any wants
/// events.
fn active_subscriber() -> Option<Arc<dyn Subscriber>> {
    if let Some(local) = LOCAL.with(|local| local.borrow().clone()) {
        return local.enabled().then_some(local);
    }
    if GLOBAL_ACTIVE.load(Ordering::Acquire) {
        return GLOBAL.read().expect("subscriber lock poisoned").clone();
    }
    None
}

/// An open span; dropping it closes the span and reports the elapsed
/// time to the active subscriber. Inert (clock never read) when no
/// subscriber was active at open time.
#[must_use = "a span measures the time until the guard is dropped"]
pub struct SpanGuard {
    name: &'static str,
    live: Option<(Arc<dyn Subscriber>, Instant, usize)>,
}

impl std::fmt::Debug for SpanGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanGuard")
            .field("name", &self.name)
            .field("recording", &self.live.is_some())
            .finish()
    }
}

impl SpanGuard {
    /// True if this span is actually being recorded.
    pub fn is_recording(&self) -> bool {
        self.live.is_some()
    }
}

/// Opens a span. The returned guard closes it on drop.
pub fn span(name: &'static str) -> SpanGuard {
    match active_subscriber() {
        Some(subscriber) => {
            let depth = DEPTH.with(|d| {
                let depth = d.get();
                d.set(depth + 1);
                depth
            });
            subscriber.enter(name, depth);
            SpanGuard {
                name,
                live: Some((subscriber, Instant::now(), depth)),
            }
        }
        None => SpanGuard { name, live: None },
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((subscriber, started, depth)) = self.live.take() {
            let elapsed = started.elapsed();
            // Clamp to both this span's open depth and current-minus-one so
            // the counter recovers even when guards drop out of LIFO order.
            DEPTH.with(|d| d.set(depth.min(d.get().saturating_sub(1))));
            subscriber.exit(self.name, depth, elapsed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_without_a_subscriber_are_inert() {
        let guard = span("free");
        assert!(!guard.is_recording());
        drop(guard);
    }

    #[test]
    fn collecting_subscriber_records_a_nested_tree() {
        let collector = Arc::new(CollectingSubscriber::new());
        with_subscriber(collector.clone(), || {
            let _outer = span("serve");
            {
                let _inner = span("delta-replay");
            }
            let _second = span("render");
        });
        let records = collector.records();
        assert_eq!(
            records.iter().map(|r| (r.name, r.depth)).collect::<Vec<_>>(),
            vec![("serve", 0), ("delta-replay", 1), ("render", 1)],
            "pre-order with depths"
        );
        assert!(records.iter().all(|r| r.duration.is_some()));
        let tree = collector.render_tree();
        assert!(tree.contains("serve"));
        assert!(tree.contains("  delta-replay"));
        assert_eq!(collector.completed(), vec!["serve", "delta-replay", "render"]);
        collector.reset();
        assert!(collector.records().is_empty());
    }

    #[test]
    fn with_subscriber_scopes_to_the_closure_and_restores() {
        let outer = Arc::new(CollectingSubscriber::new());
        let inner = Arc::new(CollectingSubscriber::new());
        with_subscriber(outer.clone(), || {
            let _a = span("a");
            with_subscriber(inner.clone(), || {
                let _b = span("b");
            });
            let _c = span("c");
        });
        assert_eq!(outer.completed(), vec!["a", "c"]);
        assert_eq!(inner.completed(), vec!["b"]);
        assert!(!span("after").is_recording());
    }

    #[test]
    fn noop_subscriber_disables_recording() {
        with_subscriber(Arc::new(NoopSubscriber), || {
            assert!(!span("anything").is_recording());
        });
    }

    #[test]
    fn depth_recovers_after_out_of_order_drops() {
        let collector = Arc::new(CollectingSubscriber::new());
        with_subscriber(collector.clone(), || {
            let a = span("a");
            let b = span("b");
            drop(a); // dropped before its child — depth must not wedge
            drop(b);
            let _c = span("c");
        });
        let records = collector.records();
        let c = records.iter().find(|r| r.name == "c").unwrap();
        assert_eq!(c.depth, 0, "depth counter recovered");
    }
}
