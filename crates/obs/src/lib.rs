//! `obs` — the telemetry layer under every QB2OLAP serving crate.
//!
//! The serving stack (catalog refreshes, columnar scans, SPARQL
//! evaluation, exploration navigation) is instrumented through exactly
//! three primitives, all defined here and none pulling a single external
//! dependency:
//!
//! * **[`metrics`]** — a [`MetricsRegistry`] of atomic [`Counter`]s,
//!   [`Gauge`]s and log-bucketed latency [`Histogram`]s (p50/p95/p99),
//!   snapshotable at any moment into a serializable [`MetricsSnapshot`]
//!   with a stable text and JSON rendering. Registries are plain values:
//!   the cube catalog owns one, the fuzz campaign owns another, and the
//!   `Qb2Olap` facade exposes the serving registry as
//!   `Qb2Olap::metrics()`.
//! * **[`mod@span`]** — nestable timing spans with a thread-local stack and a
//!   pluggable [`Subscriber`]. Production code runs with no subscriber
//!   installed, in which case [`span()`] never reads the clock — the
//!   guard is a no-op struct and the instrumented hot paths stay at
//!   uninstrumented speed (the `obs_overhead` bench pins this). Tests and
//!   repro harnesses install a [`CollectingSubscriber`] to capture the
//!   full span tree (a catalog `serve` span containing the delta-replay
//!   or rebuild span, a QL execute span containing the scan span, …).
//! * **[`profile`]** — an [`ExecutionProfile`] attached to query results:
//!   the logical plan (one line per pipeline step), per-phase timings and
//!   row counts, and named counters (rows scanned, tombstones skipped,
//!   dictionary lookups, roll-up map lookups). [`ExecutionProfile::render`]
//!   is the cube's `EXPLAIN ANALYZE`.
//!
//! The crate also hosts [`mod@env`], the one parser for every `QB2OLAP_*`
//! environment knob (warn-and-default, never panicking) — it lives here
//! because `obs` is the dependency-free kernel every knob-reading crate
//! already pulls.
//!
//! The metric naming scheme is dotted lowercase, `<crate>.<subsystem>.<what>`
//! (`catalog.refresh.delta`, `cubestore.scan.rows`, `explorer.members`,
//! `fuzz.ql.production.*`); histogram names end in the unit
//! (`catalog.refresh.duration_ns`). ARCHITECTURE.md §Observability has the
//! full catalog.

#![warn(missing_docs)]

pub mod env;
pub mod metrics;
pub mod profile;
pub mod span;

pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot,
};
pub use profile::{ExecutionProfile, ProfileStep};
pub use span::{
    clear_global_subscriber, set_global_subscriber, span, with_subscriber, CollectingSubscriber,
    NoopSubscriber, SpanGuard, SpanRecord, Subscriber,
};
