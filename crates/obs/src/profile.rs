//! Query execution profiles — `EXPLAIN ANALYZE` for the cube.
//!
//! An [`ExecutionProfile`] travels alongside a query result and records
//! three things:
//!
//! * the **logical plan** — one line per pipeline step (`SLICE`,
//!   `ROLLUP`, `DICE`, …) as the simplifier left it, so the reader can
//!   see what the engine was asked to do even when the physical engine
//!   fuses every step into a single scan;
//! * the **execution steps** — named phases with wall-clock durations
//!   and optional row counts (prepare, translate, scan, aggregate, …);
//! * the **counters** — named totals observed during execution (rows
//!   scanned, tombstones skipped, dictionary lookups, roll-up map
//!   lookups), mirroring the registry metric names where one exists.
//!
//! [`ExecutionProfile::render`] turns all of that into a stable,
//! human-readable text block.

use std::collections::BTreeMap;
use std::time::Duration;

/// One named execution phase inside a profile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileStep {
    /// Phase name, e.g. `"scan"` or `"translate-sparql"`.
    pub name: String,
    /// Wall-clock time spent in the phase.
    pub duration: Duration,
    /// Rows produced or touched by the phase, when meaningful.
    pub rows: Option<u64>,
    /// Free-form annotation (backend variant, thread count, …).
    pub detail: String,
}

/// The full cost breakdown of one query execution.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ExecutionProfile {
    /// Which engine ran the query (`"columnar"`, `"sparql:direct"`, …).
    pub backend: String,
    /// Logical plan, one line per pipeline step.
    pub plan: Vec<String>,
    /// Measured execution phases, in execution order.
    pub steps: Vec<ProfileStep>,
    /// Named totals observed during execution.
    pub counters: BTreeMap<String, u64>,
    /// End-to-end wall-clock time.
    pub total: Duration,
}

impl ExecutionProfile {
    /// An empty profile for the given backend.
    pub fn new(backend: impl Into<String>) -> Self {
        Self {
            backend: backend.into(),
            ..Self::default()
        }
    }

    /// Appends a plan line.
    pub fn push_plan(&mut self, line: impl Into<String>) {
        self.plan.push(line.into());
    }

    /// Appends a measured phase.
    pub fn push_step(
        &mut self,
        name: impl Into<String>,
        duration: Duration,
        rows: Option<u64>,
        detail: impl Into<String>,
    ) {
        self.steps.push(ProfileStep {
            name: name.into(),
            duration,
            rows,
            detail: detail.into(),
        });
    }

    /// Adds to a named counter (creating it at zero).
    pub fn add_counter(&mut self, name: impl Into<String>, delta: u64) {
        *self.counters.entry(name.into()).or_insert(0) += delta;
    }

    /// A counter's value, zero if never touched.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The names of all measured phases, in order.
    pub fn step_names(&self) -> Vec<&str> {
        self.steps.iter().map(|s| s.name.as_str()).collect()
    }

    /// Whether a phase with this name was measured.
    pub fn has_step(&self, name: &str) -> bool {
        self.steps.iter().any(|s| s.name == name)
    }

    /// Sum of the measured phase durations (may be below [`Self::total`]
    /// when unprofiled work happened between phases).
    pub fn steps_total(&self) -> Duration {
        self.steps.iter().map(|s| s.duration).sum()
    }

    /// Renders the profile as an `EXPLAIN ANALYZE`-style text block.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "EXPLAIN ANALYZE (backend={}, total={:.3} ms)\n",
            self.backend,
            self.total.as_secs_f64() * 1e3
        ));
        if !self.plan.is_empty() {
            out.push_str("plan:\n");
            for line in &self.plan {
                out.push_str(&format!("  {line}\n"));
            }
        }
        if !self.steps.is_empty() {
            out.push_str("execution:\n");
            for step in &self.steps {
                out.push_str(&format!(
                    "  {:<20} {:>10.3} ms",
                    step.name,
                    step.duration.as_secs_f64() * 1e3
                ));
                if let Some(rows) = step.rows {
                    out.push_str(&format!("  rows={rows}"));
                }
                if !step.detail.is_empty() {
                    out.push_str(&format!("  ({})", step.detail));
                }
                out.push('\n');
            }
        }
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (name, value) in &self.counters {
                out.push_str(&format!("  {name} = {value}\n"));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_accumulates_plan_steps_and_counters() {
        let mut profile = ExecutionProfile::new("columnar");
        profile.push_plan("SLICE dim=geo member=pt");
        profile.push_plan("ROLLUP dim=time level=year");
        profile.push_step("scan", Duration::from_millis(3), Some(1000), "threads=4");
        profile.push_step("aggregate", Duration::from_millis(1), Some(12), "");
        profile.add_counter("rows_scanned", 600);
        profile.add_counter("rows_scanned", 400);
        profile.add_counter("tombstones_skipped", 7);
        profile.total = Duration::from_millis(5);

        assert_eq!(profile.counter("rows_scanned"), 1000);
        assert_eq!(profile.counter("absent"), 0);
        assert_eq!(profile.step_names(), vec!["scan", "aggregate"]);
        assert!(profile.has_step("scan"));
        assert!(!profile.has_step("shuffle"));
        assert_eq!(profile.steps_total(), Duration::from_millis(4));
    }

    #[test]
    fn render_is_stable_and_names_everything() {
        let mut profile = ExecutionProfile::new("sparql:direct");
        profile.push_plan("DICE measure>10");
        profile.push_step("parse", Duration::from_micros(250), None, "");
        profile.push_step("evaluate", Duration::from_micros(750), Some(42), "solutions");
        profile.add_counter("dictionary_lookups", 3);
        profile.total = Duration::from_millis(1);

        let text = profile.render();
        assert!(text.starts_with("EXPLAIN ANALYZE (backend=sparql:direct"));
        assert!(text.contains("DICE measure>10"));
        assert!(text.contains("parse"));
        assert!(text.contains("evaluate"));
        assert!(text.contains("rows=42"));
        assert!(text.contains("dictionary_lookups = 3"));
        assert_eq!(text, profile.render(), "rendering is deterministic");
    }

    #[test]
    fn empty_profile_renders_header_only() {
        let profile = ExecutionProfile::new("columnar");
        let text = profile.render();
        assert!(text.contains("backend=columnar"));
        assert!(!text.contains("plan:"));
        assert!(!text.contains("execution:"));
        assert!(!text.contains("counters:"));
    }
}
