//! Centralized parsing of the `QB2OLAP_*` environment knobs.
//!
//! Before this module, every consumer parsed its knobs ad hoc — the fuzz
//! campaign accepted hex, the benches accepted only decimal, the overlay
//! and pruning kill switches had their own truthiness rules, and an
//! invalid value either panicked (a `unwrap()` on the parse) or fell back
//! silently depending on which file you were in. Production incidents love
//! exactly that kind of divergence, so every knob now goes through one of
//! the three parsers here, all with **warn-and-default** semantics: an
//! unset variable is silently the default, while a *set but invalid* value
//! (empty, garbage, overflow) logs one warning line to stderr and then
//! behaves as if the variable were unset. A typo in an ops runbook must
//! never panic a serving process, and must never silently flip a kill
//! switch either way without a trace.
//!
//! This module lives in `obs` because `obs` is the workspace's shared
//! dependency-free kernel — every crate that reads a knob (cubestore,
//! fuzz, bench, server) already depends on it. The `qb2olap` facade
//! re-exports it as `qb2olap::obs::env`.

/// Reads a `u64` knob (decimal, or hex with a `0x`/`0X` prefix), falling
/// back to `default` when unset. A set-but-invalid value (empty text,
/// garbage, overflow past `u64::MAX`) warns once on stderr and falls back.
pub fn u64_knob(name: &str, default: u64) -> u64 {
    match std::env::var(name) {
        Err(_) => default,
        Ok(text) => {
            let trimmed = text.trim();
            let parsed = if let Some(hex) = trimmed
                .strip_prefix("0x")
                .or_else(|| trimmed.strip_prefix("0X"))
            {
                u64::from_str_radix(hex, 16)
            } else {
                trimmed.parse()
            };
            match parsed {
                Ok(value) => value,
                Err(_) => {
                    warn_invalid(name, &text, &default.to_string());
                    default
                }
            }
        }
    }
}

/// Reads a `usize` knob with the same syntax and warn-and-default
/// semantics as [`u64_knob`]. Values past `usize::MAX` warn and default.
pub fn usize_knob(name: &str, default: usize) -> usize {
    match std::env::var(name) {
        Err(_) => default,
        Ok(_) => match usize::try_from(u64_knob(name, default as u64)) {
            Ok(value) => value,
            Err(_) => {
                warn_invalid(name, "(out of usize range)", &default.to_string());
                default
            }
        },
    }
}

/// Reads a kill-switch knob (`QB2OLAP_NO_PRUNE`, `QB2OLAP_NO_OVERLAY`,
/// ...): **thrown** (`true`) when the variable is set to anything
/// non-empty other than `"0"` or `"false"`, **not thrown** when unset,
/// empty or explicitly `"0"`/`"false"`. There is no invalid value — any
/// other text means "disable the feature", which is the conservative
/// direction for a kill switch — but unrecognized truthy spellings of
/// *off* (e.g. `"no"`) still warn so a typo'd attempt to clear the switch
/// is visible.
pub fn kill_switch(name: &str) -> bool {
    match std::env::var(name) {
        Err(_) => false,
        Ok(text) => {
            let trimmed = text.trim();
            if trimmed.is_empty() || trimmed == "0" || trimmed.eq_ignore_ascii_case("false") {
                return false;
            }
            if trimmed.eq_ignore_ascii_case("no") || trimmed.eq_ignore_ascii_case("off") {
                warn_invalid(name, &text, "thrown (any non-empty value throws the switch)");
            }
            true
        }
    }
}

/// One stderr line per invalid read. Deliberately unbuffered and
/// deliberately not a panic: knobs tune campaigns and kill switches, and a
/// malformed value must neither take the process down nor vanish without
/// a trace.
fn warn_invalid(name: &str, got: &str, fallback: &str) {
    eprintln!("warning: ignoring invalid {name}={got:?}, using {fallback}");
}

#[cfg(test)]
mod tests {
    use super::*;

    // Env mutation is process-global; each test uses its own variable name
    // so the suite stays order-independent under the parallel test runner.

    #[test]
    fn unset_is_the_default() {
        assert_eq!(u64_knob("QB2OLAP_ENV_TEST_UNSET", 7), 7);
        assert_eq!(usize_knob("QB2OLAP_ENV_TEST_UNSET", 9), 9);
        assert!(!kill_switch("QB2OLAP_ENV_TEST_UNSET"));
    }

    #[test]
    fn decimal_and_hex_parse() {
        std::env::set_var("QB2OLAP_ENV_TEST_DEC", "42");
        std::env::set_var("QB2OLAP_ENV_TEST_HEX", "0xff");
        std::env::set_var("QB2OLAP_ENV_TEST_HEX_UPPER", "0XE155EED");
        std::env::set_var("QB2OLAP_ENV_TEST_PADDED", "  12  ");
        assert_eq!(u64_knob("QB2OLAP_ENV_TEST_DEC", 7), 42);
        assert_eq!(u64_knob("QB2OLAP_ENV_TEST_HEX", 7), 255);
        assert_eq!(u64_knob("QB2OLAP_ENV_TEST_HEX_UPPER", 7), 0xE15_5EED);
        assert_eq!(usize_knob("QB2OLAP_ENV_TEST_PADDED", 7), 12);
    }

    #[test]
    fn empty_value_warns_and_defaults() {
        std::env::set_var("QB2OLAP_ENV_TEST_EMPTY", "");
        assert_eq!(u64_knob("QB2OLAP_ENV_TEST_EMPTY", 5), 5);
        assert_eq!(usize_knob("QB2OLAP_ENV_TEST_EMPTY", 6), 6);
    }

    #[test]
    fn garbage_warns_and_defaults() {
        std::env::set_var("QB2OLAP_ENV_TEST_GARBAGE", "over 9000");
        std::env::set_var("QB2OLAP_ENV_TEST_NEGATIVE", "-3");
        std::env::set_var("QB2OLAP_ENV_TEST_FLOAT", "1.5");
        assert_eq!(u64_knob("QB2OLAP_ENV_TEST_GARBAGE", 11), 11);
        assert_eq!(u64_knob("QB2OLAP_ENV_TEST_NEGATIVE", 11), 11);
        assert_eq!(usize_knob("QB2OLAP_ENV_TEST_FLOAT", 11), 11);
    }

    #[test]
    fn overflow_warns_and_defaults() {
        // 2^64 exactly: one past u64::MAX in both spellings.
        std::env::set_var("QB2OLAP_ENV_TEST_OVERFLOW", "18446744073709551616");
        std::env::set_var("QB2OLAP_ENV_TEST_OVERFLOW_HEX", "0x10000000000000000");
        assert_eq!(u64_knob("QB2OLAP_ENV_TEST_OVERFLOW", 13), 13);
        assert_eq!(u64_knob("QB2OLAP_ENV_TEST_OVERFLOW_HEX", 13), 13);
        assert_eq!(usize_knob("QB2OLAP_ENV_TEST_OVERFLOW", 13), 13);
    }

    #[test]
    fn kill_switch_truth_table() {
        std::env::set_var("QB2OLAP_ENV_TEST_KS_ON", "1");
        std::env::set_var("QB2OLAP_ENV_TEST_KS_WORD", "anything");
        std::env::set_var("QB2OLAP_ENV_TEST_KS_OFF", "0");
        std::env::set_var("QB2OLAP_ENV_TEST_KS_FALSE", "false");
        std::env::set_var("QB2OLAP_ENV_TEST_KS_EMPTY", "");
        std::env::set_var("QB2OLAP_ENV_TEST_KS_NO", "no");
        assert!(kill_switch("QB2OLAP_ENV_TEST_KS_ON"));
        assert!(kill_switch("QB2OLAP_ENV_TEST_KS_WORD"));
        assert!(!kill_switch("QB2OLAP_ENV_TEST_KS_OFF"));
        assert!(!kill_switch("QB2OLAP_ENV_TEST_KS_FALSE"));
        assert!(!kill_switch("QB2OLAP_ENV_TEST_KS_EMPTY"));
        // "no" is conservatively *thrown* (with a warning): only the
        // documented spellings clear a kill switch.
        assert!(kill_switch("QB2OLAP_ENV_TEST_KS_NO"));
    }
}
