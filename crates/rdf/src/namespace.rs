//! Prefix management for compact (CURIE-style) IRI rendering and parsing.

use std::collections::BTreeMap;

use crate::term::Iri;
use crate::vocab;

/// A bidirectional prefix ↔ namespace map.
///
/// Used by the Turtle parser/serialiser, the SPARQL pretty-printer, and the
/// exploration module when rendering IRIs in a user-friendly compact form.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PrefixMap {
    prefixes: BTreeMap<String, String>,
}

impl PrefixMap {
    /// Creates an empty prefix map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a prefix map pre-populated with every vocabulary QB2OLAP uses
    /// (rdf, rdfs, xsd, owl, skos, qb, qb4o, sdmx-*, eurostat, schema, dbo).
    pub fn with_common_prefixes() -> Self {
        let mut map = Self::new();
        map.insert("rdf", vocab::rdf::NAMESPACE);
        map.insert("rdfs", vocab::rdfs::NAMESPACE);
        map.insert("xsd", vocab::xsd::NAMESPACE);
        map.insert("owl", vocab::owl::NAMESPACE);
        map.insert("skos", vocab::skos::NAMESPACE);
        map.insert("qb", vocab::qb::NAMESPACE);
        map.insert("qb4o", vocab::qb4o::NAMESPACE);
        map.insert("sdmx-dimension", vocab::sdmx_dimension::NAMESPACE);
        map.insert("sdmx-measure", vocab::sdmx_measure::NAMESPACE);
        map.insert("sdmx-attribute", vocab::sdmx_attribute::NAMESPACE);
        map.insert("property", vocab::eurostat_property::NAMESPACE);
        map.insert("dsd", vocab::eurostat_dsd::NAMESPACE);
        map.insert("data", vocab::eurostat_data::NAMESPACE);
        map.insert("dic", vocab::eurostat_dic::NAMESPACE);
        map.insert("schema", vocab::demo_schema::NAMESPACE);
        map.insert("dbo", vocab::dbpedia::NAMESPACE);
        map
    }

    /// Registers (or replaces) a prefix.
    pub fn insert(&mut self, prefix: impl Into<String>, namespace: impl Into<String>) {
        self.prefixes.insert(prefix.into(), namespace.into());
    }

    /// Looks up the namespace bound to a prefix.
    pub fn namespace(&self, prefix: &str) -> Option<&str> {
        self.prefixes.get(prefix).map(String::as_str)
    }

    /// Number of registered prefixes.
    pub fn len(&self) -> usize {
        self.prefixes.len()
    }

    /// True if no prefix is registered.
    pub fn is_empty(&self) -> bool {
        self.prefixes.is_empty()
    }

    /// Iterates over `(prefix, namespace)` pairs in prefix order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.prefixes.iter().map(|(p, n)| (p.as_str(), n.as_str()))
    }

    /// Expands a prefixed name (`prefix:local`) to a full IRI.
    ///
    /// Returns `None` if the prefix is unknown or the input has no colon.
    pub fn expand(&self, prefixed: &str) -> Option<Iri> {
        let (prefix, local) = prefixed.split_once(':')?;
        let ns = self.prefixes.get(prefix)?;
        Some(Iri::new(format!("{ns}{local}")))
    }

    /// Compacts a full IRI to `prefix:local` if a registered namespace is a
    /// prefix of it; otherwise returns the angle-bracketed full form.
    pub fn compact(&self, iri: &Iri) -> String {
        let s = iri.as_str();
        let mut best: Option<(&str, &str)> = None;
        for (prefix, ns) in &self.prefixes {
            if let Some(local) = s.strip_prefix(ns.as_str()) {
                if best.map(|(_, bns)| ns.len() > bns.len()).unwrap_or(true) {
                    best = Some((prefix, ns));
                    let _ = local;
                }
            }
        }
        match best {
            Some((prefix, ns)) => {
                let local = &s[ns.len()..];
                if is_valid_local_name(local) {
                    format!("{prefix}:{local}")
                } else {
                    format!("<{s}>")
                }
            }
            None => format!("<{s}>"),
        }
    }
}

/// True if `local` can be written as the local part of a prefixed name in
/// Turtle/SPARQL without escaping (a conservative approximation).
fn is_valid_local_name(local: &str) -> bool {
    !local.is_empty()
        && local
            .chars()
            .all(|c| c.is_alphanumeric() || c == '_' || c == '-' || c == '.')
        && !local.ends_with('.')
        && !local.starts_with('.')
        && !local.starts_with('-')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expand_and_compact_roundtrip() {
        let map = PrefixMap::with_common_prefixes();
        let iri = map.expand("qb:DataSet").expect("known prefix");
        assert_eq!(iri.as_str(), "http://purl.org/linked-data/cube#DataSet");
        assert_eq!(map.compact(&iri), "qb:DataSet");
    }

    #[test]
    fn expand_unknown_prefix_is_none() {
        let map = PrefixMap::new();
        assert!(map.expand("qb:DataSet").is_none());
        assert!(map.expand("noColonHere").is_none());
    }

    #[test]
    fn compact_unknown_namespace_uses_angle_brackets() {
        let map = PrefixMap::with_common_prefixes();
        let iri = Iri::new("http://unknown.example/x");
        assert_eq!(map.compact(&iri), "<http://unknown.example/x>");
    }

    #[test]
    fn compact_prefers_longest_namespace() {
        let mut map = PrefixMap::new();
        map.insert("a", "http://example.org/");
        map.insert("b", "http://example.org/deep/");
        let iri = Iri::new("http://example.org/deep/x");
        assert_eq!(map.compact(&iri), "b:x");
    }

    #[test]
    fn compact_falls_back_for_odd_local_names() {
        let mut map = PrefixMap::new();
        map.insert("ex", "http://example.org/");
        let iri = Iri::new("http://example.org/a b");
        assert_eq!(map.compact(&iri), "<http://example.org/a b>");
    }

    #[test]
    fn common_prefixes_cover_paper_namespaces() {
        let map = PrefixMap::with_common_prefixes();
        for p in [
            "rdf", "rdfs", "xsd", "skos", "qb", "qb4o", "sdmx-dimension", "sdmx-measure",
            "property", "schema", "data", "dbo",
        ] {
            assert!(map.namespace(p).is_some(), "missing prefix {p}");
        }
    }
}
