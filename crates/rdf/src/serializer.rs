//! Serialisers for N-Triples and (pretty-printed, prefixed) Turtle.

use std::collections::BTreeMap;

use crate::graph::Graph;
use crate::namespace::PrefixMap;
use crate::term::{Iri, Term, Triple};

/// Serialises a graph as N-Triples (one triple per line, canonical order).
pub fn to_ntriples(graph: &Graph) -> String {
    let mut lines: Vec<String> = graph.iter().map(|t| format_triple_ntriples(&t)).collect();
    lines.sort();
    let mut out = lines.join("\n");
    if !out.is_empty() {
        out.push('\n');
    }
    out
}

/// Serialises a single triple as one N-Triples line (without the newline).
pub fn format_triple_ntriples(triple: &Triple) -> String {
    format!(
        "{} {} {} .",
        format_term_ntriples(&triple.subject),
        Term::Iri(triple.predicate.clone()),
        format_term_ntriples(&triple.object)
    )
}

fn format_term_ntriples(term: &Term) -> String {
    term.to_string()
}

/// Serialises a graph as Turtle, grouping triples by subject and compacting
/// IRIs with the given prefix map. Prefix declarations for every prefix that
/// is actually used are emitted at the top.
pub fn to_turtle(graph: &Graph, prefixes: &PrefixMap) -> String {
    // Group triples by subject, then by predicate, preserving a stable order.
    let mut by_subject: BTreeMap<Term, BTreeMap<Iri, Vec<Term>>> = BTreeMap::new();
    for triple in graph.iter() {
        by_subject
            .entry(triple.subject.clone())
            .or_default()
            .entry(triple.predicate.clone())
            .or_default()
            .push(triple.object.clone());
    }

    let mut body = String::new();
    let mut used_prefixes: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();

    let compact = |term: &Term, used: &mut std::collections::BTreeSet<String>| -> String {
        match term {
            Term::Iri(iri) => {
                let c = prefixes.compact(iri);
                if let Some((prefix, _)) = c.split_once(':') {
                    if !c.starts_with('<') {
                        used.insert(prefix.to_string());
                    }
                }
                c
            }
            other => other.to_string(),
        }
    };

    for (subject, predicates) in &by_subject {
        let subject_str = compact(subject, &mut used_prefixes);
        body.push_str(&subject_str);
        let mut first_pred = true;
        for (predicate, objects) in predicates {
            if first_pred {
                body.push(' ');
                first_pred = false;
            } else {
                body.push_str(" ;\n    ");
            }
            let pred_str = if *predicate == crate::vocab::rdf::type_() {
                "a".to_string()
            } else {
                compact(&Term::Iri(predicate.clone()), &mut used_prefixes)
            };
            body.push_str(&pred_str);
            body.push(' ');
            let mut object_strs: Vec<String> = objects
                .iter()
                .map(|o| {
                    if let Term::Literal(lit) = o {
                        // Compact the datatype IRI too when possible.
                        if lit.language().is_none()
                            && lit.datatype() != &crate::vocab::xsd::string()
                        {
                            let dt = prefixes.compact(lit.datatype());
                            if !dt.starts_with('<') {
                                if let Some((prefix, _)) = dt.split_once(':') {
                                    used_prefixes.insert(prefix.to_string());
                                }
                                return format!(
                                    "\"{}\"^^{}",
                                    crate::term::escape_literal(lit.lexical()),
                                    dt
                                );
                            }
                        }
                        o.to_string()
                    } else {
                        compact(o, &mut used_prefixes)
                    }
                })
                .collect();
            object_strs.sort();
            body.push_str(&object_strs.join(", "));
        }
        body.push_str(" .\n");
    }

    let mut header = String::new();
    for (prefix, ns) in prefixes.iter() {
        if used_prefixes.contains(prefix) {
            header.push_str(&format!("@prefix {prefix}: <{ns}> .\n"));
        }
    }
    if !header.is_empty() {
        header.push('\n');
    }
    header + &body
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_ntriples, parse_turtle};
    use crate::term::Literal;
    use crate::vocab::{qb, rdf};

    fn sample_graph() -> Graph {
        let mut g = Graph::new();
        g.insert(&Triple::new(
            Term::iri("http://example.org/ds"),
            rdf::type_(),
            Term::Iri(qb::data_set_class()),
        ));
        g.insert(&Triple::new(
            Term::iri("http://example.org/ds"),
            crate::vocab::rdfs::label(),
            Literal::lang_string("Asylum applications", "en"),
        ));
        g.insert(&Triple::new(
            Term::iri("http://example.org/obs1"),
            Iri::new("http://purl.org/linked-data/sdmx/2009/measure#obsValue"),
            Literal::integer(125),
        ));
        g
    }

    #[test]
    fn ntriples_roundtrip() {
        let g = sample_graph();
        let nt = to_ntriples(&g);
        let parsed = parse_ntriples(&nt).expect("reparse").into_graph();
        assert_eq!(parsed.len(), g.len());
        for t in g.iter() {
            assert!(parsed.contains(&t), "missing {t}");
        }
    }

    #[test]
    fn turtle_roundtrip_with_prefixes() {
        let g = sample_graph();
        let prefixes = PrefixMap::with_common_prefixes();
        let ttl = to_turtle(&g, &prefixes);
        assert!(ttl.contains("@prefix qb:"), "prefix header expected:\n{ttl}");
        assert!(ttl.contains("a qb:DataSet"), "rdf:type shortened to 'a':\n{ttl}");
        let parsed = parse_turtle(&ttl).expect("reparse").into_graph();
        assert_eq!(parsed.len(), g.len());
        for t in g.iter() {
            assert!(parsed.contains(&t), "missing {t}");
        }
    }

    #[test]
    fn only_used_prefixes_are_declared() {
        let mut g = Graph::new();
        g.insert(&Triple::new(
            Term::iri("http://x/s"),
            Iri::new("http://x/p"),
            Term::iri("http://x/o"),
        ));
        let ttl = to_turtle(&g, &PrefixMap::with_common_prefixes());
        assert!(!ttl.contains("@prefix qb:"));
    }

    #[test]
    fn empty_graph_serialises_to_empty_strings() {
        let g = Graph::new();
        assert_eq!(to_ntriples(&g), "");
        assert_eq!(to_turtle(&g, &PrefixMap::new()), "");
    }

    #[test]
    fn literal_datatypes_are_compacted() {
        let mut g = Graph::new();
        g.insert(&Triple::new(
            Term::iri("http://x/s"),
            Iri::new("http://x/p"),
            Literal::integer(3),
        ));
        let ttl = to_turtle(&g, &PrefixMap::with_common_prefixes());
        assert!(ttl.contains("^^xsd:integer"), "{ttl}");
    }
}
