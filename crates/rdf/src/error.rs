//! Error types for the RDF substrate.

use std::fmt;

/// Errors raised while parsing RDF serialisations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number where the error was detected.
    pub line: usize,
    /// 1-based column number where the error was detected.
    pub column: usize,
    /// Human-readable description.
    pub message: String,
}

impl ParseError {
    /// Creates a parse error at the given position.
    pub fn new(line: usize, column: usize, message: impl Into<String>) -> Self {
        ParseError {
            line,
            column,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "RDF parse error at line {}, column {}: {}",
            self.line, self.column, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Errors raised by the store layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// A named graph was requested that does not exist.
    GraphNotFound(String),
    /// A serialisation could not be parsed while loading.
    Parse(ParseError),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::GraphNotFound(name) => write!(f, "named graph not found: {name}"),
            StoreError::Parse(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<ParseError> for StoreError {
    fn from(e: ParseError) -> Self {
        StoreError::Parse(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        let e = ParseError::new(3, 7, "unexpected token");
        assert_eq!(
            e.to_string(),
            "RDF parse error at line 3, column 7: unexpected token"
        );
        let s: StoreError = e.into();
        assert!(s.to_string().contains("line 3"));
        assert_eq!(
            StoreError::GraphNotFound("g".into()).to_string(),
            "named graph not found: g"
        );
    }
}
