//! Parsers for the N-Triples and Turtle serialisations.
//!
//! The Turtle parser supports the subset of Turtle that QB/QB4OLAP datasets
//! in the wild actually use (and that our serialiser emits): `@prefix` /
//! `PREFIX` directives, `@base`, prefixed names, `a`, predicate lists with
//! `;`, object lists with `,`, anonymous blank nodes `[ ... ]`, labelled
//! blank nodes `_:x`, string / numeric / boolean literals, datatype and
//! language tags, and comments. N-Triples input is a subset of this grammar,
//! so [`parse_ntriples`] simply delegates to the Turtle parser with prefix
//! directives disabled.

use crate::error::ParseError;
use crate::graph::Graph;
use crate::namespace::PrefixMap;
use crate::term::{BlankNode, Iri, Literal, Term, Triple};
use crate::vocab::{rdf, xsd};

/// The result of parsing a Turtle document: the triples plus the prefix map
/// declared by the document.
#[derive(Debug, Clone, Default)]
pub struct ParsedDocument {
    /// All triples in document order (duplicates preserved).
    pub triples: Vec<Triple>,
    /// Prefixes declared with `@prefix` / `PREFIX`.
    pub prefixes: PrefixMap,
}

impl ParsedDocument {
    /// Builds a graph from the parsed triples.
    pub fn into_graph(self) -> Graph {
        Graph::from_triples(self.triples)
    }
}

/// Parses a Turtle document.
pub fn parse_turtle(input: &str) -> Result<ParsedDocument, ParseError> {
    TurtleParser::new(input, true).parse()
}

/// Parses an N-Triples document.
pub fn parse_ntriples(input: &str) -> Result<ParsedDocument, ParseError> {
    TurtleParser::new(input, false).parse()
}

struct TurtleParser<'a> {
    chars: Vec<char>,
    pos: usize,
    line: usize,
    column: usize,
    allow_directives: bool,
    prefixes: PrefixMap,
    base: Option<String>,
    triples: Vec<Triple>,
    blank_counter: usize,
    source: &'a str,
}

impl<'a> TurtleParser<'a> {
    fn new(input: &'a str, allow_directives: bool) -> Self {
        TurtleParser {
            chars: input.chars().collect(),
            pos: 0,
            line: 1,
            column: 1,
            allow_directives,
            prefixes: PrefixMap::new(),
            base: None,
            triples: Vec::new(),
            blank_counter: 0,
            source: input,
        }
    }

    fn parse(mut self) -> Result<ParsedDocument, ParseError> {
        loop {
            self.skip_ws();
            if self.at_end() {
                break;
            }
            if self.allow_directives && (self.peek() == Some('@') || self.peek_keyword("PREFIX") || self.peek_keyword("BASE")) {
                self.parse_directive()?;
                continue;
            }
            self.parse_statement()?;
        }
        // The source reference is only kept for error context; silence the
        // unused-field lint on builds without error paths exercised.
        let _ = self.source;
        Ok(ParsedDocument {
            triples: self.triples,
            prefixes: self.prefixes,
        })
    }

    // ---- low-level cursor -------------------------------------------------

    fn at_end(&self) -> bool {
        self.pos >= self.chars.len()
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek_at(&self, offset: usize) -> Option<char> {
        self.chars.get(self.pos + offset).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.column = 1;
        } else {
            self.column += 1;
        }
        Some(c)
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError::new(self.line, self.column, message)
    }

    fn skip_ws(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('#') => {
                    while let Some(c) = self.peek() {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => break,
            }
        }
    }

    fn expect(&mut self, expected: char) -> Result<(), ParseError> {
        match self.peek() {
            Some(c) if c == expected => {
                self.bump();
                Ok(())
            }
            Some(c) => Err(self.error(format!("expected '{expected}', found '{c}'"))),
            None => Err(self.error(format!("expected '{expected}', found end of input"))),
        }
    }

    fn peek_keyword(&self, keyword: &str) -> bool {
        let upper: Vec<char> = keyword.chars().collect();
        for (i, k) in upper.iter().enumerate() {
            match self.peek_at(i) {
                Some(c) if c.eq_ignore_ascii_case(k) => {}
                _ => return false,
            }
        }
        // must be followed by whitespace
        matches!(self.peek_at(upper.len()), Some(c) if c.is_whitespace())
    }

    // ---- directives -------------------------------------------------------

    fn parse_directive(&mut self) -> Result<(), ParseError> {
        let at_form = self.peek() == Some('@');
        if at_form {
            self.bump();
        }
        let word = self.read_while(|c| c.is_alphabetic());
        match word.to_ascii_lowercase().as_str() {
            "prefix" => {
                self.skip_ws();
                let prefix = self.read_while(|c| c != ':' && !c.is_whitespace());
                self.expect(':')?;
                self.skip_ws();
                let iri = self.parse_iri_ref()?;
                self.prefixes.insert(prefix, iri.as_str());
                self.skip_ws();
                if at_form {
                    self.expect('.')?;
                } else if self.peek() == Some('.') {
                    self.bump();
                }
                Ok(())
            }
            "base" => {
                self.skip_ws();
                let iri = self.parse_iri_ref()?;
                self.base = Some(iri.as_str().to_string());
                self.skip_ws();
                if at_form {
                    self.expect('.')?;
                } else if self.peek() == Some('.') {
                    self.bump();
                }
                Ok(())
            }
            other => Err(self.error(format!("unknown directive '@{other}'"))),
        }
    }

    fn read_while(&mut self, pred: impl Fn(char) -> bool) -> String {
        let mut out = String::new();
        while let Some(c) = self.peek() {
            if pred(c) {
                out.push(c);
                self.bump();
            } else {
                break;
            }
        }
        out
    }

    // ---- statements -------------------------------------------------------

    fn parse_statement(&mut self) -> Result<(), ParseError> {
        let subject = self.parse_subject()?;
        self.skip_ws();
        self.parse_predicate_object_list(&subject)?;
        self.skip_ws();
        self.expect('.')?;
        Ok(())
    }

    fn parse_predicate_object_list(&mut self, subject: &Term) -> Result<(), ParseError> {
        loop {
            self.skip_ws();
            let predicate = self.parse_predicate()?;
            loop {
                self.skip_ws();
                let object = self.parse_object()?;
                self.triples
                    .push(Triple::new(subject.clone(), predicate.clone(), object));
                self.skip_ws();
                if self.peek() == Some(',') {
                    self.bump();
                } else {
                    break;
                }
            }
            if self.peek() == Some(';') {
                self.bump();
                self.skip_ws();
                // A trailing ';' before '.' or ']' is legal Turtle.
                if matches!(self.peek(), Some('.') | Some(']')) || self.at_end() {
                    break;
                }
            } else {
                break;
            }
        }
        Ok(())
    }

    fn parse_subject(&mut self) -> Result<Term, ParseError> {
        match self.peek() {
            Some('<') => Ok(Term::Iri(self.parse_iri_ref()?)),
            Some('_') => Ok(Term::Blank(self.parse_blank_node_label()?)),
            Some('[') => self.parse_anonymous_blank(),
            Some(c) if c == '"' || c == '\'' => Err(self.error("literal subjects are not allowed")),
            Some(_) => {
                if !self.allow_directives {
                    return Err(self.error("N-Triples subjects must be IRIs or blank nodes"));
                }
                Ok(Term::Iri(self.parse_prefixed_name()?))
            }
            None => Err(self.error("unexpected end of input while reading subject")),
        }
    }

    fn parse_predicate(&mut self) -> Result<Iri, ParseError> {
        match self.peek() {
            Some('<') => self.parse_iri_ref(),
            Some('a') if self.is_bare_a() => {
                self.bump();
                Ok(rdf::type_())
            }
            Some(_) if self.allow_directives => self.parse_prefixed_name(),
            _ => Err(self.error("expected predicate IRI")),
        }
    }

    fn is_bare_a(&self) -> bool {
        self.peek() == Some('a')
            && matches!(self.peek_at(1), Some(c) if c.is_whitespace() || c == '<' || c == '[' || c == '_')
    }

    fn parse_object(&mut self) -> Result<Term, ParseError> {
        match self.peek() {
            Some('<') => Ok(Term::Iri(self.parse_iri_ref()?)),
            Some('_') => Ok(Term::Blank(self.parse_blank_node_label()?)),
            Some('[') => self.parse_anonymous_blank(),
            Some('"') | Some('\'') => Ok(Term::Literal(self.parse_string_literal()?)),
            Some(c) if c.is_ascii_digit() || c == '+' || c == '-' => {
                Ok(Term::Literal(self.parse_numeric_literal()?))
            }
            Some('t') | Some('f') if self.allow_directives && self.peek_boolean().is_some() => {
                let value = self.peek_boolean().expect("checked above");
                let len = if value { 4 } else { 5 };
                for _ in 0..len {
                    self.bump();
                }
                Ok(Term::Literal(Literal::boolean(value)))
            }
            Some('(') => Err(self.error("RDF collections '(...)' are not supported")),
            Some(_) if self.allow_directives => Ok(Term::Iri(self.parse_prefixed_name()?)),
            _ => Err(self.error("expected object term")),
        }
    }

    fn peek_boolean(&self) -> Option<bool> {
        let rest: String = self.chars[self.pos..self.chars.len().min(self.pos + 6)]
            .iter()
            .collect();
        if rest.starts_with("true") && !Self::is_name_char(rest.chars().nth(4)) {
            Some(true)
        } else if rest.starts_with("false") && !Self::is_name_char(rest.chars().nth(5)) {
            Some(false)
        } else {
            None
        }
    }

    fn is_name_char(c: Option<char>) -> bool {
        matches!(c, Some(c) if c.is_alphanumeric() || c == '_' || c == ':')
    }

    fn parse_anonymous_blank(&mut self) -> Result<Term, ParseError> {
        self.expect('[')?;
        self.blank_counter += 1;
        let node = Term::Blank(BlankNode::new(format!("anon{}", self.blank_counter)));
        self.skip_ws();
        if self.peek() == Some(']') {
            self.bump();
            return Ok(node);
        }
        self.parse_predicate_object_list(&node)?;
        self.skip_ws();
        self.expect(']')?;
        Ok(node)
    }

    fn parse_iri_ref(&mut self) -> Result<Iri, ParseError> {
        self.expect('<')?;
        let mut iri = String::new();
        loop {
            match self.bump() {
                Some('>') => break,
                Some('\\') => match self.bump() {
                    Some('u') => iri.push(self.parse_unicode_escape(4)?),
                    Some('U') => iri.push(self.parse_unicode_escape(8)?),
                    Some(c) => iri.push(c),
                    None => return Err(self.error("unterminated IRI escape")),
                },
                Some('\n') => return Err(self.error("newline inside IRI")),
                Some(c) => iri.push(c),
                None => return Err(self.error("unterminated IRI")),
            }
        }
        if let Some(base) = &self.base {
            if !iri.contains(':') {
                return Ok(Iri::new(format!("{base}{iri}")));
            }
        }
        Ok(Iri::new(iri))
    }

    fn parse_unicode_escape(&mut self, len: usize) -> Result<char, ParseError> {
        let mut hex = String::with_capacity(len);
        for _ in 0..len {
            match self.bump() {
                Some(c) if c.is_ascii_hexdigit() => hex.push(c),
                _ => return Err(self.error("invalid unicode escape")),
            }
        }
        let code = u32::from_str_radix(&hex, 16)
            .map_err(|_| self.error("invalid unicode escape value"))?;
        char::from_u32(code).ok_or_else(|| self.error("invalid unicode code point"))
    }

    fn parse_blank_node_label(&mut self) -> Result<BlankNode, ParseError> {
        self.expect('_')?;
        self.expect(':')?;
        let label = self.read_while(|c| c.is_alphanumeric() || c == '_' || c == '-' || c == '.');
        if label.is_empty() {
            return Err(self.error("empty blank node label"));
        }
        Ok(BlankNode::new(label.trim_end_matches('.')))
    }

    fn parse_prefixed_name(&mut self) -> Result<Iri, ParseError> {
        let prefix = self.read_while(|c| c.is_alphanumeric() || c == '_' || c == '-');
        self.expect(':')?;
        let raw_local = self.read_while(|c| {
            c.is_alphanumeric() || c == '_' || c == '-' || c == '.' || c == '%' || c == '+'
        });
        // A trailing '.' terminates the statement, not the name: trim it and
        // rewind the cursor by exactly the number of characters trimmed so
        // the statement parser still sees the terminating dot(s).
        let local = raw_local.trim_end_matches('.');
        let trimmed_dots = raw_local.len() - local.len();
        self.pos -= trimmed_dots;
        self.column = self.column.saturating_sub(trimmed_dots);
        match self.prefixes.namespace(&prefix) {
            Some(ns) => Ok(Iri::new(format!("{ns}{local}"))),
            None => Err(self.error(format!("undefined prefix '{prefix}:'"))),
        }
    }

    fn parse_string_literal(&mut self) -> Result<Literal, ParseError> {
        let quote = self.bump().expect("caller checked quote");
        let long = self.peek() == Some(quote) && self.peek_at(1) == Some(quote);
        if long {
            self.bump();
            self.bump();
        }
        let mut value = String::new();
        loop {
            match self.bump() {
                Some(c) if c == quote => {
                    if long {
                        if self.peek() == Some(quote) && self.peek_at(1) == Some(quote) {
                            self.bump();
                            self.bump();
                            break;
                        }
                        value.push(c);
                    } else {
                        break;
                    }
                }
                Some('\\') => match self.bump() {
                    Some('n') => value.push('\n'),
                    Some('r') => value.push('\r'),
                    Some('t') => value.push('\t'),
                    Some('"') => value.push('"'),
                    Some('\'') => value.push('\''),
                    Some('\\') => value.push('\\'),
                    Some('u') => value.push(self.parse_unicode_escape(4)?),
                    Some('U') => value.push(self.parse_unicode_escape(8)?),
                    Some(c) => return Err(self.error(format!("invalid escape '\\{c}'"))),
                    None => return Err(self.error("unterminated string escape")),
                },
                Some('\n') if !long => return Err(self.error("newline in single-line string")),
                Some(c) => value.push(c),
                None => return Err(self.error("unterminated string literal")),
            }
        }
        // Optional language tag or datatype.
        match self.peek() {
            Some('@') => {
                self.bump();
                let lang = self.read_while(|c| c.is_ascii_alphanumeric() || c == '-');
                if lang.is_empty() {
                    return Err(self.error("empty language tag"));
                }
                Ok(Literal::lang_string(value, lang))
            }
            Some('^') => {
                self.bump();
                self.expect('^')?;
                let datatype = match self.peek() {
                    Some('<') => self.parse_iri_ref()?,
                    Some(_) if self.allow_directives => self.parse_prefixed_name()?,
                    _ => return Err(self.error("expected datatype IRI after '^^'")),
                };
                Ok(Literal::typed(value, datatype))
            }
            _ => Ok(Literal::string(value)),
        }
    }

    fn parse_numeric_literal(&mut self) -> Result<Literal, ParseError> {
        let mut text = String::new();
        if matches!(self.peek(), Some('+') | Some('-')) {
            text.push(self.bump().expect("sign"));
        }
        let mut is_decimal = false;
        let mut is_double = false;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() {
                text.push(c);
                self.bump();
            } else if c == '.' && self.peek_at(1).map(|d| d.is_ascii_digit()).unwrap_or(false) {
                is_decimal = true;
                text.push(c);
                self.bump();
            } else if (c == 'e' || c == 'E')
                && self
                    .peek_at(1)
                    .map(|d| d.is_ascii_digit() || d == '+' || d == '-')
                    .unwrap_or(false)
            {
                is_double = true;
                text.push(c);
                self.bump();
                if matches!(self.peek(), Some('+') | Some('-')) {
                    text.push(self.bump().expect("exp sign"));
                }
            } else {
                break;
            }
        }
        if text.is_empty() || text == "+" || text == "-" {
            return Err(self.error("invalid numeric literal"));
        }
        let datatype = if is_double {
            xsd::double()
        } else if is_decimal {
            xsd::decimal()
        } else {
            xsd::integer()
        };
        Ok(Literal::typed(text, datatype))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vocab::{qb, qb4o};

    #[test]
    fn parse_simple_ntriples() {
        let doc = parse_ntriples(
            "<http://s> <http://p> <http://o> .\n<http://s> <http://p2> \"hello\" .\n",
        )
        .expect("parse");
        assert_eq!(doc.triples.len(), 2);
        assert_eq!(doc.triples[0].predicate.as_str(), "http://p");
        assert_eq!(
            doc.triples[1].object,
            Term::Literal(Literal::string("hello"))
        );
    }

    #[test]
    fn parse_ntriples_typed_and_lang_literals() {
        let doc = parse_ntriples(
            "<http://s> <http://p> \"5\"^^<http://www.w3.org/2001/XMLSchema#integer> .\n\
             <http://s> <http://p> \"Africa\"@en .\n",
        )
        .expect("parse");
        assert_eq!(
            doc.triples[0].object.as_literal().unwrap().as_integer(),
            Some(5)
        );
        assert_eq!(
            doc.triples[1].object.as_literal().unwrap().language(),
            Some("en")
        );
    }

    #[test]
    fn parse_turtle_with_prefixes_and_lists() {
        let ttl = r#"
@prefix qb: <http://purl.org/linked-data/cube#> .
@prefix qb4o: <http://purl.org/qb4olap/cubes#> .
@prefix ex: <http://example.org/> .

ex:dsd a qb:DataStructureDefinition ;
    qb:component [ qb4o:level ex:citizen ; qb4o:cardinality qb4o:ManyToOne ] ,
                 [ qb:measure ex:obsValue ] .
"#;
        let doc = parse_turtle(ttl).expect("parse");
        let graph = doc.clone().into_graph();
        assert_eq!(doc.prefixes.namespace("qb"), Some(qb::NAMESPACE));
        // 1 type triple + 2 component triples + 2 triples in first bnode + 1 in second.
        assert_eq!(graph.len(), 6);
        let dsd = Term::iri("http://example.org/dsd");
        assert_eq!(graph.objects(&dsd, &qb::component()).len(), 2);
        // The anonymous component nodes carry qb4o:level / qb:measure.
        let levels = graph.triples_matching(None, Some(&qb4o::level()), None);
        assert_eq!(levels.len(), 1);
    }

    #[test]
    fn parse_turtle_a_and_comma_objects() {
        let ttl = r#"
@prefix ex: <http://example.org/> .
ex:hier a ex:Hierarchy ; ex:hasLevel ex:a, ex:b, ex:c .
"#;
        let graph = parse_turtle(ttl).expect("parse").into_graph();
        assert_eq!(graph.len(), 4);
        assert_eq!(
            graph
                .objects(&Term::iri("http://example.org/hier"), &Iri::new("http://example.org/hasLevel"))
                .len(),
            3
        );
    }

    #[test]
    fn parse_numbers_and_booleans() {
        let ttl = r#"
@prefix ex: <http://example.org/> .
ex:o ex:int 42 ; ex:neg -7 ; ex:dec 3.25 ; ex:dbl 1.0e3 ; ex:flag true ; ex:off false .
"#;
        let graph = parse_turtle(ttl).expect("parse").into_graph();
        let o = Term::iri("http://example.org/o");
        let get = |p: &str| {
            graph
                .object(&o, &Iri::new(format!("http://example.org/{p}")))
                .unwrap()
        };
        assert_eq!(get("int").as_literal().unwrap().as_integer(), Some(42));
        assert_eq!(get("neg").as_literal().unwrap().as_integer(), Some(-7));
        assert_eq!(get("dec").as_literal().unwrap().as_double(), Some(3.25));
        assert_eq!(get("dbl").as_literal().unwrap().as_double(), Some(1000.0));
        assert_eq!(get("flag").as_literal().unwrap().as_boolean(), Some(true));
        assert_eq!(get("off").as_literal().unwrap().as_boolean(), Some(false));
    }

    #[test]
    fn parse_comments_and_blank_lines() {
        let ttl = r#"
# a QB observation
@prefix ex: <http://example.org/> .

ex:obs1 ex:value 10 . # trailing comment
"#;
        let graph = parse_turtle(ttl).expect("parse").into_graph();
        assert_eq!(graph.len(), 1);
    }

    #[test]
    fn parse_labelled_blank_nodes() {
        let doc = parse_turtle(
            "@prefix ex: <http://example.org/> .\n_:b1 ex:p ex:o . ex:s ex:q _:b1 .",
        )
        .expect("parse");
        assert_eq!(doc.triples.len(), 2);
        assert_eq!(doc.triples[0].subject, Term::blank("b1"));
        assert_eq!(doc.triples[1].object, Term::blank("b1"));
    }

    #[test]
    fn undefined_prefix_is_an_error() {
        let err = parse_turtle("ex:s ex:p ex:o .").expect_err("must fail");
        assert!(err.message.contains("undefined prefix"));
    }

    #[test]
    fn unterminated_iri_is_an_error() {
        let err = parse_ntriples("<http://s <http://p> <http://o> .").expect_err("must fail");
        assert!(err.message.contains("IRI") || err.message.contains("expected"));
    }

    #[test]
    fn collections_are_rejected() {
        let err = parse_turtle("@prefix ex: <http://e/> . ex:s ex:p (1 2) .").expect_err("fail");
        assert!(err.message.contains("not supported"));
    }

    #[test]
    fn long_strings_and_escapes() {
        let ttl = "@prefix ex: <http://e/> . ex:s ex:p \"\"\"multi\nline\"\"\" ; ex:q \"tab\\tseparated\" .";
        let graph = parse_turtle(ttl).expect("parse").into_graph();
        let s = Term::iri("http://e/s");
        assert_eq!(
            graph
                .object(&s, &Iri::new("http://e/p"))
                .unwrap()
                .as_literal()
                .unwrap()
                .lexical(),
            "multi\nline"
        );
        assert_eq!(
            graph
                .object(&s, &Iri::new("http://e/q"))
                .unwrap()
                .as_literal()
                .unwrap()
                .lexical(),
            "tab\tseparated"
        );
    }

    #[test]
    fn base_resolution_for_relative_iris() {
        let ttl = "@base <http://example.org/> . <s> <http://p> <o> .";
        let graph = parse_turtle(ttl).expect("parse").into_graph();
        assert!(graph.contains(&Triple::new(
            Term::iri("http://example.org/s"),
            Iri::new("http://p"),
            Term::iri("http://example.org/o"),
        )));
    }

    #[test]
    fn sparql_style_prefix_directive() {
        let ttl = "PREFIX ex: <http://example.org/>\nex:s ex:p ex:o .";
        let graph = parse_turtle(ttl).expect("parse").into_graph();
        assert_eq!(graph.len(), 1);
    }

    #[test]
    fn paper_dsd_snippet_parses() {
        // The QB4OLAP DSD snippet from Section II of the paper (prefixes added).
        let ttl = r#"
@prefix rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#> .
@prefix qb: <http://purl.org/linked-data/cube#> .
@prefix qb4o: <http://purl.org/qb4olap/cubes#> .
@prefix sdmx-dimension: <http://purl.org/linked-data/sdmx/2009/dimension#> .
@prefix sdmx-measure: <http://purl.org/linked-data/sdmx/2009/measure#> .
@prefix property: <http://eurostat.linked-statistics.org/property#> .
@prefix schema: <http://www.fing.edu.uy/inco/cubes/schemas/migr_asyapp#> .

schema:migr_asyappctzmQB4O rdf:type qb:DataStructureDefinition ;
  qb:component [ qb4o:level sdmx-dimension:refPeriod ; qb4o:cardinality qb4o:ManyToOne ] ;
  qb:component [ qb4o:level property:citizen ; qb4o:cardinality qb4o:ManyToOne ] ;
  qb:component [ qb:measure sdmx-measure:obsValue ; qb4o:aggregateFunction qb4o:sum ] .
"#;
        let graph = parse_turtle(ttl).expect("parse").into_graph();
        let dsd = Term::iri(
            "http://www.fing.edu.uy/inco/cubes/schemas/migr_asyapp#migr_asyappctzmQB4O",
        );
        assert_eq!(graph.objects(&dsd, &qb::component()).len(), 3);
        assert_eq!(
            graph
                .triples_matching(None, Some(&qb4o::aggregate_function()), None)
                .len(),
            1
        );
    }
}
