//! RDF terms: IRIs, blank nodes, and literals.
//!
//! Terms are cheaply cloneable (the lexical payload is stored behind an
//! [`Arc<str>`]), hashable, and totally ordered so they can be used as keys
//! in the store indexes and in SPARQL solution orderings.

use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

use crate::vocab::xsd;

/// An IRI (named node).
///
/// IRIs are stored as their full lexical form; no normalisation beyond what
/// the parser applies is performed. Two IRIs are equal iff their lexical
/// forms are equal, per RDF 1.1 simple interpretation.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Iri(Arc<str>);

impl Iri {
    /// Creates an IRI from any string-like value.
    pub fn new(iri: impl AsRef<str>) -> Self {
        Iri(Arc::from(iri.as_ref()))
    }

    /// The full IRI string.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// The local name: the suffix after the last `#` or `/`.
    ///
    /// Useful for rendering human-readable labels when no `rdfs:label` is
    /// available (the situation the paper calls out for level members).
    pub fn local_name(&self) -> &str {
        let s = self.as_str();
        match s.rfind(['#', '/']) {
            Some(idx) if idx + 1 < s.len() => &s[idx + 1..],
            _ => s,
        }
    }

    /// The namespace part: everything up to and including the last `#` or `/`.
    pub fn namespace(&self) -> &str {
        let s = self.as_str();
        match s.rfind(['#', '/']) {
            Some(idx) => &s[..=idx],
            None => "",
        }
    }

    /// Returns a new IRI formed by appending `suffix` to this IRI.
    pub fn join(&self, suffix: &str) -> Iri {
        let mut s = String::with_capacity(self.0.len() + suffix.len());
        s.push_str(&self.0);
        s.push_str(suffix);
        Iri::new(s)
    }
}

impl fmt::Debug for Iri {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{}>", self.0)
    }
}

impl fmt::Display for Iri {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{}>", self.0)
    }
}

impl From<&str> for Iri {
    fn from(s: &str) -> Self {
        Iri::new(s)
    }
}

impl From<String> for Iri {
    fn from(s: String) -> Self {
        Iri::new(s)
    }
}

impl AsRef<str> for Iri {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

/// A blank node, identified by a local label.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlankNode(Arc<str>);

impl BlankNode {
    /// Creates a blank node with the given label (without the `_:` prefix).
    pub fn new(label: impl AsRef<str>) -> Self {
        BlankNode(Arc::from(label.as_ref()))
    }

    /// The blank node label (without the `_:` prefix).
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Debug for BlankNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "_:{}", self.0)
    }
}

impl fmt::Display for BlankNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "_:{}", self.0)
    }
}

/// An RDF literal: a lexical form plus a datatype IRI and an optional
/// language tag (language-tagged strings always have datatype
/// `rdf:langString`, plain literals default to `xsd:string`).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Literal {
    lexical: Arc<str>,
    datatype: Iri,
    language: Option<Arc<str>>,
}

impl Literal {
    /// A plain `xsd:string` literal.
    pub fn string(value: impl AsRef<str>) -> Self {
        Literal {
            lexical: Arc::from(value.as_ref()),
            datatype: xsd::string(),
            language: None,
        }
    }

    /// A language-tagged string literal.
    pub fn lang_string(value: impl AsRef<str>, lang: impl AsRef<str>) -> Self {
        Literal {
            lexical: Arc::from(value.as_ref()),
            datatype: Iri::new("http://www.w3.org/1999/02/22-rdf-syntax-ns#langString"),
            language: Some(Arc::from(lang.as_ref().to_ascii_lowercase().as_str())),
        }
    }

    /// A typed literal with an explicit datatype.
    pub fn typed(value: impl AsRef<str>, datatype: Iri) -> Self {
        Literal {
            lexical: Arc::from(value.as_ref()),
            datatype,
            language: None,
        }
    }

    /// An `xsd:integer` literal.
    pub fn integer(value: i64) -> Self {
        Literal::typed(value.to_string(), xsd::integer())
    }

    /// An `xsd:decimal` literal.
    pub fn decimal(value: f64) -> Self {
        Literal::typed(format_decimal(value), xsd::decimal())
    }

    /// An `xsd:double` literal.
    pub fn double(value: f64) -> Self {
        Literal::typed(value.to_string(), xsd::double())
    }

    /// An `xsd:boolean` literal.
    pub fn boolean(value: bool) -> Self {
        Literal::typed(if value { "true" } else { "false" }, xsd::boolean())
    }

    /// An `xsd:date` literal from year, month, day.
    pub fn date(year: i32, month: u32, day: u32) -> Self {
        Literal::typed(format!("{year:04}-{month:02}-{day:02}"), xsd::date())
    }

    /// An `xsd:gYearMonth` literal (used by Eurostat reference periods).
    pub fn year_month(year: i32, month: u32) -> Self {
        Literal::typed(format!("{year:04}-{month:02}"), xsd::g_year_month())
    }

    /// An `xsd:gYear` literal.
    pub fn year(year: i32) -> Self {
        Literal::typed(format!("{year:04}"), xsd::g_year())
    }

    /// The lexical form.
    pub fn lexical(&self) -> &str {
        &self.lexical
    }

    /// The datatype IRI.
    pub fn datatype(&self) -> &Iri {
        &self.datatype
    }

    /// The language tag, if this is a language-tagged string.
    pub fn language(&self) -> Option<&str> {
        self.language.as_deref()
    }

    /// Whether the datatype is one of the XSD numeric types.
    pub fn is_numeric(&self) -> bool {
        crate::vocab::is_numeric_datatype(&self.datatype)
    }

    /// Tries to interpret the literal as an `i64`.
    pub fn as_integer(&self) -> Option<i64> {
        if self.is_numeric() {
            self.lexical.trim().parse::<i64>().ok()
        } else {
            None
        }
    }

    /// Tries to interpret the literal as an `f64`.
    pub fn as_double(&self) -> Option<f64> {
        if self.is_numeric() {
            self.lexical.trim().parse::<f64>().ok()
        } else {
            None
        }
    }

    /// Tries to interpret the literal as a boolean.
    pub fn as_boolean(&self) -> Option<bool> {
        if self.datatype == xsd::boolean() {
            match self.lexical.trim() {
                "true" | "1" => Some(true),
                "false" | "0" => Some(false),
                _ => None,
            }
        } else {
            None
        }
    }
}

/// Canonical decimal formatting without scientific notation.
fn format_decimal(value: f64) -> String {
    if value.fract() == 0.0 && value.abs() < 1e15 {
        format!("{:.1}", value)
    } else {
        format!("{}", value)
    }
}

impl PartialOrd for Literal {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Literal {
    fn cmp(&self, other: &Self) -> Ordering {
        // Order numerically where possible so that e.g. "9" < "10" for
        // xsd:integer literals; fall back to lexicographic ordering.
        //
        // When both sides parse as `i64`, compare exactly: going through
        // `f64` loses precision above 2^53, and the lexicographic fallback
        // then picks the numerically *wrong* winner for adjacent huge
        // negative integers ("-…06" sorts before "-…05" by bytes). MIN/MAX
        // over i64::MAX-adjacent values must agree with the columnar
        // engine's exact integer path.
        if let (Some(a), Some(b)) = (self.as_integer(), other.as_integer()) {
            let ord = a.cmp(&b);
            if ord != Ordering::Equal {
                return ord;
            }
        } else if let (Some(a), Some(b)) = (self.as_double(), other.as_double()) {
            if let Some(ord) = a.partial_cmp(&b) {
                if ord != Ordering::Equal {
                    return ord;
                }
            }
        }
        (self.lexical.as_ref(), &self.datatype, &self.language).cmp(&(
            other.lexical.as_ref(),
            &other.datatype,
            &other.language,
        ))
    }
}

impl fmt::Debug for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "\"{}\"", escape_literal(&self.lexical))?;
        if let Some(lang) = &self.language {
            write!(f, "@{lang}")
        } else if self.datatype != xsd::string() {
            write!(f, "^^{}", self.datatype)
        } else {
            Ok(())
        }
    }
}

/// Escapes a literal lexical form for N-Triples/Turtle output.
pub fn escape_literal(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            _ => out.push(c),
        }
    }
    out
}

/// Any RDF term.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum Term {
    /// A named node (IRI).
    Iri(Iri),
    /// A blank node.
    Blank(BlankNode),
    /// A literal.
    Literal(Literal),
}

impl Term {
    /// Convenience constructor for an IRI term.
    pub fn iri(iri: impl AsRef<str>) -> Self {
        Term::Iri(Iri::new(iri))
    }

    /// Convenience constructor for a blank-node term.
    pub fn blank(label: impl AsRef<str>) -> Self {
        Term::Blank(BlankNode::new(label))
    }

    /// Convenience constructor for a string literal term.
    pub fn string(value: impl AsRef<str>) -> Self {
        Term::Literal(Literal::string(value))
    }

    /// Convenience constructor for an integer literal term.
    pub fn integer(value: i64) -> Self {
        Term::Literal(Literal::integer(value))
    }

    /// Returns the IRI if this term is a named node.
    pub fn as_iri(&self) -> Option<&Iri> {
        match self {
            Term::Iri(iri) => Some(iri),
            _ => None,
        }
    }

    /// Returns the literal if this term is a literal.
    pub fn as_literal(&self) -> Option<&Literal> {
        match self {
            Term::Literal(lit) => Some(lit),
            _ => None,
        }
    }

    /// Returns the blank node if this term is a blank node.
    pub fn as_blank(&self) -> Option<&BlankNode> {
        match self {
            Term::Blank(b) => Some(b),
            _ => None,
        }
    }

    /// True if the term is an IRI.
    pub fn is_iri(&self) -> bool {
        matches!(self, Term::Iri(_))
    }

    /// True if the term is a literal.
    pub fn is_literal(&self) -> bool {
        matches!(self, Term::Literal(_))
    }

    /// True if the term is a blank node.
    pub fn is_blank(&self) -> bool {
        matches!(self, Term::Blank(_))
    }

    /// A human-readable label for the term: literal lexical form, IRI local
    /// name, or blank-node label.
    pub fn display_label(&self) -> String {
        match self {
            Term::Iri(iri) => iri.local_name().to_string(),
            Term::Blank(b) => format!("_:{}", b.as_str()),
            Term::Literal(lit) => lit.lexical().to_string(),
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Iri(iri) => write!(f, "{iri}"),
            Term::Blank(b) => write!(f, "{b}"),
            Term::Literal(lit) => write!(f, "{lit}"),
        }
    }
}

impl From<Iri> for Term {
    fn from(iri: Iri) -> Self {
        Term::Iri(iri)
    }
}

impl From<BlankNode> for Term {
    fn from(b: BlankNode) -> Self {
        Term::Blank(b)
    }
}

impl From<Literal> for Term {
    fn from(lit: Literal) -> Self {
        Term::Literal(lit)
    }
}

/// An RDF triple (subject, predicate, object).
///
/// The subject may be an IRI or blank node, the predicate is always an IRI,
/// and the object may be any term. For simplicity the subject is stored as a
/// [`Term`]; constructors reject literal subjects.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Triple {
    /// The subject (IRI or blank node).
    pub subject: Term,
    /// The predicate IRI.
    pub predicate: Iri,
    /// The object term.
    pub object: Term,
}

impl Triple {
    /// Creates a triple.
    ///
    /// # Panics
    /// Panics if `subject` is a literal (invalid in RDF 1.1).
    pub fn new(subject: impl Into<Term>, predicate: impl Into<Iri>, object: impl Into<Term>) -> Self {
        let subject = subject.into();
        assert!(
            !subject.is_literal(),
            "RDF triple subject must not be a literal: {subject}"
        );
        Triple {
            subject,
            predicate: predicate.into(),
            object: object.into(),
        }
    }
}

impl fmt::Display for Triple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {} .", self.subject, self.predicate, self.object)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iri_local_name_and_namespace() {
        let iri = Iri::new("http://example.org/ns#Country");
        assert_eq!(iri.local_name(), "Country");
        assert_eq!(iri.namespace(), "http://example.org/ns#");

        let slash = Iri::new("http://example.org/data/obs1");
        assert_eq!(slash.local_name(), "obs1");
        assert_eq!(slash.namespace(), "http://example.org/data/");

        let bare = Iri::new("urn:thing");
        assert_eq!(bare.local_name(), "urn:thing");
    }

    #[test]
    fn iri_join() {
        let ns = Iri::new("http://example.org/ns#");
        assert_eq!(ns.join("x").as_str(), "http://example.org/ns#x");
    }

    #[test]
    fn literal_accessors() {
        let int = Literal::integer(42);
        assert_eq!(int.as_integer(), Some(42));
        assert_eq!(int.as_double(), Some(42.0));
        assert_eq!(int.datatype(), &xsd::integer());

        let s = Literal::string("hello");
        assert_eq!(s.as_integer(), None);
        assert_eq!(s.lexical(), "hello");

        let b = Literal::boolean(true);
        assert_eq!(b.as_boolean(), Some(true));

        let lang = Literal::lang_string("Afrique", "FR");
        assert_eq!(lang.language(), Some("fr"));
    }

    #[test]
    fn literal_numeric_ordering() {
        let a = Literal::integer(9);
        let b = Literal::integer(10);
        assert!(a < b, "numeric literals must order numerically");
    }

    #[test]
    fn huge_adjacent_integers_order_exactly() {
        // Above 2^53 the f64 round-trip collapses adjacent integers; the
        // byte-wise fallback then sorts "-…06" before "-…05", the wrong
        // numeric order. The comparison must stay exact over all of i64.
        let lo = Literal::integer(i64::MIN + 2);
        let hi = Literal::integer(i64::MIN + 3);
        assert!(lo < hi);
        let lo = Literal::integer(i64::MAX - 1);
        let hi = Literal::integer(i64::MAX);
        assert!(lo < hi);
        // Signed zeros still fall back to the lexical tie-break.
        assert!(Literal::decimal(-0.0) < Literal::decimal(0.0));
    }

    #[test]
    fn literal_display_forms() {
        assert_eq!(Literal::string("x").to_string(), "\"x\"");
        assert_eq!(
            Literal::integer(5).to_string(),
            "\"5\"^^<http://www.w3.org/2001/XMLSchema#integer>"
        );
        assert_eq!(Literal::lang_string("x", "en").to_string(), "\"x\"@en");
    }

    #[test]
    fn literal_escaping() {
        let l = Literal::string("a\"b\\c\nd");
        assert_eq!(l.to_string(), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn term_display_label() {
        assert_eq!(Term::iri("http://x.org/ns#Africa").display_label(), "Africa");
        assert_eq!(Term::string("Africa").display_label(), "Africa");
        assert_eq!(Term::blank("b0").display_label(), "_:b0");
    }

    #[test]
    #[should_panic(expected = "subject must not be a literal")]
    fn triple_rejects_literal_subject() {
        let _ = Triple::new(Term::string("bad"), Iri::new("http://p"), Term::integer(1));
    }

    #[test]
    fn triple_display() {
        let t = Triple::new(
            Term::iri("http://s"),
            Iri::new("http://p"),
            Term::iri("http://o"),
        );
        assert_eq!(t.to_string(), "<http://s> <http://p> <http://o> .");
    }

    #[test]
    fn date_literals() {
        assert_eq!(Literal::year_month(2014, 3).lexical(), "2014-03");
        assert_eq!(Literal::year(2013).lexical(), "2013");
        assert_eq!(Literal::date(2014, 1, 31).lexical(), "2014-01-31");
    }

    #[test]
    fn decimal_formatting() {
        assert_eq!(Literal::decimal(5.0).lexical(), "5.0");
        assert_eq!(Literal::decimal(5.25).lexical(), "5.25");
    }
}
