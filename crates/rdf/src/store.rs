//! A thread-safe RDF store holding a default graph plus named graphs.
//!
//! This plays the role Virtuoso plays in the original QB2OLAP deployment:
//! the QB source data, the generated QB4OLAP schema triples, and the
//! generated level-instance triples are all loaded into one store, and the
//! SPARQL engine evaluates queries against it. The store is cheap to clone
//! (`Arc` internally) so the Enrichment, Exploration and Querying modules
//! can share a single endpoint, as in Figure 1 of the paper.

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::error::StoreError;
use crate::graph::Graph;
use crate::parser;
use crate::term::{Iri, Term, Triple};

/// One recorded store mutation: the triples actually inserted into /
/// removed from one graph (`graph: None` = the default graph) by a single
/// mutating call. Deltas carry the [`Store::epoch`] value they produced, so
/// downstream consumers (the columnar cube catalog) can replay exactly the
/// changes they have not seen yet instead of re-reading the world.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreDelta {
    /// The store epoch after this mutation was applied.
    pub epoch: u64,
    /// The named graph that changed (`None` = the default graph).
    pub graph: Option<Iri>,
    /// Triples that were newly inserted (duplicates of existing triples are
    /// not recorded).
    pub inserted: Vec<Triple>,
    /// Triples that were actually removed.
    pub removed: Vec<Triple>,
}

impl StoreDelta {
    /// True if the delta records no changes.
    pub fn is_empty(&self) -> bool {
        self.inserted.is_empty() && self.removed.is_empty()
    }
}

/// Default maximum number of deltas retained by the change log before the
/// oldest entries are dropped (dropping advances the log's coverage start,
/// forcing consumers that fell too far behind to rebuild).
pub const DEFAULT_CHANGE_LOG_CAPACITY: usize = 4096;

#[derive(Debug)]
struct ChangeLog {
    /// Epoch from which the log has complete coverage: a consumer that last
    /// saw epoch `e >= covered_from` can replay `deltas` to catch up.
    covered_from: u64,
    deltas: VecDeque<StoreDelta>,
    capacity: usize,
}

impl ChangeLog {
    fn new(covered_from: u64, capacity: usize) -> Self {
        ChangeLog {
            covered_from,
            deltas: VecDeque::new(),
            capacity,
        }
    }

    fn record(&mut self, delta: StoreDelta) {
        self.deltas.push_back(delta);
        self.trim();
    }

    /// Drops entries beyond the capacity, advancing coverage past them.
    fn trim(&mut self) {
        while self.deltas.len() > self.capacity {
            let dropped = self.deltas.pop_front().expect("len > capacity >= 0");
            self.covered_from = dropped.epoch;
        }
    }

    /// Drops all entries and restarts coverage at `epoch` (used by bulk
    /// wipes like [`Store::clear`], whose per-triple replay would be larger
    /// than a rebuild).
    fn reset(&mut self, epoch: u64) {
        self.deltas.clear();
        self.covered_from = epoch;
    }
}

#[derive(Debug, Default)]
struct StoreInner {
    default_graph: Graph,
    named_graphs: BTreeMap<Iri, Graph>,
    /// Monotonically increasing mutation counter: bumped by every mutating
    /// call that actually changed the store.
    epoch: u64,
    /// Change log, recording per-mutation deltas while enabled.
    log: Option<ChangeLog>,
}

impl StoreInner {
    /// Bumps the epoch and records a delta for an effective mutation.
    fn commit(&mut self, graph: Option<Iri>, inserted: Vec<Triple>, removed: Vec<Triple>) {
        self.epoch += 1;
        if let Some(log) = &mut self.log {
            log.record(StoreDelta {
                epoch: self.epoch,
                graph,
                inserted,
                removed,
            });
        }
    }

    /// [`Self::commit`] for a single inserted or removed triple, cloning
    /// it (and allocating the delta) only when the log is recording — the
    /// per-triple mutation paths stay allocation-free with the log off.
    fn commit_one(&mut self, graph: Option<&Iri>, triple: &Triple, removed: bool) {
        self.epoch += 1;
        if let Some(log) = &mut self.log {
            let (inserted, removed) = if removed {
                (Vec::new(), vec![triple.clone()])
            } else {
                (vec![triple.clone()], Vec::new())
            };
            log.record(StoreDelta {
                epoch: self.epoch,
                graph: graph.cloned(),
                inserted,
                removed,
            });
        }
    }

    /// Bumps the epoch without logging triples, invalidating the log's
    /// coverage (consumers must rebuild).
    fn commit_unlogged(&mut self) {
        self.epoch += 1;
        if let Some(log) = &mut self.log {
            log.reset(self.epoch);
        }
    }
}

/// A shared, thread-safe collection of RDF graphs.
#[derive(Debug, Clone, Default)]
pub struct Store {
    inner: Arc<RwLock<StoreInner>>,
}

impl Store {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// The store's mutation epoch: 0 for a fresh store, bumped by every
    /// mutating call that actually changed data. Consumers holding derived
    /// state (e.g. a materialized cube) compare epochs to detect staleness.
    pub fn epoch(&self) -> u64 {
        self.inner.read().epoch
    }

    /// Enables the change log with the default capacity
    /// ([`DEFAULT_CHANGE_LOG_CAPACITY`]). Mutations from this point on are
    /// recorded as [`StoreDelta`]s and can be replayed via
    /// [`Self::deltas_since`]. Enabling an already-enabled log is a no-op:
    /// a capacity chosen via [`Self::enable_change_log_with_capacity`] is
    /// kept.
    pub fn enable_change_log(&self) {
        let mut inner = self.inner.write();
        if inner.log.is_none() {
            let epoch = inner.epoch;
            inner.log = Some(ChangeLog::new(epoch, DEFAULT_CHANGE_LOG_CAPACITY));
        }
    }

    /// Enables the change log, retaining at most `capacity` deltas (older
    /// entries are dropped and the coverage start advances past them). On
    /// an already-enabled log this adjusts the capacity, trimming
    /// immediately when it shrinks.
    pub fn enable_change_log_with_capacity(&self, capacity: usize) {
        let mut inner = self.inner.write();
        match &mut inner.log {
            Some(log) => {
                log.capacity = capacity;
                log.trim();
            }
            None => {
                let epoch = inner.epoch;
                inner.log = Some(ChangeLog::new(epoch, capacity));
            }
        }
    }

    /// Disables and drops the change log.
    pub fn disable_change_log(&self) {
        self.inner.write().log = None;
    }

    /// A frozen, epoch-consistent copy of the store: the graphs and the
    /// epoch are captured atomically under one read lock, the change log is
    /// not carried over, and later mutations of the original are invisible
    /// to the copy (and vice versa). Background maintenance reads from such
    /// a snapshot so a rebuild racing live writers still materializes one
    /// well-defined store state instead of a torn mix of epochs.
    pub fn snapshot(&self) -> Store {
        let inner = self.inner.read();
        Store {
            inner: Arc::new(RwLock::new(StoreInner {
                default_graph: inner.default_graph.clone(),
                named_graphs: inner.named_graphs.clone(),
                epoch: inner.epoch,
                log: None,
            })),
        }
    }

    /// True if the change log is currently recording.
    pub fn change_log_enabled(&self) -> bool {
        self.inner.read().log.is_some()
    }

    /// The deltas recording every mutation after epoch `since`, oldest
    /// first. Returns `None` when the log cannot answer — it is disabled,
    /// was enabled only after `since`, or has dropped entries past `since`
    /// — in which case the consumer must rebuild its derived state from a
    /// fresh snapshot.
    pub fn deltas_since(&self, since: u64) -> Option<Vec<StoreDelta>> {
        let inner = self.inner.read();
        let log = inner.log.as_ref()?;
        if since < log.covered_from {
            return None;
        }
        Some(
            log.deltas
                .iter()
                .filter(|d| d.epoch > since)
                .cloned()
                .collect(),
        )
    }

    /// Inserts a triple into the default graph.
    pub fn insert(&self, triple: &Triple) -> bool {
        let mut inner = self.inner.write();
        let added = inner.default_graph.insert(triple);
        if added {
            inner.commit_one(None, triple, false);
        }
        added
    }

    /// Inserts a triple into a named graph (creating the graph if needed).
    pub fn insert_named(&self, graph: &Iri, triple: &Triple) -> bool {
        let mut inner = self.inner.write();
        let added = inner
            .named_graphs
            .entry(graph.clone())
            .or_default()
            .insert(triple);
        if added {
            inner.commit_one(Some(graph), triple, false);
        }
        added
    }

    /// Inserts all triples into the default graph.
    pub fn insert_all<I: IntoIterator<Item = Triple>>(&self, triples: I) -> usize {
        let mut inner = self.inner.write();
        let mut inserted = Vec::new();
        for t in triples {
            if inner.default_graph.insert(&t) {
                inserted.push(t);
            }
        }
        let added = inserted.len();
        if added > 0 {
            inner.commit(None, inserted, Vec::new());
        }
        added
    }

    /// Bulk-loads triples into the default graph, holding the write lock
    /// once and taking [`Graph::bulk_insert`]'s sort-and-build fast path
    /// when the store is still empty (the ROADMAP's bulk-load hot path).
    /// With the change log enabled the per-triple path is used instead, so
    /// the exact set of newly inserted triples can be recorded.
    pub fn bulk_insert<I: IntoIterator<Item = Triple>>(&self, triples: I) -> usize {
        let mut inner = self.inner.write();
        if inner.log.is_some() {
            let mut inserted = Vec::new();
            for t in triples {
                if inner.default_graph.insert(&t) {
                    inserted.push(t);
                }
            }
            let added = inserted.len();
            if added > 0 {
                inner.commit(None, inserted, Vec::new());
            }
            return added;
        }
        let added = inner.default_graph.bulk_insert(triples);
        if added > 0 {
            inner.commit_unlogged();
        }
        added
    }

    /// Inserts all triples into a named graph.
    pub fn insert_all_named<I: IntoIterator<Item = Triple>>(&self, graph: &Iri, triples: I) -> usize {
        let mut inner = self.inner.write();
        let g = inner.named_graphs.entry(graph.clone()).or_default();
        let mut inserted = Vec::new();
        for t in triples {
            if g.insert(&t) {
                inserted.push(t);
            }
        }
        let added = inserted.len();
        if added > 0 {
            inner.commit(Some(graph.clone()), inserted, Vec::new());
        }
        added
    }

    /// Removes a triple from the default graph.
    pub fn remove(&self, triple: &Triple) -> bool {
        let mut inner = self.inner.write();
        let removed = inner.default_graph.remove(triple);
        if removed {
            inner.commit_one(None, triple, true);
        }
        removed
    }

    /// Removes all given triples from the default graph as **one**
    /// mutation: the epoch bumps once and, with the change log enabled,
    /// the triples actually removed land in a single [`StoreDelta`].
    ///
    /// Batching matters to delta consumers: the columnar cube catalog can
    /// tombstone a removed observation only when *all* of its triples
    /// disappear within one delta — per-triple [`Store::remove`] calls
    /// produce one single-triple delta each, which the catalog must treat
    /// as partial removals and resolve with a full rebuild.
    ///
    /// Returns the number of triples actually removed.
    pub fn remove_all(&self, triples: &[Triple]) -> usize {
        let mut inner = self.inner.write();
        let mut removed = Vec::new();
        for triple in triples {
            if inner.default_graph.remove(triple) {
                removed.push(triple.clone());
            }
        }
        let count = removed.len();
        if count > 0 {
            inner.commit(None, Vec::new(), removed);
        }
        count
    }

    /// Removes every default-graph triple matching the pattern (`None` =
    /// wildcard) as **one** mutation — one epoch bump and, with the change
    /// log enabled, one [`StoreDelta`] — and returns the removed triples.
    ///
    /// This is the race-free form of the `triples_matching` + `remove_all`
    /// idiom: the match and the removal happen under a single write lock,
    /// so no concurrent mutation can slip between them. Like
    /// [`Store::remove_all`], the single-delta batching is what lets the
    /// columnar cube catalog absorb the removal in O(delta) — a whole
    /// observation (`subject` pattern) tombstones in one step, and a
    /// partial pattern (e.g. one measure property of one subject) arrives
    /// as one partial-removal delta instead of several.
    pub fn remove_matching(
        &self,
        subject: Option<&Term>,
        predicate: Option<&Iri>,
        object: Option<&Term>,
    ) -> Vec<Triple> {
        let mut inner = self.inner.write();
        let matched = inner
            .default_graph
            .triples_matching(subject, predicate, object);
        for triple in &matched {
            inner.default_graph.remove(triple);
        }
        if !matched.is_empty() {
            inner.commit(None, Vec::new(), matched.clone());
        }
        matched
    }

    /// True if the default graph contains the triple.
    pub fn contains(&self, triple: &Triple) -> bool {
        self.inner.read().default_graph.contains(triple)
    }

    /// Number of triples in the default graph.
    pub fn len(&self) -> usize {
        self.inner.read().default_graph.len()
    }

    /// True if the default graph is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.read().default_graph.is_empty()
    }

    /// Total number of triples across the default and all named graphs.
    pub fn total_len(&self) -> usize {
        let inner = self.inner.read();
        inner.default_graph.len() + inner.named_graphs.values().map(Graph::len).sum::<usize>()
    }

    /// Names of all named graphs.
    pub fn graph_names(&self) -> Vec<Iri> {
        self.inner.read().named_graphs.keys().cloned().collect()
    }

    /// Runs `f` with a read-only view of the default graph.
    pub fn with_default_graph<R>(&self, f: impl FnOnce(&Graph) -> R) -> R {
        f(&self.inner.read().default_graph)
    }

    /// Runs `f` with a read-only view of a named graph.
    pub fn with_named_graph<R>(
        &self,
        name: &Iri,
        f: impl FnOnce(&Graph) -> R,
    ) -> Result<R, StoreError> {
        let inner = self.inner.read();
        let graph = inner
            .named_graphs
            .get(name)
            .ok_or_else(|| StoreError::GraphNotFound(name.as_str().to_string()))?;
        Ok(f(graph))
    }

    /// Returns a snapshot clone of the default graph.
    pub fn default_graph_snapshot(&self) -> Graph {
        self.inner.read().default_graph.clone()
    }

    /// Returns a snapshot of the union of the default graph and all named
    /// graphs (the dataset's "union default graph", which is how Virtuoso is
    /// typically configured for QB data and what the paper's queries assume).
    pub fn union_graph_snapshot(&self) -> Graph {
        let inner = self.inner.read();
        let mut union = inner.default_graph.clone();
        for g in inner.named_graphs.values() {
            union.extend_from(g);
        }
        union
    }

    /// Pattern match against the default graph.
    pub fn triples_matching(
        &self,
        subject: Option<&Term>,
        predicate: Option<&Iri>,
        object: Option<&Term>,
    ) -> Vec<Triple> {
        self.inner
            .read()
            .default_graph
            .triples_matching(subject, predicate, object)
    }

    /// Convenience: the first object of `(subject, predicate, ?o)` in the
    /// default graph.
    pub fn object(&self, subject: &Term, predicate: &Iri) -> Option<Term> {
        self.inner.read().default_graph.object(subject, predicate)
    }

    /// Convenience: all objects of `(subject, predicate, ?o)` in the default graph.
    pub fn objects(&self, subject: &Term, predicate: &Iri) -> Vec<Term> {
        self.inner.read().default_graph.objects(subject, predicate)
    }

    /// Convenience: all subjects with `rdf:type class` in the default graph.
    pub fn subjects_of_type(&self, class: &Iri) -> Vec<Term> {
        self.inner.read().default_graph.subjects_of_type(class)
    }

    /// Loads a Turtle document into the default graph. Returns the number of
    /// triples added.
    pub fn load_turtle(&self, turtle: &str) -> Result<usize, StoreError> {
        let doc = parser::parse_turtle(turtle)?;
        Ok(self.bulk_insert(doc.triples))
    }

    /// Loads an N-Triples document into the default graph.
    pub fn load_ntriples(&self, ntriples: &str) -> Result<usize, StoreError> {
        let doc = parser::parse_ntriples(ntriples)?;
        Ok(self.bulk_insert(doc.triples))
    }

    /// Loads a Turtle document into a named graph.
    pub fn load_turtle_named(&self, graph: &Iri, turtle: &str) -> Result<usize, StoreError> {
        let doc = parser::parse_turtle(turtle)?;
        Ok(self.insert_all_named(graph, doc.triples))
    }

    /// Serialises the default graph to N-Triples.
    pub fn to_ntriples(&self) -> String {
        crate::serializer::to_ntriples(&self.inner.read().default_graph)
    }

    /// Removes all triples from the default graph and all named graphs.
    ///
    /// The change log (if enabled) is reset rather than populated with one
    /// giant removal delta: replaying a wipe is never cheaper than
    /// rebuilding, so consumers see a coverage gap and rebuild.
    pub fn clear(&self) {
        let mut inner = self.inner.write();
        inner.default_graph = Graph::new();
        inner.named_graphs.clear();
        inner.commit_unlogged();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Literal;
    use crate::vocab::rdfs;

    #[test]
    fn default_graph_operations() {
        let store = Store::new();
        let t = Triple::new(
            Term::iri("http://s"),
            Iri::new("http://p"),
            Literal::integer(1),
        );
        assert!(store.insert(&t));
        assert!(store.contains(&t));
        assert_eq!(store.len(), 1);
        assert!(store.remove(&t));
        assert!(store.is_empty());
    }

    #[test]
    fn named_graph_isolation_and_union() {
        let store = Store::new();
        let schema_graph = Iri::new("http://example.org/graph/schema");
        let t1 = Triple::new(Term::iri("http://a"), Iri::new("http://p"), Term::iri("http://b"));
        let t2 = Triple::new(Term::iri("http://c"), Iri::new("http://p"), Term::iri("http://d"));
        store.insert(&t1);
        store.insert_named(&schema_graph, &t2);

        assert_eq!(store.len(), 1);
        assert_eq!(store.total_len(), 2);
        assert_eq!(store.graph_names(), vec![schema_graph.clone()]);
        assert!(!store.contains(&t2), "named-graph triples stay out of the default graph");

        let union = store.union_graph_snapshot();
        assert!(union.contains(&t1) && union.contains(&t2));

        let count = store
            .with_named_graph(&schema_graph, |g| g.len())
            .expect("graph exists");
        assert_eq!(count, 1);
        assert!(store
            .with_named_graph(&Iri::new("http://missing"), |g| g.len())
            .is_err());
    }

    #[test]
    fn bulk_insert_fast_path_and_incremental_fallback() {
        let store = Store::new();
        let batch: Vec<Triple> = (0..100)
            .map(|i| {
                Triple::new(
                    Term::iri(format!("http://s{i}")),
                    Iri::new("http://p"),
                    Literal::integer(i),
                )
            })
            .collect();
        // Fresh store: fast path.
        assert_eq!(store.bulk_insert(batch.clone()), 100);
        assert_eq!(store.len(), 100);
        // Non-empty store: duplicates are detected against existing data.
        assert_eq!(store.bulk_insert(batch[..10].to_vec()), 0);
        assert_eq!(store.len(), 100);
        assert!(store.contains(&batch[0]));
    }

    #[test]
    fn load_and_serialize() {
        let store = Store::new();
        let added = store
            .load_turtle("@prefix ex: <http://e/> . ex:s ex:p ex:o , ex:o2 .")
            .expect("load");
        assert_eq!(added, 2);
        let nt = store.to_ntriples();
        assert_eq!(nt.lines().count(), 2);

        let store2 = Store::new();
        store2.load_ntriples(&nt).expect("reload");
        assert_eq!(store2.len(), 2);
    }

    #[test]
    fn parse_errors_are_reported() {
        let store = Store::new();
        let err = store.load_turtle("ex:s ex:p ex:o .").expect_err("undefined prefix");
        assert!(matches!(err, StoreError::Parse(_)));
    }

    #[test]
    fn clear_removes_everything() {
        let store = Store::new();
        store.insert(&Triple::new(
            Term::iri("http://s"),
            rdfs::label(),
            Literal::string("x"),
        ));
        store.insert_named(
            &Iri::new("http://g"),
            &Triple::new(Term::iri("http://s"), rdfs::label(), Literal::string("y")),
        );
        store.clear();
        assert_eq!(store.total_len(), 0);
        assert!(store.graph_names().is_empty());
    }

    #[test]
    fn epoch_tracks_effective_mutations_only() {
        let store = Store::new();
        assert_eq!(store.epoch(), 0);
        let t = Triple::new(Term::iri("http://s"), Iri::new("http://p"), Literal::integer(1));
        assert!(store.insert(&t));
        assert_eq!(store.epoch(), 1);
        // A duplicate insert and a no-op removal leave the epoch alone.
        assert!(!store.insert(&t));
        assert!(!store.remove(&Triple::new(
            Term::iri("http://other"),
            Iri::new("http://p"),
            Literal::integer(2),
        )));
        assert_eq!(store.epoch(), 1);
        assert!(store.remove(&t));
        assert_eq!(store.epoch(), 2);
        // Bulk loads count as one epoch step.
        store.bulk_insert((0..5).map(|i| {
            Triple::new(Term::iri(format!("http://s{i}")), Iri::new("http://p"), Literal::integer(i))
        }));
        assert_eq!(store.epoch(), 3);
        store.clear();
        assert_eq!(store.epoch(), 4);
    }

    #[test]
    fn change_log_replays_mutations() {
        let store = Store::new();
        let t0 = Triple::new(Term::iri("http://pre"), Iri::new("http://p"), Literal::integer(0));
        store.insert(&t0);
        assert_eq!(store.deltas_since(0), None, "log not enabled yet");

        store.enable_change_log();
        assert!(store.change_log_enabled());
        let enabled_at = store.epoch();
        // Coverage starts at the enabling epoch: asking for earlier history
        // is answered with None (rebuild).
        assert_eq!(store.deltas_since(enabled_at.saturating_sub(1)), None);
        assert_eq!(store.deltas_since(enabled_at), Some(Vec::new()));

        let t1 = Triple::new(Term::iri("http://a"), Iri::new("http://p"), Literal::integer(1));
        let t2 = Triple::new(Term::iri("http://b"), Iri::new("http://p"), Literal::integer(2));
        store.bulk_insert(vec![t1.clone(), t2.clone(), t1.clone()]);
        store.remove(&t2);
        let g = Iri::new("http://g");
        store.insert_named(&g, &t0);

        let deltas = store.deltas_since(enabled_at).expect("covered");
        assert_eq!(deltas.len(), 3);
        assert_eq!(deltas[0].inserted, vec![t1.clone(), t2.clone()]);
        assert!(deltas[0].removed.is_empty() && deltas[0].graph.is_none());
        assert_eq!(deltas[1].removed, vec![t2.clone()]);
        assert_eq!(deltas[2].graph, Some(g));
        assert!(deltas.windows(2).all(|w| w[0].epoch < w[1].epoch));
        assert!(!deltas[0].is_empty());

        // Catching up from a later epoch returns only the tail.
        let tail = store.deltas_since(deltas[1].epoch).expect("covered");
        assert_eq!(tail.len(), 1);

        // clear() resets coverage: everything before it is unanswerable.
        store.clear();
        assert_eq!(store.deltas_since(enabled_at), None);
        assert_eq!(store.deltas_since(store.epoch()), Some(Vec::new()));

        store.disable_change_log();
        assert!(!store.change_log_enabled());
        assert_eq!(store.deltas_since(store.epoch()), None);
    }

    #[test]
    fn remove_all_records_one_delta_and_one_epoch_step() {
        let store = Store::new();
        let triples: Vec<Triple> = (0..4)
            .map(|i| {
                Triple::new(Term::iri("http://s"), Iri::new("http://p"), Literal::integer(i))
            })
            .collect();
        store.bulk_insert(triples.clone());
        store.enable_change_log();
        let epoch = store.epoch();

        // Three present triples plus one that never existed: only the
        // effective removals are counted and recorded.
        let mut batch = triples[..3].to_vec();
        batch.push(Triple::new(
            Term::iri("http://s"),
            Iri::new("http://p"),
            Literal::integer(99),
        ));
        assert_eq!(store.remove_all(&batch), 3);
        assert_eq!(store.epoch(), epoch + 1, "one batch = one epoch step");
        let deltas = store.deltas_since(epoch).expect("covered");
        assert_eq!(deltas.len(), 1, "one batch = one delta");
        assert_eq!(deltas[0].removed, triples[..3].to_vec());
        assert!(deltas[0].inserted.is_empty());
        assert_eq!(store.len(), 1);

        // A batch removing nothing is a no-op: no epoch bump, no delta.
        assert_eq!(store.remove_all(&batch[..3]), 0);
        assert_eq!(store.epoch(), epoch + 1);
    }

    #[test]
    fn remove_matching_batches_one_delta_per_pattern() {
        let store = Store::new();
        let subject = Term::iri("http://s");
        let p1 = Iri::new("http://p1");
        let p2 = Iri::new("http://p2");
        store.insert(&Triple::new(subject.clone(), p1.clone(), Literal::integer(1)));
        store.insert(&Triple::new(subject.clone(), p1.clone(), Literal::integer(2)));
        store.insert(&Triple::new(subject.clone(), p2.clone(), Literal::integer(3)));
        store.insert(&Triple::new(Term::iri("http://other"), p1.clone(), Literal::integer(4)));
        store.enable_change_log();
        let epoch = store.epoch();

        // One predicate of one subject: both values go in one delta.
        let removed = store.remove_matching(Some(&subject), Some(&p1), None);
        assert_eq!(removed.len(), 2);
        assert_eq!(store.epoch(), epoch + 1, "one pattern = one epoch step");
        let deltas = store.deltas_since(epoch).expect("covered");
        assert_eq!(deltas.len(), 1);
        assert_eq!(deltas[0].removed, removed);
        assert_eq!(store.len(), 2);

        // Whole subject: the rest of its triples in one more delta.
        assert_eq!(store.remove_matching(Some(&subject), None, None).len(), 1);
        // A pattern matching nothing is a no-op: no epoch bump, no delta.
        assert!(store.remove_matching(Some(&subject), None, None).is_empty());
        assert_eq!(store.epoch(), epoch + 2);
        assert_eq!(store.len(), 1, "unrelated subjects untouched");
    }

    #[test]
    fn enable_change_log_keeps_a_custom_capacity() {
        let store = Store::new();
        store.enable_change_log_with_capacity(2);
        // A consumer blindly enabling tracking must not clobber the
        // configured capacity...
        store.enable_change_log();
        let start = store.epoch();
        for i in 0..3 {
            store.insert(&Triple::new(
                Term::iri(format!("http://s{i}")),
                Iri::new("http://p"),
                Literal::integer(i),
            ));
        }
        assert_eq!(store.deltas_since(start), None, "capacity 2 was kept");
        // ... while an explicit re-configuration applies (and trims).
        store.enable_change_log_with_capacity(1);
        assert_eq!(store.deltas_since(start + 2).expect("covered").len(), 1);
    }

    #[test]
    fn change_log_capacity_drops_oldest_coverage() {
        let store = Store::new();
        store.enable_change_log_with_capacity(2);
        let start = store.epoch();
        for i in 0..4 {
            store.insert(&Triple::new(
                Term::iri(format!("http://s{i}")),
                Iri::new("http://p"),
                Literal::integer(i),
            ));
        }
        // Only the last two mutations are retained.
        assert_eq!(store.deltas_since(start), None, "coverage start advanced");
        let deltas = store.deltas_since(start + 2).expect("covered");
        assert_eq!(deltas.len(), 2);
    }

    #[test]
    fn store_is_cloneable_and_shared() {
        let store = Store::new();
        let clone = store.clone();
        clone.insert(&Triple::new(
            Term::iri("http://s"),
            Iri::new("http://p"),
            Term::iri("http://o"),
        ));
        assert_eq!(store.len(), 1, "clones share the same underlying data");
    }
}
