//! A thread-safe RDF store holding a default graph plus named graphs.
//!
//! This plays the role Virtuoso plays in the original QB2OLAP deployment:
//! the QB source data, the generated QB4OLAP schema triples, and the
//! generated level-instance triples are all loaded into one store, and the
//! SPARQL engine evaluates queries against it. The store is cheap to clone
//! (`Arc` internally) so the Enrichment, Exploration and Querying modules
//! can share a single endpoint, as in Figure 1 of the paper.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::error::StoreError;
use crate::graph::Graph;
use crate::parser;
use crate::term::{Iri, Term, Triple};

#[derive(Debug, Default)]
struct StoreInner {
    default_graph: Graph,
    named_graphs: BTreeMap<Iri, Graph>,
}

/// A shared, thread-safe collection of RDF graphs.
#[derive(Debug, Clone, Default)]
pub struct Store {
    inner: Arc<RwLock<StoreInner>>,
}

impl Store {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a triple into the default graph.
    pub fn insert(&self, triple: &Triple) -> bool {
        self.inner.write().default_graph.insert(triple)
    }

    /// Inserts a triple into a named graph (creating the graph if needed).
    pub fn insert_named(&self, graph: &Iri, triple: &Triple) -> bool {
        self.inner
            .write()
            .named_graphs
            .entry(graph.clone())
            .or_default()
            .insert(triple)
    }

    /// Inserts all triples into the default graph.
    pub fn insert_all<I: IntoIterator<Item = Triple>>(&self, triples: I) -> usize {
        let mut inner = self.inner.write();
        let mut added = 0;
        for t in triples {
            if inner.default_graph.insert(&t) {
                added += 1;
            }
        }
        added
    }

    /// Bulk-loads triples into the default graph, holding the write lock
    /// once and taking [`Graph::bulk_insert`]'s sort-and-build fast path
    /// when the store is still empty (the ROADMAP's bulk-load hot path).
    pub fn bulk_insert<I: IntoIterator<Item = Triple>>(&self, triples: I) -> usize {
        self.inner.write().default_graph.bulk_insert(triples)
    }

    /// Inserts all triples into a named graph.
    pub fn insert_all_named<I: IntoIterator<Item = Triple>>(&self, graph: &Iri, triples: I) -> usize {
        let mut inner = self.inner.write();
        let g = inner.named_graphs.entry(graph.clone()).or_default();
        let mut added = 0;
        for t in triples {
            if g.insert(&t) {
                added += 1;
            }
        }
        added
    }

    /// Removes a triple from the default graph.
    pub fn remove(&self, triple: &Triple) -> bool {
        self.inner.write().default_graph.remove(triple)
    }

    /// True if the default graph contains the triple.
    pub fn contains(&self, triple: &Triple) -> bool {
        self.inner.read().default_graph.contains(triple)
    }

    /// Number of triples in the default graph.
    pub fn len(&self) -> usize {
        self.inner.read().default_graph.len()
    }

    /// True if the default graph is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.read().default_graph.is_empty()
    }

    /// Total number of triples across the default and all named graphs.
    pub fn total_len(&self) -> usize {
        let inner = self.inner.read();
        inner.default_graph.len() + inner.named_graphs.values().map(Graph::len).sum::<usize>()
    }

    /// Names of all named graphs.
    pub fn graph_names(&self) -> Vec<Iri> {
        self.inner.read().named_graphs.keys().cloned().collect()
    }

    /// Runs `f` with a read-only view of the default graph.
    pub fn with_default_graph<R>(&self, f: impl FnOnce(&Graph) -> R) -> R {
        f(&self.inner.read().default_graph)
    }

    /// Runs `f` with a read-only view of a named graph.
    pub fn with_named_graph<R>(
        &self,
        name: &Iri,
        f: impl FnOnce(&Graph) -> R,
    ) -> Result<R, StoreError> {
        let inner = self.inner.read();
        let graph = inner
            .named_graphs
            .get(name)
            .ok_or_else(|| StoreError::GraphNotFound(name.as_str().to_string()))?;
        Ok(f(graph))
    }

    /// Returns a snapshot clone of the default graph.
    pub fn default_graph_snapshot(&self) -> Graph {
        self.inner.read().default_graph.clone()
    }

    /// Returns a snapshot of the union of the default graph and all named
    /// graphs (the dataset's "union default graph", which is how Virtuoso is
    /// typically configured for QB data and what the paper's queries assume).
    pub fn union_graph_snapshot(&self) -> Graph {
        let inner = self.inner.read();
        let mut union = inner.default_graph.clone();
        for g in inner.named_graphs.values() {
            union.extend_from(g);
        }
        union
    }

    /// Pattern match against the default graph.
    pub fn triples_matching(
        &self,
        subject: Option<&Term>,
        predicate: Option<&Iri>,
        object: Option<&Term>,
    ) -> Vec<Triple> {
        self.inner
            .read()
            .default_graph
            .triples_matching(subject, predicate, object)
    }

    /// Convenience: the first object of `(subject, predicate, ?o)` in the
    /// default graph.
    pub fn object(&self, subject: &Term, predicate: &Iri) -> Option<Term> {
        self.inner.read().default_graph.object(subject, predicate)
    }

    /// Convenience: all objects of `(subject, predicate, ?o)` in the default graph.
    pub fn objects(&self, subject: &Term, predicate: &Iri) -> Vec<Term> {
        self.inner.read().default_graph.objects(subject, predicate)
    }

    /// Convenience: all subjects with `rdf:type class` in the default graph.
    pub fn subjects_of_type(&self, class: &Iri) -> Vec<Term> {
        self.inner.read().default_graph.subjects_of_type(class)
    }

    /// Loads a Turtle document into the default graph. Returns the number of
    /// triples added.
    pub fn load_turtle(&self, turtle: &str) -> Result<usize, StoreError> {
        let doc = parser::parse_turtle(turtle)?;
        Ok(self.bulk_insert(doc.triples))
    }

    /// Loads an N-Triples document into the default graph.
    pub fn load_ntriples(&self, ntriples: &str) -> Result<usize, StoreError> {
        let doc = parser::parse_ntriples(ntriples)?;
        Ok(self.bulk_insert(doc.triples))
    }

    /// Loads a Turtle document into a named graph.
    pub fn load_turtle_named(&self, graph: &Iri, turtle: &str) -> Result<usize, StoreError> {
        let doc = parser::parse_turtle(turtle)?;
        Ok(self.insert_all_named(graph, doc.triples))
    }

    /// Serialises the default graph to N-Triples.
    pub fn to_ntriples(&self) -> String {
        crate::serializer::to_ntriples(&self.inner.read().default_graph)
    }

    /// Removes all triples from the default graph and all named graphs.
    pub fn clear(&self) {
        let mut inner = self.inner.write();
        inner.default_graph = Graph::new();
        inner.named_graphs.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Literal;
    use crate::vocab::rdfs;

    #[test]
    fn default_graph_operations() {
        let store = Store::new();
        let t = Triple::new(
            Term::iri("http://s"),
            Iri::new("http://p"),
            Literal::integer(1),
        );
        assert!(store.insert(&t));
        assert!(store.contains(&t));
        assert_eq!(store.len(), 1);
        assert!(store.remove(&t));
        assert!(store.is_empty());
    }

    #[test]
    fn named_graph_isolation_and_union() {
        let store = Store::new();
        let schema_graph = Iri::new("http://example.org/graph/schema");
        let t1 = Triple::new(Term::iri("http://a"), Iri::new("http://p"), Term::iri("http://b"));
        let t2 = Triple::new(Term::iri("http://c"), Iri::new("http://p"), Term::iri("http://d"));
        store.insert(&t1);
        store.insert_named(&schema_graph, &t2);

        assert_eq!(store.len(), 1);
        assert_eq!(store.total_len(), 2);
        assert_eq!(store.graph_names(), vec![schema_graph.clone()]);
        assert!(!store.contains(&t2), "named-graph triples stay out of the default graph");

        let union = store.union_graph_snapshot();
        assert!(union.contains(&t1) && union.contains(&t2));

        let count = store
            .with_named_graph(&schema_graph, |g| g.len())
            .expect("graph exists");
        assert_eq!(count, 1);
        assert!(store
            .with_named_graph(&Iri::new("http://missing"), |g| g.len())
            .is_err());
    }

    #[test]
    fn bulk_insert_fast_path_and_incremental_fallback() {
        let store = Store::new();
        let batch: Vec<Triple> = (0..100)
            .map(|i| {
                Triple::new(
                    Term::iri(format!("http://s{i}")),
                    Iri::new("http://p"),
                    Literal::integer(i),
                )
            })
            .collect();
        // Fresh store: fast path.
        assert_eq!(store.bulk_insert(batch.clone()), 100);
        assert_eq!(store.len(), 100);
        // Non-empty store: duplicates are detected against existing data.
        assert_eq!(store.bulk_insert(batch[..10].to_vec()), 0);
        assert_eq!(store.len(), 100);
        assert!(store.contains(&batch[0]));
    }

    #[test]
    fn load_and_serialize() {
        let store = Store::new();
        let added = store
            .load_turtle("@prefix ex: <http://e/> . ex:s ex:p ex:o , ex:o2 .")
            .expect("load");
        assert_eq!(added, 2);
        let nt = store.to_ntriples();
        assert_eq!(nt.lines().count(), 2);

        let store2 = Store::new();
        store2.load_ntriples(&nt).expect("reload");
        assert_eq!(store2.len(), 2);
    }

    #[test]
    fn parse_errors_are_reported() {
        let store = Store::new();
        let err = store.load_turtle("ex:s ex:p ex:o .").expect_err("undefined prefix");
        assert!(matches!(err, StoreError::Parse(_)));
    }

    #[test]
    fn clear_removes_everything() {
        let store = Store::new();
        store.insert(&Triple::new(
            Term::iri("http://s"),
            rdfs::label(),
            Literal::string("x"),
        ));
        store.insert_named(
            &Iri::new("http://g"),
            &Triple::new(Term::iri("http://s"), rdfs::label(), Literal::string("y")),
        );
        store.clear();
        assert_eq!(store.total_len(), 0);
        assert!(store.graph_names().is_empty());
    }

    #[test]
    fn store_is_cloneable_and_shared() {
        let store = Store::new();
        let clone = store.clone();
        clone.insert(&Triple::new(
            Term::iri("http://s"),
            Iri::new("http://p"),
            Term::iri("http://o"),
        ));
        assert_eq!(store.len(), 1, "clones share the same underlying data");
    }
}
