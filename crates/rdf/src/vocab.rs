//! Well-known RDF vocabularies used throughout QB2OLAP.
//!
//! Each vocabulary is a module exposing the namespace IRI plus one function
//! per term. The QB and QB4OLAP vocabularies follow the W3C RDF Data Cube
//! recommendation and the QB4OLAP 1.3 specification respectively; the SDMX
//! COG namespaces are those used by the Eurostat linked-statistics datasets
//! the paper's demo is built on.

use crate::term::Iri;

macro_rules! vocabulary {
    ($(#[$doc:meta])* $name:ident, $ns:literal, { $($(#[$tdoc:meta])* $term:ident => $local:literal),* $(,)? }) => {
        $(#[$doc])*
        pub mod $name {
            use super::Iri;

            /// The namespace IRI of this vocabulary.
            pub const NAMESPACE: &str = $ns;

            /// Returns the namespace IRI.
            pub fn namespace() -> Iri {
                Iri::new(NAMESPACE)
            }

            /// Returns an IRI in this namespace with the given local name.
            pub fn term(local: &str) -> Iri {
                Iri::new(format!("{}{}", NAMESPACE, local))
            }

            $(
                $(#[$tdoc])*
                pub fn $term() -> Iri {
                    Iri::new(concat!($ns, $local))
                }
            )*
        }
    };
}

vocabulary!(
    /// The core RDF vocabulary.
    rdf, "http://www.w3.org/1999/02/22-rdf-syntax-ns#", {
        /// `rdf:type`.
        type_ => "type",
        /// `rdf:Property`.
        property => "Property",
        /// `rdf:langString`.
        lang_string => "langString",
        /// `rdf:first` (RDF collections).
        first => "first",
        /// `rdf:rest` (RDF collections).
        rest => "rest",
        /// `rdf:nil` (RDF collections).
        nil => "nil",
    }
);

vocabulary!(
    /// RDF Schema.
    rdfs, "http://www.w3.org/2000/01/rdf-schema#", {
        /// `rdfs:label`.
        label => "label",
        /// `rdfs:comment`.
        comment => "comment",
        /// `rdfs:subClassOf`.
        sub_class_of => "subClassOf",
        /// `rdfs:subPropertyOf`.
        sub_property_of => "subPropertyOf",
        /// `rdfs:range`.
        range => "range",
        /// `rdfs:domain`.
        domain => "domain",
        /// `rdfs:seeAlso`.
        see_also => "seeAlso",
        /// `rdfs:Class`.
        class => "Class",
    }
);

vocabulary!(
    /// XML Schema datatypes.
    xsd, "http://www.w3.org/2001/XMLSchema#", {
        /// `xsd:string`.
        string => "string",
        /// `xsd:integer`.
        integer => "integer",
        /// `xsd:int`.
        int => "int",
        /// `xsd:long`.
        long => "long",
        /// `xsd:decimal`.
        decimal => "decimal",
        /// `xsd:double`.
        double => "double",
        /// `xsd:float`.
        float => "float",
        /// `xsd:boolean`.
        boolean => "boolean",
        /// `xsd:date`.
        date => "date",
        /// `xsd:dateTime`.
        date_time => "dateTime",
        /// `xsd:gYear`.
        g_year => "gYear",
        /// `xsd:gYearMonth`.
        g_year_month => "gYearMonth",
        /// `xsd:anyURI`.
        any_uri => "anyURI",
        /// `xsd:nonNegativeInteger`.
        non_negative_integer => "nonNegativeInteger",
    }
);

/// Returns true if `datatype` is one of the XSD numeric datatypes.
pub fn is_numeric_datatype(datatype: &Iri) -> bool {
    matches!(
        datatype.as_str(),
        "http://www.w3.org/2001/XMLSchema#integer"
            | "http://www.w3.org/2001/XMLSchema#int"
            | "http://www.w3.org/2001/XMLSchema#long"
            | "http://www.w3.org/2001/XMLSchema#decimal"
            | "http://www.w3.org/2001/XMLSchema#double"
            | "http://www.w3.org/2001/XMLSchema#float"
            | "http://www.w3.org/2001/XMLSchema#nonNegativeInteger"
    )
}

vocabulary!(
    /// OWL (only the terms QB2OLAP needs for linked-data enrichment).
    owl, "http://www.w3.org/2002/07/owl#", {
        /// `owl:sameAs`.
        same_as => "sameAs",
        /// `owl:Class`.
        class => "Class",
    }
);

vocabulary!(
    /// SKOS, used by QB for code lists and by QB4OLAP for roll-up links.
    skos, "http://www.w3.org/2004/02/skos/core#", {
        /// `skos:broader` — the member-level roll-up relationship.
        broader => "broader",
        /// `skos:narrower`.
        narrower => "narrower",
        /// `skos:prefLabel`.
        pref_label => "prefLabel",
        /// `skos:notation`.
        notation => "notation",
        /// `skos:Concept`.
        concept => "Concept",
        /// `skos:ConceptScheme`.
        concept_scheme => "ConceptScheme",
        /// `skos:inScheme`.
        in_scheme => "inScheme",
        /// `skos:hasTopConcept`.
        has_top_concept => "hasTopConcept",
    }
);

vocabulary!(
    /// The W3C RDF Data Cube (QB) vocabulary.
    qb, "http://purl.org/linked-data/cube#", {
        /// `qb:DataSet`.
        data_set_class => "DataSet",
        /// `qb:dataSet`.
        data_set => "dataSet",
        /// `qb:DataStructureDefinition`.
        data_structure_definition => "DataStructureDefinition",
        /// `qb:structure`.
        structure => "structure",
        /// `qb:component`.
        component => "component",
        /// `qb:ComponentSpecification`.
        component_specification => "ComponentSpecification",
        /// `qb:dimension`.
        dimension => "dimension",
        /// `qb:measure`.
        measure => "measure",
        /// `qb:attribute`.
        attribute => "attribute",
        /// `qb:componentProperty`.
        component_property => "componentProperty",
        /// `qb:componentRequired`.
        component_required => "componentRequired",
        /// `qb:order`.
        order => "order",
        /// `qb:Observation`.
        observation => "Observation",
        /// `qb:DimensionProperty`.
        dimension_property => "DimensionProperty",
        /// `qb:MeasureProperty`.
        measure_property => "MeasureProperty",
        /// `qb:AttributeProperty`.
        attribute_property => "AttributeProperty",
        /// `qb:CodedProperty`.
        coded_property => "CodedProperty",
        /// `qb:codeList`.
        code_list => "codeList",
        /// `qb:concept`.
        concept => "concept",
        /// `qb:Slice`.
        slice => "Slice",
        /// `qb:observation` (slice membership).
        observation_link => "observation",
    }
);

vocabulary!(
    /// The QB4OLAP vocabulary (extension of QB with full MD semantics).
    qb4o, "http://purl.org/qb4olap/cubes#", {
        /// `qb4o:level` — links a DSD component to a dimension level.
        level => "level",
        /// `qb4o:LevelProperty` — the class of dimension levels.
        level_property => "LevelProperty",
        /// `qb4o:LevelAttribute` — the class of level attributes.
        level_attribute => "LevelAttribute",
        /// `qb4o:LevelMember` — the class of level members.
        level_member => "LevelMember",
        /// `qb4o:Hierarchy` — the class of dimension hierarchies.
        hierarchy => "Hierarchy",
        /// `qb4o:HierarchyStep` — a parent/child relationship between levels.
        hierarchy_step => "HierarchyStep",
        /// `qb4o:hasHierarchy` — dimension → hierarchy.
        has_hierarchy => "hasHierarchy",
        /// `qb4o:inDimension` — hierarchy → dimension.
        in_dimension => "inDimension",
        /// `qb4o:hasLevel` — hierarchy → level.
        has_level => "hasLevel",
        /// `qb4o:inHierarchy` — hierarchy step → hierarchy.
        in_hierarchy => "inHierarchy",
        /// `qb4o:childLevel` — hierarchy step → finer level.
        child_level => "childLevel",
        /// `qb4o:parentLevel` — hierarchy step → coarser level.
        parent_level => "parentLevel",
        /// `qb4o:pcCardinality` — hierarchy step cardinality.
        pc_cardinality => "pcCardinality",
        /// `qb4o:cardinality` — fact/level cardinality on DSD components.
        cardinality => "cardinality",
        /// `qb4o:hasAttribute` — level → level attribute.
        has_attribute => "hasAttribute",
        /// `qb4o:inLevel` — level attribute → level.
        in_level => "inLevel",
        /// `qb4o:memberOf` — member → level.
        member_of => "memberOf",
        /// `qb4o:aggregateFunction` — measure component → aggregate function.
        aggregate_function => "aggregateFunction",
        /// `qb4o:AggregateFunction` — the class of aggregate functions.
        aggregate_function_class => "AggregateFunction",
        /// `qb4o:sum`.
        sum => "sum",
        /// `qb4o:avg`.
        avg => "avg",
        /// `qb4o:count`.
        count => "count",
        /// `qb4o:min`.
        min => "min",
        /// `qb4o:max`.
        max => "max",
        /// `qb4o:OneToOne`.
        one_to_one => "OneToOne",
        /// `qb4o:OneToMany`.
        one_to_many => "OneToMany",
        /// `qb4o:ManyToOne`.
        many_to_one => "ManyToOne",
        /// `qb4o:ManyToMany`.
        many_to_many => "ManyToMany",
        /// `qb4o:Cardinality` — the class of cardinalities.
        cardinality_class => "Cardinality",
    }
);

vocabulary!(
    /// SDMX COG dimension concepts (used by Eurostat QB datasets).
    sdmx_dimension, "http://purl.org/linked-data/sdmx/2009/dimension#", {
        /// `sdmx-dimension:refPeriod`.
        ref_period => "refPeriod",
        /// `sdmx-dimension:refArea`.
        ref_area => "refArea",
        /// `sdmx-dimension:sex`.
        sex => "sex",
        /// `sdmx-dimension:age`.
        age => "age",
        /// `sdmx-dimension:freq`.
        freq => "freq",
    }
);

vocabulary!(
    /// SDMX COG measure concepts.
    sdmx_measure, "http://purl.org/linked-data/sdmx/2009/measure#", {
        /// `sdmx-measure:obsValue`.
        obs_value => "obsValue",
    }
);

vocabulary!(
    /// SDMX COG attribute concepts.
    sdmx_attribute, "http://purl.org/linked-data/sdmx/2009/attribute#", {
        /// `sdmx-attribute:unitMeasure`.
        unit_measure => "unitMeasure",
        /// `sdmx-attribute:obsStatus`.
        obs_status => "obsStatus",
    }
);

vocabulary!(
    /// Eurostat linked-statistics property namespace (dataset-specific
    /// dimensions such as `property:citizen`, `property:geo`, `property:age`).
    eurostat_property, "http://eurostat.linked-statistics.org/property#", {
        /// `property:citizen` — country of citizenship of the applicant.
        citizen => "citizen",
        /// `property:geo` — destination (host) country.
        geo => "geo",
        /// `property:age` — age class.
        age => "age",
        /// `property:sex` — sex.
        sex => "sex",
        /// `property:asyl_app` — type of asylum applicant.
        asyl_app => "asyl_app",
        /// `property:unit` — unit of measure.
        unit => "unit",
    }
);

vocabulary!(
    /// Eurostat linked-statistics DSD namespace.
    eurostat_dsd, "http://eurostat.linked-statistics.org/dsd/", {
        /// The asylum-applications DSD used in the demo.
        migr_asyappctzm => "migr_asyappctzm",
    }
);

vocabulary!(
    /// Eurostat linked-statistics data namespace.
    eurostat_data, "http://eurostat.linked-statistics.org/data/", {
        /// The asylum-applications dataset used in the demo.
        migr_asyappctzm => "migr_asyappctzm",
    }
);

vocabulary!(
    /// Eurostat dictionary namespace for code-list members
    /// (e.g. `dic:citizen#SY` for Syria).
    eurostat_dic, "http://eurostat.linked-statistics.org/dic/", {}
);

vocabulary!(
    /// The demo schema namespace used by the paper for enrichment output
    /// (`schema:citizenshipDim`, `schema:continent`, ...).
    demo_schema, "http://www.fing.edu.uy/inco/cubes/schemas/migr_asyapp#", {
        /// `schema:citizenshipDim`.
        citizenship_dim => "citizenshipDim",
        /// `schema:citizenshipGeoHier`.
        citizenship_geo_hier => "citizenshipGeoHier",
        /// `schema:continent`.
        continent => "continent",
        /// `schema:continentName`.
        continent_name => "continentName",
        /// `schema:citAll`.
        cit_all => "citAll",
        /// `schema:destinationDim`.
        destination_dim => "destinationDim",
        /// `schema:countryName`.
        country_name => "countryName",
        /// `schema:timeDim`.
        time_dim => "timeDim",
        /// `schema:year`.
        year => "year",
        /// `schema:asylappDim`.
        asylapp_dim => "asylappDim",
    }
);

vocabulary!(
    /// A DBpedia-like namespace for the synthetic external linked dataset
    /// used to demonstrate cross-dataset enrichment.
    dbpedia, "http://dbpedia.org/ontology/", {
        /// `dbo:Country`.
        country => "Country",
        /// `dbo:continent`.
        continent => "continent",
        /// `dbo:governmentType`.
        government_type => "governmentType",
        /// `dbo:populationTotal`.
        population_total => "populationTotal",
        /// `dbo:capital`.
        capital => "capital",
    }
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn namespaces_are_well_formed() {
        assert_eq!(qb::NAMESPACE, "http://purl.org/linked-data/cube#");
        assert_eq!(qb4o::NAMESPACE, "http://purl.org/qb4olap/cubes#");
        assert!(rdf::type_().as_str().ends_with("#type"));
        assert!(qb4o::level().as_str().ends_with("#level"));
    }

    #[test]
    fn term_constructor_appends_local_name() {
        assert_eq!(
            qb::term("DataSet").as_str(),
            "http://purl.org/linked-data/cube#DataSet"
        );
        assert_eq!(qb::term("DataSet"), qb::data_set_class());
    }

    #[test]
    fn numeric_datatype_detection() {
        assert!(is_numeric_datatype(&xsd::integer()));
        assert!(is_numeric_datatype(&xsd::double()));
        assert!(!is_numeric_datatype(&xsd::string()));
        assert!(!is_numeric_datatype(&xsd::date()));
    }

    #[test]
    fn eurostat_namespaces_match_paper() {
        assert_eq!(
            eurostat_property::citizen().as_str(),
            "http://eurostat.linked-statistics.org/property#citizen"
        );
        assert_eq!(
            demo_schema::continent().as_str(),
            "http://www.fing.edu.uy/inco/cubes/schemas/migr_asyapp#continent"
        );
    }

    #[test]
    fn sdmx_terms() {
        assert!(sdmx_dimension::ref_period().as_str().ends_with("refPeriod"));
        assert!(sdmx_measure::obs_value().as_str().ends_with("obsValue"));
    }
}
