//! RDF substrate for the QB2OLAP reproduction.
//!
//! This crate provides everything QB2OLAP needs from an RDF library and a
//! triple store (the roles played by Apache Jena and Virtuoso in the
//! original system):
//!
//! * [`term`] — IRIs, blank nodes, typed literals, triples;
//! * [`graph`] — an indexed in-memory graph (SPO/POS/OSP) with term interning;
//! * [`store`] — a thread-safe store with a default graph and named graphs;
//! * [`parser`] / [`serializer`] — Turtle and N-Triples I/O;
//! * [`namespace`] — prefix management;
//! * [`vocab`] — the RDF/RDFS/XSD/SKOS/QB/QB4OLAP/SDMX/Eurostat vocabularies.
//!
//! # Example
//!
//! ```
//! use rdf::prelude::*;
//!
//! let store = Store::new();
//! store
//!     .load_turtle(
//!         "@prefix qb: <http://purl.org/linked-data/cube#> .
//!          @prefix ex: <http://example.org/> .
//!          ex:obs1 a qb:Observation ; ex:value 42 .",
//!     )
//!     .unwrap();
//! assert_eq!(store.len(), 2);
//! let obs = store.subjects_of_type(&vocab::qb::observation());
//! assert_eq!(obs, vec![Term::iri("http://example.org/obs1")]);
//! ```

#![warn(missing_docs)]

pub mod error;
pub mod graph;
pub mod namespace;
pub mod parser;
pub mod serializer;
pub mod store;
pub mod term;
pub mod vocab;

pub use error::{ParseError, StoreError};
pub use graph::{EncodedTriple, Graph, Interner, TermId};
pub use namespace::PrefixMap;
pub use store::Store;
pub use term::{BlankNode, Iri, Literal, Term, Triple};

/// Commonly used items, for glob import.
pub mod prelude {
    pub use crate::graph::Graph;
    pub use crate::namespace::PrefixMap;
    pub use crate::store::Store;
    pub use crate::term::{BlankNode, Iri, Literal, Term, Triple};
    pub use crate::vocab;
}

#[cfg(test)]
mod proptests {
    use proptest::prelude::*;

    use crate::graph::Graph;
    use crate::parser::parse_ntriples;
    use crate::serializer::to_ntriples;
    use crate::term::{Iri, Literal, Term, Triple};

    fn arb_iri() -> impl Strategy<Value = Iri> {
        "[a-z]{1,8}".prop_map(|s| Iri::new(format!("http://example.org/{s}")))
    }

    fn arb_literal() -> impl Strategy<Value = Literal> {
        prop_oneof![
            "[ -~]{0,20}".prop_map(Literal::string),
            any::<i32>().prop_map(|i| Literal::integer(i as i64)),
            any::<bool>().prop_map(Literal::boolean),
            ("[a-zA-Z ]{0,10}", "[a-z]{2}").prop_map(|(s, l)| Literal::lang_string(s, l)),
        ]
    }

    fn arb_term() -> impl Strategy<Value = Term> {
        prop_oneof![
            arb_iri().prop_map(Term::Iri),
            arb_literal().prop_map(Term::Literal),
            "[a-z0-9]{1,6}".prop_map(Term::blank),
        ]
    }

    fn arb_subject() -> impl Strategy<Value = Term> {
        prop_oneof![
            arb_iri().prop_map(Term::Iri),
            "[a-z0-9]{1,6}".prop_map(Term::blank),
        ]
    }

    fn arb_triple() -> impl Strategy<Value = Triple> {
        (arb_subject(), arb_iri(), arb_term()).prop_map(|(s, p, o)| Triple::new(s, p, o))
    }

    proptest! {
        /// Serialising a graph to N-Triples and parsing it back yields the
        /// same set of triples.
        #[test]
        fn ntriples_roundtrip(triples in proptest::collection::vec(arb_triple(), 0..40)) {
            let graph = Graph::from_triples(triples);
            let nt = to_ntriples(&graph);
            let reparsed = parse_ntriples(&nt).expect("serialiser output must parse").into_graph();
            prop_assert_eq!(reparsed.len(), graph.len());
            for t in graph.iter() {
                prop_assert!(reparsed.contains(&t), "missing triple {}", t);
            }
        }

        /// Graph insertion is idempotent and pattern matching with all
        /// components bound agrees with `contains`.
        #[test]
        fn graph_insert_idempotent(triples in proptest::collection::vec(arb_triple(), 0..40)) {
            let mut graph = Graph::new();
            for t in &triples {
                graph.insert(t);
            }
            let len_once = graph.len();
            for t in &triples {
                graph.insert(t);
            }
            prop_assert_eq!(graph.len(), len_once);
            for t in &triples {
                prop_assert!(graph.contains(t));
                let matched = graph.triples_matching(Some(&t.subject), Some(&t.predicate), Some(&t.object));
                prop_assert_eq!(matched.len(), 1);
            }
        }

        /// Any pattern query returns a subset of the full graph and the
        /// unconstrained pattern returns everything.
        #[test]
        fn pattern_queries_are_consistent(triples in proptest::collection::vec(arb_triple(), 1..30)) {
            let graph = Graph::from_triples(triples);
            let all = graph.triples_matching(None, None, None);
            prop_assert_eq!(all.len(), graph.len());
            for t in &all {
                let by_subject = graph.triples_matching(Some(&t.subject), None, None);
                prop_assert!(by_subject.contains(t));
                let by_predicate = graph.triples_matching(None, Some(&t.predicate), None);
                prop_assert!(by_predicate.contains(t));
                let by_object = graph.triples_matching(None, None, Some(&t.object));
                prop_assert!(by_object.contains(t));
            }
        }
    }
}
