//! RDF substrate for the QB2OLAP reproduction.
//!
//! This crate provides everything QB2OLAP needs from an RDF library and a
//! triple store (the roles played by Apache Jena and Virtuoso in the
//! original system):
//!
//! * [`term`] — IRIs, blank nodes, typed literals, triples;
//! * [`graph`] — an indexed in-memory graph (SPO/POS/OSP) with term interning;
//! * [`store`] — a thread-safe store with a default graph and named graphs;
//! * [`parser`] / [`serializer`] — Turtle and N-Triples I/O;
//! * [`namespace`] — prefix management;
//! * [`vocab`] — the RDF/RDFS/XSD/SKOS/QB/QB4OLAP/SDMX/Eurostat vocabularies.
//!
//! # Example
//!
//! ```
//! use rdf::prelude::*;
//!
//! let store = Store::new();
//! store
//!     .load_turtle(
//!         "@prefix qb: <http://purl.org/linked-data/cube#> .
//!          @prefix ex: <http://example.org/> .
//!          ex:obs1 a qb:Observation ; ex:value 42 .",
//!     )
//!     .unwrap();
//! assert_eq!(store.len(), 2);
//! let obs = store.subjects_of_type(&vocab::qb::observation());
//! assert_eq!(obs, vec![Term::iri("http://example.org/obs1")]);
//! ```

#![warn(missing_docs)]

pub mod error;
pub mod graph;
pub mod namespace;
pub mod parser;
pub mod serializer;
pub mod store;
pub mod term;
pub mod vocab;

pub use error::{ParseError, StoreError};
pub use graph::{EncodedTriple, Graph, Interner, TermId};
pub use namespace::PrefixMap;
pub use store::{Store, StoreDelta, DEFAULT_CHANGE_LOG_CAPACITY};
pub use term::{BlankNode, Iri, Literal, Term, Triple};

/// Commonly used items, for glob import.
pub mod prelude {
    pub use crate::graph::Graph;
    pub use crate::namespace::PrefixMap;
    pub use crate::store::Store;
    pub use crate::term::{BlankNode, Iri, Literal, Term, Triple};
    pub use crate::vocab;
}

// Randomised invariant tests. The seed repo expressed these with `proptest`,
// which is unavailable in the offline build; seeded `StdRng` sampling keeps
// the same invariant coverage (without shrinking) and stays deterministic.
#[cfg(test)]
mod proptests {
    use rand::{rngs::StdRng, Rng, SeedableRng};

    use crate::graph::Graph;
    use crate::parser::parse_ntriples;
    use crate::serializer::to_ntriples;
    use crate::term::{Iri, Literal, Term, Triple};

    const CASES: u64 = 128;

    fn random_string(rng: &mut StdRng, lengths: std::ops::Range<usize>, pool: &str) -> String {
        let chars: Vec<char> = pool.chars().collect();
        (0..rng.gen_range(lengths))
            .map(|_| chars[rng.gen_range(0..chars.len())])
            .collect()
    }

    fn random_iri(rng: &mut StdRng) -> Iri {
        let s = random_string(rng, 1..9, "abcdefghijklmnopqrstuvwxyz");
        Iri::new(format!("http://example.org/{s}"))
    }

    fn random_literal(rng: &mut StdRng) -> Literal {
        match rng.gen_range(0..4u8) {
            0 => {
                let printable: String = (b' '..=b'~').map(char::from).collect();
                Literal::string(random_string(rng, 0..21, &printable))
            }
            1 => Literal::integer(rng.gen_range(i32::MIN as i64..=i32::MAX as i64)),
            2 => Literal::boolean(rng.gen_bool(0.5)),
            _ => {
                let text = random_string(
                    rng,
                    0..11,
                    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ ",
                );
                let lang = random_string(rng, 2..3, "abcdefghijklmnopqrstuvwxyz");
                Literal::lang_string(text, lang)
            }
        }
    }

    fn random_blank_label(rng: &mut StdRng) -> String {
        random_string(rng, 1..7, "abcdefghijklmnopqrstuvwxyz0123456789")
    }

    fn random_term(rng: &mut StdRng) -> Term {
        match rng.gen_range(0..3u8) {
            0 => Term::Iri(random_iri(rng)),
            1 => Term::Literal(random_literal(rng)),
            _ => Term::blank(random_blank_label(rng)),
        }
    }

    fn random_subject(rng: &mut StdRng) -> Term {
        if rng.gen_bool(0.5) {
            Term::Iri(random_iri(rng))
        } else {
            Term::blank(random_blank_label(rng))
        }
    }

    fn random_triple(rng: &mut StdRng) -> Triple {
        Triple::new(random_subject(rng), random_iri(rng), random_term(rng))
    }

    fn random_triples(rng: &mut StdRng, counts: std::ops::Range<usize>) -> Vec<Triple> {
        (0..rng.gen_range(counts))
            .map(|_| random_triple(rng))
            .collect()
    }

    /// Serialising a graph to N-Triples and parsing it back yields the
    /// same set of triples.
    #[test]
    fn ntriples_roundtrip() {
        for seed in 0..CASES {
            let mut rng = StdRng::seed_from_u64(seed);
            let graph = Graph::from_triples(random_triples(&mut rng, 0..40));
            let nt = to_ntriples(&graph);
            let reparsed = parse_ntriples(&nt)
                .expect("serialiser output must parse")
                .into_graph();
            assert_eq!(reparsed.len(), graph.len(), "seed {seed}");
            for t in graph.iter() {
                assert!(reparsed.contains(&t), "seed {seed}: missing triple {t}");
            }
        }
    }

    /// Graph insertion is idempotent and pattern matching with all
    /// components bound agrees with `contains`.
    #[test]
    fn graph_insert_idempotent() {
        for seed in 0..CASES {
            let mut rng = StdRng::seed_from_u64(seed);
            let triples = random_triples(&mut rng, 0..40);
            let mut graph = Graph::new();
            for t in &triples {
                graph.insert(t);
            }
            let len_once = graph.len();
            for t in &triples {
                graph.insert(t);
            }
            assert_eq!(graph.len(), len_once, "seed {seed}");
            for t in &triples {
                assert!(graph.contains(t), "seed {seed}");
                let matched =
                    graph.triples_matching(Some(&t.subject), Some(&t.predicate), Some(&t.object));
                assert_eq!(matched.len(), 1, "seed {seed}");
            }
        }
    }

    /// Any pattern query returns a subset of the full graph and the
    /// unconstrained pattern returns everything.
    #[test]
    fn pattern_queries_are_consistent() {
        for seed in 0..CASES {
            let mut rng = StdRng::seed_from_u64(seed);
            let graph = Graph::from_triples(random_triples(&mut rng, 1..30));
            let all = graph.triples_matching(None, None, None);
            assert_eq!(all.len(), graph.len(), "seed {seed}");
            for t in &all {
                let by_subject = graph.triples_matching(Some(&t.subject), None, None);
                assert!(by_subject.contains(t), "seed {seed}");
                let by_predicate = graph.triples_matching(None, Some(&t.predicate), None);
                assert!(by_predicate.contains(t), "seed {seed}");
                let by_object = graph.triples_matching(None, None, Some(&t.object));
                assert!(by_object.contains(t), "seed {seed}");
            }
        }
    }
}
