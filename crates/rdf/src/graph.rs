//! An in-memory, indexed RDF graph.
//!
//! Terms are interned into dense `u32` identifiers and triples are kept in
//! three `BTreeSet` indexes (SPO, POS, OSP) so that any triple pattern with
//! a bound prefix can be answered with a range scan. This mirrors the
//! index layout of typical RDF stores (the role Virtuoso plays in the
//! original QB2OLAP deployment).

use std::collections::hash_map::Entry;
use std::collections::{BTreeSet, HashMap};
use std::ops::Bound;

use crate::term::{Iri, Term, Triple};

/// A dense identifier for an interned term.
pub type TermId = u32;

/// Interns [`Term`]s to dense [`TermId`]s and back.
#[derive(Debug, Default, Clone)]
pub struct Interner {
    terms: Vec<Term>,
    ids: HashMap<Term, TermId>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the id for `term`, interning it if necessary.
    pub fn intern(&mut self, term: &Term) -> TermId {
        match self.ids.entry(term.clone()) {
            Entry::Occupied(e) => *e.get(),
            Entry::Vacant(e) => {
                let id = self.terms.len() as TermId;
                self.terms.push(term.clone());
                *e.insert(id)
            }
        }
    }

    /// Returns the id of `term` if it has already been interned.
    pub fn get(&self, term: &Term) -> Option<TermId> {
        self.ids.get(term).copied()
    }

    /// Returns the term for a previously issued id.
    ///
    /// # Panics
    /// Panics if `id` was not issued by this interner.
    pub fn resolve(&self, id: TermId) -> &Term {
        &self.terms[id as usize]
    }

    /// Reserves room for at least `additional` more distinct terms.
    pub fn reserve(&mut self, additional: usize) {
        self.terms.reserve(additional);
        self.ids.reserve(additional);
    }

    /// Iterates over `(id, term)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (TermId, &Term)> {
        self.terms
            .iter()
            .enumerate()
            .map(|(i, t)| (i as TermId, t))
    }

    /// Number of distinct interned terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True if no term has been interned.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }
}

/// A triple of interned term ids in (subject, predicate, object) order.
pub type EncodedTriple = (TermId, TermId, TermId);

/// An in-memory RDF graph with SPO/POS/OSP indexes.
#[derive(Debug, Default, Clone)]
pub struct Graph {
    interner: Interner,
    spo: BTreeSet<(TermId, TermId, TermId)>,
    pos: BTreeSet<(TermId, TermId, TermId)>,
    osp: BTreeSet<(TermId, TermId, TermId)>,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of triples in the graph.
    pub fn len(&self) -> usize {
        self.spo.len()
    }

    /// True if the graph contains no triples.
    pub fn is_empty(&self) -> bool {
        self.spo.is_empty()
    }

    /// Number of distinct terms appearing in the graph.
    pub fn term_count(&self) -> usize {
        self.interner.len()
    }

    /// Interns a triple's components without inserting it.
    fn encode(&mut self, triple: &Triple) -> EncodedTriple {
        let s = self.interner.intern(&triple.subject);
        let p = self.interner.intern(&Term::Iri(triple.predicate.clone()));
        let o = self.interner.intern(&triple.object);
        (s, p, o)
    }

    /// Inserts a triple. Returns `true` if it was not already present.
    pub fn insert(&mut self, triple: &Triple) -> bool {
        let encoded = self.encode(triple);
        self.insert_encoded(encoded)
    }

    /// Inserts a batch of triples, returning how many were new.
    ///
    /// Into an **empty** graph this takes the fast path the ROADMAP's
    /// bulk-load hot path asks for: reserve the interner up front, encode
    /// everything, sort + dedup once, and build the three indexes from the
    /// sorted runs — instead of three per-triple `BTreeSet` probes. On a
    /// non-empty graph it falls back to per-triple insertion (the batch
    /// must still be checked against what is already there).
    pub fn bulk_insert<I: IntoIterator<Item = Triple>>(&mut self, triples: I) -> usize {
        let iter = triples.into_iter();
        let (lower, _) = iter.size_hint();
        if !self.spo.is_empty() {
            let mut added = 0;
            for triple in iter {
                if self.insert(&triple) {
                    added += 1;
                }
            }
            return added;
        }
        // A fresh graph: no existing triples to collide with, so the only
        // duplicates are within the batch itself — sort + dedup finds them
        // in one pass.
        self.interner.reserve(lower);
        let mut encoded: Vec<EncodedTriple> = iter.map(|t| self.encode(&t)).collect();
        encoded.sort_unstable();
        encoded.dedup();
        self.spo = encoded.iter().copied().collect();
        self.pos = encoded.iter().map(|&(s, p, o)| (p, o, s)).collect();
        self.osp = encoded.iter().map(|&(s, p, o)| (o, s, p)).collect();
        encoded.len()
    }

    /// Inserts a triple given by already-interned ids.
    pub fn insert_encoded(&mut self, (s, p, o): EncodedTriple) -> bool {
        let added = self.spo.insert((s, p, o));
        if added {
            self.pos.insert((p, o, s));
            self.osp.insert((o, s, p));
        }
        added
    }

    /// Removes a triple. Returns `true` if it was present.
    pub fn remove(&mut self, triple: &Triple) -> bool {
        let (Some(s), Some(p), Some(o)) = (
            self.interner.get(&triple.subject),
            self.interner.get(&Term::Iri(triple.predicate.clone())),
            self.interner.get(&triple.object),
        ) else {
            return false;
        };
        let removed = self.spo.remove(&(s, p, o));
        if removed {
            self.pos.remove(&(p, o, s));
            self.osp.remove(&(o, s, p));
        }
        removed
    }

    /// True if the graph contains the given triple.
    pub fn contains(&self, triple: &Triple) -> bool {
        match (
            self.interner.get(&triple.subject),
            self.interner.get(&Term::Iri(triple.predicate.clone())),
            self.interner.get(&triple.object),
        ) {
            (Some(s), Some(p), Some(o)) => self.spo.contains(&(s, p, o)),
            _ => false,
        }
    }

    /// Interns a term (for callers that want to work at the id level,
    /// e.g. the SPARQL evaluator).
    pub fn intern(&mut self, term: &Term) -> TermId {
        self.interner.intern(term)
    }

    /// Looks up the id of a term without interning it.
    pub fn term_id(&self, term: &Term) -> Option<TermId> {
        self.interner.get(term)
    }

    /// Resolves an id back to its term.
    pub fn term(&self, id: TermId) -> &Term {
        self.interner.resolve(id)
    }

    /// Iterates over all triples (decoded).
    pub fn iter(&self) -> impl Iterator<Item = Triple> + '_ {
        self.spo.iter().map(move |&(s, p, o)| self.decode((s, p, o)))
    }

    /// Decodes an encoded triple into a [`Triple`].
    ///
    /// # Panics
    /// Panics if the predicate id does not resolve to an IRI.
    pub fn decode(&self, (s, p, o): EncodedTriple) -> Triple {
        let predicate = match self.interner.resolve(p) {
            Term::Iri(iri) => iri.clone(),
            other => panic!("predicate id {p} is not an IRI: {other}"),
        };
        Triple {
            subject: self.interner.resolve(s).clone(),
            predicate,
            object: self.interner.resolve(o).clone(),
        }
    }

    /// Matches a triple pattern, returning decoded triples.
    ///
    /// `None` components are wildcards. The best index for the bound prefix
    /// is chosen automatically.
    pub fn triples_matching(
        &self,
        subject: Option<&Term>,
        predicate: Option<&Iri>,
        object: Option<&Term>,
    ) -> Vec<Triple> {
        self.match_pattern(subject, predicate, object)
            .into_iter()
            .map(|t| self.decode(t))
            .collect()
    }

    /// Matches a triple pattern at the id level.
    pub fn match_pattern(
        &self,
        subject: Option<&Term>,
        predicate: Option<&Iri>,
        object: Option<&Term>,
    ) -> Vec<EncodedTriple> {
        let s = match subject {
            Some(t) => match self.interner.get(t) {
                Some(id) => Some(id),
                None => return Vec::new(),
            },
            None => None,
        };
        let p = match predicate {
            Some(iri) => match self.interner.get(&Term::Iri(iri.clone())) {
                Some(id) => Some(id),
                None => return Vec::new(),
            },
            None => None,
        };
        let o = match object {
            Some(t) => match self.interner.get(t) {
                Some(id) => Some(id),
                None => return Vec::new(),
            },
            None => None,
        };
        self.match_ids(s, p, o)
    }

    /// Matches a triple pattern where components are given as optional ids.
    pub fn match_ids(
        &self,
        s: Option<TermId>,
        p: Option<TermId>,
        o: Option<TermId>,
    ) -> Vec<EncodedTriple> {
        match (s, p, o) {
            (Some(s), Some(p), Some(o)) => {
                if self.spo.contains(&(s, p, o)) {
                    vec![(s, p, o)]
                } else {
                    Vec::new()
                }
            }
            (Some(s), Some(p), None) => self
                .range2(&self.spo, s, p)
                .map(|&(a, b, c)| (a, b, c))
                .collect(),
            (Some(s), None, None) => self
                .range1(&self.spo, s)
                .map(|&(a, b, c)| (a, b, c))
                .collect(),
            (None, Some(p), Some(o)) => self
                .range2(&self.pos, p, o)
                .map(|&(p, o, s)| (s, p, o))
                .collect(),
            (None, Some(p), None) => self
                .range1(&self.pos, p)
                .map(|&(p, o, s)| (s, p, o))
                .collect(),
            (None, None, Some(o)) => self
                .range1(&self.osp, o)
                .map(|&(o, s, p)| (s, p, o))
                .collect(),
            (Some(s), None, Some(o)) => self
                .range2(&self.osp, o, s)
                .map(|&(o, s, p)| (s, p, o))
                .collect(),
            (None, None, None) => self.spo.iter().copied().collect(),
        }
    }

    fn range1<'a>(
        &'a self,
        index: &'a BTreeSet<(TermId, TermId, TermId)>,
        first: TermId,
    ) -> impl Iterator<Item = &'a (TermId, TermId, TermId)> {
        index.range((
            Bound::Included((first, 0, 0)),
            Bound::Included((first, TermId::MAX, TermId::MAX)),
        ))
    }

    fn range2<'a>(
        &'a self,
        index: &'a BTreeSet<(TermId, TermId, TermId)>,
        first: TermId,
        second: TermId,
    ) -> impl Iterator<Item = &'a (TermId, TermId, TermId)> {
        index.range((
            Bound::Included((first, second, 0)),
            Bound::Included((first, second, TermId::MAX)),
        ))
    }

    /// Convenience: all objects of `(subject, predicate, ?o)`.
    pub fn objects(&self, subject: &Term, predicate: &Iri) -> Vec<Term> {
        self.triples_matching(Some(subject), Some(predicate), None)
            .into_iter()
            .map(|t| t.object)
            .collect()
    }

    /// Convenience: the first object of `(subject, predicate, ?o)`, if any.
    pub fn object(&self, subject: &Term, predicate: &Iri) -> Option<Term> {
        self.triples_matching(Some(subject), Some(predicate), None)
            .into_iter()
            .map(|t| t.object)
            .next()
    }

    /// Convenience: all subjects of `(?s, predicate, object)`.
    pub fn subjects(&self, predicate: &Iri, object: &Term) -> Vec<Term> {
        self.triples_matching(None, Some(predicate), Some(object))
            .into_iter()
            .map(|t| t.subject)
            .collect()
    }

    /// Convenience: all subjects that have `rdf:type` `class`.
    pub fn subjects_of_type(&self, class: &Iri) -> Vec<Term> {
        self.subjects(&crate::vocab::rdf::type_(), &Term::Iri(class.clone()))
    }

    /// Convenience: all distinct predicates used on `subject`.
    pub fn predicates_of(&self, subject: &Term) -> Vec<Iri> {
        let mut preds: Vec<Iri> = self
            .triples_matching(Some(subject), None, None)
            .into_iter()
            .map(|t| t.predicate)
            .collect();
        preds.sort();
        preds.dedup();
        preds
    }

    /// Extends this graph with all triples from another graph.
    pub fn extend_from(&mut self, other: &Graph) {
        for triple in other.iter() {
            self.insert(&triple);
        }
    }

    /// Builds a graph from an iterator of triples.
    pub fn from_triples<I: IntoIterator<Item = Triple>>(triples: I) -> Self {
        let mut g = Graph::new();
        for t in triples {
            g.insert(&t);
        }
        g
    }
}

impl Extend<Triple> for Graph {
    fn extend<T: IntoIterator<Item = Triple>>(&mut self, iter: T) {
        for t in iter {
            self.insert(&t);
        }
    }
}

impl FromIterator<Triple> for Graph {
    fn from_iter<T: IntoIterator<Item = Triple>>(iter: T) -> Self {
        Graph::from_triples(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Literal;
    use crate::vocab::{rdf, rdfs};

    fn t(s: &str, p: &str, o: &str) -> Triple {
        Triple::new(Term::iri(s), Iri::new(p), Term::iri(o))
    }

    #[test]
    fn insert_contains_remove() {
        let mut g = Graph::new();
        let triple = t("http://s", "http://p", "http://o");
        assert!(g.insert(&triple));
        assert!(!g.insert(&triple), "duplicate insert must return false");
        assert_eq!(g.len(), 1);
        assert!(g.contains(&triple));
        assert!(g.remove(&triple));
        assert!(!g.contains(&triple));
        assert!(g.is_empty());
    }

    #[test]
    fn pattern_matching_all_shapes() {
        let mut g = Graph::new();
        g.insert(&t("http://a", "http://p1", "http://x"));
        g.insert(&t("http://a", "http://p2", "http://y"));
        g.insert(&t("http://b", "http://p1", "http://x"));
        g.insert(&t("http://b", "http://p1", "http://z"));

        let a = Term::iri("http://a");
        let p1 = Iri::new("http://p1");
        let x = Term::iri("http://x");

        assert_eq!(g.triples_matching(None, None, None).len(), 4);
        assert_eq!(g.triples_matching(Some(&a), None, None).len(), 2);
        assert_eq!(g.triples_matching(None, Some(&p1), None).len(), 3);
        assert_eq!(g.triples_matching(None, None, Some(&x)).len(), 2);
        assert_eq!(g.triples_matching(Some(&a), Some(&p1), None).len(), 1);
        assert_eq!(g.triples_matching(None, Some(&p1), Some(&x)).len(), 2);
        assert_eq!(g.triples_matching(Some(&a), None, Some(&x)).len(), 1);
        assert_eq!(g.triples_matching(Some(&a), Some(&p1), Some(&x)).len(), 1);
    }

    #[test]
    fn unknown_terms_match_nothing() {
        let mut g = Graph::new();
        g.insert(&t("http://a", "http://p", "http://x"));
        let unknown = Term::iri("http://unknown");
        assert!(g.triples_matching(Some(&unknown), None, None).is_empty());
        assert!(g
            .triples_matching(None, Some(&Iri::new("http://nope")), None)
            .is_empty());
    }

    #[test]
    fn convenience_accessors() {
        let mut g = Graph::new();
        let syria = Term::iri("http://ex/SY");
        g.insert(&Triple::new(
            syria.clone(),
            rdf::type_(),
            Term::iri("http://ex/Country"),
        ));
        g.insert(&Triple::new(
            syria.clone(),
            rdfs::label(),
            Literal::string("Syria"),
        ));

        assert_eq!(
            g.object(&syria, &rdfs::label()),
            Some(Term::Literal(Literal::string("Syria")))
        );
        assert_eq!(
            g.subjects_of_type(&Iri::new("http://ex/Country")),
            vec![syria.clone()]
        );
        assert_eq!(g.predicates_of(&syria).len(), 2);
    }

    #[test]
    fn literal_objects_are_distinct_from_iris() {
        let mut g = Graph::new();
        g.insert(&Triple::new(
            Term::iri("http://s"),
            Iri::new("http://p"),
            Literal::string("http://o"),
        ));
        // An IRI with the same characters is a different term.
        assert!(!g.contains(&t("http://s", "http://p", "http://o")));
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn bulk_insert_into_fresh_graph_matches_loop_insert() {
        let triples: Vec<Triple> = (0..200)
            .map(|i| {
                t(
                    &format!("http://s{}", i % 40),
                    &format!("http://p{}", i % 7),
                    &format!("http://o{}", i % 23),
                )
            })
            .collect();
        let mut with_duplicates = triples.clone();
        with_duplicates.extend(triples.iter().take(50).cloned());

        let mut bulk = Graph::new();
        let added = bulk.bulk_insert(with_duplicates.clone());

        let mut reference = Graph::new();
        let mut reference_added = 0;
        for triple in &with_duplicates {
            if reference.insert(triple) {
                reference_added += 1;
            }
        }

        assert_eq!(added, reference_added);
        assert_eq!(bulk.len(), reference.len());
        for triple in &triples {
            assert!(bulk.contains(triple));
        }
        // All three indexes answer pattern queries consistently.
        let p0 = Iri::new("http://p0");
        assert_eq!(
            bulk.triples_matching(None, Some(&p0), None).len(),
            reference.triples_matching(None, Some(&p0), None).len()
        );
        let s1 = Term::iri("http://s1");
        assert_eq!(
            bulk.triples_matching(Some(&s1), None, None).len(),
            reference.triples_matching(Some(&s1), None, None).len()
        );
        let o2 = Term::iri("http://o2");
        assert_eq!(
            bulk.triples_matching(None, None, Some(&o2)).len(),
            reference.triples_matching(None, None, Some(&o2)).len()
        );
    }

    #[test]
    fn bulk_insert_into_non_empty_graph_checks_existing_triples() {
        let mut g = Graph::new();
        g.insert(&t("http://a", "http://p", "http://x"));
        let added = g.bulk_insert(vec![
            t("http://a", "http://p", "http://x"), // already present
            t("http://b", "http://p", "http://y"),
            t("http://b", "http://p", "http://y"), // duplicate within batch
        ]);
        assert_eq!(added, 1);
        assert_eq!(g.len(), 2);
        // A later removal keeps all indexes in sync.
        assert!(g.remove(&t("http://b", "http://p", "http://y")));
        assert!(g.triples_matching(None, None, Some(&Term::iri("http://y"))).is_empty());
    }

    #[test]
    fn extend_and_from_iterator() {
        let triples = vec![
            t("http://a", "http://p", "http://x"),
            t("http://b", "http://p", "http://y"),
        ];
        let g: Graph = triples.clone().into_iter().collect();
        assert_eq!(g.len(), 2);

        let mut g2 = Graph::new();
        g2.extend_from(&g);
        g2.extend(triples);
        assert_eq!(g2.len(), 2);
    }

    #[test]
    fn interner_iter_is_in_id_order() {
        let mut interner = Interner::new();
        interner.reserve(2);
        let a = interner.intern(&Term::iri("http://a"));
        let b = interner.intern(&Term::iri("http://b"));
        let pairs: Vec<(TermId, Term)> =
            interner.iter().map(|(id, t)| (id, t.clone())).collect();
        assert_eq!(
            pairs,
            vec![(a, Term::iri("http://a")), (b, Term::iri("http://b"))]
        );
    }

    #[test]
    fn decode_roundtrip() {
        let mut g = Graph::new();
        let triple = Triple::new(
            Term::blank("b1"),
            Iri::new("http://p"),
            Literal::integer(7),
        );
        g.insert(&triple);
        let decoded: Vec<Triple> = g.iter().collect();
        assert_eq!(decoded, vec![triple]);
    }
}
