//! `qlsmith` — grammar-driven dual-language differential fuzzing for the
//! QB2OLAP pipeline.
//!
//! Modeled on the role `sparql-smith` plays for Oxigraph: a seeded,
//! reproducible generator that walks the **entire** grammar of both query
//! languages the suite speaks and feeds a differential oracle.
//!
//! * [`fixture`] builds the fuzz cube — a deterministic QB4OLAP dataset
//!   with ragged hierarchies, all five aggregate functions over integer
//!   *and* float measures, and attribute values of every dice-constant
//!   type.
//! * [`universe`] introspects a live cube (endpoint + schema) into the
//!   member/level/attribute tables the generators sample from, which is
//!   why ~100% of generated queries are well-formed.
//! * [`ql_gen`] generates QL pipeline programs covering every
//!   [`ql::ast`] production; [`sparql_gen`] generates SPARQL SELECT
//!   queries covering every [`sparql::ast`] production.
//! * [`diff`] executes each program through every execution backend (and
//!   each SPARQL query through the parsed *and* text paths) and asserts
//!   bit-identical results.
//! * [`shrink`] greedily minimizes a mismatching program; [`corpus`]
//!   persists minimized programs as self-contained regression files.
//!
//! # Environment knobs
//!
//! | Variable | Default | Meaning |
//! |---|---|---|
//! | `QB2OLAP_FUZZ_SEED` | `0xE155EED` | Campaign RNG seed |
//! | `QB2OLAP_FUZZ_PROGRAMS` | `120` | QL programs per campaign |
//! | `QB2OLAP_FUZZ_QUERIES` | `120` | SPARQL queries per campaign |
//!
//! CI pins the seed and raises the counts to 500/500 (see `ci.sh`).

#![warn(missing_docs)]

pub mod corpus;
pub mod diff;
pub mod fixture;
pub mod pool;
pub mod ql_gen;
pub mod shrink;
pub mod sparql_gen;
pub mod universe;

/// Reads a `u64` campaign knob from the environment (decimal, or hex with a
/// `0x` prefix), falling back to `default` when unset — and, with a stderr
/// warning, when set to an unparsable value. A thin alias for the
/// workspace-wide parser in [`obs::env`], kept so existing campaign
/// harnesses don't have to change their imports.
pub fn env_u64(name: &str, default: u64) -> u64 {
    obs::env::u64_knob(name, default)
}

/// The campaign seed: `QB2OLAP_FUZZ_SEED` or `0xE155EED`.
pub fn campaign_seed() -> u64 {
    env_u64("QB2OLAP_FUZZ_SEED", 0xE15_5EED)
}

/// QL programs per campaign: `QB2OLAP_FUZZ_PROGRAMS` or 120.
pub fn campaign_programs() -> usize {
    env_u64("QB2OLAP_FUZZ_PROGRAMS", 120) as usize
}

/// SPARQL queries per campaign: `QB2OLAP_FUZZ_QUERIES` or 120.
pub fn campaign_queries() -> usize {
    env_u64("QB2OLAP_FUZZ_QUERIES", 120) as usize
}

/// Turns a grammar-production display name (e.g. `QlOperation::Slice` or
/// `ORDER BY … DESC`) into a metric counter key under `prefix`: lowercased,
/// with every non-alphanumeric run collapsed to a single dash.
pub fn production_metric_key(prefix: &str, production: &str) -> String {
    let mut key = String::with_capacity(prefix.len() + production.len());
    key.push_str(prefix);
    for c in production.chars() {
        if c.is_ascii_alphanumeric() {
            key.push(c.to_ascii_lowercase());
        } else if key.len() > prefix.len() && !key.ends_with('-') {
            key.push('-');
        }
    }
    while key.ends_with('-') {
        key.pop();
    }
    key
}

#[cfg(test)]
mod tests {
    #[test]
    fn production_keys_are_dotted_lowercase_kebab() {
        assert_eq!(
            super::production_metric_key("fuzz.ql.production.", "QlOperation::Slice"),
            "fuzz.ql.production.qloperation-slice"
        );
        assert_eq!(
            super::production_metric_key("fuzz.sparql.production.", "ORDER BY … DESC"),
            "fuzz.sparql.production.order-by-desc"
        );
        assert_eq!(
            super::production_metric_key("p.", "CmpOp#3"),
            "p.cmpop-3"
        );
    }

    #[test]
    fn env_knobs_parse_decimal_and_hex() {
        assert_eq!(super::env_u64("QB2OLAP_FUZZ_NO_SUCH_KNOB", 7), 7);
        std::env::set_var("QB2OLAP_FUZZ_TEST_KNOB_A", "42");
        std::env::set_var("QB2OLAP_FUZZ_TEST_KNOB_B", "0xff");
        std::env::set_var("QB2OLAP_FUZZ_TEST_KNOB_C", "nonsense");
        assert_eq!(super::env_u64("QB2OLAP_FUZZ_TEST_KNOB_A", 7), 42);
        assert_eq!(super::env_u64("QB2OLAP_FUZZ_TEST_KNOB_B", 7), 255);
        assert_eq!(super::env_u64("QB2OLAP_FUZZ_TEST_KNOB_C", 7), 7);
    }
}
