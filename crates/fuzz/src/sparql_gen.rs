//! The SPARQL SELECT generator: a seeded walk of the **entire**
//! [`sparql::ast`] SELECT grammar over a QB cube's data graph.
//!
//! Every query keeps a well-formed core — observations of the dataset with
//! a dimension member and a measure value — and layers spotlighted
//! productions on top: one of the nine pattern elements, one of the
//! thirteen expression forms, one of the twenty-two scalar functions
//! (arity-correct by an exhaustive table), one of the seven aggregates,
//! plus the solution modifiers (`DISTINCT`, `GROUP BY`, `HAVING`,
//! `ORDER BY`, `LIMIT`, `OFFSET`). The spotlight index cycles through the
//! production tables, so full grammar coverage needs only
//! `lcm`-of-table-sizes many queries, not luck.

use rand::rngs::StdRng;
use rand::Rng;
use rdf::vocab::{qb, qb4o, skos, xsd};
use rdf::{Literal, Term};
use sparql::ast::{
    AggregateExpr, AggregateFunction, ArithOp, CmpOp, Expression, Function, GroupGraphPattern,
    OrderCondition, PatternElement, Projection, SelectItem, SelectQuery, TriplePattern, Variable,
};
use sparql::testutil::{
    arith_op_index, call, cmp, cmp_op_index, constant, group, ALL_AGGREGATES, ALL_ARITH_OPS,
    ALL_CMP_OPS, ALL_FUNCTIONS,
};

use crate::universe::SchemaUniverse;

/// The seeded SPARQL generator over one cube's data graph.
pub struct SparqlGenerator<'a> {
    universe: &'a SchemaUniverse,
}

impl<'a> SparqlGenerator<'a> {
    /// Creates a generator for a cube.
    pub fn new(universe: &'a SchemaUniverse) -> Self {
        SparqlGenerator { universe }
    }

    /// Generates one SELECT query; `spotlight` (the campaign index)
    /// cycles the featured productions.
    pub fn generate(&self, rng: &mut StdRng, spotlight: usize) -> SelectQuery {
        let mut query = SelectQuery::new();
        let dim = &self.universe.dimensions[spotlight % self.universe.dimensions.len()];
        let bottom = &dim.levels[0];
        let (measure, _) = &self.universe.measures[spotlight % self.universe.measures.len()];

        // The well-formed core: dataset observations with one member and
        // one measure binding.
        query.pattern.push_triple(TriplePattern::new(
            Variable::new("obs"),
            qb::data_set(),
            Term::Iri(self.universe.dataset.clone()),
        ));
        query.pattern.push_triple(TriplePattern::new(
            Variable::new("obs"),
            bottom.level.clone(),
            Variable::new("mem"),
        ));
        query.pattern.push_triple(TriplePattern::new(
            Variable::new("obs"),
            measure.clone(),
            Variable::new("v"),
        ));

        // Featured pattern element (9 variants).
        let element = self.featured_element(rng, spotlight, dim);
        query.pattern.elements.push(element);

        // Featured scalar function, arity-correct (22 variants).
        query
            .pattern
            .push_filter(function_showcase(ALL_FUNCTIONS[spotlight % ALL_FUNCTIONS.len()]));

        // Featured expression form (13 variants).
        if spotlight % 13 != 9 {
            let expr = self.featured_expression(rng, spotlight, dim);
            query.pattern.push_filter(expr);
        }

        // A comparison and an arithmetic showcase so the operator tables
        // fill quickly: FILTER(?v <op> (?v <arith> 1) …) stays true-ish.
        let arith_op = ALL_ARITH_OPS[spotlight % ALL_ARITH_OPS.len()];
        let cmp_op = ALL_CMP_OPS[spotlight % ALL_CMP_OPS.len()];
        query.pattern.elements.push(sparql::testutil::bind(
            sparql::testutil::arith(
                Expression::var("v"),
                arith_op,
                constant(Literal::integer(2)),
            ),
            "calc",
        ));
        query.pattern.push_filter(Expression::Or(
            Box::new(cmp(
                Expression::var("v"),
                cmp_op,
                constant(Literal::integer(rng.gen_range(-50..=50i64))),
            )),
            Box::new(cmp(
                Expression::var("v"),
                CmpOp::Le,
                Expression::var("v"),
            )),
        ));

        // Solution modifiers; aggregated shape on even spotlights
        // (featured-expression 9 — Aggregate — always aggregates).
        if spotlight.is_multiple_of(2) || spotlight % 13 == 9 {
            let function = ALL_AGGREGATES[spotlight % ALL_AGGREGATES.len()];
            let agg = AggregateExpr {
                function,
                distinct: spotlight.is_multiple_of(4),
                expr: match function {
                    AggregateFunction::Count if spotlight.is_multiple_of(3) => None, // COUNT(*)
                    AggregateFunction::GroupConcat => {
                        Some(Box::new(call(Function::Str, vec![Expression::var("v")])))
                    }
                    _ => Some(Box::new(Expression::var("v"))),
                },
            };
            query.projection = Projection::Items(vec![
                SelectItem::Var(Variable::new("mem")),
                SelectItem::Expr {
                    expr: Expression::Aggregate(agg),
                    alias: Variable::new("a"),
                },
            ]);
            query.group_by = vec![Expression::var("mem")];
            if spotlight.is_multiple_of(3) {
                query.having = vec![cmp(
                    Expression::Aggregate(AggregateExpr {
                        function: AggregateFunction::Count,
                        distinct: false,
                        expr: Some(Box::new(Expression::var("v"))),
                    }),
                    CmpOp::Ge,
                    constant(Literal::integer(0)),
                )];
            }
            query.order_by = vec![OrderCondition {
                expr: Expression::var("mem"),
                descending: spotlight.is_multiple_of(8),
            }];
        } else {
            if spotlight % 6 == 1 {
                query.distinct = true;
            }
            if spotlight % 5 == 1 {
                query.projection = Projection::Items(vec![
                    SelectItem::Var(Variable::new("obs")),
                    SelectItem::Var(Variable::new("mem")),
                    SelectItem::Expr {
                        expr: sparql::testutil::arith(
                            Expression::var("v"),
                            ArithOp::Add,
                            constant(Literal::integer(1)),
                        ),
                        alias: Variable::new("vplus"),
                    },
                ]);
            }
            query.order_by = vec![
                OrderCondition {
                    expr: Expression::var("obs"),
                    descending: false,
                },
                OrderCondition {
                    expr: Expression::var("v"),
                    descending: spotlight % 8 == 3,
                },
            ];
        }
        if spotlight.is_multiple_of(5) {
            query.limit = Some(1 + spotlight % 40);
        }
        if spotlight.is_multiple_of(10) {
            query.offset = Some(spotlight % 7);
        }
        query
    }

    /// One of the nine [`PatternElement`] variants, spotlight-indexed.
    fn featured_element(
        &self,
        rng: &mut StdRng,
        spotlight: usize,
        dim: &crate::universe::DimensionInfo,
    ) -> PatternElement {
        let bottom = &dim.levels[0];
        let sample_member = |rng: &mut StdRng| -> Term {
            bottom.members[rng.gen_range(0..bottom.members.len())].clone()
        };
        match spotlight % 9 {
            0 => PatternElement::Triple(TriplePattern::new(
                Variable::new("mem"),
                qb4o::member_of(),
                Term::Iri(bottom.level.clone()),
            )),
            1 => PatternElement::Filter(cmp(
                call(Function::Str, vec![Expression::var("mem")]),
                CmpOp::Ne,
                constant(Literal::string("")),
            )),
            2 => PatternElement::Optional(group(vec![PatternElement::Triple(TriplePattern::new(
                Variable::new("mem"),
                skos::broader(),
                Variable::new("parent"),
            ))])),
            3 => {
                let other = &self.universe.dimensions
                    [(spotlight / 9 + 1) % self.universe.dimensions.len()];
                PatternElement::Union(
                    group(vec![PatternElement::Triple(TriplePattern::new(
                        Variable::new("obs"),
                        bottom.level.clone(),
                        Variable::new("u"),
                    ))]),
                    group(vec![PatternElement::Triple(TriplePattern::new(
                        Variable::new("obs"),
                        other.levels[0].level.clone(),
                        Variable::new("u"),
                    ))]),
                )
            }
            4 => PatternElement::Minus(group(vec![PatternElement::Triple(TriplePattern::new(
                Variable::new("obs"),
                bottom.level.clone(),
                sample_member(rng),
            ))])),
            5 => sparql::testutil::bind(
                call(Function::Str, vec![Expression::var("mem")]),
                "memstr",
            ),
            6 => {
                let rows = vec![
                    vec![Some(sample_member(rng))],
                    vec![Some(sample_member(rng))],
                    vec![None], // UNDEF
                ];
                PatternElement::Values {
                    vars: vec![Variable::new("mem")],
                    rows,
                }
            }
            7 => {
                let mut sub = SelectQuery::new();
                sub.projection = Projection::Items(vec![SelectItem::Var(Variable::new("obs"))]);
                sub.pattern.push_triple(TriplePattern::new(
                    Variable::new("obs"),
                    qb::data_set(),
                    Term::Iri(self.universe.dataset.clone()),
                ));
                PatternElement::SubSelect(Box::new(sub))
            }
            _ => PatternElement::Group(group(vec![PatternElement::Triple(TriplePattern::new(
                Variable::new("mem"),
                qb4o::member_of(),
                Term::Iri(bottom.level.clone()),
            ))])),
        }
    }

    /// One of the thirteen [`Expression`] variants as a filter expression.
    /// Variant 9 (`Aggregate`) is handled by the caller via the projection.
    fn featured_expression(
        &self,
        rng: &mut StdRng,
        spotlight: usize,
        dim: &crate::universe::DimensionInfo,
    ) -> Expression {
        let bottom = &dim.levels[0];
        let member = bottom.members[rng.gen_range(0..bottom.members.len())].clone();
        match spotlight % 13 {
            0 => cmp(
                Expression::var("v"),
                CmpOp::Le,
                Expression::var("v"),
            ),
            1 => cmp(
                constant(Literal::integer(1)),
                CmpOp::Le,
                constant(Literal::integer(2)),
            ),
            2 => Expression::Not(Box::new(cmp(
                Expression::var("v"),
                CmpOp::Gt,
                Expression::var("v"),
            ))),
            3 => Expression::And(
                Box::new(cmp(
                    Expression::var("v"),
                    CmpOp::Le,
                    Expression::var("v"),
                )),
                Box::new(call(Function::Bound, vec![Expression::var("mem")])),
            ),
            4 => Expression::Or(
                Box::new(cmp(
                    Expression::var("v"),
                    CmpOp::Gt,
                    constant(Literal::integer(0)),
                )),
                Box::new(cmp(
                    Expression::var("v"),
                    CmpOp::Le,
                    constant(Literal::integer(0)),
                )),
            ),
            5 => cmp(
                Expression::var("v"),
                ALL_CMP_OPS[(spotlight / 13) % ALL_CMP_OPS.len()],
                constant(Literal::integer(rng.gen_range(-20..=20i64))),
            ),
            6 => cmp(
                sparql::testutil::arith(
                    Expression::var("v"),
                    ALL_ARITH_OPS[(spotlight / 13) % ALL_ARITH_OPS.len()],
                    constant(Literal::integer(3)),
                ),
                CmpOp::Ge,
                Expression::var("v"),
            ),
            7 => cmp(
                Expression::Neg(Box::new(Expression::var("v"))),
                CmpOp::Le,
                constant(Literal::integer(i64::MAX)),
            ),
            8 => call(
                Function::Contains,
                vec![
                    call(Function::Str, vec![Expression::var("mem")]),
                    constant(Literal::string("member")),
                ],
            ),
            9 => unreachable!("Aggregate is staged via the projection"),
            10 => Expression::In(
                Box::new(Expression::var("mem")),
                vec![constant(member), constant(Term::iri("http://qlsmith.example/nonexistent"))],
            ),
            11 => Expression::Exists(Box::new(group(vec![PatternElement::Triple(
                TriplePattern::new(
                    Variable::new("mem"),
                    qb4o::member_of(),
                    Term::Iri(bottom.level.clone()),
                ),
            )]))),
            _ => Expression::NotExists(Box::new(group(vec![PatternElement::Triple(
                TriplePattern::new(
                    Variable::new("mem"),
                    skos::broader(),
                    Variable::new("ghost"),
                ),
            )]))),
        }
    }
}

/// A boolean filter expression exercising `function`, with the right arity
/// and argument types. The `match` is wildcard-free: a new built-in cannot
/// be added to the AST without teaching the fuzzer how to call it.
fn function_showcase(function: Function) -> Expression {
    let mem_str = || call(Function::Str, vec![Expression::var("mem")]);
    match function {
        Function::Str => cmp(mem_str(), CmpOp::Ne, constant(Literal::string(""))),
        Function::Lang => cmp(
            call(Function::Lang, vec![Expression::var("v")]),
            CmpOp::Eq,
            constant(Literal::string("")),
        ),
        Function::Datatype => cmp(
            call(Function::Datatype, vec![Expression::var("mem")]),
            CmpOp::Ne,
            constant(Term::Iri(xsd::string())),
        ),
        Function::Bound => call(Function::Bound, vec![Expression::var("v")]),
        Function::IsIri => call(Function::IsIri, vec![Expression::var("mem")]),
        Function::IsLiteral => Expression::Not(Box::new(call(
            Function::IsLiteral,
            vec![Expression::var("mem")],
        ))),
        Function::IsBlank => Expression::Not(Box::new(call(
            Function::IsBlank,
            vec![Expression::var("mem")],
        ))),
        Function::Regex => call(
            Function::Regex,
            vec![mem_str(), constant(Literal::string("member"))],
        ),
        Function::Contains => call(
            Function::Contains,
            vec![mem_str(), constant(Literal::string("qlsmith"))],
        ),
        Function::StrStarts => call(
            Function::StrStarts,
            vec![mem_str(), constant(Literal::string("http"))],
        ),
        Function::StrEnds => Expression::Not(Box::new(call(
            Function::StrEnds,
            vec![mem_str(), constant(Literal::string("zzz"))],
        ))),
        Function::UCase => cmp(
            call(Function::UCase, vec![mem_str()]),
            CmpOp::Ne,
            constant(Literal::string("")),
        ),
        Function::LCase => cmp(
            call(Function::LCase, vec![mem_str()]),
            CmpOp::Ne,
            constant(Literal::string("")),
        ),
        Function::StrLen => cmp(
            call(Function::StrLen, vec![mem_str()]),
            CmpOp::Gt,
            constant(Literal::integer(0)),
        ),
        Function::Concat => cmp(
            call(
                Function::Concat,
                vec![mem_str(), constant(Literal::string("-x"))],
            ),
            CmpOp::Ne,
            constant(Literal::string("-x")),
        ),
        Function::Abs => cmp(
            call(Function::Abs, vec![Expression::var("v")]),
            CmpOp::Ge,
            constant(Literal::integer(0)),
        ),
        Function::Year => cmp(
            call(Function::Year, vec![Expression::var("v")]),
            CmpOp::Ge,
            constant(Literal::integer(0)),
        ),
        Function::Month => cmp(
            call(Function::Month, vec![Expression::var("v")]),
            CmpOp::Ge,
            constant(Literal::integer(0)),
        ),
        Function::If => cmp(
            call(
                Function::If,
                vec![
                    cmp(Expression::var("v"), CmpOp::Ge, constant(Literal::integer(0))),
                    constant(Literal::integer(1)),
                    constant(Literal::integer(2)),
                ],
            ),
            CmpOp::Ge,
            constant(Literal::integer(1)),
        ),
        Function::Coalesce => cmp(
            call(
                Function::Coalesce,
                vec![Expression::var("v"), constant(Literal::integer(0))],
            ),
            CmpOp::Le,
            Expression::var("v"),
        ),
        Function::Iri => cmp(
            call(Function::Iri, vec![mem_str()]),
            CmpOp::Eq,
            Expression::var("mem"),
        ),
        Function::SameTerm => call(
            Function::SameTerm,
            vec![Expression::var("mem"), Expression::var("mem")],
        ),
    }
}

/// The fixed-name SELECT grammar productions (pattern elements, expression
/// kinds, query-level clauses); operator and function productions are
/// enumerated from the `sparql::testutil` tables.
const SELECT_PRODUCTIONS: [&str; 32] = [
    "PatternElement::Triple",
    "PatternElement::Filter",
    "PatternElement::Optional",
    "PatternElement::Union",
    "PatternElement::Minus",
    "PatternElement::Bind",
    "PatternElement::Values",
    "PatternElement::SubSelect",
    "PatternElement::Group",
    "Expression::Var",
    "Expression::Constant",
    "Expression::Not",
    "Expression::And",
    "Expression::Or",
    "Expression::Compare",
    "Expression::Arithmetic",
    "Expression::Neg",
    "Expression::Call",
    "Expression::Aggregate",
    "Expression::In",
    "Expression::Exists",
    "Expression::NotExists",
    "Projection::Wildcard",
    "Projection::Items",
    "SelectItem::Expr",
    "DISTINCT",
    "GROUP BY",
    "HAVING",
    "ORDER BY",
    "ORDER BY … DESC",
    "LIMIT",
    "OFFSET",
];

/// Every SELECT grammar production the generator must reach, by display
/// name.
pub fn all_select_productions() -> Vec<String> {
    let mut out: Vec<String> = SELECT_PRODUCTIONS.iter().map(|s| s.to_string()).collect();
    out.extend(ALL_FUNCTIONS.iter().map(|f| format!("Function::{}", f.as_str())));
    out.extend(ALL_AGGREGATES.iter().map(|a| format!("Aggregate::{}", a.as_str())));
    out.extend((0..ALL_CMP_OPS.len()).map(|i| format!("CmpOp#{i}")));
    out.extend((0..ALL_ARITH_OPS.len()).map(|i| format!("ArithOp#{i}")));
    out
}

/// Coverage recorder over the whole SELECT grammar: one counter per
/// production (`fuzz.sparql.production.*` in an [`obs::MetricsRegistry`]),
/// incremented by wildcard-free matches. [`SparqlCoverage::missing`] reads
/// a metrics snapshot, the same per-production hit counts the campaign's
/// end-of-run gate and any external dashboard see.
#[derive(Debug, Clone)]
pub struct SparqlCoverage {
    registry: std::sync::Arc<obs::MetricsRegistry>,
}

impl Default for SparqlCoverage {
    fn default() -> Self {
        SparqlCoverage::new(std::sync::Arc::new(obs::MetricsRegistry::default()))
    }
}

impl SparqlCoverage {
    /// The counter-name prefix of every SELECT production counter.
    pub const PREFIX: &'static str = "fuzz.sparql.production.";

    /// A recorder whose counters live in `registry` (share one to merge
    /// coverage across campaign shards).
    pub fn new(registry: std::sync::Arc<obs::MetricsRegistry>) -> Self {
        SparqlCoverage { registry }
    }

    /// The registry backing the per-production counters.
    pub fn registry(&self) -> &std::sync::Arc<obs::MetricsRegistry> {
        &self.registry
    }

    /// A point-in-time snapshot of the per-production hit counts.
    pub fn snapshot(&self) -> obs::MetricsSnapshot {
        self.registry.snapshot()
    }

    fn hit(&mut self, production: &str) {
        self.registry
            .counter(&crate::production_metric_key(Self::PREFIX, production))
            .inc();
    }

    /// Records every production a query exercises.
    pub fn record(&mut self, query: &SelectQuery) {
        if query.distinct {
            self.hit("DISTINCT");
        }
        match &query.projection {
            Projection::Wildcard => self.hit("Projection::Wildcard"),
            Projection::Items(items) => {
                self.hit("Projection::Items");
                for item in items {
                    match item {
                        SelectItem::Var(_) => {}
                        SelectItem::Expr { expr, .. } => {
                            self.hit("SelectItem::Expr");
                            self.record_expression(expr);
                        }
                    }
                }
            }
        }
        self.record_pattern(&query.pattern);
        if !query.group_by.is_empty() {
            self.hit("GROUP BY");
            for expr in &query.group_by {
                self.record_expression(expr);
            }
        }
        if !query.having.is_empty() {
            self.hit("HAVING");
            for expr in &query.having {
                self.record_expression(expr);
            }
        }
        if !query.order_by.is_empty() {
            self.hit("ORDER BY");
            for cond in &query.order_by {
                if cond.descending {
                    self.hit("ORDER BY … DESC");
                }
                self.record_expression(&cond.expr);
            }
        }
        if query.limit.is_some() {
            self.hit("LIMIT");
        }
        if query.offset.is_some() {
            self.hit("OFFSET");
        }
    }

    fn record_pattern(&mut self, pattern: &GroupGraphPattern) {
        for element in &pattern.elements {
            match element {
                PatternElement::Triple(_) => self.hit("PatternElement::Triple"),
                PatternElement::Filter(expr) => {
                    self.hit("PatternElement::Filter");
                    self.record_expression(expr);
                }
                PatternElement::Optional(g) => {
                    self.hit("PatternElement::Optional");
                    self.record_pattern(g);
                }
                PatternElement::Union(a, b) => {
                    self.hit("PatternElement::Union");
                    self.record_pattern(a);
                    self.record_pattern(b);
                }
                PatternElement::Minus(g) => {
                    self.hit("PatternElement::Minus");
                    self.record_pattern(g);
                }
                PatternElement::Bind { expr, .. } => {
                    self.hit("PatternElement::Bind");
                    self.record_expression(expr);
                }
                PatternElement::Values { .. } => self.hit("PatternElement::Values"),
                PatternElement::SubSelect(sub) => {
                    self.hit("PatternElement::SubSelect");
                    self.record(sub);
                }
                PatternElement::Group(g) => {
                    self.hit("PatternElement::Group");
                    self.record_pattern(g);
                }
            }
        }
    }

    fn record_expression(&mut self, expr: &Expression) {
        match expr {
            Expression::Var(_) => self.hit("Expression::Var"),
            Expression::Constant(_) => self.hit("Expression::Constant"),
            Expression::Not(inner) => {
                self.hit("Expression::Not");
                self.record_expression(inner);
            }
            Expression::And(a, b) => {
                self.hit("Expression::And");
                self.record_expression(a);
                self.record_expression(b);
            }
            Expression::Or(a, b) => {
                self.hit("Expression::Or");
                self.record_expression(a);
                self.record_expression(b);
            }
            Expression::Compare(a, op, b) => {
                self.hit("Expression::Compare");
                self.hit(&format!("CmpOp#{}", cmp_op_index(*op)));
                self.record_expression(a);
                self.record_expression(b);
            }
            Expression::Arithmetic(a, op, b) => {
                self.hit("Expression::Arithmetic");
                self.hit(&format!("ArithOp#{}", arith_op_index(*op)));
                self.record_expression(a);
                self.record_expression(b);
            }
            Expression::Neg(inner) => {
                self.hit("Expression::Neg");
                self.record_expression(inner);
            }
            Expression::Call(function, args) => {
                self.hit("Expression::Call");
                self.hit(&format!("Function::{}", function.as_str()));
                for arg in args {
                    self.record_expression(arg);
                }
            }
            Expression::Aggregate(agg) => {
                self.hit("Expression::Aggregate");
                self.hit(&format!("Aggregate::{}", agg.function.as_str()));
                if let Some(inner) = &agg.expr {
                    self.record_expression(inner);
                }
            }
            Expression::In(subject, list) => {
                self.hit("Expression::In");
                self.record_expression(subject);
                for item in list {
                    self.record_expression(item);
                }
            }
            Expression::Exists(g) => {
                self.hit("Expression::Exists");
                self.record_pattern(g);
            }
            Expression::NotExists(g) => {
                self.hit("Expression::NotExists");
                self.record_pattern(g);
            }
        }
    }

    /// The productions not yet exercised — the campaign asserts this is
    /// empty.
    pub fn missing(&self) -> Vec<String> {
        Self::missing_in(&self.snapshot())
    }

    /// The productions whose counters are zero in `snapshot` — how the
    /// campaign's end-of-run gate reads the recorder.
    pub fn missing_in(snapshot: &obs::MetricsSnapshot) -> Vec<String> {
        all_select_productions()
            .into_iter()
            .filter(|production| {
                snapshot.counter(&crate::production_metric_key(Self::PREFIX, production)) == 0
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diff::check_select;
    use crate::fixture::fuzz_cube;
    use rand::SeedableRng;

    #[test]
    fn generated_queries_cover_the_select_grammar() {
        let cube = fuzz_cube();
        let universe = SchemaUniverse::from_endpoint(&cube.endpoint, &cube.schema).unwrap();
        let generator = SparqlGenerator::new(&universe);
        let mut rng = StdRng::seed_from_u64(0x5E1ECF);
        let mut coverage = SparqlCoverage::default();
        for spotlight in 0..300 {
            coverage.record(&generator.generate(&mut rng, spotlight));
        }
        assert_eq!(coverage.missing(), Vec::<String>::new());
    }

    #[test]
    fn both_endpoint_paths_agree_on_generated_queries() {
        let cube = fuzz_cube();
        let universe = SchemaUniverse::from_endpoint(&cube.endpoint, &cube.schema).unwrap();
        let generator = SparqlGenerator::new(&universe);
        let mut rng = StdRng::seed_from_u64(0xACC0);
        for spotlight in 0..60 {
            let query = generator.generate(&mut rng, spotlight);
            let mismatch = check_select(&cube.endpoint, &query);
            assert!(mismatch.is_none(), "paths disagree: {mismatch:?}");
        }
    }

    #[test]
    fn generation_is_deterministic_for_a_seed() {
        let cube = fuzz_cube();
        let universe = SchemaUniverse::from_endpoint(&cube.endpoint, &cube.schema).unwrap();
        let generator = SparqlGenerator::new(&universe);
        let mut a = StdRng::seed_from_u64(5);
        let mut b = StdRng::seed_from_u64(5);
        for spotlight in 0..25 {
            assert_eq!(
                generator.generate(&mut a, spotlight),
                generator.generate(&mut b, spotlight)
            );
        }
    }
}
