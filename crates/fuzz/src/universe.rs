//! The sampling universe: a live cube's dimensions, levels, members and
//! attribute values, flattened into tables the generators draw from.
//!
//! Because every dimension, level, member and attribute value a generator
//! references comes out of these tables — which are read from the
//! endpoint's *actual* instance graph — generated queries are well-formed
//! by construction, not by luck.

use qb4olap::{AggregateFunction, CubeSchema, Qb4olapError};
use rand::rngs::StdRng;
use rand::Rng;
use rdf::{Iri, Term};
use sparql::Endpoint;

/// One attribute of one level, with the values it actually takes.
#[derive(Debug, Clone)]
pub struct AttrInfo {
    /// The attribute property IRI.
    pub attribute: Iri,
    /// Distinct values observed in the instance graph (may be empty for a
    /// declared-but-unpopulated attribute).
    pub values: Vec<Term>,
}

/// One level of one dimension, with its members and attributes.
#[derive(Debug, Clone)]
pub struct LevelInfo {
    /// The level IRI.
    pub level: Iri,
    /// All members of the level.
    pub members: Vec<Term>,
    /// The level's declared attributes with sampled values.
    pub attributes: Vec<AttrInfo>,
}

/// One dimension with its levels ordered bottom-up.
#[derive(Debug, Clone)]
pub struct DimensionInfo {
    /// The dimension IRI.
    pub dimension: Iri,
    /// Levels bottom-first: `levels[0]` is the fact-attached bottom level,
    /// each later entry is reachable from the bottom by a roll-up path.
    pub levels: Vec<LevelInfo>,
}

/// The full sampling universe of one cube.
#[derive(Debug, Clone)]
pub struct SchemaUniverse {
    /// The dataset IRI generated programs start from.
    pub dataset: Iri,
    /// Every dimension of the cube.
    pub dimensions: Vec<DimensionInfo>,
    /// Every measure with its declared aggregate function.
    pub measures: Vec<(Iri, AggregateFunction)>,
}

impl SchemaUniverse {
    /// Reads the universe from a live endpoint + schema.
    pub fn from_endpoint(
        endpoint: &dyn Endpoint,
        schema: &CubeSchema,
    ) -> Result<Self, Qb4olapError> {
        let mut dimensions = Vec::new();
        for dim in &schema.dimensions {
            let bottom = schema
                .bottom_level_of_dimension(&dim.iri)
                .expect("every dimension has a bottom level");
            let mut level_iris = vec![bottom.clone()];
            level_iris.extend(dim.ancestor_levels(&bottom));
            let mut levels = Vec::new();
            for level in &level_iris {
                let members = qb4olap::members_of_level(endpoint, level)?;
                let mut attributes = Vec::new();
                for attr in schema.level_attributes(level) {
                    let mut values = Vec::new();
                    for member in &members {
                        if let Some(value) =
                            qb4olap::attribute_value(endpoint, member, &attr.iri)?
                        {
                            if !values.contains(&value) {
                                values.push(value);
                            }
                        }
                    }
                    attributes.push(AttrInfo {
                        attribute: attr.iri.clone(),
                        values,
                    });
                }
                levels.push(LevelInfo {
                    level: level.clone(),
                    members,
                    attributes,
                });
            }
            dimensions.push(DimensionInfo {
                dimension: dim.iri.clone(),
                levels,
            });
        }
        Ok(SchemaUniverse {
            dataset: schema.dataset.clone(),
            dimensions,
            measures: schema
                .measures
                .iter()
                .map(|m| (m.property.clone(), m.aggregate))
                .collect(),
        })
    }

    /// A uniformly random dimension index.
    pub fn random_dimension(&self, rng: &mut StdRng) -> usize {
        rng.gen_range(0..self.dimensions.len())
    }

    /// A uniformly random measure.
    pub fn random_measure(&self, rng: &mut StdRng) -> &(Iri, AggregateFunction) {
        &self.measures[rng.gen_range(0..self.measures.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixture::{firi, fuzz_cube};

    #[test]
    fn universe_reads_the_fuzz_cube_bottom_up() {
        let cube = fuzz_cube();
        let universe = SchemaUniverse::from_endpoint(&cube.endpoint, &cube.schema).unwrap();
        assert_eq!(universe.dataset, firi("ds"));
        assert_eq!(universe.dimensions.len(), 3);
        assert_eq!(universe.measures.len(), 10);

        let geo = universe
            .dimensions
            .iter()
            .find(|d| d.dimension == firi("dim/geo"))
            .unwrap();
        assert_eq!(
            geo.levels.iter().map(|l| l.level.clone()).collect::<Vec<_>>(),
            vec![firi("lv/city"), firi("lv/country"), firi("lv/continent")]
        );
        assert_eq!(geo.levels[0].members.len(), 8);
        assert_eq!(geo.levels[1].members.len(), 3);
        // countryName (3 string values) + flag (3 IRI values).
        assert_eq!(geo.levels[1].attributes.len(), 2);
        assert_eq!(geo.levels[1].attributes[0].values.len(), 3);

        let cat = universe
            .dimensions
            .iter()
            .find(|d| d.dimension == firi("dim/cat"))
            .unwrap();
        assert_eq!(cat.levels.len(), 1, "flat dimension has only its bottom");
    }
}
