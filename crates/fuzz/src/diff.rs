//! The differential oracle: every QL program runs through **every**
//! execution backend, every SPARQL query through the parsed *and* the
//! text path, and the results must be bit-identical.

use ql::{ExecutionBackend, QlError, QueryingModule, ResultCube, SparqlVariant};
use sparql::ast::{Query, SelectQuery};
use sparql::pretty::query_to_string;
use sparql::{Endpoint, SparqlError};

/// The execution backends the oracle compares, with display labels. The
/// real [`ModuleOracle`] additionally evaluates a fourth `columnar-overlay`
/// leg — the non-blocking snapshot read path — ahead of these.
pub const BACKENDS: [(&str, ExecutionBackend); 3] = [
    ("sparql-direct", ExecutionBackend::Sparql(SparqlVariant::Direct)),
    (
        "sparql-alternative",
        ExecutionBackend::Sparql(SparqlVariant::Alternative),
    ),
    ("columnar", ExecutionBackend::Columnar),
];

/// Evaluates one QL program text through every backend.
///
/// A trait so the shrinker's self-test can wrap the real oracle with an
/// intentionally faulty one.
pub trait QlOracle {
    /// Executes the program on every backend, returning `(label, result)`
    /// pairs with canonically sorted cells.
    fn evaluate(&self, ql_text: &str) -> Result<Vec<(&'static str, ResultCube)>, QlError>;
}

/// The real oracle: a [`QueryingModule`] over a live endpoint + schema.
pub struct ModuleOracle<'e> {
    module: &'e QueryingModule<'e>,
}

impl<'e> ModuleOracle<'e> {
    /// Wraps a querying module.
    pub fn new(module: &'e QueryingModule<'e>) -> Self {
        ModuleOracle { module }
    }
}

impl QlOracle for ModuleOracle<'_> {
    fn evaluate(&self, ql_text: &str) -> Result<Vec<(&'static str, ResultCube)>, QlError> {
        let prepared = self.module.prepare(ql_text)?;
        let mut results = Vec::with_capacity(BACKENDS.len() + 1);
        // The overlay read path goes first so any disagreement is pinned
        // on it: a settled snapshot (background folds drained) must be
        // bit-identical to the fold-then-serve results below. With
        // QB2OLAP_NO_OVERLAY set this degenerates to the blocking serve.
        let snapshot = self.module.snapshot_settled()?;
        let mut cube = self.module.execute_on_snapshot(&prepared, &snapshot)?;
        cube.sort_cells();
        results.push(("columnar-overlay", cube));
        for (label, backend) in BACKENDS {
            let mut cube = self.module.execute(&prepared, backend)?;
            cube.sort_cells();
            results.push((label, cube));
        }
        Ok(results)
    }
}

/// A backend disagreement on one QL program.
#[derive(Debug, Clone)]
pub struct QlMismatch {
    /// The program text that exposed the disagreement.
    pub ql_text: String,
    /// The first backend of the disagreeing pair.
    pub left: &'static str,
    /// The second backend of the disagreeing pair.
    pub right: &'static str,
    /// A short human-readable description of the first difference.
    pub detail: String,
}

/// First difference between two sorted result cubes, if any.
fn first_difference(a: &ResultCube, b: &ResultCube) -> Option<String> {
    if a.axes != b.axes {
        return Some(format!("axes differ: {:?} vs {:?}", a.axes, b.axes));
    }
    if a.measures != b.measures {
        return Some(format!(
            "measures differ: {:?} vs {:?}",
            a.measures, b.measures
        ));
    }
    if a.cells.len() != b.cells.len() {
        return Some(format!("{} cells vs {} cells", a.cells.len(), b.cells.len()));
    }
    for (i, (ca, cb)) in a.cells.iter().zip(&b.cells).enumerate() {
        if ca != cb {
            return Some(format!("cell {i}: {ca:?} vs {cb:?}"));
        }
    }
    None
}

/// Runs one program through the oracle and checks all backends agree.
///
/// `Ok(None)` means agreement; `Ok(Some(mismatch))` is a reportable
/// disagreement; `Err` means the (well-formed, by construction) program
/// failed to execute at all — itself a bug worth surfacing loudly.
pub fn check_program(
    oracle: &dyn QlOracle,
    ql_text: &str,
) -> Result<Option<QlMismatch>, QlError> {
    let results = oracle.evaluate(ql_text)?;
    let (base_label, base) = &results[0];
    for (label, cube) in &results[1..] {
        if let Some(detail) = first_difference(base, cube) {
            return Ok(Some(QlMismatch {
                ql_text: ql_text.to_string(),
                left: base_label,
                right: label,
                detail,
            }));
        }
    }
    Ok(None)
}

/// A SPARQL path disagreement: direct AST evaluation vs the pretty-printed
/// text round-trip.
#[derive(Debug, Clone)]
pub struct SparqlMismatch {
    /// The query rendered as text.
    pub sparql_text: String,
    /// What differed.
    pub detail: String,
}

/// Executes one generated SELECT query through both endpoint paths — the
/// parsed AST (`select_parsed`) and the pretty-printed text (`select`) —
/// and checks the outcomes agree: identical solutions, or both errors.
pub fn check_select(endpoint: &dyn Endpoint, query: &SelectQuery) -> Option<SparqlMismatch> {
    let wrapped = Query::Select(query.clone());
    let text = query_to_string(&wrapped);
    let via_ast = endpoint.select_parsed(&wrapped);
    let via_text = endpoint.select(&text);
    match (via_ast, via_text) {
        (Ok(a), Ok(b)) => {
            if a == b {
                None
            } else {
                Some(SparqlMismatch {
                    sparql_text: text,
                    detail: format!(
                        "parsed path returned {} solutions, text path {}",
                        a.len(),
                        b.len()
                    ),
                })
            }
        }
        (Err(_), Err(_)) => None,
        (Ok(_), Err(e)) => Some(SparqlMismatch {
            sparql_text: text,
            detail: format!("parsed path succeeded, text path failed: {e}"),
        }),
        (Err(e), Ok(_)) => Some(SparqlMismatch {
            sparql_text: text,
            detail: format!("text path succeeded, parsed path failed: {e}"),
        }),
    }
}

/// Convenience: the error type both endpoint paths share.
pub type SparqlResult<T> = Result<T, SparqlError>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixture::fuzz_cube;
    use crate::ql_gen::QlGenerator;
    use crate::universe::SchemaUniverse;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn backends_agree_on_generated_programs() {
        let cube = fuzz_cube();
        let universe = SchemaUniverse::from_endpoint(&cube.endpoint, &cube.schema).unwrap();
        let generator = QlGenerator::new(&universe, &cube.schema);
        let module = QueryingModule::with_schema(&cube.endpoint, cube.schema.clone());
        let oracle = ModuleOracle::new(&module);
        let mut rng = StdRng::seed_from_u64(0xD1FF);
        for spotlight in 0..40 {
            let program = generator.generate(&mut rng, spotlight);
            let text = program.to_ql_string();
            let verdict = check_program(&oracle, &text)
                .unwrap_or_else(|e| panic!("execution failed: {e:?}\n{text}"));
            assert!(verdict.is_none(), "mismatch: {verdict:?}");
        }
    }
}
