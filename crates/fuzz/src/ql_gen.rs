//! The QL program generator: a seeded walk of the **entire** QL grammar.
//!
//! Programs come out well-formed by construction: the generator tracks the
//! same per-dimension state the pipeline simplifier validates (sliced
//! dimensions, current levels, the slice-after-navigation ban, roll-up
//! path reachability) and only emits operations that state allows. Every
//! schema reference — dimension, level, attribute, member, measure — is
//! sampled from a [`SchemaUniverse`] read off the live cube.
//!
//! A `spotlight` index steers each program toward under-covered
//! productions (operation kinds, dice operators, connectors, constant
//! kinds) so that even short campaigns reach full grammar coverage;
//! [`GrammarCoverage`] proves it with wildcard-free `match`es over every
//! [`ql::ast`] production — adding an AST variant breaks this crate's
//! build until the generator and the recorder learn it.

use qb4olap::{AggregateFunction, CubeSchema};
use ql::ast::{
    CubeRef, DiceCondition, DiceOp, DiceOperand, DiceValue, QlOperation, QlProgram, QlStatement,
};
use rand::rngs::StdRng;
use rand::Rng;
use rdf::{Iri, PrefixMap, Term};

use crate::pool;
use crate::universe::{AttrInfo, SchemaUniverse};

/// All six dice comparison operators.
pub const ALL_DICE_OPS: [DiceOp; 6] = [
    DiceOp::Eq,
    DiceOp::Ne,
    DiceOp::Lt,
    DiceOp::Le,
    DiceOp::Gt,
    DiceOp::Ge,
];

/// The index of a dice operator in [`ALL_DICE_OPS`] — a wildcard-free
/// match, so a new operator cannot be added without extending the table.
pub fn dice_op_index(op: DiceOp) -> usize {
    match op {
        DiceOp::Eq => 0,
        DiceOp::Ne => 1,
        DiceOp::Lt => 2,
        DiceOp::Le => 3,
        DiceOp::Gt => 4,
        DiceOp::Ge => 5,
    }
}

/// The kind of constant a dice comparison uses, in spotlight order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ValueKind {
    String,
    Number,
    Iri,
}

fn term_value_kind(term: &Term) -> ValueKind {
    match term {
        Term::Iri(_) => ValueKind::Iri,
        Term::Literal(lit) => {
            if lit.as_integer().is_some() || lit.as_double().is_some() {
                ValueKind::Number
            } else {
                ValueKind::String
            }
        }
        Term::Blank(_) => ValueKind::Iri,
    }
}

/// Per-program generation state: mirrors what `ql::pipeline::simplify`
/// validates.
struct WalkState {
    /// Dimensions sliced out so far.
    sliced: Vec<bool>,
    /// Current level index per dimension (0 = bottom).
    current: Vec<usize>,
    /// Dimensions that were ever rolled up or drilled down — the grammar
    /// forbids slicing those even after drilling back to the bottom.
    navigated: Vec<bool>,
}

impl WalkState {
    fn new(dims: usize) -> Self {
        WalkState {
            sliced: vec![false; dims],
            current: vec![0; dims],
            navigated: vec![false; dims],
        }
    }

    fn unsliced(&self) -> usize {
        self.sliced.iter().filter(|s| !**s).count()
    }
}

/// The seeded QL generator over one cube.
pub struct QlGenerator<'a> {
    universe: &'a SchemaUniverse,
    schema: &'a CubeSchema,
}

impl<'a> QlGenerator<'a> {
    /// Creates a generator for a cube.
    pub fn new(universe: &'a SchemaUniverse, schema: &'a CubeSchema) -> Self {
        QlGenerator { universe, schema }
    }

    /// Generates one well-formed program. `spotlight` steers the walk
    /// toward specific productions; pass the program's campaign index so
    /// consecutive programs sweep the whole grammar.
    pub fn generate(&self, rng: &mut StdRng, spotlight: usize) -> QlProgram {
        let dims = self.universe.dimensions.len();
        let mut state = WalkState::new(dims);
        let mut ops: Vec<QlOperation> = Vec::new();

        // Phase A: (SLICE | ROLLUP | DRILLDOWN)*.
        let preferred_op = spotlight % 4;
        let op_count = rng.gen_range(0..=5usize);
        for slot in 0..op_count {
            let preference = if slot == 0 { Some(preferred_op) } else { None };
            if let Some(op) = self.navigation_op(rng, &mut state, preference) {
                ops.push(op);
            }
        }
        // A drilldown needs something rolled up first; when the spotlight
        // asks for one and the random walk didn't produce it, stage it.
        if preferred_op == 2 && !ops.iter().any(|o| matches!(o, QlOperation::Drilldown { .. })) {
            if let Some(up) = self.navigation_op(rng, &mut state, Some(1)) {
                ops.push(up);
                if let Some(down) = self.navigation_op(rng, &mut state, Some(2)) {
                    ops.push(down);
                }
            }
        }

        // Phase B: (DICE)*.
        let preferred_value = match (spotlight / 4) % 3 {
            0 => ValueKind::String,
            1 => ValueKind::Number,
            _ => ValueKind::Iri,
        };
        self.stage_attribute_kind(rng, &mut state, &mut ops, preferred_value);
        let mut dice_count = rng.gen_range(0..=3usize);
        if ops.is_empty() {
            dice_count = dice_count.max(1);
        }
        for slot in 0..dice_count {
            let shape = if slot == 0 {
                (spotlight / 2) % 3
            } else {
                rng.gen_range(0..3usize)
            };
            let preferred_dice_op = ALL_DICE_OPS[(spotlight + slot) % ALL_DICE_OPS.len()];
            let condition =
                self.dice_condition(rng, &state, shape, preferred_dice_op, preferred_value);
            ops.push(QlOperation::Dice {
                cube: CubeRef::Variable(String::new()),
                condition,
            });
        }

        assemble(self.universe.dataset.clone(), ops)
    }

    /// Picks one feasible SLICE / ROLLUP / DRILLDOWN, preferring the
    /// spotlighted kind (0 = slice, 1 = rollup, 2 = drilldown, 3 = none),
    /// and applies it to the walk state.
    fn navigation_op(
        &self,
        rng: &mut StdRng,
        state: &mut WalkState,
        preference: Option<usize>,
    ) -> Option<QlOperation> {
        let slice_dims: Vec<usize> = (0..state.sliced.len())
            .filter(|&d| !state.sliced[d] && !state.navigated[d] && state.unsliced() >= 2)
            .collect();
        let rollup_dims: Vec<usize> = (0..state.sliced.len())
            .filter(|&d| !state.sliced[d] && !self.rollup_targets(state, d).is_empty())
            .collect();
        let drill_dims: Vec<usize> = (0..state.sliced.len())
            .filter(|&d| !state.sliced[d] && !self.drilldown_targets(state, d).is_empty())
            .collect();

        let mut kinds = Vec::new();
        if !slice_dims.is_empty() {
            kinds.push(0usize);
        }
        if !rollup_dims.is_empty() {
            kinds.push(1);
        }
        if !drill_dims.is_empty() {
            kinds.push(2);
        }
        let kind = match preference {
            Some(k) if kinds.contains(&k) => k,
            _ => *kinds.get(rng.gen_range(0..kinds.len().max(1)))?,
        };

        let cube = CubeRef::Variable(String::new());
        match kind {
            0 => {
                let d = slice_dims[rng.gen_range(0..slice_dims.len())];
                state.sliced[d] = true;
                Some(QlOperation::Slice {
                    cube,
                    dimension: self.universe.dimensions[d].dimension.clone(),
                })
            }
            1 => {
                let d = rollup_dims[rng.gen_range(0..rollup_dims.len())];
                let targets = self.rollup_targets(state, d);
                let t = targets[rng.gen_range(0..targets.len())];
                state.current[d] = t;
                state.navigated[d] = true;
                Some(QlOperation::Rollup {
                    cube,
                    dimension: self.universe.dimensions[d].dimension.clone(),
                    level: self.universe.dimensions[d].levels[t].level.clone(),
                })
            }
            _ => {
                let d = drill_dims[rng.gen_range(0..drill_dims.len())];
                let targets = self.drilldown_targets(state, d);
                let t = targets[rng.gen_range(0..targets.len())];
                state.current[d] = t;
                state.navigated[d] = true;
                Some(QlOperation::Drilldown {
                    cube,
                    dimension: self.universe.dimensions[d].dimension.clone(),
                    level: self.universe.dimensions[d].levels[t].level.clone(),
                })
            }
        }
    }

    /// Level indexes dimension `d` can roll up to from its current level.
    fn rollup_targets(&self, state: &WalkState, d: usize) -> Vec<usize> {
        let info = &self.universe.dimensions[d];
        let dim = self.schema.dimension(&info.dimension).expect("dimension");
        let from = &info.levels[state.current[d]].level;
        (0..info.levels.len())
            .filter(|&t| {
                t != state.current[d] && dim.rollup_path(from, &info.levels[t].level).is_some()
            })
            .collect()
    }

    /// Level indexes dimension `d` can drill down to from its current
    /// level (those that can roll back *up* to it).
    fn drilldown_targets(&self, state: &WalkState, d: usize) -> Vec<usize> {
        let info = &self.universe.dimensions[d];
        let dim = self.schema.dimension(&info.dimension).expect("dimension");
        let to = &info.levels[state.current[d]].level;
        (0..info.levels.len())
            .filter(|&t| {
                t != state.current[d] && dim.rollup_path(&info.levels[t].level, to).is_some()
            })
            .collect()
    }

    /// Attribute-dice candidates at the dimensions' *current* levels:
    /// `(dimension index, attribute)` pairs with at least one value.
    fn attribute_candidates(&self, state: &WalkState) -> Vec<(usize, &AttrInfo)> {
        (0..state.sliced.len())
            .filter(|&d| !state.sliced[d])
            .flat_map(|d| {
                self.universe.dimensions[d].levels[state.current[d]]
                    .attributes
                    .iter()
                    .filter(|a| !a.values.is_empty())
                    .map(move |a| (d, a))
            })
            .collect()
    }

    /// When the spotlight asks for a constant kind no current-level
    /// attribute provides, try to roll a dimension up to a level that has
    /// one (e.g. a string attribute living on the country level).
    fn stage_attribute_kind(
        &self,
        rng: &mut StdRng,
        state: &mut WalkState,
        ops: &mut Vec<QlOperation>,
        kind: ValueKind,
    ) {
        let available = self
            .attribute_candidates(state)
            .iter()
            .any(|(_, a)| term_value_kind(&a.values[0]) == kind);
        if available {
            return;
        }
        for d in 0..state.sliced.len() {
            if state.sliced[d] {
                continue;
            }
            for t in self.rollup_targets(state, d) {
                let has_kind = self.universe.dimensions[d].levels[t]
                    .attributes
                    .iter()
                    .any(|a| !a.values.is_empty() && term_value_kind(&a.values[0]) == kind);
                if has_kind {
                    state.current[d] = t;
                    state.navigated[d] = true;
                    ops.push(QlOperation::Rollup {
                        cube: CubeRef::Variable(String::new()),
                        dimension: self.universe.dimensions[d].dimension.clone(),
                        level: self.universe.dimensions[d].levels[t].level.clone(),
                    });
                    let _ = rng; // reserved for future randomized staging
                    return;
                }
            }
        }
    }

    /// One dice condition tree: `shape` 0 = single comparison, 1 = AND,
    /// 2 = OR. The whole tree is pure-measure or pure-attribute — the
    /// columnar translation rejects mixed trees.
    fn dice_condition(
        &self,
        rng: &mut StdRng,
        state: &WalkState,
        shape: usize,
        preferred_op: DiceOp,
        preferred_value: ValueKind,
    ) -> DiceCondition {
        let candidates = self.attribute_candidates(state);
        let use_attributes = !candidates.is_empty() && rng.gen_bool(0.55);
        let leaf = |rng: &mut StdRng, forced_op: Option<DiceOp>| {
            let op = forced_op
                .unwrap_or_else(|| ALL_DICE_OPS[rng.gen_range(0..ALL_DICE_OPS.len())]);
            if use_attributes {
                self.attribute_comparison(rng, &candidates, op, preferred_value)
            } else {
                self.measure_comparison(rng, op)
            }
        };
        match shape {
            0 => leaf(rng, Some(preferred_op)),
            1 => DiceCondition::And(
                Box::new(leaf(rng, Some(preferred_op))),
                Box::new(leaf(rng, None)),
            ),
            _ => DiceCondition::Or(
                Box::new(leaf(rng, Some(preferred_op))),
                Box::new(leaf(rng, None)),
            ),
        }
    }

    fn attribute_comparison(
        &self,
        rng: &mut StdRng,
        candidates: &[(usize, &AttrInfo)],
        op: DiceOp,
        preferred_value: ValueKind,
    ) -> DiceCondition {
        // Prefer an attribute whose values have the spotlighted kind.
        let preferred: Vec<&(usize, &AttrInfo)> = candidates
            .iter()
            .filter(|(_, a)| term_value_kind(&a.values[0]) == preferred_value)
            .collect();
        let (d, attr) = if !preferred.is_empty() {
            *preferred[rng.gen_range(0..preferred.len())]
        } else {
            candidates[rng.gen_range(0..candidates.len())]
        };
        let info = &self.universe.dimensions[d];
        let level_info = info
            .levels
            .iter()
            .find(|l| l.attributes.iter().any(|a| a.attribute == attr.attribute))
            .expect("attribute came from a level");
        let sample = &attr.values[rng.gen_range(0..attr.values.len())];
        let value = self.constant_for(rng, sample);
        DiceCondition::Comparison {
            operand: DiceOperand::Attribute {
                dimension: info.dimension.clone(),
                level: level_info.level.clone(),
                attribute: attr.attribute.clone(),
            },
            op,
            value,
        }
    }

    fn measure_comparison(&self, rng: &mut StdRng, op: DiceOp) -> DiceCondition {
        let (measure, _aggregate) = self.universe.random_measure(rng);
        DiceCondition::Comparison {
            operand: DiceOperand::Measure(measure.clone()),
            op,
            value: DiceValue::Number(pool::dice_number(rng)),
        }
    }

    /// A constant matching the sampled attribute value's kind: usually the
    /// sampled value itself (guaranteed hit), sometimes a miss — a foreign
    /// name from the shared datagen pools, a pool extreme, or a
    /// nonexistent IRI.
    fn constant_for(&self, rng: &mut StdRng, sample: &Term) -> DiceValue {
        let miss = rng.gen_bool(0.3);
        match term_value_kind(sample) {
            ValueKind::String => {
                let text = match sample {
                    Term::Literal(lit) => lit.lexical().to_string(),
                    _ => String::new(),
                };
                if miss {
                    DiceValue::String(
                        datagen::workload::sample_name(rng, datagen::workload::CONTINENT_NAMES)
                            .to_string(),
                    )
                } else {
                    DiceValue::String(text)
                }
            }
            ValueKind::Number => {
                if miss {
                    DiceValue::Number(pool::dice_number(rng))
                } else {
                    let n = match sample {
                        Term::Literal(lit) => lit
                            .as_integer()
                            .map(|i| i as f64)
                            .or_else(|| lit.as_double())
                            .unwrap_or(0.0),
                        _ => 0.0,
                    };
                    DiceValue::Number(n)
                }
            }
            ValueKind::Iri => {
                if miss {
                    DiceValue::Iri(Iri::new(format!("{NS}nonexistent", NS = crate::fixture::NS)))
                } else {
                    match sample {
                        Term::Iri(iri) => DiceValue::Iri(iri.clone()),
                        _ => DiceValue::Iri(Iri::new(format!(
                            "{NS}nonexistent",
                            NS = crate::fixture::NS
                        ))),
                    }
                }
            }
        }
    }
}

/// Chains the operations into a program: the first statement reads the
/// dataset, each later one the previous statement's target. Also used by
/// the shrinker to re-chain a program after deleting statements.
pub fn assemble(dataset: Iri, ops: Vec<QlOperation>) -> QlProgram {
    let statements = ops
        .into_iter()
        .enumerate()
        .map(|(i, mut operation)| {
            let input = if i == 0 {
                CubeRef::Dataset(dataset.clone())
            } else {
                CubeRef::Variable(format!("C{i}"))
            };
            match &mut operation {
                QlOperation::Slice { cube, .. }
                | QlOperation::Rollup { cube, .. }
                | QlOperation::Drilldown { cube, .. }
                | QlOperation::Dice { cube, .. } => *cube = input,
            }
            QlStatement {
                target: format!("C{}", i + 1),
                operation,
            }
        })
        .collect();
    QlProgram {
        prefixes: PrefixMap::new(),
        statements,
    }
}

/// Every `ql::ast` production the generator must reach, by display name.
pub const ALL_QL_PRODUCTIONS: [&str; 25] = [
    "QlOperation::Slice",
    "QlOperation::Rollup",
    "QlOperation::Drilldown",
    "QlOperation::Dice",
    "CubeRef::Dataset",
    "CubeRef::Variable",
    "DiceCondition::Comparison",
    "DiceCondition::And",
    "DiceCondition::Or",
    "DiceOperand::Attribute",
    "DiceOperand::Measure",
    "DiceValue::String",
    "DiceValue::Number",
    "DiceValue::Iri",
    "DiceOp::Eq",
    "DiceOp::Ne",
    "DiceOp::Lt",
    "DiceOp::Le",
    "DiceOp::Gt",
    "DiceOp::Ge",
    "AggregateFunction::Sum",
    "AggregateFunction::Avg",
    "AggregateFunction::Count",
    "AggregateFunction::Min",
    "AggregateFunction::Max",
];

/// Grammar-coverage recorder: one counter per `ql::ast` production
/// (`fuzz.ql.production.*` in an [`obs::MetricsRegistry`]), incremented by
/// wildcard-free `match`es (the compile-time exhaustiveness guarantee the
/// CI gate relies on). [`GrammarCoverage::missing`] reads a metrics
/// snapshot, so a campaign's end-of-run gate and any external dashboard
/// see the same per-production hit counts.
#[derive(Debug, Clone)]
pub struct GrammarCoverage {
    registry: std::sync::Arc<obs::MetricsRegistry>,
}

impl Default for GrammarCoverage {
    fn default() -> Self {
        GrammarCoverage::new(std::sync::Arc::new(obs::MetricsRegistry::default()))
    }
}

impl GrammarCoverage {
    /// The counter-name prefix of every QL production counter.
    pub const PREFIX: &'static str = "fuzz.ql.production.";

    /// A recorder whose counters live in `registry` (share one to merge
    /// coverage across campaign shards).
    pub fn new(registry: std::sync::Arc<obs::MetricsRegistry>) -> Self {
        GrammarCoverage { registry }
    }

    /// The registry backing the per-production counters.
    pub fn registry(&self) -> &std::sync::Arc<obs::MetricsRegistry> {
        &self.registry
    }

    /// A point-in-time snapshot of the per-production hit counts.
    pub fn snapshot(&self) -> obs::MetricsSnapshot {
        self.registry.snapshot()
    }

    fn hit(&mut self, production: &str) {
        self.registry
            .counter(&crate::production_metric_key(Self::PREFIX, production))
            .inc();
    }

    /// Records every production a program exercises.
    pub fn record(&mut self, program: &QlProgram) {
        for statement in &program.statements {
            self.record_cube_ref(statement.operation.input());
            match &statement.operation {
                QlOperation::Slice { .. } => self.hit("QlOperation::Slice"),
                QlOperation::Rollup { .. } => self.hit("QlOperation::Rollup"),
                QlOperation::Drilldown { .. } => self.hit("QlOperation::Drilldown"),
                QlOperation::Dice { condition, .. } => {
                    self.hit("QlOperation::Dice");
                    self.record_condition(condition);
                }
            }
        }
    }

    fn record_cube_ref(&mut self, cube: &CubeRef) {
        match cube {
            CubeRef::Dataset(_) => self.hit("CubeRef::Dataset"),
            CubeRef::Variable(_) => self.hit("CubeRef::Variable"),
        }
    }

    fn record_condition(&mut self, condition: &DiceCondition) {
        match condition {
            DiceCondition::Comparison { operand, op, value } => {
                self.hit("DiceCondition::Comparison");
                self.hit(match op {
                    DiceOp::Eq => "DiceOp::Eq",
                    DiceOp::Ne => "DiceOp::Ne",
                    DiceOp::Lt => "DiceOp::Lt",
                    DiceOp::Le => "DiceOp::Le",
                    DiceOp::Gt => "DiceOp::Gt",
                    DiceOp::Ge => "DiceOp::Ge",
                });
                match operand {
                    DiceOperand::Attribute { .. } => self.hit("DiceOperand::Attribute"),
                    DiceOperand::Measure(_) => self.hit("DiceOperand::Measure"),
                }
                match value {
                    DiceValue::String(_) => self.hit("DiceValue::String"),
                    DiceValue::Number(_) => self.hit("DiceValue::Number"),
                    DiceValue::Iri(_) => self.hit("DiceValue::Iri"),
                }
            }
            DiceCondition::And(a, b) => {
                self.hit("DiceCondition::And");
                self.record_condition(a);
                self.record_condition(b);
            }
            DiceCondition::Or(a, b) => {
                self.hit("DiceCondition::Or");
                self.record_condition(a);
                self.record_condition(b);
            }
        }
    }

    /// Records the aggregate functions a cube's measures put in play (the
    /// fixture declares all five, over integer *and* float columns).
    pub fn record_aggregates(&mut self, universe: &SchemaUniverse) {
        for (_, aggregate) in &universe.measures {
            self.hit(match aggregate {
                AggregateFunction::Sum => "AggregateFunction::Sum",
                AggregateFunction::Avg => "AggregateFunction::Avg",
                AggregateFunction::Count => "AggregateFunction::Count",
                AggregateFunction::Min => "AggregateFunction::Min",
                AggregateFunction::Max => "AggregateFunction::Max",
            });
        }
    }

    /// The productions not yet exercised — the campaign asserts this is
    /// empty.
    pub fn missing(&self) -> Vec<&'static str> {
        Self::missing_in(&self.snapshot())
    }

    /// The productions whose counters are zero in `snapshot` — how the
    /// campaign's end-of-run gate reads the recorder.
    pub fn missing_in(snapshot: &obs::MetricsSnapshot) -> Vec<&'static str> {
        ALL_QL_PRODUCTIONS
            .into_iter()
            .filter(|production| {
                snapshot.counter(&crate::production_metric_key(Self::PREFIX, production)) == 0
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixture::fuzz_cube;
    use rand::SeedableRng;

    #[test]
    fn generated_programs_are_well_formed_and_cover_the_grammar() {
        let cube = fuzz_cube();
        let universe = SchemaUniverse::from_endpoint(&cube.endpoint, &cube.schema).unwrap();
        let generator = QlGenerator::new(&universe, &cube.schema);
        let mut rng = StdRng::seed_from_u64(0xD1CE);
        let mut coverage = GrammarCoverage::default();
        coverage.record_aggregates(&universe);
        for spotlight in 0..200 {
            let program = generator.generate(&mut rng, spotlight);
            assert!(!program.statements.is_empty());
            let simplified = ql::pipeline::simplify(&program, &cube.schema);
            assert!(
                simplified.is_ok(),
                "program must be well-formed:\n{}\n{:?}",
                program.to_ql_string(),
                simplified.err()
            );
            coverage.record(&program);
        }
        assert_eq!(coverage.missing(), Vec::<&str>::new());
    }

    #[test]
    fn generation_is_deterministic_for_a_seed() {
        let cube = fuzz_cube();
        let universe = SchemaUniverse::from_endpoint(&cube.endpoint, &cube.schema).unwrap();
        let generator = QlGenerator::new(&universe, &cube.schema);
        let mut a = StdRng::seed_from_u64(11);
        let mut b = StdRng::seed_from_u64(11);
        for spotlight in 0..20 {
            assert_eq!(
                generator.generate(&mut a, spotlight).to_ql_string(),
                generator.generate(&mut b, spotlight).to_ql_string()
            );
        }
    }

    #[test]
    fn generated_text_reparses_to_the_same_program() {
        let cube = fuzz_cube();
        let universe = SchemaUniverse::from_endpoint(&cube.endpoint, &cube.schema).unwrap();
        let generator = QlGenerator::new(&universe, &cube.schema);
        let mut rng = StdRng::seed_from_u64(77);
        for spotlight in 0..50 {
            let program = generator.generate(&mut rng, spotlight);
            let text = program.to_ql_string();
            let reparsed = ql::parse_ql(&text)
                .unwrap_or_else(|e| panic!("text must reparse: {e:?}\n{text}"));
            assert_eq!(reparsed.statements.len(), program.statements.len(), "{text}");
        }
    }
}
