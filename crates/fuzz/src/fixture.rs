//! The generated fuzz cube: a deterministic QB4OLAP dataset whose shape is
//! chosen to reach every corner of the QL grammar.
//!
//! * three dimensions — a three-level geography (with a **ragged** city and
//!   a ragged country), a three-level time hierarchy, and a flat category;
//! * ten measures — one integer and one float column for **each** of the
//!   five aggregate functions, so every generated program aggregates all of
//!   them at once;
//! * attributes at three different levels with string, numeric and IRI
//!   values, so dice predicates can target every [`ql::ast::DiceValue`]
//!   variant;
//! * measure values drawn from the [`crate::pool`] edge cases — signed
//!   zeros, subnormals, `f64::MAX` and `i64::MAX`-adjacent integers flow
//!   through MIN/MAX, while SUM/AVG columns stay bounded so the compensated
//!   sums cannot overflow.

use qb4olap::{
    AggregateFunction, Cardinality, CubeSchema, Dimension, Hierarchy, HierarchyStep,
    LevelAttribute, LevelComponent, MeasureSpec,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rdf::{Iri, Literal, Term};
use sparql::{Endpoint, LocalEndpoint};

use crate::pool;

/// Namespace of every IRI in the fuzz cube.
pub const NS: &str = "http://qlsmith.example/";

/// An IRI inside the fuzz cube's namespace.
pub fn firi(suffix: &str) -> Iri {
    Iri::new(format!("{NS}{suffix}"))
}

/// A member term inside the fuzz cube's namespace.
pub fn fmember(suffix: &str) -> Term {
    Term::iri(format!("{NS}member/{suffix}"))
}

/// The five aggregate functions, paired with the measure-name stem used by
/// the fixture (`m/int_<stem>` and `m/float_<stem>`).
pub const AGGREGATES: [(AggregateFunction, &str); 5] = [
    (AggregateFunction::Sum, "sum"),
    (AggregateFunction::Avg, "avg"),
    (AggregateFunction::Count, "count"),
    (AggregateFunction::Min, "min"),
    (AggregateFunction::Max, "max"),
];

/// The fuzz cube: endpoint, schema, and the observation nodes loaded so
/// far (mutation steps append to / remove from this list).
pub struct FuzzCube {
    /// The endpoint holding the cube's triples.
    pub endpoint: LocalEndpoint,
    /// The QB4OLAP schema of the cube.
    pub schema: CubeSchema,
    /// Observation nodes currently present in the store.
    pub observations: Vec<Term>,
    next_obs: usize,
}

/// City → country rollups; `c7` stays ragged (no country).
const CITY_COUNTRY: [(&str, &str); 7] = [
    ("c0", "K0"),
    ("c1", "K0"),
    ("c2", "K1"),
    ("c3", "K1"),
    ("c4", "K2"),
    ("c5", "K2"),
    ("c6", "K2"),
];

/// Country → continent rollups; `K2` stays ragged (no continent).
const COUNTRY_CONTINENT: [(&str, &str); 2] = [("K0", "X0"), ("K1", "X1")];

const CITIES: [&str; 8] = ["c0", "c1", "c2", "c3", "c4", "c5", "c6", "c7"];
const COUNTRIES: [&str; 3] = ["K0", "K1", "K2"];
const CONTINENTS: [&str; 2] = ["X0", "X1"];
const MONTHS: [&str; 12] = [
    "m00", "m01", "m02", "m03", "m04", "m05", "m06", "m07", "m08", "m09", "m10", "m11",
];
const QUARTERS: [&str; 4] = ["q0", "q1", "q2", "q3"];
const YEARS: [&str; 2] = ["y0", "y1"];
const CATEGORIES: [&str; 4] = ["a0", "a1", "a2", "a3"];

fn chain_dimension(schema: &mut CubeSchema, dim: &str, hier: &str, levels: &[Iri]) {
    let bottom = levels[0].clone();
    schema.level_components.push(LevelComponent {
        level: bottom.clone(),
        cardinality: Cardinality::ManyToOne,
        dimension: Some(firi(dim)),
    });
    let mut hierarchy = Hierarchy::new(firi(hier));
    hierarchy.levels = levels.to_vec();
    for pair in levels.windows(2) {
        hierarchy.steps.push(HierarchyStep {
            child: pair[0].clone(),
            parent: pair[1].clone(),
            cardinality: Cardinality::ManyToOne,
        });
    }
    let mut dimension = Dimension::new(firi(dim));
    dimension.hierarchies.push(hierarchy);
    schema.dimensions.push(dimension);
    for level in levels {
        schema.level_mut(level);
    }
}

/// The fuzz cube's schema (independent of the data).
pub fn fuzz_schema() -> CubeSchema {
    let mut schema = CubeSchema::new(firi("dsdQB4O"), firi("ds"));
    chain_dimension(
        &mut schema,
        "dim/geo",
        "hier/geo",
        &[firi("lv/city"), firi("lv/country"), firi("lv/continent")],
    );
    chain_dimension(
        &mut schema,
        "dim/time",
        "hier/time",
        &[firi("lv/month"), firi("lv/quarter"), firi("lv/year")],
    );
    chain_dimension(&mut schema, "dim/cat", "hier/cat", &[firi("lv/cat")]);

    for (aggregate, stem) in AGGREGATES {
        schema.measures.push(MeasureSpec {
            property: firi(&format!("m/int_{stem}")),
            aggregate,
        });
        schema.measures.push(MeasureSpec {
            property: firi(&format!("m/float_{stem}")),
            aggregate,
        });
    }

    schema
        .level_mut(&firi("lv/city"))
        .attributes
        .push(LevelAttribute::new(firi("attr/cityPop")));
    schema
        .level_mut(&firi("lv/country"))
        .attributes
        .push(LevelAttribute::new(firi("attr/countryName")));
    schema
        .level_mut(&firi("lv/country"))
        .attributes
        .push(LevelAttribute::new(firi("attr/flag")));
    schema
        .level_mut(&firi("lv/continent"))
        .attributes
        .push(LevelAttribute::new(firi("attr/continentCode")));
    schema
}

/// One complete observation (every dimension bound, all ten measures).
fn observation(rng: &mut StdRng, node_index: usize) -> qb::Observation {
    let mut obs = qb::Observation::new(Term::iri(format!("{NS}obs/o{node_index}")));
    obs.dimensions.insert(
        firi("lv/city"),
        fmember(CITIES[rng.gen_range(0..CITIES.len())]),
    );
    obs.dimensions.insert(
        firi("lv/month"),
        fmember(MONTHS[rng.gen_range(0..MONTHS.len())]),
    );
    obs.dimensions.insert(
        firi("lv/cat"),
        fmember(CATEGORIES[rng.gen_range(0..CATEGORIES.len())]),
    );
    for (_, stem) in AGGREGATES {
        // SUM/AVG columns stay bounded (the compensated sum is exact but
        // f64::MAX + f64::MAX overflows to infinity); MIN/MAX columns take
        // the full extreme pool; COUNT columns only count, any value works.
        let (int_value, float_value) = match stem {
            "min" | "max" => (pool::int_extreme(rng), pool::float_extreme(rng)),
            _ => {
                let bounded = pool::bounded_decimal(rng);
                // Mix the signed-zero / subnormal cases into the bounded
                // columns too — they are harmless for SUM but still probe
                // the order-independence of the accumulation.
                let float_value = if rng.gen_bool(0.125) {
                    [0.0, -0.0, 5e-324, -5e-324][rng.gen_range(0..4usize)]
                } else {
                    bounded
                };
                (rng.gen_range(-500..=500i64), float_value)
            }
        };
        obs.measures.insert(
            firi(&format!("m/int_{stem}")),
            Term::Literal(Literal::integer(int_value)),
        );
        obs.measures.insert(
            firi(&format!("m/float_{stem}")),
            Term::Literal(Literal::decimal(float_value)),
        );
    }
    obs
}

/// Builds the fuzz cube: 96 observations plus the full member / rollup /
/// attribute instance graph. Deterministic — every call returns the same
/// triples.
pub fn fuzz_cube() -> FuzzCube {
    let schema = fuzz_schema();
    let mut rng = StdRng::seed_from_u64(0xF1C5);

    let mut builder = qb::QbDatasetBuilder::new(firi("ds"), firi("dsd"))
        .dimension(firi("lv/city"))
        .dimension(firi("lv/month"))
        .dimension(firi("lv/cat"));
    for (_, stem) in AGGREGATES {
        builder = builder
            .measure(firi(&format!("m/int_{stem}")))
            .measure(firi(&format!("m/float_{stem}")));
    }
    let mut observations = Vec::new();
    for i in 0..96usize {
        let obs = observation(&mut rng, i);
        observations.push(obs.node.clone());
        builder = builder.observation(obs);
    }
    let (_, mut triples) = builder.build();

    for (level, members) in [
        ("lv/city", &CITIES[..]),
        ("lv/country", &COUNTRIES[..]),
        ("lv/continent", &CONTINENTS[..]),
        ("lv/month", &MONTHS[..]),
        ("lv/quarter", &QUARTERS[..]),
        ("lv/year", &YEARS[..]),
        ("lv/cat", &CATEGORIES[..]),
    ] {
        for member in members {
            triples.push(qb4olap::member_of_triple(&fmember(member), &firi(level)));
        }
    }
    for (child, parent) in CITY_COUNTRY {
        triples.push(qb4olap::rollup_triple(&fmember(child), &fmember(parent)));
    }
    for (child, parent) in COUNTRY_CONTINENT {
        triples.push(qb4olap::rollup_triple(&fmember(child), &fmember(parent)));
    }
    for (i, month) in MONTHS.iter().enumerate() {
        triples.push(qb4olap::rollup_triple(
            &fmember(month),
            &fmember(QUARTERS[i / 3]),
        ));
    }
    for (i, quarter) in QUARTERS.iter().enumerate() {
        triples.push(qb4olap::rollup_triple(
            &fmember(quarter),
            &fmember(YEARS[i / 2]),
        ));
    }

    for (i, city) in CITIES.iter().enumerate() {
        triples.push(qb4olap::attribute_triple(
            &fmember(city),
            &firi("attr/cityPop"),
            &Term::Literal(Literal::integer([90, 40, 1200, 7, 560, 3, 75, 220][i])),
        ));
    }
    for (i, country) in COUNTRIES.iter().enumerate() {
        triples.push(qb4olap::attribute_triple(
            &fmember(country),
            &firi("attr/countryName"),
            &Term::Literal(Literal::string(["Alpha", "Beta", "Gamma"][i])),
        ));
        triples.push(qb4olap::attribute_triple(
            &fmember(country),
            &firi("attr/flag"),
            &Term::iri(format!("{NS}flag/{country}")),
        ));
    }
    for (i, continent) in CONTINENTS.iter().enumerate() {
        triples.push(qb4olap::attribute_triple(
            &fmember(continent),
            &firi("attr/continentCode"),
            &Term::Literal(Literal::string(["AF", "EU"][i])),
        ));
    }

    let endpoint = LocalEndpoint::new();
    endpoint.insert_triples(&triples).unwrap();
    FuzzCube {
        endpoint,
        schema,
        observations,
        next_obs: 96,
    }
}

impl FuzzCube {
    /// Appends one fresh, complete observation (a delta-appliable append).
    pub fn append_observation(&mut self, rng: &mut StdRng) {
        let obs = observation(rng, self.next_obs);
        self.next_obs += 1;
        self.observations.push(obs.node.clone());
        let triples = qb::observation_triples(&firi("ds"), &obs);
        self.endpoint.insert_triples(&triples).unwrap();
    }

    /// Removes one random observation completely (a partial-removal delta
    /// the cube engine tombstones). Keeps at least 24 rows so later
    /// programs still aggregate something. Returns whether a row was
    /// removed.
    pub fn remove_observation(&mut self, rng: &mut StdRng) -> bool {
        if self.observations.len() <= 24 {
            return false;
        }
        let index = rng.gen_range(0..self.observations.len());
        let node = self.observations.swap_remove(index);
        self.endpoint
            .store()
            .remove_matching(Some(&node), None, None);
        true
    }

    /// Toggles the ragged city `c7`'s rollup link to `K0`: adding the link
    /// triggers a `RollupLinkAdded` delta refusal (rebuild), removing it a
    /// `RollupLinkRemoved` one — both keep the instance graph functional,
    /// so SPARQL and columnar results stay comparable.
    pub fn toggle_ragged_link(&mut self) {
        let triple = qb4olap::rollup_triple(&fmember("c7"), &fmember("K0"));
        if self.endpoint.store().contains(&triple) {
            self.endpoint.store().remove(&triple);
        } else {
            self.endpoint.insert_triples(std::slice::from_ref(&triple)).unwrap();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_is_deterministic_and_well_formed() {
        let a = fuzz_cube();
        let b = fuzz_cube();
        assert_eq!(a.endpoint.triple_count(), b.endpoint.triple_count());
        assert_eq!(a.observations.len(), 96);
        assert_eq!(a.schema.measures.len(), 10);
        assert_eq!(a.schema.dimensions.len(), 3);
        // The ragged members stay ragged.
        assert_eq!(
            qb4olap::parent_member(&a.endpoint, &fmember("c7"), &firi("lv/country")).unwrap(),
            None
        );
        assert_eq!(
            qb4olap::parent_member(&a.endpoint, &fmember("K2"), &firi("lv/continent")).unwrap(),
            None
        );
    }

    #[test]
    fn mutations_keep_the_observation_list_in_sync() {
        let mut cube = fuzz_cube();
        let mut rng = StdRng::seed_from_u64(3);
        let before = cube.endpoint.triple_count();
        cube.append_observation(&mut rng);
        assert_eq!(cube.observations.len(), 97);
        assert!(cube.endpoint.triple_count() > before);
        assert!(cube.remove_observation(&mut rng));
        assert_eq!(cube.observations.len(), 96);
        cube.toggle_ragged_link();
        assert!(
            qb4olap::parent_member(&cube.endpoint, &fmember("c7"), &firi("lv/country"))
                .unwrap()
                .is_some()
        );
        cube.toggle_ragged_link();
        assert!(
            qb4olap::parent_member(&cube.endpoint, &fmember("c7"), &firi("lv/country"))
                .unwrap()
                .is_none()
        );
    }
}
