//! The greedy shrinker: given a program whose behaviour is "interesting"
//! (a backend mismatch, usually), delete pipeline steps and simplify dice
//! predicates until no smaller program stays interesting.
//!
//! Candidate moves, tried to a fixpoint:
//!
//! 1. delete one statement and re-chain the rest (the first surviving
//!    statement reads the dataset again, targets are renumbered), and
//! 2. replace one `AND` / `OR` node of a dice condition with one of its
//!    children.
//!
//! A candidate is accepted only if it still passes `ql::simplify` (so the
//! minimized program stays well-formed) **and** the `interesting`
//! predicate still fires on its rendered text.

use qb4olap::CubeSchema;
use ql::ast::{DiceCondition, QlOperation, QlProgram};

use crate::ql_gen::assemble;

/// All programs one deletion/simplification step smaller than `program`.
fn candidates(program: &QlProgram) -> Vec<QlProgram> {
    let Some(dataset) = program.dataset().cloned() else {
        return Vec::new();
    };
    let ops: Vec<QlOperation> = program
        .statements
        .iter()
        .map(|s| s.operation.clone())
        .collect();
    let mut out = Vec::new();

    // Move 1: drop one statement.
    if ops.len() > 1 {
        for skip in 0..ops.len() {
            let rest: Vec<QlOperation> = ops
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != skip)
                .map(|(_, op)| op.clone())
                .collect();
            out.push(assemble(dataset.clone(), rest));
        }
    }

    // Move 2: shrink one dice condition tree.
    for (i, op) in ops.iter().enumerate() {
        if let QlOperation::Dice { condition, .. } = op {
            for reduced in condition_reductions(condition) {
                let mut next = ops.clone();
                next[i] = QlOperation::Dice {
                    cube: op.input().clone(),
                    condition: reduced,
                };
                out.push(assemble(dataset.clone(), next));
            }
        }
    }
    out
}

/// All conditions one step smaller: each `AND`/`OR` node replaced by one
/// child, at any depth.
fn condition_reductions(condition: &DiceCondition) -> Vec<DiceCondition> {
    match condition {
        DiceCondition::Comparison { .. } => Vec::new(),
        DiceCondition::And(a, b) => {
            let mut out = vec![(**a).clone(), (**b).clone()];
            for ra in condition_reductions(a) {
                out.push(DiceCondition::And(Box::new(ra), b.clone()));
            }
            for rb in condition_reductions(b) {
                out.push(DiceCondition::And(a.clone(), Box::new(rb)));
            }
            out
        }
        DiceCondition::Or(a, b) => {
            let mut out = vec![(**a).clone(), (**b).clone()];
            for ra in condition_reductions(a) {
                out.push(DiceCondition::Or(Box::new(ra), b.clone()));
            }
            for rb in condition_reductions(b) {
                out.push(DiceCondition::Or(a.clone(), Box::new(rb)));
            }
            out
        }
    }
}

/// Greedily minimizes `program` while `interesting(rendered text)` holds.
///
/// The input program itself must be interesting; the result is a local
/// minimum — every one-step-smaller candidate is either ill-formed or no
/// longer interesting.
pub fn shrink_ql(
    program: &QlProgram,
    schema: &CubeSchema,
    mut interesting: impl FnMut(&str) -> bool,
) -> QlProgram {
    let mut current = program.clone();
    'outer: loop {
        for candidate in candidates(&current) {
            if ql::simplify(&candidate, schema).is_err() {
                continue;
            }
            if interesting(&candidate.to_ql_string()) {
                current = candidate;
                continue 'outer;
            }
        }
        return current;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixture::{firi, fuzz_cube};
    use ql::ast::{CubeRef, DiceOp, DiceOperand, DiceValue};

    fn dice(op: DiceOp, n: f64) -> QlOperation {
        QlOperation::Dice {
            cube: CubeRef::Variable(String::new()),
            condition: DiceCondition::Comparison {
                operand: DiceOperand::Measure(firi("m/int_sum")),
                op,
                value: DiceValue::Number(n),
            },
        }
    }

    #[test]
    fn shrinker_reaches_the_minimal_trigger() {
        let cube = fuzz_cube();
        // A 4-step program; only the Ne dice is "interesting".
        let program = assemble(
            firi("ds"),
            vec![
                QlOperation::Slice {
                    cube: CubeRef::Variable(String::new()),
                    dimension: firi("dim/cat"),
                },
                QlOperation::Rollup {
                    cube: CubeRef::Variable(String::new()),
                    dimension: firi("dim/geo"),
                    level: firi("lv/country"),
                },
                dice(DiceOp::Gt, 1.0),
                dice(DiceOp::Ne, 7.0),
            ],
        );
        let minimal = shrink_ql(&program, &cube.schema, |text| text.contains("!="));
        assert_eq!(minimal.statements.len(), 1, "{}", minimal.to_ql_string());
        assert!(minimal.to_ql_string().contains("!="));
        assert!(ql::simplify(&minimal, &cube.schema).is_ok());
    }

    #[test]
    fn shrinker_simplifies_condition_trees() {
        let cube = fuzz_cube();
        let tree = DiceCondition::And(
            Box::new(DiceCondition::Or(
                Box::new(DiceCondition::Comparison {
                    operand: DiceOperand::Measure(firi("m/int_sum")),
                    op: DiceOp::Ne,
                    value: DiceValue::Number(7.0),
                }),
                Box::new(DiceCondition::Comparison {
                    operand: DiceOperand::Measure(firi("m/float_avg")),
                    op: DiceOp::Lt,
                    value: DiceValue::Number(2.0),
                }),
            )),
            Box::new(DiceCondition::Comparison {
                operand: DiceOperand::Measure(firi("m/int_max")),
                op: DiceOp::Ge,
                value: DiceValue::Number(0.0),
            }),
        );
        let program = assemble(
            firi("ds"),
            vec![QlOperation::Dice {
                cube: CubeRef::Variable(String::new()),
                condition: tree,
            }],
        );
        let minimal = shrink_ql(&program, &cube.schema, |text| text.contains("!="));
        let rendered = minimal.to_ql_string();
        assert!(rendered.contains("!="), "{rendered}");
        assert!(
            !rendered.contains("AND") && !rendered.contains("OR"),
            "connectors must shrink away: {rendered}"
        );
    }
}
