//! The regression corpus: shrunk mismatch triggers persisted as
//! self-contained files, replayed green by the corpus test on every run.
//!
//! File format — `#` header lines, a blank line, then plain QL text:
//!
//! ```text
//! # qlsmith regression
//! # seed: 0xe155eed
//! # note: MIN over signed zeros picked the scan-order winner
//!
//! QUERY
//! $C1 := SLICE (<http://qlsmith.example/ds>, <http://qlsmith.example/dim/cat>);
//! ```
//!
//! Everything the replay needs is in the file: the fixture cube is
//! deterministic, so the QL text alone reproduces the original execution;
//! the seed is kept for provenance (which campaign found it).

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Magic first line of every corpus file.
pub const HEADER: &str = "# qlsmith regression";

/// One parsed corpus file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusEntry {
    /// The campaign seed that found the trigger, if recorded.
    pub seed: Option<u64>,
    /// Free-text provenance note.
    pub note: Option<String>,
    /// The QL program text to replay.
    pub ql_text: String,
}

/// Writes one corpus file.
pub fn write_corpus_file(
    path: &Path,
    seed: u64,
    note: &str,
    ql_text: &str,
) -> io::Result<()> {
    let mut out = String::new();
    out.push_str(HEADER);
    out.push('\n');
    out.push_str(&format!("# seed: 0x{seed:x}\n"));
    if !note.is_empty() {
        out.push_str(&format!("# note: {note}\n"));
    }
    out.push('\n');
    out.push_str(ql_text);
    if !ql_text.ends_with('\n') {
        out.push('\n');
    }
    fs::write(path, out)
}

/// Reads one corpus file.
pub fn read_corpus_file(path: &Path) -> io::Result<CorpusEntry> {
    let text = fs::read_to_string(path)?;
    let mut seed = None;
    let mut note = None;
    let mut body = Vec::new();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix('#') {
            let rest = rest.trim();
            if let Some(value) = rest.strip_prefix("seed:") {
                let value = value.trim();
                seed = if let Some(hex) = value.strip_prefix("0x") {
                    u64::from_str_radix(hex, 16).ok()
                } else {
                    value.parse().ok()
                };
            } else if let Some(value) = rest.strip_prefix("note:") {
                note = Some(value.trim().to_string());
            }
        } else {
            body.push(line);
        }
    }
    // Trim leading/trailing blank lines of the body, keep inner structure.
    while body.first().is_some_and(|l| l.trim().is_empty()) {
        body.remove(0);
    }
    while body.last().is_some_and(|l| l.trim().is_empty()) {
        body.pop();
    }
    let mut ql_text = body.join("\n");
    ql_text.push('\n');
    Ok(CorpusEntry {
        seed,
        note,
        ql_text,
    })
}

/// Reads every `*.ql` file of a corpus directory, sorted by file name so
/// replay order is stable.
pub fn corpus_programs(dir: &Path) -> io::Result<Vec<(PathBuf, CorpusEntry)>> {
    let mut paths: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|entry| entry.ok())
        .map(|entry| entry.path())
        .filter(|path| path.extension().is_some_and(|ext| ext == "ql"))
        .collect();
    paths.sort();
    let mut out = Vec::with_capacity(paths.len());
    for path in paths {
        let entry = read_corpus_file(&path)?;
        out.push((path, entry));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_files_round_trip() {
        let dir = std::env::temp_dir().join("qlsmith-corpus-roundtrip");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t0001.ql");
        let ql = "QUERY\n$C1 := SLICE (<http://qlsmith.example/ds>, <http://qlsmith.example/dim/cat>);\n";
        write_corpus_file(&path, 0xE15_5EED, "unit-test entry", ql).unwrap();
        let entry = read_corpus_file(&path).unwrap();
        assert_eq!(entry.seed, Some(0xE15_5EED));
        assert_eq!(entry.note.as_deref(), Some("unit-test entry"));
        assert_eq!(entry.ql_text, ql);

        let listed = corpus_programs(&dir).unwrap();
        assert!(listed.iter().any(|(p, _)| p == &path));
        fs::remove_file(&path).ok();
    }

    #[test]
    fn header_lines_never_leak_into_the_program() {
        let dir = std::env::temp_dir().join("qlsmith-corpus-headers");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("headers.ql");
        write_corpus_file(&path, 1, "", "QUERY\n$C1 := DICE (<http://x/ds>, (<http://x/m> > 0));\n")
            .unwrap();
        let entry = read_corpus_file(&path).unwrap();
        assert!(!entry.ql_text.contains('#'));
        assert!(entry.ql_text.starts_with("QUERY"));
        assert_eq!(entry.note, None, "empty notes are omitted");
        fs::remove_file(&path).ok();
    }
}
