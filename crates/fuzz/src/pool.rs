//! The fuzzer's value pool: the numeric edge cases every campaign must
//! push through the aggregation and comparison paths.
//!
//! The pool deliberately over-weights the values that have historically
//! broken float determinism — signed zeros (MIN/MAX tie-breaks), subnormals
//! (compensated-sum underflow), `f64::MAX` (overflow at the summation rim)
//! and `i64::MAX`-adjacent integers (exact-vs-`f64` comparison divergence).

use rand::rngs::StdRng;
use rand::Rng;

/// Float edge cases for MIN/MAX measure columns and dice constants. Every
/// value renders in plain decimal notation (Rust's `Display` never emits an
/// exponent), so each one survives the QL text round-trip.
pub const FLOAT_EXTREMES: [f64; 10] = [
    0.0,
    -0.0,
    f64::MAX,
    -f64::MAX,
    5e-324,  // smallest positive subnormal
    -5e-324, // largest negative subnormal
    1.5,
    -2.25,
    100.0,
    -0.75,
];

/// Integer edge cases: the `i64` rim, where `f64` rounding collapses
/// adjacent values, plus unremarkable small numbers.
pub const INT_EXTREMES: [i64; 10] = [
    i64::MAX,
    i64::MAX - 1,
    i64::MIN + 2,
    i64::MIN + 3,
    0,
    -1,
    1,
    7,
    -360,
    4096,
];

/// Draws one float from [`FLOAT_EXTREMES`].
pub fn float_extreme(rng: &mut StdRng) -> f64 {
    FLOAT_EXTREMES[rng.gen_range(0..FLOAT_EXTREMES.len())]
}

/// Draws one integer from [`INT_EXTREMES`].
pub fn int_extreme(rng: &mut StdRng) -> i64 {
    INT_EXTREMES[rng.gen_range(0..INT_EXTREMES.len())]
}

/// A bounded decimal in quarter steps — safe for SUM/AVG columns, where an
/// `f64::MAX` would overflow the compensated sum to infinity.
pub fn bounded_decimal(rng: &mut StdRng) -> f64 {
    rng.gen_range(-4_000..=4_000i64) as f64 / 4.0
}

/// A numeric constant for a QL dice comparison: usually a small value near
/// the data, sometimes an extreme. Everything returned here renders without
/// an exponent, so `QlProgram::to_ql_string` output re-parses.
pub fn dice_number(rng: &mut StdRng) -> f64 {
    match rng.gen_range(0..6u8) {
        0 => float_extreme(rng),
        1 => int_extreme(rng) as f64,
        _ => bounded_decimal(rng),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    /// The satellite contract: the pool must contain `-0.0`, `f64::MAX`,
    /// subnormals, and `i64::MAX`-adjacent integers.
    #[test]
    fn pool_contains_the_required_edge_cases() {
        assert!(FLOAT_EXTREMES
            .iter()
            .any(|v| *v == 0.0 && v.is_sign_negative()));
        assert!(FLOAT_EXTREMES.contains(&f64::MAX));
        assert!(FLOAT_EXTREMES
            .iter()
            .any(|v| v.is_subnormal() && *v > 0.0));
        assert!(INT_EXTREMES.contains(&i64::MAX));
        assert!(INT_EXTREMES.contains(&(i64::MAX - 1)));
    }

    /// Every pool value must survive `format!("{}")` → `parse::<f64>()`
    /// bit-for-bit — the QL text round-trip the differential driver takes.
    #[test]
    fn pool_values_round_trip_through_plain_decimal_text() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..200 {
            let v = dice_number(&mut rng);
            let text = format!("{v}");
            assert!(!text.contains('e') && !text.contains('E'), "{text}");
            let back: f64 = text.parse().unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{text}");
        }
    }
}
