//! The fuzzer's value pool: the numeric edge cases every campaign must
//! push through the aggregation and comparison paths.
//!
//! The pool deliberately over-weights the values that have historically
//! broken float determinism — signed zeros (MIN/MAX tie-breaks), subnormals
//! (compensated-sum underflow), `f64::MAX` (overflow at the summation rim)
//! and `i64::MAX`-adjacent integers (exact-vs-`f64` comparison divergence).

use rand::rngs::StdRng;
use rand::Rng;

/// Float edge cases for MIN/MAX measure columns and dice constants. Every
/// value renders in plain decimal notation (Rust's `Display` never emits an
/// exponent), so each one survives the QL text round-trip.
pub const FLOAT_EXTREMES: [f64; 10] = [
    0.0,
    -0.0,
    f64::MAX,
    -f64::MAX,
    5e-324,  // smallest positive subnormal
    -5e-324, // largest negative subnormal
    1.5,
    -2.25,
    100.0,
    -0.75,
];

/// Integer edge cases: the `i64` rim, where `f64` rounding collapses
/// adjacent values, plus unremarkable small numbers.
pub const INT_EXTREMES: [i64; 10] = [
    i64::MAX,
    i64::MAX - 1,
    i64::MIN + 2,
    i64::MIN + 3,
    0,
    -1,
    1,
    7,
    -360,
    4096,
];

/// Draws one float from [`FLOAT_EXTREMES`].
pub fn float_extreme(rng: &mut StdRng) -> f64 {
    FLOAT_EXTREMES[rng.gen_range(0..FLOAT_EXTREMES.len())]
}

/// Draws one integer from [`INT_EXTREMES`].
pub fn int_extreme(rng: &mut StdRng) -> i64 {
    INT_EXTREMES[rng.gen_range(0..INT_EXTREMES.len())]
}

/// A bounded decimal in quarter steps — safe for SUM/AVG columns, where an
/// `f64::MAX` would overflow the compensated sum to infinity.
pub fn bounded_decimal(rng: &mut StdRng) -> f64 {
    rng.gen_range(-4_000..=4_000i64) as f64 / 4.0
}

/// True when `value`'s lexical form survives the QL text round-trip
/// bit-for-bit: finite, rendered by `Display` without an exponent, and
/// parsing the rendered text recovers exactly the same bits. Non-finite
/// values (`inf`, `NaN`) are rejected outright — their lexical forms are
/// not QL number literals even though Rust's `f64::from_str` accepts them.
pub fn round_trips(value: f64) -> bool {
    if !value.is_finite() {
        return false;
    }
    parse_dice_literal(&format!("{value}"))
        .is_some_and(|back| back.to_bits() == value.to_bits())
}

/// Parses a pooled numeric literal's lexical form back into an `f64`,
/// returning `None` for anything that is not a plain finite decimal — the
/// graceful counterpart of the `parse().unwrap()` this pool used to lean
/// on, which panicked the whole campaign when a lexical form came back
/// non-finite or in exponent notation.
pub fn parse_dice_literal(text: &str) -> Option<f64> {
    if text.is_empty() || text.contains(['e', 'E', 'x', 'X']) {
        return None;
    }
    let value: f64 = text.parse().ok()?;
    value.is_finite().then_some(value)
}

/// A numeric constant for a QL dice comparison: usually a small value near
/// the data, sometimes an extreme. Everything returned here renders without
/// an exponent and re-parses bit-for-bit, so `QlProgram::to_ql_string`
/// output re-parses; a draw whose lexical form would not round-trip is
/// skipped and regenerated instead of poisoning the program (and, two
/// layers up, panicking the differential driver).
pub fn dice_number(rng: &mut StdRng) -> f64 {
    for _ in 0..32 {
        let value = match rng.gen_range(0..6u8) {
            0 => float_extreme(rng),
            1 => int_extreme(rng) as f64,
            _ => bounded_decimal(rng),
        };
        if round_trips(value) {
            return value;
        }
    }
    // Every pool constant round-trips today, so this is unreachable unless
    // someone adds e.g. f64::INFINITY to FLOAT_EXTREMES — in which case the
    // campaign degrades to a safe constant instead of panicking.
    0.25
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    /// The satellite contract: the pool must contain `-0.0`, `f64::MAX`,
    /// subnormals, and `i64::MAX`-adjacent integers.
    #[test]
    fn pool_contains_the_required_edge_cases() {
        assert!(FLOAT_EXTREMES
            .iter()
            .any(|v| *v == 0.0 && v.is_sign_negative()));
        assert!(FLOAT_EXTREMES.contains(&f64::MAX));
        assert!(FLOAT_EXTREMES
            .iter()
            .any(|v| v.is_subnormal() && *v > 0.0));
        assert!(INT_EXTREMES.contains(&i64::MAX));
        assert!(INT_EXTREMES.contains(&(i64::MAX - 1)));
    }

    /// Every pool value must survive `format!("{}")` → parse bit-for-bit —
    /// the QL text round-trip the differential driver takes. Checked
    /// through the graceful parser, so a regression shows up as a test
    /// failure rather than a campaign panic.
    #[test]
    fn pool_values_round_trip_through_plain_decimal_text() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..200 {
            let v = dice_number(&mut rng);
            let text = format!("{v}");
            assert!(!text.contains('e') && !text.contains('E'), "{text}");
            let back = parse_dice_literal(&text)
                .unwrap_or_else(|| panic!("dice_number produced a non-round-trippable {text:?}"));
            assert_eq!(back.to_bits(), v.to_bits(), "{text}");
        }
    }

    /// Regression for the campaign panic: the lexical forms that used to
    /// blow up `text.parse::<f64>().unwrap()` — non-finite spellings Rust's
    /// parser happily accepts, exotic exponent text, hex floats, garbage —
    /// must come back as a graceful `None`, never a panic.
    #[test]
    fn offending_lexical_forms_are_skipped_not_panicked() {
        for text in [
            "inf", "-inf", "infinity", "+infinity", "NaN", "nan", "-NaN", // non-finite
            "1e400", "-1e400", // overflow to ±inf through the parser
            "5E-2", "1e3", "2.5e0", // exponent notation QL never emits
            "0x1p3", "0x10", // hex forms
            "", " ", "12.5.3", "twelve", "1_000", // plain garbage
        ] {
            assert_eq!(
                parse_dice_literal(text),
                None,
                "{text:?} must be rejected gracefully"
            );
        }
        // ...while every plain decimal still parses exactly.
        assert_eq!(parse_dice_literal("1.5"), Some(1.5));
        assert_eq!(parse_dice_literal("-0.75"), Some(-0.75));
        assert_eq!(parse_dice_literal("4096"), Some(4096.0));
    }

    /// The regeneration loop: non-finite values never escape
    /// `dice_number`, and `round_trips` is the gate that keeps them out.
    #[test]
    fn non_finite_values_never_escape_the_pool() {
        assert!(!round_trips(f64::INFINITY));
        assert!(!round_trips(f64::NEG_INFINITY));
        assert!(!round_trips(f64::NAN));
        for v in FLOAT_EXTREMES {
            assert!(round_trips(v), "{v} must round-trip");
        }
        for v in INT_EXTREMES {
            assert!(round_trips(v as f64), "{v} as f64 must round-trip");
        }
        let mut rng = StdRng::seed_from_u64(0xD1CE);
        for _ in 0..500 {
            assert!(round_trips(dice_number(&mut rng)));
        }
    }
}
