//! # QB2OLAP — enabling OLAP on statistical linked open data
//!
//! A Rust reproduction of the QB2OLAP system (Varga et al., ICDE 2016): a
//! tool that takes a statistical dataset published with the W3C RDF Data
//! Cube (QB) vocabulary and, without requiring any RDF, QB(4OLAP) or SPARQL
//! skills from the user,
//!
//! 1. **enriches** it into a QB4OLAP dataset (semi-automatic discovery of
//!    dimension hierarchies via functional dependencies over level-instance
//!    properties) — [`enrichment`];
//! 2. lets the user **explore** the enriched multidimensional schema and its
//!    instances — [`explorer`];
//! 3. lets the user **query** it with the high-level OLAP language QL,
//!    automatically translated into SPARQL and executed on an endpoint —
//!    [`ql`].
//!
//! All three modules share one SPARQL endpoint ([`sparql::LocalEndpoint`]
//! plays the role Virtuoso plays in the original deployment), exactly as in
//! Figure 1 of the paper. The [`Qb2Olap`] facade wires them together, and
//! [`demo`] scripts the paper's demonstration scenario over a synthetic
//! Eurostat asylum-applications dataset ([`datagen`]).
//!
//! ```
//! use qb2olap::demo;
//!
//! // Build the demo cube (generate data, load the endpoint, enrich).
//! let cube = demo::setup_demo_cube(&datagen::EurostatConfig::small(200)).unwrap();
//! let tool = qb2olap::Qb2Olap::new(cube.endpoint.clone());
//!
//! // Explore the enriched schema ...
//! let explorer = tool.explorer(&cube.dataset).unwrap();
//! assert!(explorer.schema_tree().unwrap().contains("citizenshipDim"));
//!
//! // ... and run Mary's query from Section IV of the paper.
//! let querying = tool.querying(&cube.dataset).unwrap();
//! let (prepared, result, _timings) = querying.run(&datagen::workload::mary_query()).unwrap();
//! assert!(prepared.sparql(qb2olap::SparqlVariant::Direct).lines().count() > 30);
//! assert!(!result.axes.is_empty());
//! ```

#![warn(missing_docs)]

pub mod demo;

pub use cubestore;
pub use datagen;
pub use enrichment;
pub use explorer;
pub use obs;
pub use qb;
pub use qb4olap;
pub use ql;
pub use rdf;
pub use sparql;

pub use enrichment::{EnrichmentConfig, EnrichmentSession, EnrichmentStats};
pub use explorer::{CubeExplorer, CubeSummary};
pub use obs::{ExecutionProfile, MetricsSnapshot};
pub use ql::{ExecutionBackend, QueryingModule, ResultCube, SparqlVariant};
pub use sparql::{Endpoint, LocalEndpoint};

use std::sync::Arc;

use cubestore::CubeCatalog;
use rdf::Iri;

/// The QB2OLAP tool: the three modules over one shared endpoint (Figure 1)
/// and one shared live cube catalog — the Querying and Exploration modules
/// serve from the same change-tracked columnar representation.
#[derive(Debug, Clone)]
pub struct Qb2Olap {
    endpoint: LocalEndpoint,
    catalog: Arc<CubeCatalog>,
}

impl Qb2Olap {
    /// Creates the tool over an endpoint.
    pub fn new(endpoint: LocalEndpoint) -> Self {
        Qb2Olap {
            endpoint,
            catalog: Arc::new(CubeCatalog::new()),
        }
    }

    /// Creates the tool over a fresh, empty endpoint.
    pub fn with_empty_endpoint() -> Self {
        Self::new(LocalEndpoint::new())
    }

    /// The shared endpoint.
    pub fn endpoint(&self) -> &LocalEndpoint {
        &self.endpoint
    }

    /// The shared live cube catalog.
    pub fn catalog(&self) -> &Arc<CubeCatalog> {
        &self.catalog
    }

    /// Loads Turtle data into the endpoint (how the demo's input QB dataset
    /// gets there in the first place).
    pub fn load_turtle(&self, turtle: &str) -> Result<usize, rdf::StoreError> {
        self.endpoint.store().load_turtle(turtle)
    }

    /// Starts an Enrichment-module session for a dataset.
    pub fn enrichment<'t>(
        &'t self,
        dataset: &Iri,
        config: EnrichmentConfig,
    ) -> Result<EnrichmentSession<'t>, enrichment::EnrichmentError> {
        EnrichmentSession::start(&self.endpoint, dataset, config)
    }

    /// Opens the Exploration module for an (enriched) dataset, serving
    /// navigation from the tool's shared cube catalog.
    pub fn explorer<'t>(&'t self, dataset: &Iri) -> Result<CubeExplorer<'t>, explorer::ExplorerError> {
        CubeExplorer::open_with_catalog(&self.endpoint, dataset, self.catalog.clone())
    }

    /// Opens the Exploration module with per-step SPARQL navigation (the
    /// paper's workflow, and the oracle for the columnar path).
    pub fn explorer_via_sparql<'t>(
        &'t self,
        dataset: &Iri,
    ) -> Result<CubeExplorer<'t>, explorer::ExplorerError> {
        CubeExplorer::open(&self.endpoint, dataset)
    }

    /// Opens the Querying module for an (enriched) dataset, executing
    /// columnar queries on the tool's shared cube catalog.
    pub fn querying<'t>(&'t self, dataset: &Iri) -> Result<QueryingModule<'t>, ql::QlError> {
        QueryingModule::for_dataset_with_catalog(&self.endpoint, dataset, self.catalog.clone())
    }

    /// Pins a [`cubestore::CubeSnapshot`] of a dataset's cube without
    /// waiting on maintenance: appliable changes are accreted into a delta
    /// overlay inline, structural changes fold in the background while the
    /// current pin keeps serving. See ARCHITECTURE.md §"Overlay &
    /// background fold".
    pub fn snapshot(&self, dataset: &Iri) -> Result<cubestore::CubeSnapshot, ql::QlError> {
        self.querying(dataset)?.snapshot()
    }

    /// Blocks until any in-flight background fold for `dataset` has
    /// published (or failed). A fence for tests and benchmarks; serving
    /// never needs it.
    pub fn wait_for_maintenance(&self, dataset: &Iri) {
        self.catalog.wait_for_maintenance(dataset);
    }

    /// Lists the cubes available on the endpoint.
    pub fn list_cubes(&self) -> Result<Vec<CubeSummary>, explorer::ExplorerError> {
        explorer::list_cubes(&self.endpoint)
    }

    /// A point-in-time snapshot of every metric the tool's modules have
    /// recorded — catalog maintenance decisions and refusals, scan totals,
    /// query executions, explorer navigation. Render it with
    /// [`MetricsSnapshot::render_text`] or serialize with
    /// [`MetricsSnapshot::to_json`].
    pub fn metrics(&self) -> MetricsSnapshot {
        self.catalog.metrics().snapshot()
    }

    /// EXPLAIN ANALYZE for a QL query on `dataset`: prepares the query once
    /// and renders the logical plan, per-step timings and row counts for
    /// **both** backends (direct SPARQL and columnar) side by side.
    pub fn explain(&self, dataset: &Iri, ql_text: &str) -> Result<String, ql::QlError> {
        self.querying(dataset)?.explain(ql_text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facade_wires_the_three_modules() {
        let cube = demo::setup_demo_cube(&datagen::EurostatConfig::small(150)).unwrap();
        let tool = Qb2Olap::new(cube.endpoint.clone());

        let cubes = tool.list_cubes().unwrap();
        assert_eq!(cubes.len(), 1);
        assert!(cubes[0].enriched);

        let explorer = tool.explorer(&cube.dataset).unwrap();
        assert!(explorer.schema_tree().unwrap().contains("destinationDim"));

        let querying = tool.querying(&cube.dataset).unwrap();
        let (_, result, _) = querying
            .run(&datagen::workload::rollup_citizenship_to_continent())
            .unwrap();
        assert!(!result.is_empty());

        // A fresh enrichment session can still be started on the same data.
        let session = tool
            .enrichment(&cube.dataset, demo::demo_enrichment_config())
            .unwrap();
        assert_eq!(session.qb_dataset().structure.dimensions().len(), 6);
    }

    #[test]
    fn querying_and_exploration_share_one_columnar_representation() {
        let cube = demo::setup_demo_cube(&datagen::EurostatConfig::small(150)).unwrap();
        let tool = Qb2Olap::new(cube.endpoint.clone());

        let querying = tool.querying(&cube.dataset).unwrap();
        let materialized = querying.materialize().unwrap();
        // The explorer serves members from the very same materialization,
        // without any further SPARQL.
        let explorer = tool.explorer(&cube.dataset).unwrap();
        assert!(explorer.serves_from_columns());
        let queries = cube.endpoint.queries_executed();
        let members = explorer
            .members(&rdf::vocab::eurostat_property::citizen())
            .unwrap();
        assert!(!members.is_empty());
        assert_eq!(cube.endpoint.queries_executed(), queries);
        assert!(std::sync::Arc::ptr_eq(
            &materialized,
            &tool.catalog().peek(&cube.dataset).unwrap()
        ));
    }

    #[test]
    fn facade_surfaces_metrics_and_explain() {
        let cube = demo::setup_demo_cube(&datagen::EurostatConfig::small(150)).unwrap();
        let tool = Qb2Olap::new(cube.endpoint.clone());

        let explained = tool
            .explain(&cube.dataset, &datagen::workload::mary_query())
            .unwrap();
        assert!(explained.contains("EXPLAIN ANALYZE (backend=sparql:direct"));
        assert!(explained.contains("EXPLAIN ANALYZE (backend=columnar"));

        let snapshot = tool.metrics();
        assert_eq!(snapshot.counter("catalog.refresh.fresh"), 1);
        assert_eq!(snapshot.counter("ql.execute.sparql"), 1);
        assert_eq!(snapshot.counter("ql.execute.columnar"), 1);
        assert!(snapshot.counter("cubestore.scan.rows") > 0);
        let rendered = snapshot.render_text();
        assert!(rendered.contains("catalog.refresh.fresh"));
        assert!(snapshot.to_json().contains("\"counters\""));
    }

    #[test]
    fn empty_endpoint_has_no_cubes() {
        let tool = Qb2Olap::with_empty_endpoint();
        assert!(tool.list_cubes().unwrap().is_empty());
        tool.load_turtle("@prefix ex: <http://e/> . ex:a ex:b ex:c .")
            .unwrap();
        assert_eq!(tool.endpoint().triple_count(), 1);
    }
}
