//! The paper's demonstration scenario, fully scripted.
//!
//! Section IV of the paper walks Mary the journalist through the three
//! modules over the Eurostat asylum-applications cube. This module scripts
//! exactly those steps — generate/load the QB data, run the Enrichment
//! module with the choices shown in Figure 4 (plus the destination /
//! time / age enrichment needed for the wider analyses), and hand back an
//! endpoint ready for the Exploration and Querying modules — so that the
//! examples, integration tests and the experiment-reproduction harness all
//! share one canonical setup.

use datagen::{EurostatConfig, GeneratedDataset};
use enrichment::{EnrichmentConfig, EnrichmentError, EnrichmentSession, EnrichmentStats};
use rdf::vocab::{eurostat_property, rdfs, sdmx_dimension};
use rdf::Iri;
use sparql::LocalEndpoint;

/// The enrichment configuration used by the demo: the paper's dimension and
/// hierarchy names plus default fine-tuning parameters.
pub fn demo_enrichment_config() -> EnrichmentConfig {
    EnrichmentConfig::default()
        .name_dimension(
            eurostat_property::citizen(),
            "citizenshipDim",
            "citizenshipGeoHier",
        )
        .name_dimension(eurostat_property::geo(), "destinationDim", "destinationHier")
        .name_dimension(sdmx_dimension::ref_period(), "timeDim", "timeHier")
        .name_dimension(eurostat_property::asyl_app(), "asylappDim", "asylappHier")
        .name_dimension(eurostat_property::age(), "ageDim", "ageHier")
        .name_dimension(eurostat_property::sex(), "sexDim", "sexHier")
}

/// A fully prepared demo cube: the endpoint holds the QB data, the QB4OLAP
/// schema and the level-instance triples.
#[derive(Debug, Clone)]
pub struct DemoCube {
    /// The endpoint shared by the three modules (Figure 1).
    pub endpoint: LocalEndpoint,
    /// The dataset IRI (`data:migr_asyappctzm`).
    pub dataset: Iri,
    /// Details of the generated data.
    pub generated: GeneratedDataset,
    /// Statistics of the enrichment run.
    pub enrichment: EnrichmentStats,
}

/// Generates the dataset, loads it into a fresh endpoint and runs the demo
/// enrichment (the user choices of Section IV).
pub fn setup_demo_cube(config: &EurostatConfig) -> Result<DemoCube, EnrichmentError> {
    let (endpoint, generated) = datagen::load_demo_endpoint(config);
    let enrichment = enrich_demo_cube(&endpoint, &generated.dataset)?;
    Ok(DemoCube {
        endpoint,
        dataset: generated.dataset.clone(),
        generated,
        enrichment,
    })
}

/// Runs the demo enrichment choices on an endpoint that already contains the
/// generated QB data, and loads the produced triples back into it.
///
/// Choices (mirroring the demo):
/// * citizenship: `citizen → continent → citAll`, with the `continentName`
///   attribute taken from the continents' labels;
/// * destination: `geo → politicalOrg`, with the `countryName` attribute;
/// * time: `refPeriod → year`;
/// * age: `age → ageGroup`;
/// * sex and applicant type stay single-level.
pub fn enrich_demo_cube(
    endpoint: &LocalEndpoint,
    dataset: &Iri,
) -> Result<EnrichmentStats, EnrichmentError> {
    let mut session = EnrichmentSession::start(endpoint, dataset, demo_enrichment_config())?;
    session.redefine()?;

    // Citizenship dimension: continent, then the all-citizenships top level.
    let candidates = session.discover_candidates(&eurostat_property::citizen())?;
    let continent_candidate = candidates
        .level_candidate(&datagen::eurostat::continent_property())
        .ok_or_else(|| {
            EnrichmentError::UnknownElement(
                "the continent candidate was not discovered for property:citizen".to_string(),
            )
        })?
        .clone();
    let continent = session.add_level(
        &eurostat_property::citizen(),
        &continent_candidate,
        "continent",
    )?;
    session.add_attribute(&continent, &rdfs::label(), "continentName")?;
    let upper = session.discover_candidates(&continent)?;
    if let Some(all_candidate) = upper.level_candidate(&datagen::eurostat::all_property()) {
        let all_candidate = all_candidate.clone();
        session.add_level(&continent, &all_candidate, "citAll")?;
    }

    // Destination dimension: countryName attribute and political organisation level.
    session.add_attribute(&eurostat_property::geo(), &rdfs::label(), "countryName")?;
    let geo_candidates = session.discover_candidates(&eurostat_property::geo())?;
    if let Some(polorg) =
        geo_candidates.level_candidate(&datagen::eurostat::political_org_property())
    {
        let polorg = polorg.clone();
        let level = session.add_level(&eurostat_property::geo(), &polorg, "politicalOrg")?;
        session.add_attribute(&level, &rdfs::label(), "politicalOrgName")?;
    }

    // Time dimension: months roll up to years.
    let time_candidates = session.discover_candidates(&sdmx_dimension::ref_period())?;
    if let Some(year) = time_candidates.level_candidate(&datagen::eurostat::year_property()) {
        let year = year.clone();
        session.add_level(&sdmx_dimension::ref_period(), &year, "year")?;
    }

    // Age dimension: age classes roll up to age groups.
    let age_candidates = session.discover_candidates(&eurostat_property::age())?;
    if let Some(group) = age_candidates.level_candidate(&datagen::eurostat::age_group_property()) {
        let group = group.clone();
        session.add_level(&eurostat_property::age(), &group, "ageGroup")?;
    }

    session.load_into_endpoint()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdf::vocab::demo_schema;

    #[test]
    fn demo_setup_produces_the_paper_schema() {
        let demo = setup_demo_cube(&EurostatConfig::small(250)).unwrap();
        assert_eq!(demo.generated.observation_count, 250);
        assert!(demo.enrichment.schema_triples > 0);
        assert!(demo.enrichment.instance_triples > 0);
        assert_eq!(demo.enrichment.dimensions, 6);

        let schema = qb4olap::schema_from_endpoint(&demo.endpoint, &demo.dataset).unwrap();
        // The citizenship hierarchy has the three levels from the paper's listing.
        let citizenship = schema.dimension(&demo_schema::citizenship_dim()).unwrap();
        let hierarchy = &citizenship.hierarchies[0];
        assert!(hierarchy.has_level(&rdf::vocab::eurostat_property::citizen()));
        assert!(hierarchy.has_level(&demo_schema::continent()));
        assert!(hierarchy.has_level(&demo_schema::cit_all()));
        // The attributes used by Mary's dices exist.
        assert!(schema
            .level_attributes(&demo_schema::continent())
            .iter()
            .any(|a| a.iri == demo_schema::continent_name()));
        assert!(schema
            .level_attributes(&rdf::vocab::eurostat_property::geo())
            .iter()
            .any(|a| a.iri == demo_schema::country_name()));
        // Time rolls up to year.
        assert!(schema
            .dimension(&demo_schema::time_dim())
            .unwrap()
            .has_level(&demo_schema::year()));
    }
}
