//! Shared helpers for the QB2OLAP benchmark and experiment-reproduction
//! harness (see `EXPERIMENTS.md` for the experiment index E1–E10).

#![warn(missing_docs)]

use std::time::{Duration, Instant};

use qb2olap::demo::{self, DemoCube};
use serde::Serialize;

/// Builds the demo cube (generate → load → enrich) at a given scale.
pub fn demo_cube(observations: usize) -> DemoCube {
    demo::setup_demo_cube(&datagen::EurostatConfig::small(observations))
        .expect("demo setup succeeds")
}

/// Builds the demo cube with a custom generator configuration.
pub fn demo_cube_with(config: &datagen::EurostatConfig) -> DemoCube {
    demo::setup_demo_cube(config).expect("demo setup succeeds")
}

/// Times a closure once, returning its result and the elapsed wall-clock time.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let started = Instant::now();
    let value = f();
    (value, started.elapsed())
}

/// Generates complete, delta-appliable observations over the demo cube's
/// existing member pools — the mutation shape the maintenance harnesses
/// (repro E12/E13 and the `backends` bench refresh entries) append to a
/// live endpoint. One factory per experiment keeps node IRIs unique.
pub struct ObservationFactory {
    dataset: rdf::Iri,
    /// (bottom level, its members) per demo dimension, read once.
    pools: Vec<(rdf::Iri, Vec<rdf::Term>)>,
    prefix: String,
    serial: usize,
}

impl ObservationFactory {
    /// Reads the member pools of the demo cube's six bottom levels from
    /// the endpoint. `prefix` namespaces the generated observation IRIs
    /// (`http://example.org/<prefix>/obs<N>`).
    pub fn new(endpoint: &qb2olap::LocalEndpoint, dataset: &rdf::Iri, prefix: &str) -> Self {
        use rdf::vocab::{eurostat_property, sdmx_dimension};
        let bottom_levels = [
            eurostat_property::citizen(),
            eurostat_property::geo(),
            sdmx_dimension::ref_period(),
            eurostat_property::age(),
            eurostat_property::sex(),
            eurostat_property::asyl_app(),
        ];
        let pools = bottom_levels
            .into_iter()
            .map(|level| {
                let members = qb2olap::qb4olap::members_of_level(endpoint, &level)
                    .expect("demo level has members");
                (level, members)
            })
            .collect();
        ObservationFactory {
            dataset: dataset.clone(),
            pools,
            prefix: prefix.to_string(),
            serial: 0,
        }
    }

    /// The triples of `count` fresh observations: typed, dataset-linked,
    /// one member per dimension drawn round-robin from the pools, one
    /// integer measure value — exactly what the columnar delta path
    /// accepts as a pure append.
    pub fn batch(&mut self, count: usize) -> Vec<rdf::Triple> {
        self.batch_with(count, |serial| {
            rdf::Literal::integer((serial % 500) as i64 + 1)
        })
    }

    /// Like [`ObservationFactory::batch`], but with quarter-step
    /// `xsd:decimal` measure values — appends for a *float-measure* cube
    /// (one generated with `EurostatConfig::decimal_measures`; mixing
    /// measure datatypes within one dataset is unsupported by the columnar
    /// engine, so use the factory method matching the cube's type).
    pub fn float_batch(&mut self, count: usize) -> Vec<rdf::Triple> {
        self.batch_with(count, |serial| {
            rdf::Literal::decimal((serial % 2_000) as f64 / 4.0 + 0.25)
        })
    }

    fn batch_with(
        &mut self,
        count: usize,
        measure: impl Fn(usize) -> rdf::Literal,
    ) -> Vec<rdf::Triple> {
        use rdf::vocab::{qb, rdf as rdfv, sdmx_measure};
        use rdf::{Term, Triple};
        let mut batch = Vec::with_capacity(count * 9);
        for _ in 0..count {
            let node = Term::iri(format!("http://example.org/{}/obs{}", self.prefix, self.serial));
            batch.push(Triple::new(node.clone(), rdfv::type_(), Term::Iri(qb::observation())));
            batch.push(Triple::new(node.clone(), qb::data_set(), Term::Iri(self.dataset.clone())));
            for (offset, (level, members)) in self.pools.iter().enumerate() {
                let member = members[(self.serial + offset) % members.len()].clone();
                batch.push(Triple::new(node.clone(), level.clone(), member));
            }
            batch.push(Triple::new(
                node,
                sdmx_measure::obs_value(),
                rdf::Term::Literal(measure(self.serial)),
            ));
            self.serial += 1;
        }
        batch
    }
}

/// One measured row of an experiment, recorded by the `repro` binary.
#[derive(Debug, Clone, Serialize)]
pub struct Measurement {
    /// Experiment identifier (e.g. `"E2"`).
    pub experiment: String,
    /// The independent variable (e.g. `"observations=10000"`).
    pub parameters: String,
    /// The measured quantity (e.g. `"enrichment_total_ms"`).
    pub metric: String,
    /// The measured value.
    pub value: f64,
}

impl Measurement {
    /// Creates a measurement row.
    pub fn new(
        experiment: &str,
        parameters: impl Into<String>,
        metric: impl Into<String>,
        value: f64,
    ) -> Self {
        Measurement {
            experiment: experiment.to_string(),
            parameters: parameters.into(),
            metric: metric.into(),
            value,
        }
    }
}

/// Renders measurements as an aligned text table.
pub fn render_measurements(rows: &[Measurement]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<6} {:<34} {:<34} {:>14}\n",
        "exp", "parameters", "metric", "value"
    ));
    for row in rows {
        out.push_str(&format!(
            "{:<6} {:<34} {:<34} {:>14.3}\n",
            row.experiment, row.parameters, row.metric, row.value
        ));
    }
    out
}

/// Serialises measurements as JSON (one array), for machine-readable records.
pub fn measurements_to_json(rows: &[Measurement]) -> String {
    serde_json::to_string_pretty(rows).expect("measurements serialise")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurement_rendering() {
        let rows = vec![
            Measurement::new("E2", "observations=1000", "enrichment_total_ms", 12.5),
            Measurement::new("E3", "variant=direct", "execution_ms", 3.25),
        ];
        let table = render_measurements(&rows);
        assert!(table.contains("E2"));
        assert!(table.contains("enrichment_total_ms"));
        let json = measurements_to_json(&rows);
        assert!(json.contains("\"experiment\": \"E3\""));
    }

    #[test]
    fn timed_reports_duration() {
        let (value, duration) = timed(|| 21 * 2);
        assert_eq!(value, 42);
        assert!(duration >= Duration::ZERO);
    }

    #[test]
    fn demo_cube_helper_builds_a_queryable_cube() {
        let cube = demo_cube(120);
        assert_eq!(cube.generated.observation_count, 120);
        let tool = qb2olap::Qb2Olap::new(cube.endpoint.clone());
        assert!(tool.querying(&cube.dataset).is_ok());
    }
}
