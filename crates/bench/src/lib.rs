//! Shared helpers for the QB2OLAP benchmark and experiment-reproduction
//! harness (see `EXPERIMENTS.md` for the experiment index E1–E10).

#![warn(missing_docs)]

use std::time::{Duration, Instant};

use qb2olap::demo::{self, DemoCube};
use serde::Serialize;

/// Builds the demo cube (generate → load → enrich) at a given scale.
pub fn demo_cube(observations: usize) -> DemoCube {
    demo::setup_demo_cube(&datagen::EurostatConfig::small(observations))
        .expect("demo setup succeeds")
}

/// Builds the demo cube with a custom generator configuration.
pub fn demo_cube_with(config: &datagen::EurostatConfig) -> DemoCube {
    demo::setup_demo_cube(config).expect("demo setup succeeds")
}

/// Times a closure once, returning its result and the elapsed wall-clock time.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let started = Instant::now();
    let value = f();
    (value, started.elapsed())
}

/// One measured row of an experiment, recorded by the `repro` binary.
#[derive(Debug, Clone, Serialize)]
pub struct Measurement {
    /// Experiment identifier (e.g. `"E2"`).
    pub experiment: String,
    /// The independent variable (e.g. `"observations=10000"`).
    pub parameters: String,
    /// The measured quantity (e.g. `"enrichment_total_ms"`).
    pub metric: String,
    /// The measured value.
    pub value: f64,
}

impl Measurement {
    /// Creates a measurement row.
    pub fn new(
        experiment: &str,
        parameters: impl Into<String>,
        metric: impl Into<String>,
        value: f64,
    ) -> Self {
        Measurement {
            experiment: experiment.to_string(),
            parameters: parameters.into(),
            metric: metric.into(),
            value,
        }
    }
}

/// Renders measurements as an aligned text table.
pub fn render_measurements(rows: &[Measurement]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<6} {:<34} {:<34} {:>14}\n",
        "exp", "parameters", "metric", "value"
    ));
    for row in rows {
        out.push_str(&format!(
            "{:<6} {:<34} {:<34} {:>14.3}\n",
            row.experiment, row.parameters, row.metric, row.value
        ));
    }
    out
}

/// Serialises measurements as JSON (one array), for machine-readable records.
pub fn measurements_to_json(rows: &[Measurement]) -> String {
    serde_json::to_string_pretty(rows).expect("measurements serialise")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurement_rendering() {
        let rows = vec![
            Measurement::new("E2", "observations=1000", "enrichment_total_ms", 12.5),
            Measurement::new("E3", "variant=direct", "execution_ms", 3.25),
        ];
        let table = render_measurements(&rows);
        assert!(table.contains("E2"));
        assert!(table.contains("enrichment_total_ms"));
        let json = measurements_to_json(&rows);
        assert!(json.contains("\"experiment\": \"E3\""));
    }

    #[test]
    fn timed_reports_duration() {
        let (value, duration) = timed(|| 21 * 2);
        assert_eq!(value, 42);
        assert!(duration >= Duration::ZERO);
    }

    #[test]
    fn demo_cube_helper_builds_a_queryable_cube() {
        let cube = demo_cube(120);
        assert_eq!(cube.generated.observation_count, 120);
        let tool = qb2olap::Qb2Olap::new(cube.endpoint.clone());
        assert!(tool.querying(&cube.dataset).is_ok());
    }
}
