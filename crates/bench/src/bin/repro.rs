//! Experiment-reproduction harness: regenerates the measurements behind every
//! figure/claim of the paper (see EXPERIMENTS.md for the index E1–E17).
//!
//! Usage:
//! ```text
//! cargo run --release -p qb2olap_bench --bin repro -- [all|e1|e2|...|e18] [--observations N] [--json]
//! ```

use std::collections::BTreeSet;

use enrichment::{EnrichmentConfig, EnrichmentSession};
use qb2olap::{demo, Endpoint, ExecutionBackend, Qb2Olap, SparqlVariant};
use qb2olap_bench::{demo_cube_with, measurements_to_json, render_measurements, timed, Measurement};
use rdf::vocab::eurostat_property;

/// A byte-counting wrapper around the system allocator, so E13 can report
/// *allocation per refresh* — the quantity the copy-on-write columns are
/// designed to shrink — not just wall-clock latency.
mod alloc_counter {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    static ALLOCATED_BYTES: AtomicU64 = AtomicU64::new(0);

    /// Counts every allocation's size; frees are not subtracted (the
    /// metric is allocation churn, not peak residency).
    pub struct CountingAllocator;

    // SAFETY: delegates directly to `System`, only adding a relaxed
    // atomic counter on the allocation paths.
    unsafe impl GlobalAlloc for CountingAllocator {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCATED_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
            unsafe { System.alloc(layout) }
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            unsafe { System.dealloc(ptr, layout) }
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCATED_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
            unsafe { System.realloc(ptr, layout, new_size) }
        }
    }

    /// Total bytes allocated so far; subtract two snapshots to get the
    /// churn of the code in between.
    pub fn allocated_bytes() -> u64 {
        ALLOCATED_BYTES.load(Ordering::Relaxed)
    }
}

#[global_allocator]
static ALLOC: alloc_counter::CountingAllocator = alloc_counter::CountingAllocator;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut experiment = "all".to_string();
    let mut observations = 20_000usize;
    let mut as_json = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--observations" => {
                observations = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(observations);
            }
            "--json" => as_json = true,
            other if !other.starts_with("--") => experiment = other.to_lowercase(),
            _ => {}
        }
    }

    let mut rows: Vec<Measurement> = Vec::new();
    let run = |id: &str, experiment: &str| experiment == "all" || experiment == id;

    if run("e1", &experiment) {
        rows.extend(e1_pipeline(observations.min(10_000)));
    }
    if run("e2", &experiment) {
        rows.extend(e2_enrichment_scaling(observations));
    }
    if run("e3", &experiment) || run("e10", &experiment) {
        rows.extend(e3_e10_querying(observations));
    }
    if run("e4", &experiment) {
        rows.extend(e4_candidate_discovery());
    }
    if run("e5", &experiment) {
        rows.extend(e5_exploration());
    }
    if run("e6", &experiment) {
        rows.extend(e6_mary_query(observations));
    }
    if run("e7", &experiment) {
        rows.extend(e7_paper_scale());
    }
    if run("e8", &experiment) {
        rows.extend(e8_quasi_fd());
    }
    if run("e9", &experiment) {
        rows.extend(e9_simplification(observations.min(10_000)));
    }
    if run("e11", &experiment) {
        rows.extend(e11_backend_comparison(observations));
    }
    if run("e12", &experiment) {
        rows.extend(e12_incremental_maintenance(observations));
    }
    if run("e13", &experiment) {
        rows.extend(e13_cow_and_tombstone_maintenance(observations));
    }
    if run("e14", &experiment) {
        rows.extend(e14_float_and_partial_removal_maintenance(observations));
    }
    if run("e16", &experiment) {
        rows.extend(e16_observability_overhead(observations));
    }
    if run("e17", &experiment) {
        rows.extend(e17_zone_map_pruning(observations));
    }
    if run("e18", &experiment) {
        rows.extend(e18_serving_under_rebuild(observations));
    }

    if as_json {
        println!("{}", measurements_to_json(&rows));
    } else {
        println!("{}", render_measurements(&rows));
    }
}

fn millis(duration: std::time::Duration) -> f64 {
    duration.as_secs_f64() * 1_000.0
}

/// E1 / Figure 1: the end-to-end pipeline over one endpoint.
fn e1_pipeline(observations: usize) -> Vec<Measurement> {
    let parameters = format!("observations={observations}");
    let (cube, setup) = timed(|| demo_cube_with(&datagen::EurostatConfig::small(observations)));
    let tool = Qb2Olap::new(cube.endpoint.clone());
    let querying = tool.querying(&cube.dataset).expect("cube is enriched");
    let (_, query) = timed(|| {
        querying
            .run(&datagen::workload::rollup_citizenship_to_continent())
            .expect("query runs")
    });
    vec![
        Measurement::new("E1", &parameters, "load_and_enrich_ms", millis(setup)),
        Measurement::new("E1", &parameters, "rollup_query_ms", millis(query)),
        Measurement::new(
            "E1",
            &parameters,
            "endpoint_triples",
            cube.endpoint.triple_count() as f64,
        ),
    ]
}

/// E2 / Figure 2: per-phase timing and output sizes of the Enrichment module
/// as a function of the observation count.
fn e2_enrichment_scaling(max_observations: usize) -> Vec<Measurement> {
    let mut rows = Vec::new();
    for observations in [1_000usize, 5_000, 20_000, 80_000] {
        if observations > max_observations.max(1_000) {
            continue;
        }
        let (endpoint, data) =
            datagen::load_demo_endpoint(&datagen::EurostatConfig::small(observations));
        let parameters = format!("observations={observations}");

        let mut session = EnrichmentSession::start(
            &endpoint,
            &data.dataset,
            qb2olap::demo::demo_enrichment_config(),
        )
        .expect("session starts");
        let (_, redefinition) = timed(|| session.redefine().expect("redefinition"));
        let (candidates, discovery) = timed(|| {
            session
                .discover_candidates(&eurostat_property::citizen())
                .expect("discovery")
        });
        let (_, full) = timed(|| demo::enrich_demo_cube(&endpoint, &data.dataset).expect("enrich"));

        rows.push(Measurement::new(
            "E2",
            &parameters,
            "redefinition_ms",
            millis(redefinition),
        ));
        rows.push(Measurement::new(
            "E2",
            &parameters,
            "citizen_discovery_ms",
            millis(discovery),
        ));
        rows.push(Measurement::new(
            "E2",
            &parameters,
            "citizen_level_candidates",
            candidates.levels.len() as f64,
        ));
        rows.push(Measurement::new(
            "E2",
            &parameters,
            "full_enrichment_ms",
            millis(full),
        ));
    }
    rows
}

/// E3 / Figure 3 and E10: per-phase querying timings and the direct vs
/// alternative SPARQL variants across the workload.
fn e3_e10_querying(observations: usize) -> Vec<Measurement> {
    let cube = demo_cube_with(&datagen::EurostatConfig::small(observations));
    let tool = Qb2Olap::new(cube.endpoint.clone());
    let querying = tool.querying(&cube.dataset).expect("cube is enriched");
    let mut rows = Vec::new();
    for (name, text) in datagen::workload::bench_queries() {
        let parameters = format!("query={name},observations={observations}");
        let (prepared, preparation) = timed(|| querying.prepare(&text).expect("prepare"));
        let (direct, direct_time) =
            timed(|| querying.execute(&prepared, SparqlVariant::Direct).expect("direct"));
        let (alternative, alternative_time) = timed(|| {
            querying
                .execute(&prepared, SparqlVariant::Alternative)
                .expect("alternative")
        });
        assert_eq!(direct, alternative, "variants must agree ({name})");
        rows.push(Measurement::new(
            "E3",
            &parameters,
            "simplify_and_translate_ms",
            millis(preparation),
        ));
        rows.push(Measurement::new(
            "E3",
            &parameters,
            "sparql_lines_direct",
            prepared.sparql(SparqlVariant::Direct).lines().count() as f64,
        ));
        rows.push(Measurement::new(
            "E10",
            &parameters,
            "execute_direct_ms",
            millis(direct_time),
        ));
        rows.push(Measurement::new(
            "E10",
            &parameters,
            "execute_alternative_ms",
            millis(alternative_time),
        ));
        rows.push(Measurement::new(
            "E10",
            &parameters,
            "result_cells",
            direct.len() as f64,
        ));
    }
    rows
}

/// E4 / Figure 4: candidate properties discovered for `property:citizen`.
fn e4_candidate_discovery() -> Vec<Measurement> {
    let (endpoint, data) = datagen::load_demo_endpoint(&datagen::EurostatConfig::small(5_000));
    let mut session = EnrichmentSession::start(
        &endpoint,
        &data.dataset,
        qb2olap::demo::demo_enrichment_config(),
    )
    .expect("session starts");
    session.redefine().expect("redefine");
    let candidates = session
        .discover_candidates(&eurostat_property::citizen())
        .expect("discovery");
    println!("{}", candidates.to_report());
    let continent_found = candidates
        .level_candidate(&datagen::eurostat::continent_property())
        .is_some();
    let external_found = candidates
        .level_candidate(&rdf::vocab::dbpedia::government_type())
        .is_some();
    vec![
        Measurement::new("E4", "level=property:citizen", "level_candidates", candidates.levels.len() as f64),
        Measurement::new("E4", "level=property:citizen", "attribute_candidates", candidates.attributes.len() as f64),
        Measurement::new("E4", "level=property:citizen", "continent_discovered", continent_found as u8 as f64),
        Measurement::new("E4", "level=property:citizen", "external_governmentType_discovered", external_found as u8 as f64),
    ]
}

/// E5 / Figure 5: member clustering per level and roll-up edges.
fn e5_exploration() -> Vec<Measurement> {
    let cube = demo_cube_with(&datagen::EurostatConfig::small(5_000));
    let tool = Qb2Olap::new(cube.endpoint.clone());
    let explorer = tool.explorer(&cube.dataset).expect("cube is enriched");
    let clusters = explorer
        .cluster_by_level(&rdf::vocab::demo_schema::citizenship_dim())
        .expect("clusters");
    let edges = explorer
        .rollup_edges(
            &eurostat_property::citizen(),
            &rdf::vocab::demo_schema::continent(),
        )
        .expect("edges");
    println!("{}", explorer.schema_tree().expect("tree"));
    let mut rows = Vec::new();
    for (level, members) in &clusters {
        rows.push(Measurement::new(
            "E5",
            format!("level={}", level.local_name()),
            "members",
            members.len() as f64,
        ));
    }
    rows.push(Measurement::new(
        "E5",
        "citizen->continent",
        "rollup_edges",
        edges.len() as f64,
    ));
    rows
}

/// E6 / Section IV: Mary's query — simplification, > 30 lines of SPARQL,
/// equal results for both variants.
fn e6_mary_query(observations: usize) -> Vec<Measurement> {
    let cube = demo_cube_with(&datagen::EurostatConfig::small(observations));
    let tool = Qb2Olap::new(cube.endpoint.clone());
    let querying = tool.querying(&cube.dataset).expect("cube is enriched");
    let prepared = querying
        .prepare(&datagen::workload::mary_query())
        .expect("prepare");
    let direct = querying
        .execute(&prepared, SparqlVariant::Direct)
        .expect("direct");
    let alternative = querying
        .execute(&prepared, SparqlVariant::Alternative)
        .expect("alternative");
    let parameters = format!("observations={observations}");
    vec![
        Measurement::new(
            "E6",
            &parameters,
            "sparql_lines_direct",
            prepared.sparql(SparqlVariant::Direct).lines().count() as f64,
        ),
        Measurement::new(
            "E6",
            &parameters,
            "ql_operations",
            prepared.report.original_operations as f64,
        ),
        Measurement::new("E6", &parameters, "result_cells", direct.len() as f64),
        Measurement::new(
            "E6",
            &parameters,
            "variants_agree",
            (direct == alternative) as u8 as f64,
        ),
    ]
}

/// E7 / Section I: the 80,000-observation demo scale.
fn e7_paper_scale() -> Vec<Measurement> {
    let config = datagen::EurostatConfig::default(); // 80,000 observations
    let (cube, setup) = timed(|| demo_cube_with(&config));
    let tool = Qb2Olap::new(cube.endpoint.clone());
    let querying = tool.querying(&cube.dataset).expect("cube is enriched");
    let (result, query) = timed(|| {
        querying
            .run(&datagen::workload::mary_query())
            .expect("query runs")
            .1
    });
    vec![
        Measurement::new("E7", "observations=80000", "observations_generated", cube.generated.observation_count as f64),
        Measurement::new("E7", "observations=80000", "endpoint_triples", cube.endpoint.triple_count() as f64),
        Measurement::new("E7", "observations=80000", "load_and_enrich_ms", millis(setup)),
        Measurement::new("E7", "observations=80000", "mary_query_ms", millis(query)),
        Measurement::new("E7", "observations=80000", "mary_result_cells", result.len() as f64),
    ]
}

/// E8 / Section III-A: quasi-FD discovery under link noise as a function of
/// the error threshold.
fn e8_quasi_fd() -> Vec<Measurement> {
    let noisy = datagen::EurostatConfig {
        observations: 2_000,
        noise: datagen::NoiseConfig {
            missing_link_fraction: 0.1,
            conflicting_link_fraction: 0.1,
        },
        ..Default::default()
    };
    let (endpoint, data) = datagen::load_demo_endpoint(&noisy);
    let mut rows = Vec::new();
    for threshold in [0.0, 0.05, 0.1, 0.15, 0.2, 0.3] {
        let config = EnrichmentConfig::default()
            .without_external_sources()
            .with_fd_error_threshold(threshold)
            .with_min_support(0.5);
        let mut session =
            EnrichmentSession::start(&endpoint, &data.dataset, config).expect("session starts");
        session.redefine().expect("redefine");
        let candidates = session
            .discover_candidates(&eurostat_property::citizen())
            .expect("discovery");
        let accepted = candidates
            .level_candidate(&datagen::eurostat::continent_property())
            .is_some();
        rows.push(Measurement::new(
            "E8",
            format!("noise=0.2,threshold={threshold}"),
            "continent_accepted",
            accepted as u8 as f64,
        ));
        rows.push(Measurement::new(
            "E8",
            format!("noise=0.2,threshold={threshold}"),
            "level_candidates",
            candidates.levels.len() as f64,
        ));
    }
    rows
}

/// E9 / Section III-B: the simplification ablation — operation counts and
/// execution time of the naively written vs the simplified program.
fn e9_simplification(observations: usize) -> Vec<Measurement> {
    let cube = demo_cube_with(&datagen::EurostatConfig::small(observations));
    let tool = Qb2Olap::new(cube.endpoint.clone());
    let querying = tool.querying(&cube.dataset).expect("cube is enriched");

    let mut rows = Vec::new();
    for (name, text) in [
        ("optimized", datagen::workload::mary_query()),
        ("unoptimized", datagen::workload::mary_query_unoptimized()),
    ] {
        let parameters = format!("program={name},observations={observations}");
        let (prepared, preparation) = timed(|| querying.prepare(&text).expect("prepare"));
        let (cube_result, execution) =
            timed(|| querying.execute(&prepared, SparqlVariant::Direct).expect("execute"));
        rows.push(Measurement::new(
            "E9",
            &parameters,
            "original_operations",
            prepared.report.original_operations as f64,
        ));
        rows.push(Measurement::new(
            "E9",
            &parameters,
            "simplified_operations",
            prepared.report.simplified_operations as f64,
        ));
        rows.push(Measurement::new(
            "E9",
            &parameters,
            "fused_operations",
            prepared.report.fused_operations as f64,
        ));
        rows.push(Measurement::new(
            "E9",
            &parameters,
            "prepare_ms",
            millis(preparation),
        ));
        rows.push(Measurement::new(
            "E9",
            &parameters,
            "execute_ms",
            millis(execution),
        ));
        rows.push(Measurement::new(
            "E9",
            &parameters,
            "result_cells",
            cube_result.len() as f64,
        ));
    }

    // Confirm both programs produce identical cubes (the point of rule (b)).
    let a = querying
        .run(&datagen::workload::mary_query())
        .expect("optimized runs")
        .1;
    let b = querying
        .run(&datagen::workload::mary_query_unoptimized())
        .expect("unoptimized runs")
        .1;
    let distinct: BTreeSet<bool> = [a == b].into_iter().collect();
    rows.push(Measurement::new(
        "E9",
        format!("observations={observations}"),
        "programs_equivalent",
        distinct.contains(&true) as u8 as f64,
    ));
    rows
}

/// E11: execution-backend comparison — the same prepared workload queries
/// executed via the QL → SPARQL translation and via the columnar cube
/// engine, reported as median/MAD over repeated runs (plus the one-time
/// materialization cost and a cell-for-cell parity bit).
fn e11_backend_comparison(observations: usize) -> Vec<Measurement> {
    const RUNS: usize = 9;
    let parameters = format!("observations={observations}");
    let cube = demo_cube_with(&datagen::EurostatConfig::small(observations));
    let tool = Qb2Olap::new(cube.endpoint.clone());
    let querying = tool.querying(&cube.dataset).expect("cube is enriched");

    let mut rows = Vec::new();
    let (materialized, build) = timed(|| querying.materialize().expect("materialization"));
    rows.push(Measurement::new(
        "E11",
        &parameters,
        "materialize_ms",
        millis(build),
    ));
    rows.push(Measurement::new(
        "E11",
        &parameters,
        "materialized_rows",
        materialized.stats().rows as f64,
    ));

    for (name, text) in datagen::workload::bench_queries() {
        let prepared = querying.prepare(&text).expect("workload queries prepare");
        // A parity failure must abort the harness (CI runs E11 as a smoke
        // step), not just show up as a metric in discarded output.
        assert_eq!(
            querying
                .execute(&prepared, SparqlVariant::Direct)
                .expect("SPARQL backend runs"),
            querying
                .execute(&prepared, ExecutionBackend::Columnar)
                .expect("columnar backend runs"),
            "E11: backends disagree for workload query '{name}'"
        );
        for (backend_name, backend) in [
            ("sparql_direct", ExecutionBackend::Sparql(SparqlVariant::Direct)),
            ("columnar", ExecutionBackend::Columnar),
        ] {
            let samples: Vec<std::time::Duration> = (0..RUNS)
                .map(|_| timed(|| querying.execute(&prepared, backend).expect("executes")).1)
                .collect();
            let stats = criterion::Stats::from_durations(&samples).expect("samples exist");
            let query_parameters = format!("{parameters} query={name} backend={backend_name}");
            rows.push(Measurement::new(
                "E11",
                &query_parameters,
                "execute_median_ms",
                millis(stats.median),
            ));
            rows.push(Measurement::new(
                "E11",
                &query_parameters,
                "execute_mad_ms",
                millis(stats.mad),
            ));
        }
    }
    rows.push(Measurement::new("E11", &parameters, "backends_identical", 1.0));
    rows
}

/// E12: incremental cube maintenance and columnar exploration — a pure
/// observation-append delta vs a full re-materialization, the rebuild
/// fallback with its reported reason, and exploration served from the
/// catalog's columns vs per-step SPARQL. Parity failures abort (the CI
/// smoke step runs this experiment).
fn e12_incremental_maintenance(observations: usize) -> Vec<Measurement> {
    use qb2olap::cubestore::{MaintenanceStrategy, MaterializedCube};
    use rdf::vocab::demo_schema;

    const RUNS: usize = 5;
    let parameters = format!("observations={observations}");
    let cube = demo_cube_with(&datagen::EurostatConfig::small(observations));
    let tool = Qb2Olap::new(cube.endpoint.clone());
    let querying = tool.querying(&cube.dataset).expect("cube is enriched");

    let mut rows = Vec::new();
    let (_, fresh) = timed(|| querying.materialize().expect("materialization"));
    rows.push(Measurement::new(
        "E12",
        &parameters,
        "materialize_fresh_ms",
        millis(fresh),
    ));

    // Full re-materialization median: the cost every store mutation paid
    // before the catalog existed.
    let schema = querying.schema().clone();
    let rebuild_samples: Vec<std::time::Duration> = (0..RUNS)
        .map(|_| {
            timed(|| MaterializedCube::from_endpoint(&cube.endpoint, &schema).expect("rebuild")).1
        })
        .collect();
    let rebuild_stats = criterion::Stats::from_durations(&rebuild_samples).expect("samples");
    rows.push(Measurement::new(
        "E12",
        &parameters,
        "full_rebuild_median_ms",
        millis(rebuild_stats.median),
    ));

    let mut factory = qb2olap_bench::ObservationFactory::new(&cube.endpoint, &cube.dataset, "e12");

    // Pure observation-append deltas at growing batch sizes: the refresh
    // must take the delta path, and at E7 scale it is orders of magnitude
    // cheaper than the full rebuild above.
    for batch_size in [100usize, 1_000] {
        let batch = factory.batch(batch_size);
        cube.endpoint.insert_triples(&batch).expect("append");
        let (_, refresh) = timed(|| querying.materialize().expect("refresh"));
        let report = querying
            .maintenance_reports()
            .last()
            .cloned()
            .expect("refresh recorded");
        assert_eq!(
            report.strategy,
            MaintenanceStrategy::Delta,
            "E12: a pure observation append must refresh via the delta path"
        );
        assert_eq!(report.rows_appended, batch_size);
        let batch_parameters = format!("{parameters} append_batch={batch_size}");
        rows.push(Measurement::new(
            "E12",
            &batch_parameters,
            "delta_refresh_ms",
            millis(refresh),
        ));
        rows.push(Measurement::new(
            "E12",
            &batch_parameters,
            "delta_rows_appended",
            report.rows_appended as f64,
        ));
    }

    // Parity after the deltas: catalog-served cells == fresh SPARQL cells.
    let prepared = querying
        .prepare(&datagen::workload::rollup_citizenship_to_continent())
        .expect("prepare");
    assert_eq!(
        querying
            .execute(&prepared, SparqlVariant::Direct)
            .expect("SPARQL backend runs"),
        querying
            .execute(&prepared, ExecutionBackend::Columnar)
            .expect("columnar backend runs"),
        "E12: catalog-served cells diverge from SPARQL after delta refreshes"
    );
    rows.push(Measurement::new("E12", &parameters, "delta_matches_sparql", 1.0));

    // The rebuild fallback: cutting a roll-up link is not delta-appliable.
    let victim = qb2olap::qb4olap::members_of_level(&cube.endpoint, &eurostat_property::citizen())
        .expect("members")
        .first()
        .cloned()
        .expect("citizen members exist");
    let store = cube.endpoint.store();
    let links = store.triples_matching(Some(&victim), Some(&rdf::vocab::skos::broader()), None);
    for triple in &links {
        store.remove(triple);
    }
    assert!(!links.is_empty(), "victim member had a continent link");
    let (_, fallback) = timed(|| querying.materialize().expect("refresh"));
    let report = querying
        .maintenance_reports()
        .last()
        .cloned()
        .expect("refresh recorded");
    assert_eq!(report.strategy, MaintenanceStrategy::Rebuild);
    assert!(report.reason.is_some(), "rebuild reason is reported");
    rows.push(Measurement::new(
        "E12",
        &parameters,
        "rebuild_fallback_ms",
        millis(fallback),
    ));

    // Exploration from the catalog's columns vs per-step SPARQL: member
    // listing (with labels) and roll-up navigation of the citizenship
    // hierarchy.
    let columnar_explorer = tool.explorer(&cube.dataset).expect("explorer");
    let sparql_explorer = tool.explorer_via_sparql(&cube.dataset).expect("explorer");
    assert_eq!(
        columnar_explorer
            .members(&eurostat_property::citizen())
            .expect("columnar members"),
        sparql_explorer
            .members(&eurostat_property::citizen())
            .expect("SPARQL members"),
        "E12: columnar exploration diverges from the SPARQL oracle"
    );
    type Probe<'a> = (&'a str, Box<dyn Fn() + 'a>);
    let probes: Vec<Probe> = vec![
        (
            "explore_members_columns_ms",
            Box::new(|| {
                columnar_explorer
                    .members(&eurostat_property::citizen())
                    .map(|_| ())
                    .expect("members")
            }),
        ),
        (
            "explore_members_sparql_ms",
            Box::new(|| {
                sparql_explorer
                    .members(&eurostat_property::citizen())
                    .map(|_| ())
                    .expect("members")
            }),
        ),
        (
            "explore_rollup_edges_columns_ms",
            Box::new(|| {
                columnar_explorer
                    .rollup_edges(&eurostat_property::citizen(), &demo_schema::continent())
                    .map(|_| ())
                    .expect("edges")
            }),
        ),
        (
            "explore_rollup_edges_sparql_ms",
            Box::new(|| {
                sparql_explorer
                    .rollup_edges(&eurostat_property::citizen(), &demo_schema::continent())
                    .map(|_| ())
                    .expect("edges")
            }),
        ),
    ];
    for (name, run) in probes {
        let samples: Vec<std::time::Duration> = (0..RUNS).map(|_| timed(&run).1).collect();
        let stats = criterion::Stats::from_durations(&samples).expect("samples");
        rows.push(Measurement::new("E12", &parameters, name, millis(stats.median)));
    }
    rows
}

/// E13: O(delta) maintenance — copy-on-write columns and tombstoned
/// removals. Measures what PR 3's delta path could not make cheap:
/// the latency *and allocation churn* of a 1-row (and 100-row) append
/// refresh vs a full rebuild, a single-observation removal absorbed as a
/// tombstone (previously: forced rebuild), and the compaction the catalog
/// triggers once tombstones outgrow the live rows. COW violations
/// (a refresh deep-copying a dictionary) and parity failures abort — the
/// CI smoke step runs this experiment.
fn e13_cow_and_tombstone_maintenance(observations: usize) -> Vec<Measurement> {
    use qb2olap::cubestore::{MaintenanceStrategy, MaterializedCube, RebuildReason};
    use rdf::Term;

    const RUNS: usize = 5;
    let parameters = format!("observations={observations}");
    let cube = demo_cube_with(&datagen::EurostatConfig::small(observations));
    let tool = Qb2Olap::new(cube.endpoint.clone());
    let querying = tool.querying(&cube.dataset).expect("cube is enriched");
    let mut rows = Vec::new();

    querying.materialize().expect("materialization");

    // Baseline: the full rebuild every refresh used to cost, in time and
    // in allocation churn.
    let schema = querying.schema().clone();
    let rebuild_samples: Vec<std::time::Duration> = (0..RUNS)
        .map(|_| {
            timed(|| MaterializedCube::from_endpoint(&cube.endpoint, &schema).expect("rebuild")).1
        })
        .collect();
    let rebuild_stats = criterion::Stats::from_durations(&rebuild_samples).expect("samples");
    rows.push(Measurement::new(
        "E13",
        &parameters,
        "full_rebuild_median_ms",
        millis(rebuild_stats.median),
    ));
    let before = alloc_counter::allocated_bytes();
    let _rebuilt = MaterializedCube::from_endpoint(&cube.endpoint, &schema).expect("rebuild");
    rows.push(Measurement::new(
        "E13",
        &parameters,
        "full_rebuild_alloc_bytes",
        (alloc_counter::allocated_bytes() - before) as f64,
    ));
    drop(_rebuilt);

    // Observation factory over the existing member pools (same shape E12
    // uses), so appends stay delta-appliable.
    let mut factory = qb2olap_bench::ObservationFactory::new(&cube.endpoint, &cube.dataset, "e13");

    // Append refreshes at 1 and 100 rows: the COW acceptance case. The
    // refresh must take the delta path, share (not copy) every dictionary
    // with the previous cube, and allocate orders of magnitude less than
    // the rebuild above.
    for batch_size in [1usize, 100] {
        let stale = querying.materialize().expect("serve");
        cube.endpoint
            .insert_triples(&factory.batch(batch_size))
            .expect("append");
        let before = alloc_counter::allocated_bytes();
        let (fresh, refresh) = timed(|| querying.materialize().expect("refresh"));
        let alloc = alloc_counter::allocated_bytes() - before;
        let report = querying
            .maintenance_reports()
            .last()
            .cloned()
            .expect("refresh recorded");
        assert_eq!(
            report.strategy,
            MaintenanceStrategy::Delta,
            "E13: a pure observation append must refresh via the delta path"
        );
        assert_eq!(report.rows_appended, batch_size);
        for (old, new) in stale.dimension_columns().iter().zip(fresh.dimension_columns()) {
            assert!(
                old.dictionary.shares_storage_with(&new.dictionary),
                "E13: COW violation — the append refresh deep-copied the <{}> dictionary",
                old.dimension.as_str()
            );
        }
        let batch_parameters = format!("{parameters} append_batch={batch_size}");
        rows.push(Measurement::new(
            "E13",
            &batch_parameters,
            "delta_refresh_ms",
            millis(refresh),
        ));
        rows.push(Measurement::new(
            "E13",
            &batch_parameters,
            "delta_refresh_alloc_bytes",
            alloc as f64,
        ));
    }

    // A single-observation removal: previously unappliable (full rebuild),
    // now a tombstone.
    let list_observations = || -> Vec<Term> {
        cube.endpoint
            .select(&format!(
                "PREFIX qb: <http://purl.org/linked-data/cube#>
                 SELECT ?o WHERE {{ ?o a qb:Observation ; qb:dataSet <{}> }} ORDER BY ?o",
                cube.dataset.as_str()
            ))
            .expect("observations list")
            .rows
            .iter()
            .filter_map(|r| r.first().cloned().flatten())
            .collect()
    };
    let remove_one = |node: &Term| {
        let store = cube.endpoint.store();
        let triples = store.triples_matching(Some(node), None, None);
        assert!(!triples.is_empty());
        assert!(store.remove_all(&triples) >= 4, "whole observation removed");
    };
    let victim = list_observations().pop().expect("observations exist");
    remove_one(&victim);
    let before = alloc_counter::allocated_bytes();
    let (fresh, refresh) = timed(|| querying.materialize().expect("refresh"));
    let alloc = alloc_counter::allocated_bytes() - before;
    let report = querying
        .maintenance_reports()
        .last()
        .cloned()
        .expect("refresh recorded");
    assert_eq!(
        report.strategy,
        MaintenanceStrategy::Delta,
        "E13: a whole-observation removal must refresh via the tombstone path"
    );
    assert_eq!(report.rows_removed, 1);
    assert_eq!(fresh.tombstoned_rows(), 1);
    rows.push(Measurement::new(
        "E13",
        &parameters,
        "tombstone_remove_1_ms",
        millis(refresh),
    ));
    rows.push(Measurement::new(
        "E13",
        &parameters,
        "tombstone_remove_1_alloc_bytes",
        alloc as f64,
    ));

    // Parity after the COW/tombstone refreshes: catalog-served cells must
    // equal fresh SPARQL evaluation.
    let prepared = querying
        .prepare(&datagen::workload::rollup_citizenship_to_continent())
        .expect("prepare");
    assert_eq!(
        querying
            .execute(&prepared, SparqlVariant::Direct)
            .expect("SPARQL backend runs"),
        querying
            .execute(&prepared, ExecutionBackend::Columnar)
            .expect("columnar backend runs"),
        "E13: catalog-served cells diverge from SPARQL after COW/tombstone refreshes"
    );
    rows.push(Measurement::new("E13", &parameters, "tombstone_matches_sparql", 1.0));

    // Keep removing (in change-log-sized batches, refreshing between
    // rounds) until the live fraction crosses the compaction threshold;
    // the catalog must notice and re-materialize with a recorded reason.
    let batch = (observations / 4).clamp(200, 2_000);
    let mut compaction_rounds = 0usize;
    loop {
        compaction_rounds += 1;
        assert!(
            compaction_rounds <= 64,
            "E13: compaction never triggered after {compaction_rounds} rounds"
        );
        for node in list_observations().iter().take(batch) {
            remove_one(node);
        }
        let (fresh, refresh) = timed(|| querying.materialize().expect("refresh"));
        let report = querying
            .maintenance_reports()
            .last()
            .cloned()
            .expect("refresh recorded");
        match report.strategy {
            MaintenanceStrategy::Delta => continue,
            MaintenanceStrategy::Compaction => {
                assert!(
                    matches!(report.reason, Some(RebuildReason::LowLiveFraction { .. })),
                    "E13: compaction must report the live fraction: {report:?}"
                );
                assert_eq!(fresh.tombstoned_rows(), 0, "compaction reclaims dead rows");
                rows.push(Measurement::new(
                    "E13",
                    &parameters,
                    "compaction_refresh_ms",
                    millis(refresh),
                ));
                rows.push(Measurement::new(
                    "E13",
                    &parameters,
                    "compaction_after_removal_rounds",
                    compaction_rounds as f64,
                ));
                break;
            }
            other => panic!("E13: unexpected refresh strategy {other:?}: {report:?}"),
        }
    }

    // Parity holds across the compaction boundary too.
    assert_eq!(
        querying
            .execute(&prepared, SparqlVariant::Direct)
            .expect("SPARQL backend runs"),
        querying
            .execute(&prepared, ExecutionBackend::Columnar)
            .expect("columnar backend runs"),
        "E13: catalog-served cells diverge from SPARQL after compaction"
    );
    rows.push(Measurement::new("E13", &parameters, "compaction_matches_sparql", 1.0));
    rows
}

/// E14: float-measure maintenance — order-independent (compensated)
/// aggregation makes float appends and partial-observation removals
/// delta-appliable. Measures, on an `xsd:decimal`-measure cube at the
/// given scale: the full-rebuild baseline these mutations used to pay,
/// the latency/allocation of a 1- and 100-row *float* append refresh and
/// of a partial removal (one measure value stripped), and the chunked
/// float scan at 1 and 2 workers (asserted bit-identical). Any refresh
/// that falls back to a rebuild, and any columnar-vs-SPARQL divergence,
/// aborts — the CI smoke step runs this experiment.
fn e14_float_and_partial_removal_maintenance(observations: usize) -> Vec<Measurement> {
    use qb2olap::cubestore::{execute_with_threads, CubeQuery, MaintenanceStrategy, MaterializedCube};
    use rdf::vocab::{demo_schema, sdmx_measure};
    use std::collections::BTreeMap;

    const RUNS: usize = 5;
    let parameters = format!("observations={observations}");
    let cube = demo_cube_with(&datagen::EurostatConfig {
        decimal_measures: true,
        ..datagen::EurostatConfig::small(observations)
    });
    let tool = Qb2Olap::new(cube.endpoint.clone());
    let querying = tool.querying(&cube.dataset).expect("cube is enriched");
    let mut rows = Vec::new();
    querying.materialize().expect("materialization");

    // Baseline: what every float append and partial removal used to cost.
    let schema = querying.schema().clone();
    let rebuild_samples: Vec<std::time::Duration> = (0..RUNS)
        .map(|_| {
            timed(|| MaterializedCube::from_endpoint(&cube.endpoint, &schema).expect("rebuild")).1
        })
        .collect();
    let rebuild_stats = criterion::Stats::from_durations(&rebuild_samples).expect("samples");
    rows.push(Measurement::new(
        "E14",
        &parameters,
        "full_rebuild_median_ms",
        millis(rebuild_stats.median),
    ));
    let before = alloc_counter::allocated_bytes();
    let rebuilt = MaterializedCube::from_endpoint(&cube.endpoint, &schema).expect("rebuild");
    rows.push(Measurement::new(
        "E14",
        &parameters,
        "full_rebuild_alloc_bytes",
        (alloc_counter::allocated_bytes() - before) as f64,
    ));
    drop(rebuilt);

    // Float append refreshes at 1 and 100 rows: previously refused as
    // NonIntegralAppend (rebuild); now the delta path must absorb them.
    let mut factory = qb2olap_bench::ObservationFactory::new(&cube.endpoint, &cube.dataset, "e14");
    for batch_size in [1usize, 100] {
        cube.endpoint
            .insert_triples(&factory.float_batch(batch_size))
            .expect("append");
        let before = alloc_counter::allocated_bytes();
        let (_, refresh) = timed(|| querying.materialize().expect("refresh"));
        let alloc = alloc_counter::allocated_bytes() - before;
        let report = querying
            .maintenance_reports()
            .last()
            .cloned()
            .expect("refresh recorded");
        assert_eq!(
            report.strategy,
            MaintenanceStrategy::Delta,
            "E14: a float observation append must refresh via the delta path"
        );
        assert_eq!(report.rows_appended, batch_size);
        let batch_parameters = format!("{parameters} append_batch={batch_size}");
        rows.push(Measurement::new(
            "E14",
            &batch_parameters,
            "float_append_refresh_ms",
            millis(refresh),
        ));
        rows.push(Measurement::new(
            "E14",
            &batch_parameters,
            "float_append_refresh_alloc_bytes",
            alloc as f64,
        ));
    }

    // A partial removal: strip ONE measure value (one pattern = one
    // delta). Previously unappliable; now a tombstone + dropped-fragment
    // reclassification.
    let victim = cube
        .endpoint
        .select(&format!(
            "PREFIX qb: <http://purl.org/linked-data/cube#>
             SELECT ?o WHERE {{ ?o a qb:Observation ; qb:dataSet <{}> }} ORDER BY ?o LIMIT 1",
            cube.dataset.as_str()
        ))
        .expect("observation list")
        .get(0, "o")
        .cloned()
        .expect("observations exist");
    let removed =
        cube.endpoint
            .store()
            .remove_matching(Some(&victim), Some(&sdmx_measure::obs_value()), None);
    assert_eq!(removed.len(), 1);
    let before = alloc_counter::allocated_bytes();
    let (fresh, refresh) = timed(|| querying.materialize().expect("refresh"));
    let alloc = alloc_counter::allocated_bytes() - before;
    let report = querying
        .maintenance_reports()
        .last()
        .cloned()
        .expect("refresh recorded");
    assert_eq!(
        report.strategy,
        MaintenanceStrategy::Delta,
        "E14: a partial-observation removal must refresh via the delta path"
    );
    assert_eq!(report.rows_removed, 1);
    assert_eq!(fresh.tombstoned_rows(), 1);
    rows.push(Measurement::new(
        "E14",
        &parameters,
        "partial_remove_refresh_ms",
        millis(refresh),
    ));
    rows.push(Measurement::new(
        "E14",
        &parameters,
        "partial_remove_refresh_alloc_bytes",
        alloc as f64,
    ));

    // Parity after the float/partial refreshes: catalog-served cells must
    // equal fresh SPARQL evaluation, bit for bit (decimal lexicals).
    let prepared = querying
        .prepare(&datagen::workload::rollup_citizenship_to_continent())
        .expect("prepare");
    assert_eq!(
        querying
            .execute(&prepared, SparqlVariant::Direct)
            .expect("SPARQL backend runs"),
        querying
            .execute(&prepared, ExecutionBackend::Columnar)
            .expect("columnar backend runs"),
        "E14: catalog-served float cells diverge from SPARQL"
    );
    rows.push(Measurement::new("E14", &parameters, "float_matches_sparql", 1.0));

    // The chunked float scan — single- vs two-worker medians, asserted
    // bit-identical (the integral-only gate is gone).
    let materialized = querying.materialize().expect("serve");
    let scan_query = CubeQuery {
        slices: vec![
            demo_schema::destination_dim(),
            demo_schema::time_dim(),
            demo_schema::term("ageDim"),
            demo_schema::term("sexDim"),
            demo_schema::asylapp_dim(),
        ],
        rollups: BTreeMap::from([(demo_schema::citizenship_dim(), demo_schema::continent())]),
        ..CubeQuery::default()
    };
    let reference = execute_with_threads(&materialized, &scan_query, 1).expect("scan");
    for threads in [2usize, 8] {
        assert_eq!(
            execute_with_threads(&materialized, &scan_query, threads).expect("scan"),
            reference,
            "E14: chunked float scan diverges at {threads} workers"
        );
    }
    for threads in [1usize, 2] {
        let samples: Vec<std::time::Duration> = (0..RUNS)
            .map(|_| {
                timed(|| execute_with_threads(&materialized, &scan_query, threads).expect("scan")).1
            })
            .collect();
        let stats = criterion::Stats::from_durations(&samples).expect("samples");
        rows.push(Measurement::new(
            "E14",
            format!("{parameters} threads={threads}"),
            "scan_float_ms",
            millis(stats.median),
        ));
    }
    rows
}

/// E16: observability overhead — the same representative full-scan
/// roll-up executed three ways: with no subscriber installed (the
/// production default; span guards are inert and never read the clock),
/// under a collecting subscriber recording the span tree, and through
/// the traced path that builds a full `EXPLAIN ANALYZE` profile. The
/// no-op-vs-collecting gap is the cost of *observing*; the traced entry
/// is the cost of `explain`. Ends with an explain smoke (the rendered
/// profile must name the scan) and snapshot-derived counter rows.
fn e16_observability_overhead(observations: usize) -> Vec<Measurement> {
    use std::collections::BTreeMap;
    use std::sync::Arc;

    use qb2olap::cubestore::{execute, execute_traced, CubeQuery};
    use rdf::vocab::demo_schema;

    const RUNS: usize = 9;
    let parameters = format!("observations={observations}");
    let cube = demo_cube_with(&datagen::EurostatConfig::small(observations));
    let tool = Qb2Olap::new(cube.endpoint.clone());
    let querying = tool.querying(&cube.dataset).expect("cube is enriched");
    let materialized = querying.materialize().expect("materialization");

    // The same scan the `backends`/`obs_overhead` benches measure, so
    // E11 and E16 numbers are directly comparable.
    let scan_query = CubeQuery {
        slices: vec![
            demo_schema::destination_dim(),
            demo_schema::time_dim(),
            demo_schema::term("ageDim"),
            demo_schema::term("sexDim"),
            demo_schema::asylapp_dim(),
        ],
        rollups: BTreeMap::from([(demo_schema::citizenship_dim(), demo_schema::continent())]),
        ..CubeQuery::default()
    };

    let mut rows = Vec::new();

    // Instrumentation must never change results: the three paths agree
    // cell-for-cell before any timing is reported.
    let reference = execute(&materialized, &scan_query).expect("scan");
    let observed = obs::with_subscriber(Arc::new(obs::CollectingSubscriber::new()), || {
        execute(&materialized, &scan_query).expect("scan")
    });
    assert_eq!(
        reference, observed,
        "E16: a collecting subscriber changed the scan result"
    );
    let (traced, _profile, _stats) = execute_traced(&materialized, &scan_query).expect("scan");
    assert_eq!(reference, traced, "E16: the traced path changed the scan result");
    rows.push(Measurement::new(
        "E16",
        &parameters,
        "instrumented_results_identical",
        1.0,
    ));

    let noop_samples: Vec<std::time::Duration> = (0..RUNS)
        .map(|_| timed(|| execute(&materialized, &scan_query).expect("scan")).1)
        .collect();
    let noop = criterion::Stats::from_durations(&noop_samples).expect("samples");
    rows.push(Measurement::new(
        "E16",
        &parameters,
        "scan_noop_median_ms",
        millis(noop.median),
    ));
    rows.push(Measurement::new(
        "E16",
        &parameters,
        "scan_noop_mad_ms",
        millis(noop.mad),
    ));

    let collector = Arc::new(obs::CollectingSubscriber::new());
    let collecting_samples: Vec<std::time::Duration> = (0..RUNS)
        .map(|_| {
            timed(|| {
                obs::with_subscriber(collector.clone(), || {
                    execute(&materialized, &scan_query).expect("scan")
                })
            })
            .1
        })
        .collect();
    assert!(
        collector.completed().contains(&"cubestore.scan"),
        "E16: the collecting subscriber must see the scan span"
    );
    let collecting = criterion::Stats::from_durations(&collecting_samples).expect("samples");
    rows.push(Measurement::new(
        "E16",
        &parameters,
        "scan_collecting_median_ms",
        millis(collecting.median),
    ));
    rows.push(Measurement::new(
        "E16",
        &parameters,
        "scan_collecting_mad_ms",
        millis(collecting.mad),
    ));

    let traced_samples: Vec<std::time::Duration> = (0..RUNS)
        .map(|_| timed(|| execute_traced(&materialized, &scan_query).expect("scan")).1)
        .collect();
    let traced_stats = criterion::Stats::from_durations(&traced_samples).expect("samples");
    rows.push(Measurement::new(
        "E16",
        &parameters,
        "scan_traced_median_ms",
        millis(traced_stats.median),
    ));
    rows.push(Measurement::new(
        "E16",
        &parameters,
        "scan_traced_mad_ms",
        millis(traced_stats.mad),
    ));
    if noop.median.as_nanos() > 0 {
        rows.push(Measurement::new(
            "E16",
            &parameters,
            "collecting_over_noop_ratio",
            collecting.median.as_secs_f64() / noop.median.as_secs_f64(),
        ));
    }

    // Explain smoke: the facade's EXPLAIN must render both backends and
    // name the physical scan step (CI aborts on a broken profile).
    let explained = tool
        .explain(&cube.dataset, &datagen::workload::mary_query())
        .expect("explain");
    assert!(
        explained.contains("EXPLAIN ANALYZE (backend=sparql:direct")
            && explained.contains("EXPLAIN ANALYZE (backend=columnar")
            && explained.contains("scan"),
        "E16: explain output is missing a backend or the scan step:\n{explained}"
    );
    rows.push(Measurement::new(
        "E16",
        &parameters,
        "explain_renders_both_backends",
        1.0,
    ));

    // The shared registry saw all of the above; report the scan volume
    // straight from the snapshot so the counters are part of the record.
    let snapshot = tool.metrics();
    rows.push(Measurement::new(
        "E16",
        &parameters,
        "metric_scan_rows_total",
        snapshot.counter("cubestore.scan.rows") as f64,
    ));
    rows.push(Measurement::new(
        "E16",
        &parameters,
        "metric_ql_executions",
        (snapshot.counter("ql.execute.sparql") + snapshot.counter("ql.execute.columnar")) as f64,
    ));
    rows
}

/// E17: zone-map segment pruning on the time-ordered generator layout —
/// rows scanned and scan wall time for selective dices at the leaf
/// (month), middle (year) and top (continent) of the hierarchies, against
/// the full roll-up, with pruning on and off. Every pruned run is first
/// checked cell-for-cell against the unpruned single-threaded scan; at
/// the paper's 80k scale the leaf dice must touch < 10% of the live rows.
fn e17_zone_map_pruning(observations: usize) -> Vec<Measurement> {
    use std::collections::BTreeMap;

    use qb2olap::cubestore::{
        auto_scan_threads, execute_with_options, CubeQuery, ExecOptions, MemberFilter,
        MemberPredicate,
    };
    use rdf::vocab::{demo_schema, rdfs, sdmx_dimension};
    use sparql::ast::CmpOp;

    const RUNS: usize = 9;
    let parameters = format!("observations={observations}");
    let config = datagen::EurostatConfig {
        observations,
        time_ordered: true,
        ..Default::default()
    };
    let cube = demo_cube_with(&config);
    let tool = Qb2Olap::new(cube.endpoint.clone());
    let querying = tool.querying(&cube.dataset).expect("cube is enriched");
    let materialized = querying.materialize().expect("materialization");
    materialized
        .verify_zone_invariants()
        .expect("E17: zone maps verify");
    let live_rows = materialized.live_row_count();
    let threads = auto_scan_threads(&materialized);

    let dice = |dimension: rdf::Iri, level: rdf::Iri, attribute: rdf::Iri, value: &str| {
        MemberFilter::Compare {
            dimension,
            level,
            attribute,
            predicate: MemberPredicate::Str {
                op: CmpOp::Eq,
                value: value.to_string(),
            },
        }
    };
    let queries: Vec<(&str, CubeQuery)> = vec![
        (
            "leaf-month-dice",
            CubeQuery {
                member_filters: vec![dice(
                    demo_schema::time_dim(),
                    sdmx_dimension::ref_period(),
                    rdfs::label(),
                    "2013-01",
                )],
                ..CubeQuery::default()
            },
        ),
        (
            "mid-year-dice",
            CubeQuery {
                rollups: BTreeMap::from([(demo_schema::time_dim(), demo_schema::year())]),
                member_filters: vec![dice(
                    demo_schema::time_dim(),
                    demo_schema::year(),
                    rdfs::label(),
                    "2014",
                )],
                ..CubeQuery::default()
            },
        ),
        (
            "top-continent-dice",
            CubeQuery {
                rollups: BTreeMap::from([(
                    demo_schema::citizenship_dim(),
                    demo_schema::continent(),
                )]),
                member_filters: vec![dice(
                    demo_schema::citizenship_dim(),
                    demo_schema::continent(),
                    demo_schema::continent_name(),
                    "Africa",
                )],
                ..CubeQuery::default()
            },
        ),
        (
            "full-rollup",
            CubeQuery {
                rollups: BTreeMap::from([
                    (demo_schema::citizenship_dim(), demo_schema::continent()),
                    (demo_schema::time_dim(), demo_schema::year()),
                ]),
                ..CubeQuery::default()
            },
        ),
    ];

    let mut rows = Vec::new();
    rows.push(Measurement::new("E17", &parameters, "live_rows", live_rows as f64));
    rows.push(Measurement::new("E17", &parameters, "scan_threads", threads as f64));
    for (name, query) in &queries {
        let pruned = ExecOptions { threads, prune: true };
        let unpruned = ExecOptions { threads, prune: false };

        // Correctness gate: pruned output is bit-identical to the unpruned
        // single-threaded reference, at one worker and at the auto count.
        let (reference, full_stats) = execute_with_options(
            &materialized,
            query,
            ExecOptions { threads: 1, prune: false },
        )
        .expect("unpruned scan");
        for options in [pruned, unpruned, ExecOptions { threads: 1, prune: true }] {
            let (output, _) =
                execute_with_options(&materialized, query, options).expect("scan");
            assert_eq!(output, reference, "E17: pruning changed the result of '{name}'");
        }
        let (_, pruned_stats) =
            execute_with_options(&materialized, query, pruned).expect("pruned scan");
        let fraction = pruned_stats.rows_scanned as f64 / (live_rows as f64).max(1.0);
        if *name == "leaf-month-dice" && observations >= 80_000 {
            assert!(
                fraction < 0.10,
                "E17: the leaf dice scanned {fraction:.3} of the live rows at paper scale"
            );
        }

        let params = format!("{parameters} query={name}");
        rows.push(Measurement::new(
            "E17",
            &params,
            "rows_scanned_pruned",
            pruned_stats.rows_scanned as f64,
        ));
        rows.push(Measurement::new(
            "E17",
            &params,
            "rows_scanned_full",
            full_stats.rows_scanned as f64,
        ));
        rows.push(Measurement::new("E17", &params, "scanned_fraction", fraction));
        rows.push(Measurement::new(
            "E17",
            &params,
            "segments_total",
            pruned_stats.segments_total as f64,
        ));
        rows.push(Measurement::new(
            "E17",
            &params,
            "segments_pruned",
            pruned_stats.segments_pruned as f64,
        ));

        let pruned_samples: Vec<std::time::Duration> = (0..RUNS)
            .map(|_| {
                timed(|| execute_with_options(&materialized, query, pruned).expect("scan")).1
            })
            .collect();
        let pruned_time = criterion::Stats::from_durations(&pruned_samples).expect("samples");
        let full_samples: Vec<std::time::Duration> = (0..RUNS)
            .map(|_| {
                timed(|| execute_with_options(&materialized, query, unpruned).expect("scan")).1
            })
            .collect();
        let full_time = criterion::Stats::from_durations(&full_samples).expect("samples");
        rows.push(Measurement::new(
            "E17",
            &params,
            "execute_pruned_median_ms",
            millis(pruned_time.median),
        ));
        rows.push(Measurement::new(
            "E17",
            &params,
            "execute_full_median_ms",
            millis(full_time.median),
        ));
    }
    rows
}

/// E18: read latency while a forced structural rebuild folds in the
/// background — the non-blocking serving gate. A dangling `qb4o:hasLevel`
/// triple makes the delta classifier refuse (without changing any result
/// cell), the rebuild runs on a background thread over a frozen store
/// handle, and snapshot reads (pin + roll-up query) keep flowing the whole
/// time: their p99 during the fold must stay within 10× the idle p99,
/// every in-flight read must return the stale-but-consistent cells, and
/// the settled pin must land the new epoch.
fn e18_serving_under_rebuild(observations: usize) -> Vec<Measurement> {
    use std::collections::BTreeMap;
    use std::time::{Duration, Instant};

    use qb2olap::cubestore::{
        execute_snapshot, CubeQuery, MaintenanceStrategy, RebuildReason,
    };
    use rdf::vocab::{demo_schema, qb4o};
    use rdf::{Term, Triple};

    const IDLE_READS: usize = 300;
    fn p99(mut samples: Vec<Duration>) -> Duration {
        samples.sort();
        samples[(samples.len() * 99 / 100).min(samples.len() - 1)]
    }

    let parameters = format!("observations={observations}");
    let config = datagen::EurostatConfig {
        observations,
        time_ordered: true,
        ..Default::default()
    };
    let cube = demo_cube_with(&config);
    let tool = Qb2Olap::new(cube.endpoint.clone());
    let querying = tool.querying(&cube.dataset).expect("cube is enriched");
    let query = CubeQuery {
        rollups: BTreeMap::from([(demo_schema::citizenship_dim(), demo_schema::continent())]),
        ..CubeQuery::default()
    };

    // One "read" = pin a snapshot (never waits) + run the roll-up on it.
    let read = || {
        let started = Instant::now();
        let snapshot = querying.snapshot().expect("snapshot serve");
        let output = execute_snapshot(&snapshot, &query).expect("snapshot execute");
        (started.elapsed(), output, snapshot.epoch())
    };

    // Warm build, reference cells, idle latency distribution.
    let (_, reference, _) = read();
    let idle: Vec<Duration> = (0..IDLE_READS).map(|_| read().0).collect();
    let p99_idle = p99(idle);

    // The forced structural change: a schema-structure triple no query
    // touches, so the rebuild is pure overhead and the cells are stable.
    let stale_epoch = cube.endpoint.epoch();
    cube.endpoint
        .insert_triples(&[Triple::new(
            Term::iri("http://example.org/e18/dsd"),
            qb4o::has_level(),
            Term::iri("http://example.org/e18/level"),
        )])
        .expect("trigger insert");

    // The first read hands the refused delta off to a background fold and
    // returns the stale pin; every read after that stays at pin cost until
    // the fold publishes.
    let mut during: Vec<Duration> = Vec::new();
    let (first_latency, first_output, first_epoch) = read();
    assert_eq!(first_output, reference, "E18: the stale pin changed cells");
    assert_eq!(first_epoch, stale_epoch, "E18: the refusing read must serve stale");
    during.push(first_latency);
    while tool.catalog().maintenance_in_flight(&cube.dataset) && during.len() < 5_000 {
        let (latency, output, _) = read();
        assert_eq!(output, reference, "E18: a read during the fold changed cells");
        during.push(latency);
    }
    tool.wait_for_maintenance(&cube.dataset);

    let report = querying
        .maintenance_reports()
        .last()
        .cloned()
        .expect("E18: the fold must record a report");
    assert_eq!(report.strategy, MaintenanceStrategy::Rebuild, "E18: {report:?}");
    assert!(
        matches!(report.reason, Some(RebuildReason::DeltaRefused(_))),
        "E18: the fold must carry the refusal: {report:?}"
    );
    let overlap = report
        .overlap
        .expect("E18: background folds record their stale-serving window");

    let p99_fold = p99(during.clone());
    // 10× is the gate; the small absolute floor keeps sub-millisecond
    // timer jitter from failing runs at tiny scales.
    let limit = (p99_idle * 10).max(Duration::from_millis(5));
    assert!(
        p99_fold <= limit,
        "E18: read p99 {p99_fold:?} during the fold breaches 10x idle p99 {p99_idle:?}"
    );

    // The fold landed: a settled read pins the new epoch, same cells.
    let (_, settled_output, settled_epoch) = read();
    assert_eq!(settled_epoch, cube.endpoint.epoch(), "E18: the fold must land");
    assert_eq!(settled_output, reference, "E18: cells changed across the fold");

    vec![
        Measurement::new("E18", &parameters, "idle_reads", IDLE_READS as f64),
        Measurement::new("E18", &parameters, "read_p99_idle_ms", millis(p99_idle)),
        Measurement::new("E18", &parameters, "reads_during_fold", during.len() as f64),
        Measurement::new("E18", &parameters, "read_p99_during_fold_ms", millis(p99_fold)),
        Measurement::new(
            "E18",
            &parameters,
            "fold_overlap_ms",
            millis(overlap),
        ),
        Measurement::new(
            "E18",
            &parameters,
            "p99_ratio_fold_over_idle",
            p99_fold.as_secs_f64() / p99_idle.as_secs_f64().max(f64::EPSILON),
        ),
    ]
}
