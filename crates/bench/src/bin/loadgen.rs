//! `loadgen` — concurrent HTTP load against the serving front end, with a
//! correctness check per response (E19 in EXPERIMENTS.md).
//!
//! Boots an in-process [`qb2olap_server`] over the demo cube, precomputes
//! the **library-side** canonical JSON body of every E7 workload query,
//! then drives N keep-alive connections that POST those queries to `/ql`
//! round-robin, asserting each wire body is bit-identical to the library
//! result. Two phases: idle, then with an agitator thread forcing
//! structural background rebuilds (the §E18 pattern) — `--gate` fails the
//! run if the mid-rebuild p99 exceeds 10x the idle p99, or if any body
//! mismatched.
//!
//! ```text
//! cargo run --release -p qb2olap_bench --bin loadgen -- \
//!     --observations 4000 --connections 32 --requests 8 --gate
//! ```

use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use qb2olap::{Endpoint, Qb2Olap};
use qb2olap_bench::demo_cube_with;
use qb2olap_server::client::Client;
use rdf::vocab::qb4o;
use rdf::{Term, Triple};

struct Args {
    observations: usize,
    connections: usize,
    requests_per_connection: usize,
    gate: bool,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        observations: 4_000,
        connections: 32,
        requests_per_connection: 8,
        gate: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut number = |name: &str| -> usize {
            args.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("{name} needs a number"))
        };
        match arg.as_str() {
            "--observations" => parsed.observations = number("--observations"),
            "--connections" => parsed.connections = number("--connections"),
            "--requests" => parsed.requests_per_connection = number("--requests"),
            "--gate" => parsed.gate = true,
            "--help" | "-h" => {
                eprintln!(
                    "usage: loadgen [--observations N] [--connections N] [--requests N] [--gate]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument {other:?} (try --help)");
                std::process::exit(2);
            }
        }
    }
    parsed
}

/// One phase of load: every connection thread sends its share of requests
/// round-robin over the workload, checking bodies; returns each request's
/// latency plus the mismatch count.
fn run_phase(
    addr: SocketAddr,
    connections: usize,
    requests_per_connection: usize,
    expected: &Arc<Vec<(String, String)>>, // (wire path+body request, expected body)
) -> (Vec<Duration>, usize, Duration) {
    let mismatches = Arc::new(AtomicUsize::new(0));
    let started = Instant::now();
    let handles: Vec<_> = (0..connections)
        .map(|thread_index| {
            let expected = expected.clone();
            let mismatches = mismatches.clone();
            std::thread::spawn(move || {
                let mut latencies = Vec::with_capacity(requests_per_connection);
                let mut client = Client::connect(addr).expect("connect");
                for i in 0..requests_per_connection {
                    let (query, want) = &expected[(thread_index + i) % expected.len()];
                    let sent = Instant::now();
                    let response = client.post("/ql", query).expect("request");
                    latencies.push(sent.elapsed());
                    if response.status != 200 || response.body_text() != *want {
                        mismatches.fetch_add(1, Ordering::Relaxed);
                    }
                }
                latencies
            })
        })
        .collect();
    let mut all = Vec::new();
    for handle in handles {
        all.extend(handle.join().expect("load thread"));
    }
    let elapsed = started.elapsed();
    (all, mismatches.load(Ordering::Relaxed), elapsed)
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

fn report(name: &str, latencies: &mut [Duration], mismatches: usize, wall: Duration) -> Duration {
    latencies.sort();
    let p50 = percentile(latencies, 0.50);
    let p99 = percentile(latencies, 0.99);
    let qps = latencies.len() as f64 / wall.as_secs_f64();
    println!(
        "{name}: {} requests in {wall:?} — {qps:.0} QPS, p50 {p50:?}, p99 {p99:?}, {mismatches} mismatched bodies",
        latencies.len(),
    );
    p99
}

fn main() {
    let args = parse_args();

    eprintln!(
        "building demo cube ({} observations) and precomputing expected bodies...",
        args.observations
    );
    let cube = demo_cube_with(&datagen::EurostatConfig {
        observations: args.observations,
        time_ordered: true,
        ..Default::default()
    });
    let tool = Qb2Olap::new(cube.endpoint.clone());

    // Library-side ground truth: prepare + execute each workload query on a
    // settled snapshot, serialize with the *same* canonical serializer the
    // server uses. The agitator only inserts dangling schema triples, so
    // these bodies stay correct during the rebuild phase too.
    let querying = tool.querying(&cube.dataset).expect("enriched cube");
    let snapshot = querying.snapshot_settled().expect("settled snapshot");
    let expected: Arc<Vec<(String, String)>> = Arc::new(
        datagen::workload::bench_queries()
            .into_iter()
            .map(|(_, ql)| {
                let prepared = querying.prepare(&ql).expect("prepare");
                let result = querying
                    .execute_on_snapshot(&prepared, &snapshot)
                    .expect("execute");
                (ql, qb2olap_server::cube_to_json(&result))
            })
            .collect(),
    );
    let schema = querying.schema().clone();

    let config = qb2olap_server::ServerConfig {
        workers: 8,
        queue_capacity: args.connections.max(64),
        default_dataset: Some(cube.dataset.clone()),
        ..qb2olap_server::ServerConfig::default()
    };
    let server = qb2olap_server::start(tool.clone(), config).expect("bind server");
    let addr = server.addr();
    eprintln!(
        "serving on {} — {} connections x {} requests per phase",
        server.base_url(),
        args.connections,
        args.requests_per_connection
    );

    // Phase 1: idle (no maintenance in flight).
    let (mut idle, idle_bad, idle_wall) = run_phase(
        addr,
        args.connections,
        args.requests_per_connection,
        &expected,
    );
    let idle_p99 = report("idle        ", &mut idle, idle_bad, idle_wall);

    // Phase 2: the §E18 agitator forces a structural refusal per round so
    // a background fold is almost always in flight while we serve.
    let stop = Arc::new(AtomicBool::new(false));
    let agitator = {
        let stop = stop.clone();
        let endpoint = cube.endpoint.clone();
        let catalog = tool.catalog().clone();
        let dataset = cube.dataset.clone();
        std::thread::spawn(move || {
            let mut round = 0u64;
            while !stop.load(Ordering::SeqCst) {
                round += 1;
                endpoint
                    .insert_triples(&[Triple::new(
                        Term::iri(format!("http://example.org/loadgen/dsd/{round}")),
                        qb4o::has_level(),
                        Term::iri(format!("http://example.org/loadgen/level/{round}")),
                    )])
                    .expect("agitator insert");
                let _ = catalog.serve_snapshot(&endpoint, &schema);
                catalog.wait_for_maintenance(&dataset);
            }
        })
    };
    let (mut rebuild, rebuild_bad, rebuild_wall) = run_phase(
        addr,
        args.connections,
        args.requests_per_connection,
        &expected,
    );
    stop.store(true, Ordering::SeqCst);
    agitator.join().expect("agitator exits");
    let rebuild_p99 = report("mid-rebuild ", &mut rebuild, rebuild_bad, rebuild_wall);

    let metrics = server.metrics();
    println!(
        "server: {} requests, {} connections, {} saturation rejections, {} timeouts",
        metrics.counter("server.requests"),
        metrics.counter("server.connections"),
        metrics.counter("server.rejected.saturated"),
        metrics.counter("server.timeouts"),
    );
    server.shutdown();

    if args.gate {
        // The wire-level restatement of the §E18 guarantee: serving does
        // not degrade by more than 10x while folds run. The floor absorbs
        // sub-millisecond idle p99s on fast machines, same as repro e18.
        let limit = (idle_p99 * 10).max(Duration::from_millis(25));
        let mut failed = false;
        if rebuild_p99 > limit {
            eprintln!("GATE FAIL: mid-rebuild p99 {rebuild_p99:?} exceeds limit {limit:?}");
            failed = true;
        }
        if idle_bad + rebuild_bad > 0 {
            eprintln!(
                "GATE FAIL: {} responses diverged from library results",
                idle_bad + rebuild_bad
            );
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        println!("gate ok: mid-rebuild p99 {rebuild_p99:?} within {limit:?}, all bodies bit-identical");
    }
}
