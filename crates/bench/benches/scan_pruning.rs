//! E17 — zone-map segment pruning: selective dices at the leaf (month),
//! middle (year) and top (continent) of the demo hierarchies against the
//! full roll-up, on the time-ordered generator layout at the paper's 80k
//! scale, each with pruning on and off. The pruned/full ratio per query is
//! the headline number of EXPERIMENTS.md §E17.
//!
//! The default scale is the paper's 80,000 observations; set
//! `QB2OLAP_BENCH_OBSERVATIONS` to run smaller.

use std::collections::BTreeMap;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qb2olap::cubestore::{
    auto_scan_threads, execute_with_options, CubeQuery, ExecOptions, MemberFilter, MemberPredicate,
};
use qb2olap::Qb2Olap;
use qb2olap_bench::demo_cube_with;
use rdf::vocab::{demo_schema, rdfs, sdmx_dimension};
use sparql::ast::CmpOp;

fn dice(dimension: rdf::Iri, level: rdf::Iri, attribute: rdf::Iri, value: &str) -> MemberFilter {
    MemberFilter::Compare {
        dimension,
        level,
        attribute,
        predicate: MemberPredicate::Str {
            op: CmpOp::Eq,
            value: value.to_string(),
        },
    }
}

fn bench_scan_pruning(c: &mut Criterion) {
    let observations = obs::env::usize_knob("QB2OLAP_BENCH_OBSERVATIONS", 80_000);
    let cube = demo_cube_with(&datagen::EurostatConfig {
        observations,
        time_ordered: true,
        ..Default::default()
    });
    let tool = Qb2Olap::new(cube.endpoint.clone());
    let querying = tool.querying(&cube.dataset).expect("cube is enriched");
    let materialized = querying.materialize().expect("materialization");
    materialized.verify_zone_invariants().expect("zone maps verify");
    let threads = auto_scan_threads(&materialized);

    let queries: Vec<(&str, CubeQuery)> = vec![
        (
            "leaf_month_dice",
            CubeQuery {
                member_filters: vec![dice(
                    demo_schema::time_dim(),
                    sdmx_dimension::ref_period(),
                    rdfs::label(),
                    "2013-01",
                )],
                ..CubeQuery::default()
            },
        ),
        (
            "mid_year_dice",
            CubeQuery {
                rollups: BTreeMap::from([(demo_schema::time_dim(), demo_schema::year())]),
                member_filters: vec![dice(
                    demo_schema::time_dim(),
                    demo_schema::year(),
                    rdfs::label(),
                    "2014",
                )],
                ..CubeQuery::default()
            },
        ),
        (
            "top_continent_dice",
            CubeQuery {
                rollups: BTreeMap::from([(
                    demo_schema::citizenship_dim(),
                    demo_schema::continent(),
                )]),
                member_filters: vec![dice(
                    demo_schema::citizenship_dim(),
                    demo_schema::continent(),
                    demo_schema::continent_name(),
                    "Africa",
                )],
                ..CubeQuery::default()
            },
        ),
        (
            "full_rollup",
            CubeQuery {
                rollups: BTreeMap::from([
                    (demo_schema::citizenship_dim(), demo_schema::continent()),
                    (demo_schema::time_dim(), demo_schema::year()),
                ]),
                ..CubeQuery::default()
            },
        ),
    ];

    let mut group = c.benchmark_group("scan_pruning");
    group.sample_size(10);
    for (name, query) in &queries {
        for (mode, prune) in [("pruned", true), ("full", false)] {
            group.bench_with_input(BenchmarkId::new(mode, name), query, |b, query| {
                b.iter(|| {
                    execute_with_options(&materialized, query, ExecOptions { threads, prune })
                        .unwrap()
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_scan_pruning);
criterion_main!(benches);
