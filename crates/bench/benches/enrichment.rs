//! E2 / Figure 2 — Enrichment-module phases (Redefinition, candidate
//! discovery, full enrichment incl. Triple Generation) as a function of the
//! observation count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use enrichment::EnrichmentSession;
use qb2olap::demo;
use rdf::vocab::eurostat_property;

fn bench_enrichment(c: &mut Criterion) {
    let mut group = c.benchmark_group("enrichment");
    group.sample_size(10);

    for observations in [1_000usize, 5_000, 20_000] {
        let (endpoint, data) =
            datagen::load_demo_endpoint(&datagen::EurostatConfig::small(observations));

        group.bench_with_input(
            BenchmarkId::new("redefinition", observations),
            &observations,
            |b, _| {
                b.iter(|| {
                    let mut session = EnrichmentSession::start(
                        &endpoint,
                        &data.dataset,
                        demo::demo_enrichment_config(),
                    )
                    .unwrap();
                    session.redefine().unwrap().clone()
                });
            },
        );

        group.bench_with_input(
            BenchmarkId::new("citizen_candidate_discovery", observations),
            &observations,
            |b, _| {
                b.iter(|| {
                    let mut session = EnrichmentSession::start(
                        &endpoint,
                        &data.dataset,
                        demo::demo_enrichment_config(),
                    )
                    .unwrap();
                    session.redefine().unwrap();
                    session
                        .discover_candidates(&eurostat_property::citizen())
                        .unwrap()
                });
            },
        );

        group.bench_with_input(
            BenchmarkId::new("full_demo_enrichment", observations),
            &observations,
            |b, _| {
                b.iter(|| {
                    // Work on a copy of the endpoint contents so repeated
                    // iterations do not accumulate triples.
                    let fresh = sparql::LocalEndpoint::new();
                    fresh
                        .store()
                        .insert_all(endpoint.store().default_graph_snapshot().iter());
                    demo::enrich_demo_cube(&fresh, &data.dataset).unwrap()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_enrichment);
criterion_main!(benches);
