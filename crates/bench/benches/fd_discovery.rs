//! E8 — (quasi-)functional-dependency discovery: the pure analysis kernel on
//! synthetic member/property tables of growing size, and the end-to-end
//! candidate discovery under link noise.

use std::collections::{BTreeMap, BTreeSet};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use enrichment::{analyze_members, EnrichmentConfig, EnrichmentSession, MemberPropertyValues};
use rdf::{Iri, Term};

fn synthetic_members(members: usize, properties: usize) -> MemberPropertyValues {
    let mut values: MemberPropertyValues = BTreeMap::new();
    for m in 0..members {
        let member = Term::iri(format!("http://example.org/member/{m}"));
        let mut props: BTreeMap<Iri, BTreeSet<Term>> = BTreeMap::new();
        for p in 0..properties {
            // Property p maps members into m % (p + 2) buckets — functional,
            // with varying compression ratios.
            let bucket = m % (p + 2);
            props.insert(
                Iri::new(format!("http://example.org/property/{p}")),
                BTreeSet::from([Term::iri(format!("http://example.org/value/{p}/{bucket}"))]),
            );
        }
        values.insert(member, props);
    }
    values
}

fn bench_fd_discovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("fd_discovery");
    group.sample_size(10);

    for members in [100usize, 1_000, 10_000] {
        let values = synthetic_members(members, 8);
        group.bench_with_input(
            BenchmarkId::new("analyze_members", members),
            &values,
            |b, values| {
                b.iter(|| analyze_members(values, false));
            },
        );
    }

    // End-to-end candidate discovery with noisy links and a quasi-FD threshold.
    let noisy = datagen::EurostatConfig {
        observations: 2_000,
        noise: datagen::NoiseConfig {
            missing_link_fraction: 0.1,
            conflicting_link_fraction: 0.1,
        },
        ..Default::default()
    };
    let (endpoint, data) = datagen::load_demo_endpoint(&noisy);
    for threshold in [0.0f64, 0.15, 0.3] {
        group.bench_with_input(
            BenchmarkId::new("noisy_citizen_discovery_threshold", format!("{threshold}")),
            &threshold,
            |b, &threshold| {
                b.iter(|| {
                    let config = EnrichmentConfig::default()
                        .without_external_sources()
                        .with_fd_error_threshold(threshold)
                        .with_min_support(0.5);
                    let mut session =
                        EnrichmentSession::start(&endpoint, &data.dataset, config).unwrap();
                    session.redefine().unwrap();
                    session
                        .discover_candidates(&rdf::vocab::eurostat_property::citizen())
                        .unwrap()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fd_discovery);
criterion_main!(benches);
