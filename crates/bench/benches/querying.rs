//! E3 / Figure 3 and E10 — Querying-module phases: preparation
//! (simplification + translation) and SPARQL execution of the direct vs the
//! alternative variant, for every workload query.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qb2olap::{Qb2Olap, SparqlVariant};
use qb2olap_bench::demo_cube;

fn bench_querying(c: &mut Criterion) {
    let cube = demo_cube(10_000);
    let tool = Qb2Olap::new(cube.endpoint.clone());
    let querying = tool.querying(&cube.dataset).expect("cube is enriched");

    let mut group = c.benchmark_group("querying");
    group.sample_size(10);

    for (name, text) in datagen::workload::bench_queries() {
        group.bench_with_input(BenchmarkId::new("prepare", name), &text, |b, text| {
            b.iter(|| querying.prepare(text).unwrap());
        });

        let prepared = querying.prepare(&text).unwrap();
        group.bench_with_input(
            BenchmarkId::new("execute_direct", name),
            &prepared,
            |b, prepared| {
                b.iter(|| querying.execute(prepared, SparqlVariant::Direct).unwrap());
            },
        );
        group.bench_with_input(
            BenchmarkId::new("execute_alternative", name),
            &prepared,
            |b, prepared| {
                b.iter(|| {
                    querying
                        .execute(prepared, SparqlVariant::Alternative)
                        .unwrap()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_querying);
criterion_main!(benches);
