//! SPARQL-engine microbenchmarks: the observation star join and the grouped
//! aggregation that every translated QL query relies on, at growing dataset
//! sizes. (Substrate benchmark backing E3/E10.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sparql::{evaluate_select, parse_select};

fn bench_sparql_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("sparql_engine");
    group.sample_size(10);

    for observations in [1_000usize, 10_000, 40_000] {
        let data = datagen::generate(&datagen::EurostatConfig::small(observations));
        let graph = rdf::Graph::from_triples(data.triples.clone());

        let star_join = parse_select(
            "PREFIX qb: <http://purl.org/linked-data/cube#>
             PREFIX property: <http://eurostat.linked-statistics.org/property#>
             PREFIX sdmx-measure: <http://purl.org/linked-data/sdmx/2009/measure#>
             SELECT ?obs ?citizen ?geo ?v WHERE {
               ?obs a qb:Observation ;
                    property:citizen ?citizen ;
                    property:geo ?geo ;
                    sdmx-measure:obsValue ?v .
             }",
        )
        .unwrap();
        group.bench_with_input(
            BenchmarkId::new("observation_star_join", observations),
            &graph,
            |b, graph| {
                b.iter(|| evaluate_select(graph, &star_join).unwrap());
            },
        );

        let grouped = parse_select(
            "PREFIX qb: <http://purl.org/linked-data/cube#>
             PREFIX property: <http://eurostat.linked-statistics.org/property#>
             PREFIX dic: <http://eurostat.linked-statistics.org/dic/>
             PREFIX sdmx-measure: <http://purl.org/linked-data/sdmx/2009/measure#>
             SELECT ?continent (SUM(?v) AS ?total) WHERE {
               ?obs a qb:Observation ;
                    property:citizen ?citizen ;
                    sdmx-measure:obsValue ?v .
               ?citizen dic:continent ?continent .
             } GROUP BY ?continent ORDER BY DESC(?total)",
        )
        .unwrap();
        group.bench_with_input(
            BenchmarkId::new("grouped_rollup_aggregation", observations),
            &graph,
            |b, graph| {
                b.iter(|| evaluate_select(graph, &grouped).unwrap());
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sparql_engine);
criterion_main!(benches);
