//! E18 — non-blocking serving: snapshot pins and full reads (pin + roll-up
//! query) while structural rebuilds fold in the background. An agitator
//! thread keeps forcing schema-structure refusals (a dangling
//! `qb4o:hasLevel` triple per round) so the catalog is rebuilding almost
//! permanently; the `*_during_rebuild` numbers against the `*_idle` ones
//! are the headline of EXPERIMENTS.md §E18.
//!
//! The default scale is the paper's 80,000 observations; set
//! `QB2OLAP_BENCH_OBSERVATIONS` to run smaller.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use qb2olap::cubestore::{execute_snapshot, CubeQuery};
use qb2olap::{Endpoint, Qb2Olap};
use qb2olap_bench::demo_cube_with;
use rdf::vocab::{demo_schema, qb4o};
use rdf::{Term, Triple};

fn bench_serve_during_rebuild(c: &mut Criterion) {
    let observations = obs::env::usize_knob("QB2OLAP_BENCH_OBSERVATIONS", 80_000);
    let cube = demo_cube_with(&datagen::EurostatConfig {
        observations,
        time_ordered: true,
        ..Default::default()
    });
    let tool = Qb2Olap::new(cube.endpoint.clone());
    let querying = tool.querying(&cube.dataset).expect("cube is enriched");
    let query = CubeQuery {
        rollups: BTreeMap::from([(demo_schema::citizenship_dim(), demo_schema::continent())]),
        ..CubeQuery::default()
    };
    let first = querying.snapshot().expect("warm build");
    let schema = first.cube().schema().clone();

    let mut group = c.benchmark_group("serve_during_rebuild");
    group.sample_size(10);
    group.bench_function("pin_idle", |b| {
        b.iter(|| querying.snapshot().expect("pin"));
    });
    group.bench_function("read_idle", |b| {
        b.iter(|| {
            let snapshot = querying.snapshot().expect("pin");
            execute_snapshot(&snapshot, &query).expect("execute")
        });
    });

    // The agitator: one forced structural refusal per round, kicked off
    // through the snapshot path so the fold runs on a background thread,
    // then fenced — the serving thread below almost always finds a rebuild
    // in flight.
    let stop = Arc::new(AtomicBool::new(false));
    let agitator = {
        let stop = stop.clone();
        let endpoint = cube.endpoint.clone();
        let catalog = tool.catalog().clone();
        let dataset = cube.dataset.clone();
        let schema = schema.clone();
        std::thread::spawn(move || {
            let mut round = 0u64;
            while !stop.load(Ordering::SeqCst) {
                round += 1;
                endpoint
                    .insert_triples(&[Triple::new(
                        Term::iri(format!("http://example.org/bench/dsd/{round}")),
                        qb4o::has_level(),
                        Term::iri(format!("http://example.org/bench/level/{round}")),
                    )])
                    .expect("trigger insert");
                let _ = catalog.serve_snapshot(&endpoint, &schema);
                catalog.wait_for_maintenance(&dataset);
            }
        })
    };

    group.bench_function("pin_during_rebuild", |b| {
        b.iter(|| querying.snapshot().expect("pin"));
    });
    group.bench_function("read_during_rebuild", |b| {
        b.iter(|| {
            let snapshot = querying.snapshot().expect("pin");
            execute_snapshot(&snapshot, &query).expect("execute")
        });
    });

    stop.store(true, Ordering::SeqCst);
    agitator.join().expect("agitator exits cleanly");
    group.finish();
}

criterion_group!(benches, bench_serve_during_rebuild);
criterion_main!(benches);
