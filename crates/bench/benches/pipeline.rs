//! E1 / Figure 1 — the end-to-end pipeline: generate + load the QB data,
//! enrich, and answer the first OLAP question of the use case (applications
//! per continent of origin).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qb2olap::{demo, Qb2Olap};

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);

    for observations in [1_000usize, 5_000] {
        group.bench_with_input(
            BenchmarkId::new("generate_load_enrich_query", observations),
            &observations,
            |b, &observations| {
                b.iter(|| {
                    let cube =
                        demo::setup_demo_cube(&datagen::EurostatConfig::small(observations))
                            .unwrap();
                    let tool = Qb2Olap::new(cube.endpoint.clone());
                    tool.querying(&cube.dataset)
                        .unwrap()
                        .run(&datagen::workload::rollup_citizenship_to_continent())
                        .unwrap()
                        .1
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
