//! E11/E12 — execution-backend comparison at the paper's E7 scale: the
//! same prepared workload queries executed via the QL → SPARQL translation
//! and via the columnar cube engine. The one-time columnar materialization
//! is benchmarked separately from per-query execution, and the row scan is
//! additionally measured single- vs multi-threaded (the
//! `execute_with_threads` seam).
//!
//! The default scale is the paper's 80,000 observations; set
//! `QB2OLAP_BENCH_OBSERVATIONS` to run smaller.

use std::collections::BTreeMap;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qb2olap::cubestore::{execute_with_threads, CubeQuery};
use qb2olap::{ExecutionBackend, Qb2Olap, SparqlVariant};
use qb2olap_bench::demo_cube;
use rdf::vocab::demo_schema;

fn bench_backends(c: &mut Criterion) {
    let observations = obs::env::usize_knob("QB2OLAP_BENCH_OBSERVATIONS", 80_000);
    let cube = demo_cube(observations);
    let tool = Qb2Olap::new(cube.endpoint.clone());
    let querying = tool.querying(&cube.dataset).expect("cube is enriched");

    let mut group = c.benchmark_group(format!("backends/{observations}"));
    group.sample_size(10);

    // Time the materialization itself, not the schema round-trips of
    // constructing a querying module (repro E11's materialize_ms measures
    // the same quantity).
    let schema = querying.schema().clone();
    group.bench_function("materialize_once", |b| {
        b.iter(|| {
            qb2olap::cubestore::MaterializedCube::from_endpoint(&cube.endpoint, &schema)
                .expect("materialization succeeds")
        });
    });

    // Single- vs multi-threaded columnar row scan on one representative
    // full-scan roll-up (repro E12 records the same comparison).
    let materialized = querying.materialize().expect("materialization succeeds");
    let scan_query = CubeQuery {
        slices: vec![
            demo_schema::destination_dim(),
            demo_schema::time_dim(),
            demo_schema::term("ageDim"),
            demo_schema::term("sexDim"),
            demo_schema::asylapp_dim(),
        ],
        rollups: BTreeMap::from([(demo_schema::citizenship_dim(), demo_schema::continent())]),
        ..CubeQuery::default()
    };
    // On a single-core container the second entry still exercises the
    // chunked path (2 workers) and honestly reports its overhead; on real
    // hardware it reports the available-parallelism speedup.
    let parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .max(2);
    for threads in [1, parallelism] {
        group.bench_with_input(
            BenchmarkId::new("scan_threads", threads),
            &threads,
            |b, &threads| {
                b.iter(|| execute_with_threads(&materialized, &scan_query, threads).unwrap());
            },
        );
    }

    for (name, text) in datagen::workload::bench_queries() {
        let prepared = querying.prepare(&text).expect("workload queries prepare");
        group.bench_with_input(
            BenchmarkId::new("sparql", name),
            &prepared,
            |b, prepared| {
                b.iter(|| querying.execute(prepared, SparqlVariant::Direct).unwrap());
            },
        );
        group.bench_with_input(
            BenchmarkId::new("columnar", name),
            &prepared,
            |b, prepared| {
                b.iter(|| {
                    querying
                        .execute(prepared, ExecutionBackend::Columnar)
                        .unwrap()
                });
            },
        );
    }

    // Maintenance refreshes (repro E13 records the same quantities with
    // allocation counts): a 1-row append absorbed by the copy-on-write
    // delta path, and a whole-observation removal absorbed as a tombstone.
    // Each iteration mutates the store through the endpoint and refreshes
    // via the shared catalog, so the measured time is the end-to-end
    // epoch-check + delta-replay cost a serving consumer pays.
    use rdf::Term;
    let mut factory = qb2olap_bench::ObservationFactory::new(&cube.endpoint, &cube.dataset, "bench");
    group.bench_function("refresh_append_1", |b| {
        b.iter(|| {
            qb2olap::Endpoint::insert_triples(&cube.endpoint, &factory.batch(1)).expect("append");
            querying.materialize().expect("refresh")
        });
    });
    let mut victims: Vec<Term> = qb2olap::Endpoint::select(
        &cube.endpoint,
        "PREFIX qb: <http://purl.org/linked-data/cube#>
         SELECT ?o WHERE { ?o a qb:Observation } ORDER BY ?o",
    )
    .expect("observation list")
    .rows
    .iter()
    .filter_map(|r| r.first().cloned().flatten())
    .collect();
    group.bench_function("refresh_remove_1", |b| {
        b.iter(|| {
            let node = victims.pop().expect("enough observations for the sample count");
            let store = cube.endpoint.store();
            let triples = store.triples_matching(Some(&node), None, None);
            assert!(store.remove_all(&triples) >= 4);
            querying.materialize().expect("refresh")
        });
    });

    // A *partial* removal (strip one observation's measure value, one
    // pattern = one delta): previously a forced rebuild, now a tombstone +
    // dropped-fragment reclassification on the delta path.
    group.bench_function("refresh_partial_remove_1", |b| {
        b.iter(|| {
            let node = victims.pop().expect("enough observations for the sample count");
            let removed = cube.endpoint.store().remove_matching(
                Some(&node),
                Some(&rdf::vocab::sdmx_measure::obs_value()),
                None,
            );
            assert_eq!(removed.len(), 1);
            querying.materialize().expect("refresh")
        });
    });

    // Float-measure cube (xsd:decimal values): a 1-row append refresh —
    // previously refused as NonIntegralAppend and rebuilt, now absorbed on
    // the delta path thanks to order-independent compensated summation.
    let float_cube = qb2olap_bench::demo_cube_with(&datagen::EurostatConfig {
        decimal_measures: true,
        ..datagen::EurostatConfig::small(observations)
    });
    let float_tool = Qb2Olap::new(float_cube.endpoint.clone());
    let float_querying = float_tool
        .querying(&float_cube.dataset)
        .expect("float cube is enriched");
    float_querying.materialize().expect("materialization");
    let mut float_factory =
        qb2olap_bench::ObservationFactory::new(&float_cube.endpoint, &float_cube.dataset, "benchf");
    group.bench_function("refresh_append_float_1", |b| {
        b.iter(|| {
            qb2olap::Endpoint::insert_triples(&float_cube.endpoint, &float_factory.float_batch(1))
                .expect("append");
            float_querying.materialize().expect("refresh")
        });
    });
    group.finish();
}

criterion_group!(benches, bench_backends);
criterion_main!(benches);
