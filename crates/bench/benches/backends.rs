//! E11 — execution-backend comparison at the paper's E7 scale: the same
//! prepared workload queries executed via the QL → SPARQL translation and
//! via the columnar cube engine. The one-time columnar materialization is
//! benchmarked separately from per-query execution.
//!
//! The default scale is the paper's 80,000 observations; set
//! `QB2OLAP_BENCH_OBSERVATIONS` to run smaller.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qb2olap::{ExecutionBackend, Qb2Olap, SparqlVariant};
use qb2olap_bench::demo_cube;

fn bench_backends(c: &mut Criterion) {
    let observations = std::env::var("QB2OLAP_BENCH_OBSERVATIONS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(80_000usize);
    let cube = demo_cube(observations);
    let tool = Qb2Olap::new(cube.endpoint.clone());
    let querying = tool.querying(&cube.dataset).expect("cube is enriched");

    let mut group = c.benchmark_group(format!("backends/{observations}"));
    group.sample_size(10);

    // Time the materialization itself, not the schema round-trips of
    // constructing a querying module (repro E11's materialize_ms measures
    // the same quantity).
    let schema = querying.schema().clone();
    group.bench_function("materialize_once", |b| {
        b.iter(|| {
            qb2olap::cubestore::MaterializedCube::from_endpoint(&cube.endpoint, &schema)
                .expect("materialization succeeds")
        });
    });

    querying.materialize().expect("materialization succeeds");
    for (name, text) in datagen::workload::bench_queries() {
        let prepared = querying.prepare(&text).expect("workload queries prepare");
        group.bench_with_input(
            BenchmarkId::new("sparql", name),
            &prepared,
            |b, prepared| {
                b.iter(|| querying.execute(prepared, SparqlVariant::Direct).unwrap());
            },
        );
        group.bench_with_input(
            BenchmarkId::new("columnar", name),
            &prepared,
            |b, prepared| {
                b.iter(|| {
                    querying
                        .execute(prepared, ExecutionBackend::Columnar)
                        .unwrap()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_backends);
criterion_main!(benches);
