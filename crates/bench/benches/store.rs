//! Triple-store microbenchmarks: bulk loading the generated QB data and the
//! index lookups the SPARQL evaluator issues (substrate benchmark backing
//! every experiment that loads data into the endpoint).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rdf::vocab::{eurostat_property, qb};
use rdf::{Graph, Term};

fn bench_store(c: &mut Criterion) {
    let mut group = c.benchmark_group("store");
    group.sample_size(10);

    for observations in [1_000usize, 10_000] {
        let data = datagen::generate(&datagen::EurostatConfig::small(observations));

        group.bench_with_input(
            BenchmarkId::new("insert_loop", observations),
            &data.triples,
            |b, triples| {
                b.iter(|| Graph::from_triples(triples.iter().cloned()));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("bulk_insert", observations),
            &data.triples,
            |b, triples| {
                b.iter(|| {
                    let mut graph = Graph::new();
                    graph.bulk_insert(triples.iter().cloned());
                    graph
                });
            },
        );

        let graph = Graph::from_triples(data.triples.clone());
        group.bench_with_input(
            BenchmarkId::new("predicate_scan", observations),
            &graph,
            |b, graph| {
                b.iter(|| graph.triples_matching(None, Some(&eurostat_property::citizen()), None));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("type_lookup", observations),
            &graph,
            |b, graph| {
                b.iter(|| graph.subjects_of_type(&qb::observation()));
            },
        );
        let syria = datagen::eurostat::citizen_member("SY");
        group.bench_with_input(
            BenchmarkId::new("object_lookup", observations),
            &graph,
            |b, graph| {
                b.iter(|| graph.triples_matching(None, None, Some(&syria)));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("point_contains", observations),
            &graph,
            |b, graph| {
                b.iter(|| {
                    graph.triples_matching(
                        Some(&Term::iri(
                            "http://eurostat.linked-statistics.org/data/migr_asyappctzm/obs000000",
                        )),
                        Some(&eurostat_property::citizen()),
                        None,
                    )
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_store);
criterion_main!(benches);
