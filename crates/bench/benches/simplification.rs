//! E9 — the Query Simplification phase: cost of simplification itself and the
//! end-to-end latency of the naively written vs the already-optimised Mary
//! query (both produce the same SPARQL after simplification, which is the
//! point of rules (a) and (b)).

use criterion::{criterion_group, criterion_main, Criterion};
use qb2olap::{Qb2Olap, SparqlVariant};
use qb2olap_bench::demo_cube;
use ql::{parse_ql, simplify};

fn bench_simplification(c: &mut Criterion) {
    let cube = demo_cube(5_000);
    let tool = Qb2Olap::new(cube.endpoint.clone());
    let querying = tool.querying(&cube.dataset).expect("cube is enriched");
    let schema = querying.schema().clone();

    let optimized = datagen::workload::mary_query();
    let unoptimized = datagen::workload::mary_query_unoptimized();

    let mut group = c.benchmark_group("simplification");
    group.sample_size(10);

    group.bench_function("parse_and_simplify_optimized", |b| {
        b.iter(|| {
            let program = parse_ql(&optimized).unwrap();
            simplify(&program, &schema).unwrap()
        });
    });
    group.bench_function("parse_and_simplify_unoptimized", |b| {
        b.iter(|| {
            let program = parse_ql(&unoptimized).unwrap();
            simplify(&program, &schema).unwrap()
        });
    });

    group.bench_function("end_to_end_optimized", |b| {
        b.iter(|| {
            let prepared = querying.prepare(&optimized).unwrap();
            querying.execute(&prepared, SparqlVariant::Direct).unwrap()
        });
    });
    group.bench_function("end_to_end_unoptimized", |b| {
        b.iter(|| {
            let prepared = querying.prepare(&unoptimized).unwrap();
            querying.execute(&prepared, SparqlVariant::Direct).unwrap()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_simplification);
criterion_main!(benches);
