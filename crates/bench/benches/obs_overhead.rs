//! E16 — observability overhead: the same E7-scale columnar scan executed
//! three ways: with no subscriber installed (the production default —
//! span guards are inert, no clock reads), with a collecting subscriber
//! recording the span tree, and through the traced path that builds a
//! full [`obs::ExecutionProfile`]. The no-op-vs-collecting gap is the
//! price of *observing*; the traced entry is the price of `explain`.
//!
//! The default scale is the paper's 80,000 observations; set
//! `QB2OLAP_BENCH_OBSERVATIONS` to run smaller.

use std::collections::BTreeMap;
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use qb2olap::cubestore::{execute, execute_traced, CubeQuery};
use qb2olap::Qb2Olap;
use qb2olap_bench::demo_cube;
use rdf::vocab::demo_schema;

fn bench_obs_overhead(c: &mut Criterion) {
    let observations = obs::env::usize_knob("QB2OLAP_BENCH_OBSERVATIONS", 80_000);
    let cube = demo_cube(observations);
    let tool = Qb2Olap::new(cube.endpoint.clone());
    let querying = tool.querying(&cube.dataset).expect("cube is enriched");
    let materialized = querying.materialize().expect("materialization succeeds");

    // The same representative full-scan roll-up the `backends` bench
    // measures, so E11 and E16 numbers are directly comparable.
    let scan_query = CubeQuery {
        slices: vec![
            demo_schema::destination_dim(),
            demo_schema::time_dim(),
            demo_schema::term("ageDim"),
            demo_schema::term("sexDim"),
            demo_schema::asylapp_dim(),
        ],
        rollups: BTreeMap::from([(demo_schema::citizenship_dim(), demo_schema::continent())]),
        ..CubeQuery::default()
    };

    let mut group = c.benchmark_group(format!("obs_overhead/{observations}"));
    group.sample_size(10);
    group.bench_function("scan_noop_subscriber", |b| {
        b.iter(|| execute(&materialized, &scan_query).unwrap());
    });
    let collector = Arc::new(obs::CollectingSubscriber::new());
    group.bench_function("scan_collecting_subscriber", |b| {
        b.iter(|| {
            obs::with_subscriber(collector.clone(), || {
                execute(&materialized, &scan_query).unwrap()
            })
        });
    });
    group.bench_function("scan_traced_profile", |b| {
        b.iter(|| execute_traced(&materialized, &scan_query).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_obs_overhead);
criterion_main!(benches);
